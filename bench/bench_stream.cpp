// Batch loop vs staged streaming pipeline (docs/streaming.md).
//
// The batch window loop issues each cloud search synchronously: the edge
// stops tracking for the wall-clock duration of every MDB scan.  The
// threaded streaming scheduler overlaps those scans with tracking on the
// uplink worker threads, so the same monitoring session should finish in
// less wall time whenever cloud calls are frequent.  This bench runs the
// same seeded sessions through both schedulers and reports:
//
//   - wall-clock window throughput per scheduler, and their ratio
//     (streaming over batch; the perfdiff --require floor asserts the
//     staged pipeline actually beats the batch loop), and
//   - the initial-response time (Delta_initial = Delta_ec + Delta_cs +
//     Delta_ce) under a degraded uplink that holds every message 200 ms —
//     mean and p99 across sessions, checking the cloud-delay scenario
//     stays within the paper's 10 s initial-response budget.
//
// Wall-derived metrics are stripped from the committed baselines (like
// the SIMD speedups, docs/performance.md); the ratio is gated with an
// absolute perfdiff floor instead.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/core/stream.hpp"

namespace {

double percentile(std::vector<double> values, double fraction) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      fraction * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

int main() {
  using namespace emap;
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));

  const double duration = bench::quick_mode() ? 90.0 : 240.0;
  const int sessions = bench::quick_mode() ? 2 : 5;

  auto make_input = [&](std::uint64_t seed) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = seed;
    spec.duration_sec = duration;
    spec.onset_sec = duration * 0.8;
    return synth::make_eval_input(spec);
  };

  // The degraded-uplink scenario: every message to the cloud held back by
  // exactly 200 ms (delay probability 1, zero-width range), the paper's
  // cloud-congestion case for the initial-response budget.
  auto delayed_options = [] {
    core::PipelineOptions options;
    options.robust.enabled = true;
    options.fault.up.delay = 1.0;
    options.fault.up.delay_min_sec = 0.2;
    options.fault.up.delay_max_sec = 0.2;
    options.fault.seed = 11;
    return options;
  };

  std::printf("=== batch loop vs staged streaming pipeline ===\n");
  std::printf("%-8s %10s %12s %14s %14s\n", "session", "windows",
              "batch[ms]", "stream[ms]", "D_init[s]");

  double batch_windows = 0.0;
  double batch_wall_sec = 0.0;
  double stream_windows = 0.0;
  double stream_wall_sec = 0.0;
  std::vector<double> initial_responses;
  for (int session = 0; session < sessions; ++session) {
    const auto input = make_input(101 + static_cast<std::uint64_t>(session));

    core::EmapPipeline batch(store, core::EmapConfig{}, delayed_options());
    auto start = std::chrono::steady_clock::now();
    const auto batch_result = batch.run(input);
    const double batch_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    batch_windows += static_cast<double>(batch_result.iterations.size());
    batch_wall_sec += batch_ms / 1e3;

    core::EmapPipeline engine(store, core::EmapConfig{}, delayed_options());
    core::StreamOptions stream_options;
    stream_options.mode = core::SchedulerMode::kThreaded;
    stream_options.stage_threads = 2;
    stream_options.queue_capacity = 8;
    core::StreamPipeline stream(engine, stream_options);
    start = std::chrono::steady_clock::now();
    const auto stream_result = stream.run(input);
    const double stream_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
    stream_windows += static_cast<double>(stream_result.iterations.size());
    stream_wall_sec += stream_ms / 1e3;
    initial_responses.push_back(stream_result.timings.delta_initial_sec);

    std::printf("%-8d %10zu %12.1f %14.1f %14.3f\n", session,
                stream_result.iterations.size(), batch_ms, stream_ms,
                stream_result.timings.delta_initial_sec);
  }

  const double batch_tp = batch_windows / batch_wall_sec;
  const double stream_tp = stream_windows / stream_wall_sec;
  const double ratio = stream_tp / batch_tp;
  double initial_sum = 0.0;
  for (double value : initial_responses) {
    initial_sum += value;
  }
  const double initial_mean =
      initial_sum / static_cast<double>(initial_responses.size());
  const double initial_p99 = percentile(initial_responses, 0.99);

  std::printf("\nbatch  throughput: %8.1f windows/s\n", batch_tp);
  std::printf("stream throughput: %8.1f windows/s  (%.2fx batch)\n",
              stream_tp, ratio);
  std::printf("initial response under 200 ms uplink delay: "
              "mean %.3f s, p99 %.3f s\n",
              initial_mean, initial_p99);
  std::printf("conclusion: overlapping cloud scans with edge tracking %s "
              "the batch loop on the same sessions\n",
              ratio > 1.0 ? "beats" : "does NOT beat");

  bench::write_headline(
      "stream", {{"stream_over_batch_ratio", ratio},
                 {"initial_p99_delay200ms_sec", initial_p99},
                 {"initial_mean_delay200ms_sec", initial_mean}});
  return 0;
}
