// Fig. 7(a) reproduction: step-size (alpha) sweep.
//
// Paper: as alpha grows, exploration time and the number of matches grow,
// while the average cross-correlation of the top-100 saturates beyond
// alpha = 0.004 (+1.12% from 0.0008 to 0.004, +0.02% beyond) — which is why
// the framework pins alpha = 0.004.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "emap/core/search.hpp"
#include "emap/dsp/simd.hpp"
#include "emap/sim/device.hpp"

int main() {
  using namespace emap;
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));
  const auto cloud = sim::cloud_i7();

  // Average over a few anomalous probes (the paper's sweep is an average
  // over search requests).
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < (bench::quick_mode() ? 2 : 5); ++i) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 50 + static_cast<std::uint64_t>(i);
    const auto input = synth::make_eval_input(spec);
    const auto filtered = bench::filter_recording(input);
    probes.push_back(bench::window_at(filtered, spec.onset_sec - 40.0));
  }

  std::printf("=== Fig. 7(a): effect of step-size alpha ===\n");
  std::printf("%-9s %14s %14s %12s %16s\n", "alpha", "expl[ms,model]",
              "expl[ms,wall]", "matches", "avg top-100 corr");
  const double alphas[] = {0.0008, 0.001, 0.002, 0.004, 0.007, 0.01, 0.015};
  double corr_at_0004 = 0.0;
  double corr_at_min = 0.0;
  double corr_at_max = 0.0;
  double model_ms_at_0004 = 0.0;
  for (double alpha : alphas) {
    core::EmapConfig config;
    config.alpha = alpha;
    core::CrossCorrelationSearch search(config);
    double model_ms = 0.0;
    double wall_ms = 0.0;
    double matches = 0.0;
    double avg_corr = 0.0;
    int corr_probes = 0;
    for (const auto& probe : probes) {
      const auto start = std::chrono::steady_clock::now();
      const auto result = search.search(probe, store);
      wall_ms += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      model_ms +=
          (cloud.seconds_for_macs(static_cast<double>(result.stats.mac_ops)) +
           cloud.per_signal_overhead_sec *
               static_cast<double>(result.stats.sets_scanned)) *
          1e3;
      matches += static_cast<double>(result.stats.candidates);
      if (!result.matches.empty()) {
        double sum = 0.0;
        for (const auto& match : result.matches) {
          sum += match.omega;
        }
        avg_corr += sum / static_cast<double>(result.matches.size());
        ++corr_probes;
      }
    }
    const double n = static_cast<double>(probes.size());
    const double corr = corr_probes > 0 ? avg_corr / corr_probes : 0.0;
    if (alpha == 0.004) {
      corr_at_0004 = corr;
      model_ms_at_0004 = model_ms / n;
    }
    if (alpha == alphas[0]) corr_at_min = corr;
    if (alpha == alphas[6]) corr_at_max = corr;
    std::printf("%-9.4f %14.1f %14.1f %12.0f %16.4f\n", alpha, model_ms / n,
                wall_ms / n, matches / n, corr);
  }
  std::printf("\nsaturation check (paper: +1.12%% up to alpha=0.004, then "
              "+0.02%%):\n");
  std::printf("  corr gain 0.0008 -> 0.004: %+.2f%%\n",
              (corr_at_0004 / corr_at_min - 1.0) * 100.0);
  std::printf("  corr gain 0.004  -> 0.015: %+.2f%%\n",
              (corr_at_max / corr_at_0004 - 1.0) * 100.0);
  std::printf("conclusion: alpha = 0.004 keeps the top-100 quality while "
              "bounding exploration time (paper Section V-B)\n");

  // Per-implementation scan throughput at the pinned alpha = 0.004: the
  // same probes through one forced dispatch arm per leg.  Both arms run
  // even in quick mode, so the CI smoke workload exercises the whole
  // dispatch matrix; wall-derived metrics below are stripped from the
  // committed baselines (docs/performance.md) and gated with the
  // perfdiff --require absolute floor instead.
  std::printf("\n=== scan throughput per dispatch arm (alpha = 0.004) ===\n");
  std::printf("%-8s %12s %14s %12s\n", "impl", "wall[ms]", "Mmac/s",
              "kernel calls");
  core::CrossCorrelationSearch pinned_search{core::EmapConfig{}};
  const int reps = bench::quick_mode() ? 2 : 3;
  auto time_arm = [&](dsp::simd::Level level, double& wall_ms,
                      double& mmacs_per_sec) {
    dsp::simd::force_level(level);
    dsp::simd::reset_kernel_invocations();
    double best_ms = 1e300;
    double macs = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      double rep_ms = 0.0;
      macs = 0.0;
      for (const auto& probe : probes) {
        const auto start = std::chrono::steady_clock::now();
        const auto result = pinned_search.search(probe, store);
        rep_ms += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        macs += static_cast<double>(result.stats.mac_ops);
      }
      best_ms = std::min(best_ms, rep_ms);
    }
    const std::uint64_t calls = dsp::simd::kernel_invocations(level);
    dsp::simd::force_level(std::nullopt);
    wall_ms = best_ms;
    mmacs_per_sec = macs / best_ms / 1e3;  // macs per ms -> M per s
    std::printf("%-8s %12.1f %14.1f %12llu\n", dsp::simd::level_name(level),
                wall_ms, mmacs_per_sec,
                static_cast<unsigned long long>(calls));
  };
  double scalar_ms = 0.0;
  double scalar_mmacs = 0.0;
  time_arm(dsp::simd::Level::kScalar, scalar_ms, scalar_mmacs);
  const bool avx2_available =
      dsp::simd::compiled_with_avx2() && dsp::simd::cpu_supports_avx2();
  double avx2_ms = 0.0;
  double avx2_mmacs = 0.0;
  if (avx2_available) {
    time_arm(dsp::simd::Level::kAvx2, avx2_ms, avx2_mmacs);
    std::printf("speedup avx2/scalar: %.2fx\n", scalar_ms / avx2_ms);
  } else {
    std::printf("avx2     (arm unavailable on this build/host)\n");
  }

  if (avx2_available) {
    bench::write_headline(
        "fig7a", {{"model_ms_alpha0004", model_ms_at_0004},
                  {"avg_corr_alpha0004", corr_at_0004},
                  {"corr_gain_saturation_pct",
                   (corr_at_max / corr_at_0004 - 1.0) * 100.0},
                  {"scan_throughput_mmacs_scalar", scalar_mmacs},
                  {"scan_throughput_mmacs_avx2", avx2_mmacs},
                  {"scan_speedup_avx2", scalar_ms / avx2_ms}});
  } else {
    // No AVX2 metrics at all: the perfdiff --require floor skips (with a
    // note) instead of failing on hosts that cannot run the arm.
    bench::write_headline(
        "fig7a", {{"model_ms_alpha0004", model_ms_at_0004},
                  {"avg_corr_alpha0004", corr_at_0004},
                  {"corr_gain_saturation_pct",
                   (corr_at_max / corr_at_0004 - 1.0) * 100.0},
                  {"scan_throughput_mmacs_scalar", scalar_mmacs}});
  }
  return 0;
}
