// Table I reproduction: average prediction accuracy of EMAP for seizure,
// encephalopathy, and stroke across five batches (B1..B5 of 20 inputs),
// compared with the state-of-the-art prediction/detection techniques.
//
// Paper values:
//   seizure        0.95 0.94 0.95 0.97 0.94 | SoA pred [11]=0.94 [13]=0.93
//   encephalopathy 0.67 0.76 0.74 0.76 0.72 | (SoA: N.A.)
//   stroke         0.74 0.85 0.80 0.78 0.77 | (SoA: N.A.)
// Batch protocol as in bench_fig10: 14 patients + 6 controls per batch;
// a patient counts correct when the alarm precedes onset (the paper
// evaluates after two sequential cloud calls; our alarms always involve
// multiple cloud rounds), a control when no alarm fires.
//
// The reimplemented SoA columns are measured ([13] = IoT predictor,
// [18] = cross-correlation classifier, seizure-only); deep-learning SoA
// cells ([11], [7], [8]) are quoted from the paper.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "emap/baselines/iot_predictor.hpp"
#include "emap/baselines/xcorr_classifier.hpp"
#include "emap/core/pipeline.hpp"

namespace {

using namespace emap;

}  // namespace

int main() {
  const int kBatches = bench::quick_mode() ? 1 : 5;
  const int kPerBatch = bench::quick_mode() ? 6 : 20;
  const int kAnomalousPerBatch = bench::quick_mode() ? 4 : 14;
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));

  // SoA baselines trained on the 256 Hz corpus.  The IoT predictor [13]
  // runs in its published small-data, strict-persistence regime (see
  // bench_fig10); the detection-task classifier [18] trains on the full
  // corpus (detection is the easier task; the paper quotes 0.99 for it).
  std::vector<synth::Recording> training;
  for (const auto& corpus :
       synth::standard_corpora(bench::quick_mode() ? 12 : 26)) {
    if (std::abs(corpus.native_fs_hz - 256.0) > 1e-9) {
      continue;
    }
    for (auto& recording : synth::generate_corpus(corpus)) {
      training.push_back(std::move(recording));
    }
  }
  baselines::IotPredictorConfig iot_config;
  iot_config.votes_needed = 4;
  baselines::IotPredictor iot(iot_config);
  iot.train(std::vector<synth::Recording>(training.begin(),
                                          training.begin() + 10));
  // "[11]-style" cloud DL stand-in: the same streaming protocol on an MLP
  // trained without the IoT resource constraints (full corpus).
  baselines::IotPredictorConfig dl_config;
  dl_config.hidden_units = 24;
  baselines::IotPredictor cloud_dl(dl_config);
  cloud_dl.train(training);
  baselines::XcorrClassifier xcorr;
  xcorr.train(training);

  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults(), options);

  std::printf("=== Table I: average prediction accuracy ===\n\n");
  std::printf("%-16s %5s %5s %5s %5s %5s | %6s  (paper EMAP avg)\n",
              "anomaly", "B1", "B2", "B3", "B4", "B5", "mean");

  double seizure_mean = 0.0;
  double class_means[3] = {0.0, 0.0, 0.0};
  std::size_t total_false_positives = 0;
  std::size_t total_controls = 0;
  const double paper_avg[3] = {0.94, 0.73, 0.79};
  int class_index = 0;
  for (auto cls : synth::kAnomalyClasses) {
    std::printf("%-16s", synth::anomaly_name(cls));
    double class_sum = 0.0;
    for (int b = 0; b < kBatches; ++b) {
      int correct = 0;
      for (int i = 0; i < kPerBatch; ++i) {
        synth::EvalInputSpec spec;
        spec.cls = (i < kAnomalousPerBatch) ? cls
                                            : synth::AnomalyClass::kNormal;
        spec.seed = 20000 + static_cast<std::uint64_t>(class_index) * 1000 +
                    static_cast<std::uint64_t>(b) * 100 +
                    static_cast<std::uint64_t>(i);
        const auto input = synth::make_eval_input(spec);
        const bool anomalous = spec.cls != synth::AnomalyClass::kNormal;
        const auto result =
            pipeline.run(input, anomalous ? spec.onset_sec : -1.0);
        if (anomalous) {
          if (result.anomaly_predicted) {
            ++correct;
          }
        } else {
          ++total_controls;
          if (!result.anomaly_predicted) {
            ++correct;
          } else {
            ++total_false_positives;
          }
        }
      }
      const double accuracy = static_cast<double>(correct) / kPerBatch;
      class_sum += accuracy;
      std::printf(" %5.2f", accuracy);
    }
    const double class_mean = class_sum / kBatches;
    if (class_index < 3) {
      class_means[class_index] = class_mean;
    }
    if (cls == synth::AnomalyClass::kSeizure) {
      seizure_mean = class_mean;
    }
    std::printf(" | %6.2f  (%.2f)\n", class_mean, paper_avg[class_index]);
    ++class_index;
  }

  std::printf("\nfalse positives on controls: %.0f%%   (paper: ~15%%)\n",
              total_controls > 0
                  ? 100.0 * static_cast<double>(total_false_positives) /
                        static_cast<double>(total_controls)
                  : 0.0);

  // --- SoA columns (seizure only; N.A. for the other anomalies, as in the
  // paper).  [13] is evaluated with the same lead-time protocol as EMAP in
  // Fig. 10 (alarm at least L seconds before onset, mean over leads);
  // [18] is a detection-time task (classify the current window), so the
  // lead concept does not apply to it. ---
  std::printf("\nSoA comparison, seizure row:\n");
  const double soa_leads[] = {15, 30, 45, 60, 120};
  double iot_correct = 0.0;
  double dl_correct = 0.0;
  int xcorr_correct = 0;
  int evaluated = 0;
  for (int i = 0; i < (bench::quick_mode() ? 9 : 40); ++i) {
    synth::EvalInputSpec spec;
    spec.cls = (i % 3 == 2) ? synth::AnomalyClass::kNormal
                            : synth::AnomalyClass::kSeizure;
    spec.seed = 30000 + static_cast<std::uint64_t>(i);
    const auto input = synth::make_eval_input(spec);
    const bool anomalous = spec.cls != synth::AnomalyClass::kNormal;
    ++evaluated;

    // [13]/[11]-style streaming prediction; record the latched alarm time
    // of each model and score with the lead protocol.
    auto stream_alarm_time = [&](baselines::IotPredictor& predictor) {
      predictor.reset_stream();
      for (std::size_t w = 0; (w + 1) * 256 <= input.samples.size(); ++w) {
        const double t = static_cast<double>(w + 1);
        if (anomalous && t > spec.onset_sec) {
          break;
        }
        (void)predictor.observe_window(std::span<const double>(
            input.samples.data() + w * 256, 256));
        if (predictor.alarm()) {
          return t;
        }
      }
      return -1.0;
    };
    auto lead_score = [&](double alarm_at) {
      if (!anomalous) {
        return alarm_at < 0.0 ? 1.0 : 0.0;
      }
      double lead_hits = 0.0;
      for (double lead : soa_leads) {
        if (alarm_at >= 0.0 && alarm_at <= spec.onset_sec - lead) {
          lead_hits += 1.0;
        }
      }
      return lead_hits / std::size(soa_leads);
    };
    iot_correct += lead_score(stream_alarm_time(iot));
    dl_correct += lead_score(stream_alarm_time(cloud_dl));

    // [18]-style window classification (detection-flavoured): majority of
    // the last 10 pre-onset windows.
    int votes = 0;
    const std::size_t end_window = anomalous
        ? static_cast<std::size_t>(spec.onset_sec) - 1
        : input.samples.size() / 256 - 1;
    for (std::size_t w = end_window - 10; w < end_window; ++w) {
      if (xcorr.predict(std::span<const double>(
              input.samples.data() + w * 256, 256))) {
        ++votes;
      }
    }
    if ((votes >= 5) == anomalous) {
      ++xcorr_correct;
    }
  }
  std::printf("  EMAP                      : %.2f (measured above)\n",
              seizure_mean);
  std::printf("  SoA prediction [13] (ours): %.2f   (paper: 0.93)\n",
              iot_correct / evaluated);
  std::printf("  SoA prediction [11] (ours, MLP stand-in): %.2f   "
              "(paper: 0.94)\n",
              dl_correct / evaluated);
  std::printf("  SoA detection  [18] (ours): %.2f   (paper: 0.99 for "
              "detection-time task)\n",
              static_cast<double>(xcorr_correct) / evaluated);
  std::printf("  SoA detection  [7][8]: 0.86 / 0.93 (quoted from the "
              "paper; full deep-learning replicas out of scope)\n");
  std::printf("\nshape check: seizure >> encephalopathy/stroke accuracy, "
              "N.A. SoA coverage for the latter two -> the multi-anomaly "
              "capability is EMAP-specific\n");
  bench::write_headline(
      "table1",
      {{"seizure_accuracy", class_means[0]},
       {"encephalopathy_accuracy", class_means[1]},
       {"stroke_accuracy", class_means[2]},
       {"control_false_positive_rate",
        total_controls > 0
            ? static_cast<double>(total_false_positives) /
                  static_cast<double>(total_controls)
            : 0.0}});
  return 0;
}
