// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "emap/common/build_info.hpp"
#include "emap/core/config.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/obs/export.hpp"
#include "emap/synth/corpus.hpp"

namespace emap::bench {

/// Peak resident set size of this process in MiB (getrusage ru_maxrss;
/// KiB on Linux, bytes on macOS), or 0 where unavailable.  Stamped onto
/// every headline so perfdiff can gate memory alongside latency.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

/// Provenance stamped onto every bench headline record: which binary
/// produced the number (git SHA, compiler, flags) and which EmapConfig it
/// ran (CRC fingerprint).  tools/perfdiff refuses to compare records whose
/// config fingerprints differ.
struct RunStamp {
  std::string git_sha = build_info::kGitSha;
  std::string build_type = build_info::kBuildType;
  std::string compiler = build_info::kCompiler;
  std::string flags = build_info::kFlags;
  std::string config = core::EmapConfig::paper_defaults().fingerprint();

  void apply(obs::JsonWriter& json) const {
    json.field("git_sha", git_sha)
        .field("build_type", build_type)
        .field("compiler", compiler)
        .field("flags", flags)
        .field("config", config);
  }
};

/// True when $EMAP_BENCH_QUICK is set: benches shrink their sweeps to a
/// CI-smoke-sized workload (fewer inputs, smaller parameter grids) while
/// keeping every headline metric defined.
inline bool quick_mode() { return std::getenv("EMAP_BENCH_QUICK") != nullptr; }

/// Recordings per corpus for the shared MDB: $EMAP_BENCH_PER_CORPUS
/// overrides the bench's default (CI perf-smoke uses a small value so the
/// suite runs in seconds; the committed baselines are recorded at that
/// same size).
inline std::size_t per_corpus(std::size_t default_count) {
  const char* env = std::getenv("EMAP_BENCH_PER_CORPUS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return default_count;
}

/// Appends one JSONL record of a bench's headline numbers to
/// `BENCH_<name>.jsonl` (in $EMAP_BENCH_OUT when set, else the working
/// directory).  Every bench trajectory file goes through this one code
/// path — the obs JSONL exporter — so records stay uniformly parseable,
/// and every record carries the RunStamp provenance fields.
///
/// Failure handling: with $EMAP_BENCH_OUT set the caller asked for the
/// file (CI collecting trajectory points), so a write failure propagates
/// and fails the bench run; without it the record is best-effort and
/// failure only logs.
inline void write_headline(
    const std::string& bench,
    std::initializer_list<std::pair<const char*, double>> values) {
  obs::JsonWriter json;
  json.field("bench", bench);
  RunStamp{}.apply(json);
  for (const auto& [key, value] : values) {
    json.field(key, value);
  }
  // perfdiff's higher-is-better keyword list does not match "rss", so a
  // regression gate on this field correctly treats growth as worse.
  json.field("peak_rss_mb", peak_rss_mb());
  const char* out_dir = std::getenv("EMAP_BENCH_OUT");
  const std::filesystem::path path =
      std::filesystem::path(out_dir != nullptr ? out_dir : ".") /
      ("BENCH_" + bench + ".jsonl");
  try {
    obs::append_jsonl_line(path, json.str());
    std::fprintf(stderr, "[bench] headline -> %s\n", path.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "[bench] could not write headline: %s\n",
                 error.what());
    if (out_dir != nullptr) {
      throw;
    }
  }
}

/// Builds (or loads from the per-user temp cache) a mega-database with
/// `per_corpus` recordings from each of the five standard corpora.  The
/// cache key includes a format version so stale files are rebuilt after
/// generator changes.
inline mdb::MdbStore load_or_build_mdb(std::size_t per_corpus) {
  constexpr int kCacheVersion = 3;
  const auto path =
      std::filesystem::temp_directory_path() /
      ("emap_bench_mdb_v" + std::to_string(kCacheVersion) + "_" +
       std::to_string(per_corpus) + ".bin");
  if (std::filesystem::exists(path)) {
    try {
      auto store = mdb::MdbStore::load(path);
      std::fprintf(stderr, "[bench] loaded cached MDB (%zu sets) from %s\n",
                   store.size(), path.c_str());
      return store;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[bench] cache unusable (%s); rebuilding\n",
                   error.what());
    }
  }
  std::fprintf(stderr, "[bench] building MDB (%zu recordings/corpus)...\n",
               per_corpus);
  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  auto store = builder.take_store();
  try {
    store.save(path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "[bench] could not cache MDB: %s\n", error.what());
  }
  std::fprintf(stderr, "[bench] MDB ready: %zu sets (%zu anomalous)\n",
               store.size(), store.count_anomalous());
  return store;
}

/// Applies the paper's acquisition bandpass to a whole recording.
inline std::vector<double> filter_recording(const synth::Recording& input) {
  dsp::FirFilter filter{core::EmapConfig{}.filter};
  return filter.apply(input.samples);
}

/// One filtered 256-sample window at second `t` of a filtered stream.
inline std::vector<double> window_at(const std::vector<double>& filtered,
                                     double t_sec) {
  const auto begin = static_cast<std::size_t>(t_sec * 256.0);
  return {filtered.begin() + static_cast<std::ptrdiff_t>(begin),
          filtered.begin() + static_cast<std::ptrdiff_t>(begin + 256)};
}

/// Pretty horizontal bar for console "plots".
inline std::string bar(double value, double full_scale, int width = 40) {
  int filled = static_cast<int>(value / full_scale * width + 0.5);
  if (filled < 0) filled = 0;
  if (filled > width) filled = width;
  return std::string(static_cast<std::size_t>(filled), '#');
}

}  // namespace emap::bench
