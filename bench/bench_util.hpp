// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "emap/core/config.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/obs/export.hpp"
#include "emap/synth/corpus.hpp"

namespace emap::bench {

/// Appends one JSONL record of a bench's headline numbers to
/// `BENCH_<name>.jsonl` (in $EMAP_BENCH_OUT when set, else the working
/// directory).  Every bench trajectory file goes through this one code
/// path — the obs JSONL exporter — so records stay uniformly parseable.
inline void write_headline(
    const std::string& bench,
    std::initializer_list<std::pair<const char*, double>> values) {
  obs::JsonWriter json;
  json.field("bench", bench);
  for (const auto& [key, value] : values) {
    json.field(key, value);
  }
  const char* out_dir = std::getenv("EMAP_BENCH_OUT");
  const std::filesystem::path path =
      std::filesystem::path(out_dir != nullptr ? out_dir : ".") /
      ("BENCH_" + bench + ".jsonl");
  try {
    obs::append_jsonl_line(path, json.str());
    std::fprintf(stderr, "[bench] headline -> %s\n", path.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "[bench] could not write headline: %s\n",
                 error.what());
  }
}

/// Builds (or loads from the per-user temp cache) a mega-database with
/// `per_corpus` recordings from each of the five standard corpora.  The
/// cache key includes a format version so stale files are rebuilt after
/// generator changes.
inline mdb::MdbStore load_or_build_mdb(std::size_t per_corpus) {
  constexpr int kCacheVersion = 3;
  const auto path =
      std::filesystem::temp_directory_path() /
      ("emap_bench_mdb_v" + std::to_string(kCacheVersion) + "_" +
       std::to_string(per_corpus) + ".bin");
  if (std::filesystem::exists(path)) {
    try {
      auto store = mdb::MdbStore::load(path);
      std::fprintf(stderr, "[bench] loaded cached MDB (%zu sets) from %s\n",
                   store.size(), path.c_str());
      return store;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[bench] cache unusable (%s); rebuilding\n",
                   error.what());
    }
  }
  std::fprintf(stderr, "[bench] building MDB (%zu recordings/corpus)...\n",
               per_corpus);
  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  auto store = builder.take_store();
  try {
    store.save(path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "[bench] could not cache MDB: %s\n", error.what());
  }
  std::fprintf(stderr, "[bench] MDB ready: %zu sets (%zu anomalous)\n",
               store.size(), store.count_anomalous());
  return store;
}

/// Applies the paper's acquisition bandpass to a whole recording.
inline std::vector<double> filter_recording(const synth::Recording& input) {
  dsp::FirFilter filter{core::EmapConfig{}.filter};
  return filter.apply(input.samples);
}

/// One filtered 256-sample window at second `t` of a filtered stream.
inline std::vector<double> window_at(const std::vector<double>& filtered,
                                     double t_sec) {
  const auto begin = static_cast<std::size_t>(t_sec * 256.0);
  return {filtered.begin() + static_cast<std::ptrdiff_t>(begin),
          filtered.begin() + static_cast<std::ptrdiff_t>(begin + 256)};
}

/// Pretty horizontal bar for console "plots".
inline std::string bar(double value, double full_scale, int width = 40) {
  int filled = static_cast<int>(value / full_scale * width + 0.5);
  if (filled < 0) filled = 0;
  if (filled > width) filled = width;
  return std::string(static_cast<std::size_t>(filled), '#');
}

}  // namespace emap::bench
