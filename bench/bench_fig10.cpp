// Fig. 10 reproduction: seizure prediction accuracy at 15/30/45/60/120 s
// before onset, across five batches of 20 inputs, against the
// state-of-the-art IoT seizure predictor [13].
//
// Batch protocol: each batch holds 14 seizure patients and 6 healthy
// controls; accuracy = correct decisions / 20 (an alarm anywhere before
// onset-minus-lead counts for patients; any alarm counts against controls).
// Paper: EMAP ~94% average, 97% max; SoA [13] ~93%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "emap/baselines/iot_predictor.hpp"
#include "emap/core/pipeline.hpp"

namespace {

using namespace emap;

struct PatientRun {
  bool anomalous = false;
  double onset = 0.0;
  double emap_alarm = -1.0;  // < 0: none
  double iot_alarm = -1.0;
};

}  // namespace

int main() {
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));

  // Train the SoA baseline.  [13] is a severely resource-constrained
  // per-deployment model; we emulate that regime with a small training set
  // and a strict persistence rule, which lands the baseline at its
  // published ~93% operating point on this data.
  baselines::IotPredictorConfig iot_config;
  iot_config.votes_needed = 4;
  baselines::IotPredictor iot(iot_config);
  {
    std::vector<synth::Recording> training;
    for (const auto& corpus : synth::standard_corpora(26)) {
      if (std::abs(corpus.native_fs_hz - 256.0) > 1e-9) {
        continue;
      }
      for (auto& recording : synth::generate_corpus(corpus)) {
        if (training.size() >= 10) {
          break;
        }
        training.push_back(std::move(recording));
      }
    }
    iot.train(training);
  }

  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults(), options);

  const int batches = bench::quick_mode() ? 1 : 5;
  const int per_batch = bench::quick_mode() ? 6 : 20;
  const int anomalous_per_batch = bench::quick_mode() ? 4 : 14;
  const double leads[] = {15, 30, 45, 60, 120};

  std::vector<std::vector<PatientRun>> runs(batches);
  for (int b = 0; b < batches; ++b) {
    for (int i = 0; i < per_batch; ++i) {
      synth::EvalInputSpec spec;
      spec.cls = (i < anomalous_per_batch) ? synth::AnomalyClass::kSeizure
                                           : synth::AnomalyClass::kNormal;
      spec.seed = 10000 + static_cast<std::uint64_t>(b) * 100 +
                  static_cast<std::uint64_t>(i);
      const auto input = synth::make_eval_input(spec);

      PatientRun run;
      run.anomalous = spec.cls != synth::AnomalyClass::kNormal;
      run.onset = spec.onset_sec;

      const double stop = run.anomalous ? spec.onset_sec : -1.0;
      const auto result = pipeline.run(input, stop);
      if (result.anomaly_predicted) {
        run.emap_alarm = result.first_alarm_sec;
      }

      iot.reset_stream();
      for (std::size_t w = 0; (w + 1) * 256 <= input.samples.size(); ++w) {
        const double t = static_cast<double>(w + 1);
        if (run.anomalous && t > run.onset) {
          break;
        }
        (void)iot.observe_window(std::span<const double>(
            input.samples.data() + w * 256, 256));
        if (iot.alarm()) {
          run.iot_alarm = t;
          break;
        }
      }
      runs[b].push_back(run);
    }
  }

  auto batch_accuracy = [&](int b, double lead, bool use_iot) {
    int correct = 0;
    for (const auto& run : runs[b]) {
      const double alarm = use_iot ? run.iot_alarm : run.emap_alarm;
      if (run.anomalous) {
        if (alarm >= 0.0 && alarm <= run.onset - lead) {
          ++correct;
        }
      } else if (alarm < 0.0) {
        ++correct;
      }
    }
    return static_cast<double>(correct) / per_batch;
  };

  std::printf("=== Fig. 10: EMAP seizure prediction accuracy [%%] ===\n");
  std::printf("%-8s", "batch");
  for (double lead : leads) {
    std::printf(" %7.0fs", lead);
  }
  std::printf(" %8s\n", "mean");
  double grand_sum = 0.0;
  double grand_max = 0.0;
  for (int b = 0; b < batches; ++b) {
    std::printf("B%-7d", b + 1);
    double row_sum = 0.0;
    for (double lead : leads) {
      const double acc = batch_accuracy(b, lead, /*use_iot=*/false);
      row_sum += acc;
      grand_max = std::max(grand_max, acc);
      std::printf(" %7.0f%%", acc * 100.0);
    }
    const double row_mean = row_sum / std::size(leads);
    grand_sum += row_mean;
    std::printf(" %7.0f%%\n", row_mean * 100.0);
  }
  const double emap_mean = grand_sum / batches;
  std::printf("\nEMAP average accuracy: %.0f%%  max batch-lead cell: %.0f%%"
              "   (paper: ~94%% average, 97%% max)\n",
              emap_mean * 100.0, grand_max * 100.0);

  // SoA baseline [13] on the same batches (lead-independent protocol: the
  // published technique alarms from its own persistence rule).
  double iot_sum = 0.0;
  std::printf("\nSoA IoT predictor [13] per batch (mean over leads):\n");
  for (int b = 0; b < batches; ++b) {
    double row_sum = 0.0;
    for (double lead : leads) {
      row_sum += batch_accuracy(b, lead, /*use_iot=*/true);
    }
    const double row_mean = row_sum / std::size(leads);
    iot_sum += row_mean;
    std::printf("  B%d: %.0f%%\n", b + 1, row_mean * 100.0);
  }
  std::printf("SoA [13] average accuracy: %.0f%%   (paper: ~93%%)\n",
              iot_sum / batches * 100.0);
  std::printf("\nshape check: EMAP >= SoA on the seizure task -> %s\n",
              emap_mean >= iot_sum / batches ? "REPRODUCED" : "NOT reproduced");
  bench::write_headline("fig10",
                        {{"emap_mean_accuracy", emap_mean},
                         {"emap_max_cell_accuracy", grand_max},
                         {"iot_mean_accuracy", iot_sum / batches}});
  return 0;
}
