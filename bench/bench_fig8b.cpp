// Fig. 8(b) reproduction: tracking cost, cross-correlation vs area.
//
// Paper: re-evaluating cross-correlation for the tracked set is ~4.3x
// slower than the area-between-curves tracker; tracking 100 signals takes
// ~900 ms on the Raspberry Pi edge node (which is what makes the 1 s
// real-time budget feasible).
//
// google-benchmark measures the C++ wall clock of both variants; the
// device-model table maps the same op counts through the calibrated
// Pi-Python profile for the paper-comparable milliseconds.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "emap/core/search.hpp"
#include "emap/core/tracker.hpp"
#include "emap/dsp/xcorr.hpp"
#include "emap/sim/device.hpp"

namespace {

using namespace emap;

struct TrackingFixture {
  std::vector<core::TrackedSignal> signals;
  std::vector<double> window;

  explicit TrackingFixture(std::size_t count) {
    auto store = bench::load_or_build_mdb(bench::per_corpus(26));
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 11;
    const auto input = synth::make_eval_input(spec);
    const auto filtered = bench::filter_recording(input);
    const double probe_time = spec.onset_sec - 60.0;
    const auto probe = bench::window_at(filtered, probe_time);
    core::EmapConfig config;
    config.top_k = count;
    config.delta = 0.5;  // accept enough candidates to fill large sets
    core::CrossCorrelationSearch search(config);
    const auto result = search.search(probe, store);
    core::EdgeTracker tracker(config);
    tracker.load_from_search(result, store);
    signals = tracker.active();
    // Top up by cycling if the search returned fewer than `count`.
    while (!signals.empty() && signals.size() < count) {
      signals.push_back(signals[signals.size() % result.matches.size()]);
    }
    signals.resize(std::min(count, signals.size()));
    window = bench::window_at(filtered, probe_time + 1.0);
  }
};

// Area tracker step (Algorithm 2), counting ABS ops.
std::uint64_t run_area_step(const TrackingFixture& fixture,
                            const core::EmapConfig& config) {
  core::EdgeTracker tracker(config);
  tracker.load(fixture.signals);
  return tracker.step(fixture.window).abs_ops;
}

// Cross-correlation variant: identical scan, NCC instead of area.
// Returns MAC ops (window length per evaluation; NCC has no early exit).
std::uint64_t run_xcorr_step(const TrackingFixture& fixture,
                             const core::EmapConfig& config) {
  const dsp::NormalizedWindow probe(fixture.window);
  std::uint64_t macs = 0;
  for (const auto& signal : fixture.signals) {
    const std::span<const double> samples(signal.samples);
    if (samples.size() < probe.size() ||
        signal.beta > samples.size() - probe.size()) {
      continue;
    }
    const std::size_t limit =
        std::min(samples.size() - probe.size(),
                 signal.beta + config.track_scan_stride *
                                   (config.track_max_scan_offsets - 1));
    for (std::size_t offset = signal.beta; offset <= limit;
         offset += config.track_scan_stride) {
      const double omega =
          probe.correlate(samples.subspan(offset, probe.size()));
      macs += probe.size();
      if (omega >= 0.8) {
        break;
      }
    }
  }
  return macs;
}

void BM_TrackArea(benchmark::State& state) {
  TrackingFixture fixture(static_cast<std::size_t>(state.range(0)));
  core::EmapConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_area_step(fixture, config));
  }
  state.counters["signals"] = static_cast<double>(fixture.signals.size());
}

void BM_TrackXcorr(benchmark::State& state) {
  TrackingFixture fixture(static_cast<std::size_t>(state.range(0)));
  core::EmapConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_xcorr_step(fixture, config));
  }
  state.counters["signals"] = static_cast<double>(fixture.signals.size());
}

BENCHMARK(BM_TrackArea)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TrackXcorr)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void print_device_model_table() {
  const auto edge = sim::edge_raspberry_pi();
  core::EmapConfig config;
  std::printf("\n=== Fig. 8(b): tracking time on the calibrated edge device "
              "model ===\n");
  std::printf("%-9s %16s %16s %9s\n", "signals", "xcorr [ms]", "area [ms]",
              "speedup");
  double ratio_sum = 0.0;
  int rows = 0;
  double area_ms_at_100 = 0.0;
  for (std::size_t count : {50u, 100u, 150u, 200u, 300u, 400u}) {
    TrackingFixture fixture(count);
    const std::uint64_t abs_ops = run_area_step(fixture, config);
    const std::uint64_t mac_ops = run_xcorr_step(fixture, config);
    const double overhead = edge.per_signal_overhead_sec *
                            static_cast<double>(fixture.signals.size());
    const double area_ms =
        (edge.seconds_for_abs(static_cast<double>(abs_ops)) + overhead) * 1e3;
    const double xcorr_ms =
        (edge.seconds_for_macs(static_cast<double>(mac_ops)) + overhead) *
        1e3;
    ratio_sum += xcorr_ms / area_ms;
    ++rows;
    if (count == 100) {
      area_ms_at_100 = area_ms;
    }
    std::printf("%-9zu %16.0f %16.0f %8.1fx%s\n", fixture.signals.size(),
                xcorr_ms, area_ms, xcorr_ms / area_ms,
                count == 100 ? "   <- paper: ~900 ms, real-time budget 1 s"
                             : "");
  }
  const double mean_speedup = ratio_sum / rows;
  std::printf("mean speedup: %.1fx (paper: ~4.3x)\n", mean_speedup);
  bench::write_headline("fig8b",
                        {{"mean_track_speedup", mean_speedup},
                         {"area_ms_at_100_signals", area_ms_at_100}});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 8(b): wall-clock of this C++ implementation "
              "(google-benchmark) ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_device_model_table();
  return 0;
}
