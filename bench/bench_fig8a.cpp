// Fig. 8(a) reproduction: matching-threshold equivalence.
//
// Paper: sweeping the cross-correlation threshold delta in {0.7..0.97} and
// the area-between-curves threshold delta_A in {~400..1200} over the same
// signal population shows that delta_A ~ 900 sq. units yields roughly the
// same number of matches as delta = 0.8 — which is how the edge tracker's
// threshold is chosen.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "emap/dsp/area.hpp"
#include "emap/dsp/simd.hpp"
#include "emap/dsp/xcorr.hpp"

int main() {
  using namespace emap;
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));

  // Sample input windows from monitored patients.
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < (bench::quick_mode() ? 4 : 8); ++i) {
    synth::EvalInputSpec spec;
    spec.cls = (i % 2 == 0) ? synth::AnomalyClass::kSeizure
                            : synth::AnomalyClass::kNormal;
    spec.seed = 300 + static_cast<std::uint64_t>(i);
    const auto input = synth::make_eval_input(spec);
    const auto filtered = bench::filter_recording(input);
    probes.push_back(bench::window_at(filtered, spec.onset_sec - 50.0));
  }

  // One exhaustive pass computing both metrics per (probe, set, offset),
  // restricted to a store subset to bound runtime.
  const std::size_t set_limit =
      std::min<std::size_t>(bench::quick_mode() ? 150 : 600, store.size());
  const std::size_t offset_stride = 4;
  const double deltas[] = {0.7, 0.8, 0.9, 0.95, 0.97};
  const double delta_areas[] = {400, 600, 800, 900, 1000, 1200};
  std::vector<double> ncc_matches(std::size(deltas), 0.0);
  std::vector<double> area_matches(std::size(delta_areas), 0.0);

  for (const auto& probe : probes) {
    const dsp::NormalizedWindow normalized(probe);
    for (std::size_t s = 0; s < set_limit; ++s) {
      const std::span<const double> samples(store.at(s).samples);
      const std::size_t limit = samples.size() - probe.size();
      for (std::size_t beta = 0; beta < limit; beta += offset_stride) {
        const auto candidate = samples.subspan(beta, probe.size());
        const double omega = normalized.correlate(candidate);
        for (std::size_t d = 0; d < std::size(deltas); ++d) {
          if (omega > deltas[d]) {
            ncc_matches[d] += 1.0;
          }
        }
        const double area = dsp::area_between_capped(
            probe, candidate, delta_areas[std::size(delta_areas) - 1]);
        for (std::size_t d = 0; d < std::size(delta_areas); ++d) {
          if (area <= delta_areas[d]) {
            area_matches[d] += 1.0;
          }
        }
      }
    }
  }
  const double n = static_cast<double>(probes.size());

  std::printf("=== Fig. 8(a): average number of matches per input ===\n");
  std::printf("cross-correlation threshold sweep:\n");
  std::printf("%-10s %12s\n", "delta", "avg matches");
  double matches_at_08 = 0.0;
  for (std::size_t d = 0; d < std::size(deltas); ++d) {
    const double avg = ncc_matches[d] / n;
    if (deltas[d] == 0.8) {
      matches_at_08 = avg;
    }
    std::printf("%-10.2f %12.0f\n", deltas[d], avg);
  }
  std::printf("\narea-between-curves threshold sweep:\n");
  std::printf("%-10s %12s\n", "delta_A", "avg matches");
  double best_delta_a = 0.0;
  double best_gap = 1e300;
  for (std::size_t d = 0; d < std::size(delta_areas); ++d) {
    const double avg = area_matches[d] / n;
    const double gap = std::abs(avg - matches_at_08);
    if (gap < best_gap) {
      best_gap = gap;
      best_delta_a = delta_areas[d];
    }
    std::printf("%-10.0f %12.0f\n", delta_areas[d], avg);
  }
  std::printf("\nequivalence: delta = 0.8 (%.0f matches) ~ delta_A = %.0f "
              "sq. units (paper: ~900)\n",
              matches_at_08, best_delta_a);
  // Per-implementation area-kernel throughput: the capped
  // area-between-curves pass (Algorithm 2's hot loop) re-run with each
  // dispatch arm forced, on a store subset.  Both arms run even in quick
  // mode so CI exercises the whole dispatch matrix; wall-derived metrics
  // are excluded from committed baselines and floor-gated with
  // perfdiff --require instead (docs/performance.md).
  std::printf("\n=== area kernel throughput per dispatch arm ===\n");
  std::printf("%-8s %12s %14s %12s\n", "impl", "wall[ms]", "Mops/s",
              "kernel calls");
  const std::size_t arm_set_limit =
      std::min<std::size_t>(bench::quick_mode() ? 40 : 150, store.size());
  const double cap = delta_areas[std::size(delta_areas) - 1];
  const int reps = bench::quick_mode() ? 2 : 3;
  auto time_arm = [&](dsp::simd::Level level, double& wall_ms,
                      double& mops_per_sec) {
    dsp::simd::force_level(level);
    dsp::simd::reset_kernel_invocations();
    double best_ms = 1e300;
    double ops = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      double rep_ms = 0.0;
      ops = 0.0;
      // checksum keeps the arm's work observable (no dead-code elision).
      double checksum = 0.0;
      const auto start = std::chrono::steady_clock::now();
      for (const auto& probe : probes) {
        for (std::size_t s = 0; s < arm_set_limit; ++s) {
          const std::span<const double> samples(store.at(s).samples);
          const std::size_t limit = samples.size() - probe.size();
          for (std::size_t beta = 0; beta < limit; beta += offset_stride) {
            const auto candidate = samples.subspan(beta, probe.size());
            checksum += dsp::area_between_capped(probe, candidate, cap);
            ops += static_cast<double>(probe.size());
          }
        }
      }
      rep_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
      if (checksum < 0.0) std::printf("(impossible checksum)\n");
      best_ms = std::min(best_ms, rep_ms);
    }
    const std::uint64_t calls = dsp::simd::kernel_invocations(level);
    dsp::simd::force_level(std::nullopt);
    wall_ms = best_ms;
    mops_per_sec = ops / best_ms / 1e3;  // ops per ms -> M per s
    std::printf("%-8s %12.1f %14.1f %12llu\n", dsp::simd::level_name(level),
                wall_ms, mops_per_sec, static_cast<unsigned long long>(calls));
  };
  double scalar_ms = 0.0;
  double scalar_mops = 0.0;
  time_arm(dsp::simd::Level::kScalar, scalar_ms, scalar_mops);
  const bool avx2_available =
      dsp::simd::compiled_with_avx2() && dsp::simd::cpu_supports_avx2();
  double avx2_ms = 0.0;
  double avx2_mops = 0.0;
  if (avx2_available) {
    time_arm(dsp::simd::Level::kAvx2, avx2_ms, avx2_mops);
    std::printf("speedup avx2/scalar: %.2fx\n", scalar_ms / avx2_ms);
  } else {
    std::printf("avx2     (arm unavailable on this build/host)\n");
  }

  if (avx2_available) {
    bench::write_headline("fig8a",
                          {{"matches_at_delta08", matches_at_08},
                           {"equivalent_delta_area", best_delta_a},
                           {"area_throughput_mops_scalar", scalar_mops},
                           {"area_throughput_mops_avx2", avx2_mops},
                           {"area_speedup_avx2", scalar_ms / avx2_ms}});
  } else {
    // AVX2 metrics omitted entirely: perfdiff --require floors skip with
    // a note instead of failing on hosts that cannot run the arm.
    bench::write_headline("fig8a",
                          {{"matches_at_delta08", matches_at_08},
                           {"equivalent_delta_area", best_delta_a},
                           {"area_throughput_mops_scalar", scalar_mops}});
  }
  return 0;
}
