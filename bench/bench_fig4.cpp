// Fig. 4 reproduction: transmission time across communication platforms.
//
// (a) upload time [us] for 20..400 samples (one 16-bit channel); the paper
//     requires 256 samples in < 1 ms on 4G-era links.
// (b) download time [ms] for 20..400 signal-sets; the paper requires the
//     top-100 set in < 200 ms.
#include <cstdio>

#include "bench_util.hpp"
#include "emap/net/channel.hpp"
#include "emap/net/transport.hpp"

int main() {
  using namespace emap;
  net::ChannelOptions serialization_only;
  serialization_only.include_latency = false;

  std::printf("=== Fig. 4(a): upload time [us] vs samples transmitted ===\n");
  std::printf("%-9s", "samples");
  for (auto platform : net::kAllPlatforms) {
    std::printf(" %10s", net::platform_name(platform));
  }
  std::printf("\n");
  const std::size_t sample_counts[] = {20, 40, 60, 100, 200, 256, 300, 400};
  for (std::size_t count : sample_counts) {
    net::SignalUploadMessage message;
    message.samples.assign(count, 1.0);
    const std::size_t bytes = net::wire_size(message);
    std::printf("%-9zu", count);
    for (auto platform : net::kAllPlatforms) {
      net::Channel channel(platform, serialization_only);
      std::printf(" %10.1f", channel.upload_seconds(bytes) * 1e6);
    }
    std::printf(count == 256 ? "   <- paper operating point (1 s window)\n"
                             : "\n");
  }
  {
    net::SignalUploadMessage message;
    message.samples.assign(256, 1.0);
    bool all_fast = true;
    for (auto platform :
         {net::CommPlatform::kLte, net::CommPlatform::kLteAdvanced,
          net::CommPlatform::kWimaxR2}) {
      net::Channel channel(platform, serialization_only);
      all_fast = all_fast &&
                 channel.upload_seconds(net::wire_size(message)) < 1e-3;
    }
    std::printf("constraint: 256 samples < 1 ms on 4G-era links -> %s\n\n",
                all_fast ? "HOLDS" : "VIOLATED");
  }

  std::printf("=== Fig. 4(b): download time [ms] vs signal-sets "
              "transmitted ===\n");
  std::printf("%-9s", "signals");
  for (auto platform : net::kAllPlatforms) {
    std::printf(" %10s", net::platform_name(platform));
  }
  std::printf("\n");
  const std::size_t signal_counts[] = {20, 40, 60, 100, 150, 200, 300, 400};
  for (std::size_t count : signal_counts) {
    net::CorrelationSetMessage message;
    for (std::size_t i = 0; i < count; ++i) {
      net::CorrelationEntry entry;
      entry.samples.assign(1000, 1.0);
      message.entries.push_back(std::move(entry));
    }
    const std::size_t bytes = net::wire_size(message);
    std::printf("%-9zu", count);
    for (auto platform : net::kAllPlatforms) {
      net::Channel channel(platform, serialization_only);
      std::printf(" %10.2f", channel.download_seconds(bytes) * 1e3);
    }
    std::printf(count == 100 ? "   <- paper operating point (top-100)\n"
                             : "\n");
  }
  {
    net::CorrelationSetMessage message;
    for (int i = 0; i < 100; ++i) {
      net::CorrelationEntry entry;
      entry.samples.assign(1000, 1.0);
      message.entries.push_back(std::move(entry));
    }
    bool all_fast = true;
    for (auto platform :
         {net::CommPlatform::kLte, net::CommPlatform::kLteAdvanced,
          net::CommPlatform::kWimaxR2}) {
      net::Channel channel(platform, serialization_only);
      all_fast = all_fast &&
                 channel.download_seconds(net::wire_size(message)) < 0.2;
    }
    std::printf("constraint: 100 signals < 200 ms on 4G-era links -> %s\n",
                all_fast ? "HOLDS" : "VIOLATED");
  }
  {
    net::SignalUploadMessage upload;
    upload.samples.assign(256, 1.0);
    net::CorrelationSetMessage download;
    for (int i = 0; i < 100; ++i) {
      net::CorrelationEntry entry;
      entry.samples.assign(1000, 1.0);
      download.entries.push_back(std::move(entry));
    }
    net::Channel lte(net::CommPlatform::kLte, serialization_only);
    bench::write_headline(
        "fig4",
        {{"upload_256_lte_us",
          lte.upload_seconds(net::wire_size(upload)) * 1e6},
         {"download_100_lte_ms",
          lte.download_seconds(net::wire_size(download)) * 1e3}});
  }
  return 0;
}
