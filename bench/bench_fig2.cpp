// Fig. 2 reproduction: motivational analysis of signal cross-correlation.
//
// Paper: starting from the top-100 correlation set of an anomalous input,
// P_A rises from 0.22 (Iter.0) to 0.66 (Iter.5) as dissimilar signals are
// eliminated each second — normal signals are eliminated faster than
// anomalous ones.
#include <cstdio>

#include "bench_util.hpp"
#include "emap/core/search.hpp"
#include "emap/core/tracker.hpp"

int main() {
  using namespace emap;
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));
  const core::EmapConfig config = core::EmapConfig::paper_defaults();

  std::printf("=== Fig. 2: anomaly probability across tracking iterations "
              "===\n");
  std::printf("paper series: PA = 0.22, 0.29, 0.38, 0.60, 0.55, 0.66 "
              "(iterations 0..5)\n\n");

  // Several anomalous inputs, probed mid-prodrome so the top-100 set is a
  // normal/anomalous mixture like the paper's Iter.0 snapshot.
  double pa_sum[6] = {0};
  int pa_count[6] = {0};
  const int inputs = bench::quick_mode() ? 3 : 10;
  for (int i = 0; i < inputs; ++i) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 700 + static_cast<std::uint64_t>(i);
    const auto input = synth::make_eval_input(spec);
    const auto filtered = bench::filter_recording(input);

    // Window very early in the prodrome (signature just emerging), so the
    // Iter.0 top-100 is a normal/anomalous mixture like the paper's.
    const double probe_time = spec.onset_sec - 169.0;
    const auto probe = bench::window_at(filtered, probe_time);

    core::CrossCorrelationSearch search(config);
    const auto result = search.search(probe, store);
    if (result.matches.size() < 20) {
      continue;  // thin match set: not a meaningful PA snapshot
    }
    core::EdgeTracker tracker(config);
    tracker.load_from_search(result, store);
    pa_sum[0] += tracker.anomaly_probability();
    ++pa_count[0];
    for (int iteration = 1; iteration <= 5; ++iteration) {
      const auto window =
          bench::window_at(filtered, probe_time + iteration);
      const auto step = tracker.step(window);
      if (step.tracked_after == 0) {
        break;
      }
      pa_sum[iteration] += step.anomaly_probability;
      ++pa_count[iteration];
    }
  }

  std::printf("%-10s %-8s %-8s  %s\n", "iteration", "PA", "paper", "PA bar");
  const double paper_series[6] = {0.22, 0.29, 0.38, 0.60, 0.55, 0.66};
  double pa0 = 0.0;
  double pa5 = 0.0;
  for (int iteration = 0; iteration <= 5; ++iteration) {
    const double pa =
        pa_count[iteration] > 0 ? pa_sum[iteration] / pa_count[iteration]
                                : 0.0;
    if (iteration == 0) pa0 = pa;
    if (iteration == 5) pa5 = pa;
    std::printf("%-10d %-8.2f %-8.2f  |%s\n", iteration, pa,
                paper_series[iteration],
                bench::bar(pa, 1.0, 40).c_str());
  }
  std::printf("\nshape check: PA rises substantially across iterations -> "
              "%s (paper: 0.22 -> 0.66)\n",
              pa5 - pa0 > 0.2 ? "REPRODUCED" : "NOT reproduced");
  bench::write_headline("fig2", {{"pa_iter0", pa0},
                                 {"pa_iter5_score", pa5},
                                 {"pa_rise_score", pa5 - pa0}});
  return 0;
}
