// Fig. 7(b) reproduction: exploration time of exhaustive search vs
// Algorithm 1 over 1000/2000/4000/8000 signal-sets (paper: ~6.8x mean
// reduction on the authors' Python/i7 cloud).
//
// Two measurements are reported:
//  * device-model time — op counts mapped through the calibrated i7-Python
//    profile (the paper-comparable number, including the per-set overhead
//    that dominates Algorithm 1's runtime there);
//  * wall-clock time of this C++ implementation via google-benchmark
//    (the raw evaluation-count ratio, much larger than 6.8x, because the
//    C++ scan has no per-set interpreter overhead).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "emap/baselines/exhaustive.hpp"
#include "emap/core/search.hpp"
#include "emap/obs/profiler.hpp"
#include "emap/obs/timeseries.hpp"
#include "emap/sim/device.hpp"

namespace {

using namespace emap;

mdb::MdbStore& full_store() {
  static mdb::MdbStore store =
      bench::load_or_build_mdb(bench::per_corpus(26));
  return store;
}

mdb::MdbStore subset(std::size_t count) {
  const auto& full = full_store();
  mdb::MdbStore store(full.info());
  for (std::size_t i = 0; i < std::min(count, full.size()); ++i) {
    auto set = full.at(i);
    set.id = 0;  // reassign
    store.insert(std::move(set));
  }
  return store;
}

std::vector<double> probe_window() {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 77;
  const auto input = synth::make_eval_input(spec);
  const auto filtered = bench::filter_recording(input);
  return bench::window_at(filtered, spec.onset_sec - 30.0);
}

void BM_Exhaustive(benchmark::State& state) {
  const auto store = subset(static_cast<std::size_t>(state.range(0)));
  const auto probe = probe_window();
  baselines::ExhaustiveSearch search{core::EmapConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search(probe, store));
  }
  state.counters["sets"] = static_cast<double>(store.size());
}

void BM_Algorithm1(benchmark::State& state) {
  const auto store = subset(static_cast<std::size_t>(state.range(0)));
  const auto probe = probe_window();
  core::CrossCorrelationSearch search{core::EmapConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search(probe, store));
  }
  state.counters["sets"] = static_cast<double>(store.size());
}

BENCHMARK(BM_Exhaustive)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Algorithm1)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

double print_device_model_table() {
  const auto cloud = sim::cloud_i7();
  const auto probe = probe_window();
  std::printf("\n=== Fig. 7(b): exploration time on the calibrated cloud "
              "device model ===\n");
  std::printf("%-8s %18s %18s %10s\n", "sets", "exhaustive [s]",
              "Algorithm 1 [s]", "speedup");
  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (std::size_t count : {1000u, 2000u, 4000u, 8000u}) {
    const auto store = subset(count);
    baselines::ExhaustiveSearch exhaustive{core::EmapConfig{}};
    core::CrossCorrelationSearch algorithm1{core::EmapConfig{}};
    const auto full = exhaustive.search(probe, store);
    const auto fast = algorithm1.search(probe, store);
    auto model_seconds = [&cloud, &store](const core::SearchStats& stats) {
      return cloud.seconds_for_macs(static_cast<double>(stats.mac_ops)) +
             cloud.per_signal_overhead_sec *
                 static_cast<double>(store.size());
    };
    const double t_full = model_seconds(full.stats);
    const double t_fast = model_seconds(fast.stats);
    ratio_sum += t_full / t_fast;
    ++ratio_count;
    std::printf("%-8zu %18.2f %18.2f %9.1fx\n", store.size(), t_full,
                t_fast, t_full / t_fast);
  }
  const double mean_speedup = ratio_sum / ratio_count;
  std::printf("mean speedup: %.1fx (paper: ~6.8x)\n", mean_speedup);
  return mean_speedup;
}

// Profiler tax on the instrumented Algorithm 1 scan: the same search with
// the stage hooks disabled vs enabled.  The hooks sit at scan-range
// granularity, so the enabled overhead should stay well under the 5 %
// acceptance bar; the measured number is reported as a headline metric so
// the perf gate tracks it.
double measure_profiler_overhead_pct() {
  const auto store = subset(bench::quick_mode() ? 500 : 2000);
  const auto probe = probe_window();
  core::CrossCorrelationSearch search{core::EmapConfig{}};
  benchmark::DoNotOptimize(search.search(probe, store));  // warm caches
  const int reps = bench::quick_mode() ? 3 : 6;
  auto time_runs = [&]() {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      benchmark::DoNotOptimize(search.search(probe, store));
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  obs::Profiler::set_enabled(false);
  const double disabled_sec = time_runs();
  obs::Profiler::set_enabled(true);
  const double enabled_sec = time_runs();
  obs::Profiler::set_enabled(false);
  const double overhead_pct = (enabled_sec / disabled_sec - 1.0) * 100.0;
  std::printf("\nprofiler overhead on the Algorithm 1 scan: %.2f%% "
              "(disabled %.3fs, enabled %.3fs over %d reps) -> %s\n",
              overhead_pct, disabled_sec, enabled_sec, reps,
              overhead_pct < 5.0 ? "within 5% budget" : "OVER 5% budget");
  return overhead_pct;
}

// Time-series scrape tax on the same scan: each rep records the
// pipeline's typical per-window telemetry and advances virtual time by one
// scrape interval, so the "on" run scrapes the registry once per rep —
// the pipeline's worst-case cadence.  Budget: < 2 %.
double measure_scrape_overhead_pct() {
  const auto store = subset(bench::quick_mode() ? 500 : 2000);
  const auto probe = probe_window();
  core::CrossCorrelationSearch search{core::EmapConfig{}};
  benchmark::DoNotOptimize(search.search(probe, store));  // warm caches
  const int reps = bench::quick_mode() ? 3 : 6;

  obs::MetricsRegistry registry;
  obs::Counter& windows = registry.counter("emap_pipeline_windows_total");
  obs::Gauge& tracked = registry.gauge("emap_tracked_set_size");
  obs::Histogram& track_step = registry.histogram(
      "emap_track_step_seconds", {}, obs::Histogram::default_latency_bounds());
  // Pad the registry to a pipeline-sized series population so the scrape
  // walks a realistic number of instruments.
  for (int i = 0; i < 40; ++i) {
    registry.counter("emap_bench_pad_total", {{"i", std::to_string(i)}})
        .increment();
  }

  auto time_runs = [&](obs::TimeSeriesScraper* scraper) {
    double t_virtual = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      benchmark::DoNotOptimize(search.search(probe, store));
      windows.increment();
      tracked.set(static_cast<double>(i));
      track_step.observe(0.1);
      t_virtual += 1.0;
      if (scraper != nullptr) {
        scraper->maybe_scrape(t_virtual);
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double disabled_sec = time_runs(nullptr);
  obs::TimeSeriesOptions options;
  options.enabled = true;
  obs::TimeSeriesStore series_store(options);
  obs::TimeSeriesScraper scraper(&registry, &series_store);
  const double enabled_sec = time_runs(&scraper);
  const double overhead_pct = (enabled_sec / disabled_sec - 1.0) * 100.0;
  std::printf("time-series scrape overhead on the Algorithm 1 scan: %.2f%% "
              "(disabled %.3fs, enabled %.3fs over %d reps, %zu series) -> "
              "%s\n",
              overhead_pct, disabled_sec, enabled_sec, reps,
              series_store.keys().size(),
              overhead_pct < 2.0 ? "within 2% budget" : "OVER 2% budget");
  return overhead_pct;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 7(b): wall-clock of this C++ implementation "
              "(google-benchmark) ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const double mean_speedup = print_device_model_table();
  const double overhead_pct = measure_profiler_overhead_pct();
  const double scrape_pct = measure_scrape_overhead_pct();
  bench::write_headline("fig7b",
                        {{"mean_search_speedup", mean_speedup},
                         {"profiler_overhead_pct", overhead_pct},
                         {"scrape_overhead_pct", scrape_pct}});
  return 0;
}
