// Ablation study over EMAP's design choices (beyond the paper's figures).
//
// Four ablations, each on the same patients and mega-database:
//   A1  exponential skip (β += α^(ω−1)) vs a fixed linear skip with the
//       same average step — the paper's argument for the exponential window
//       is that it refines near matches and leaps over dissimilar regions.
//   A2  edge tracker re-match scan budget (track_max_scan_offsets):
//       no re-alignment vs one-window lookahead vs unbounded.
//   A3  re-call threshold H: how the cloud-call cadence and prediction
//       lead react.
//   A4  16-bit wire quantization on/off (transport path fidelity).
#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "emap/baselines/exhaustive.hpp"
#include "emap/baselines/fft_search.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/core/search.hpp"

namespace {

using namespace emap;

struct Outcome {
  double detect_rate = 0.0;
  double mean_lead = 0.0;
  double calls_per_100s = 0.0;
};

Outcome evaluate(const mdb::MdbStore& store, const core::EmapConfig& config,
                 const core::PipelineOptions& options, int patients) {
  core::PipelineOptions opts = options;
  opts.stop_on_alarm = true;
  core::EmapPipeline pipeline(mdb::MdbStore(store), config, opts);
  Outcome outcome;
  int detected = 0;
  double lead_sum = 0.0;
  double calls = 0.0;
  double seconds = 0.0;
  for (int i = 0; i < patients; ++i) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 60000 + static_cast<std::uint64_t>(i);
    const auto input = synth::make_eval_input(spec);
    const auto result = pipeline.run(input, spec.onset_sec);
    if (result.anomaly_predicted) {
      ++detected;
      lead_sum += spec.onset_sec - result.first_alarm_sec;
    }
    calls += static_cast<double>(result.cloud_calls);
    seconds += result.iterations.empty() ? 0.0
                                         : result.iterations.back().t_sec;
  }
  outcome.detect_rate = static_cast<double>(detected) / patients;
  outcome.mean_lead = detected > 0 ? lead_sum / detected : 0.0;
  outcome.calls_per_100s = seconds > 0.0 ? calls / seconds * 100.0 : 0.0;
  return outcome;
}

}  // namespace

int main() {
  auto store = bench::load_or_build_mdb(bench::per_corpus(26));
  const int patients = bench::quick_mode() ? 3 : 10;
  const core::EmapConfig base = core::EmapConfig::paper_defaults();

  std::printf("=== Ablation studies (seizure, %d patients each) ===\n\n",
              patients);

  double a1_corr_gain = 0.0;
  double a2_default_detect = 0.0;
  double a4_wire_detect = 0.0;
  double a5_mac_reduction = 0.0;

  // --- A1: skip policy. ---
  std::printf("A1. sliding-window skip policy (search cost at equal "
              "coverage)\n");
  {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 61000;
    const auto input = synth::make_eval_input(spec);
    const auto filtered = bench::filter_recording(input);
    const auto probe = bench::window_at(filtered, spec.onset_sec - 40.0);

    core::CrossCorrelationSearch exponential(base);
    const auto exp_result = exponential.search(probe, store);

    // Fixed linear skip matched to the exponential policy's average step.
    const double avg_step =
        744.0 * static_cast<double>(store.size()) /
        std::max<double>(1.0,
                         static_cast<double>(exp_result.stats
                                                 .correlation_evals));
    core::EmapConfig linear = base;
    // A constant-step policy is alpha -> 1 limit; emulate by clamping both
    // bounds of the skip to the average step.
    linear.alpha = 0.9999;
    linear.max_skip = static_cast<std::size_t>(avg_step + 0.5);
    // alpha ~ 1 makes alpha^(omega-1) ~ 1; force the fixed stride through
    // max_skip by inverting: use alpha tiny and max_skip = stride.
    linear.alpha = 1e-9;
    core::CrossCorrelationSearch fixed(linear);
    const auto lin_result = fixed.search(probe, store);

    auto top_mean = [](const core::SearchResult& result) {
      if (result.matches.empty()) return 0.0;
      double sum = 0.0;
      for (const auto& match : result.matches) sum += match.omega;
      return sum / static_cast<double>(result.matches.size());
    };
    std::printf("  exponential: %8llu evals, top-100 corr %.4f\n",
                static_cast<unsigned long long>(
                    exp_result.stats.correlation_evals),
                top_mean(exp_result));
    std::printf("  fixed step ~%.0f: %7llu evals, top-100 corr %.4f\n",
                avg_step,
                static_cast<unsigned long long>(
                    lin_result.stats.correlation_evals),
                top_mean(lin_result));
    a1_corr_gain = top_mean(exp_result) - top_mean(lin_result);
    std::printf("  -> at matched cost the exponential window %s the fixed "
                "stride on match quality\n\n",
                top_mean(exp_result) >= top_mean(lin_result) ? "beats"
                                                             : "trails");
  }

  // --- A2: tracker re-match budget. ---
  std::printf("A2. tracker re-match scan budget (track_max_scan_offsets)\n");
  std::printf("  %-22s %12s %12s %14s\n", "budget", "detect", "lead[s]",
              "calls/100s");
  const std::size_t a2_full[] = {1u, 8u, 32u, 186u};
  const std::size_t a2_quick[] = {32u};
  const std::span<const std::size_t> a2_budgets =
      bench::quick_mode() ? std::span<const std::size_t>(a2_quick)
                          : std::span<const std::size_t>(a2_full);
  for (std::size_t budget : a2_budgets) {
    core::EmapConfig config = base;
    config.track_max_scan_offsets = budget;
    const auto outcome = evaluate(store, config, {}, patients);
    if (budget == 32) {
      a2_default_detect = outcome.detect_rate;
    }
    std::printf("  %-22zu %12.2f %12.1f %14.1f%s\n", budget,
                outcome.detect_rate, outcome.mean_lead,
                outcome.calls_per_100s,
                budget == 32 ? "   <- default (one-window lookahead)" : "");
  }
  std::printf("\n");

  // --- A3: re-call threshold H. ---
  std::printf("A3. cloud re-call threshold H\n");
  std::printf("  %-22s %12s %12s %14s\n", "H", "detect", "lead[s]",
              "calls/100s");
  const std::size_t a3_full[] = {5u, 15u, 30u, 60u};
  const std::size_t a3_quick[] = {30u};
  const std::span<const std::size_t> a3_thresholds =
      bench::quick_mode() ? std::span<const std::size_t>(a3_quick)
                          : std::span<const std::size_t>(a3_full);
  for (std::size_t h : a3_thresholds) {
    core::EmapConfig config = base;
    config.tracking_threshold_h = h;
    const auto outcome = evaluate(store, config, {}, patients);
    std::printf("  %-22zu %12.2f %12.1f %14.1f%s\n", h, outcome.detect_rate,
                outcome.mean_lead, outcome.calls_per_100s,
                h == 30 ? "   <- default" : "");
  }
  std::printf("\n");

  // --- A4: transport quantization. ---
  std::printf("A4. 16-bit wire quantization\n");
  std::printf("  %-22s %12s %12s\n", "transport", "detect", "lead[s]");
  for (bool use_transport : {true, false}) {
    core::PipelineOptions options;
    options.use_transport = use_transport;
    const auto outcome = evaluate(store, base, options, patients);
    if (use_transport) {
      a4_wire_detect = outcome.detect_rate;
    }
    std::printf("  %-22s %12.2f %12.1f\n",
                use_transport ? "16-bit wire" : "lossless", outcome.detect_rate,
                outcome.mean_lead);
  }
  std::printf("  -> the paper's 16-bit links lose essentially nothing\n\n");

  // --- A5: FFT-accelerated exhaustive search (our extension). ---
  std::printf("A5. cloud search engines (one probe, full store)\n");
  {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 62000;
    const auto input = synth::make_eval_input(spec);
    const auto filtered = bench::filter_recording(input);
    const auto probe = bench::window_at(filtered, spec.onset_sec - 40.0);

    auto top_mean = [](const core::SearchResult& result) {
      if (result.matches.empty()) return 0.0;
      double sum = 0.0;
      for (const auto& match : result.matches) sum += match.omega;
      return sum / static_cast<double>(result.matches.size());
    };
    const auto alg1 = core::CrossCorrelationSearch(base).search(probe, store);
    const auto exhaustive =
        baselines::ExhaustiveSearch(base).search(probe, store);
    const auto fft = baselines::FftSearch(base).search(probe, store);
    std::printf("  %-14s %12s %14s %16s\n", "engine", "wall[ms]",
                "multiplies", "top-100 corr");
    std::printf("  %-14s %12.1f %14llu %16.4f\n", "Algorithm 1",
                alg1.stats.wall_seconds * 1e3,
                static_cast<unsigned long long>(alg1.stats.mac_ops),
                top_mean(alg1));
    std::printf("  %-14s %12.1f %14llu %16.4f\n", "exhaustive",
                exhaustive.stats.wall_seconds * 1e3,
                static_cast<unsigned long long>(exhaustive.stats.mac_ops),
                top_mean(exhaustive));
    std::printf("  %-14s %12.1f %14llu %16.4f\n", "FFT (exact)",
                fft.stats.wall_seconds * 1e3,
                static_cast<unsigned long long>(fft.stats.mac_ops),
                top_mean(fft));
    a5_mac_reduction = static_cast<double>(exhaustive.stats.mac_ops) /
                       static_cast<double>(
                           std::max<std::uint64_t>(1, fft.stats.mac_ops));
    std::printf("  -> the FFT engine delivers exhaustive-quality matches at "
                "~%.0fx fewer multiplies than the direct exhaustive scan\n",
                a5_mac_reduction);
  }
  bench::write_headline(
      "ablation", {{"a1_exp_skip_corr_gain", a1_corr_gain},
                   {"a2_default_detect_accuracy", a2_default_detect},
                   {"a4_wire_detect_accuracy", a4_wire_detect},
                   {"a5_fft_mac_reduction_ratio", a5_mac_reduction}});
  return 0;
}
