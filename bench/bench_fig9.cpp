// Fig. 9 reproduction: timing analysis of the EMAP framework.
//
// Paper: the sensor samples 256 samples per second; the initial MDB search
// costs ~3 s (Eq. 4: Delta_EC + Delta_CS + Delta_CE); thereafter the edge
// tracks in real time (< 1 s per iteration) and re-calls the cloud roughly
// every 5 iterations, with the search overlapping ongoing tracking.
#include <cstdio>

#include "bench_util.hpp"
#include "emap/core/pipeline.hpp"

int main() {
  using namespace emap;
  // The paper-scale latency needs a paper-scale MDB (Delta_CS dominates):
  // ~11.5k signal-sets puts the calibrated cloud model at ~3 s.
  auto store = bench::load_or_build_mdb(37);

  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 3;
  const auto input = synth::make_eval_input(spec);

  core::PipelineOptions options;
  options.platform = net::CommPlatform::kLte;
  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults(), options);
  const auto result = pipeline.run(input, /*stop_at_sec=*/40.0);

  std::printf("=== Fig. 9: timing analysis ===\n");
  std::printf("MDB size: %zu signal-sets, platform: LTE\n\n",
              pipeline.cloud().store().size());
  std::printf("Eq. 4 decomposition of the initial overhead:\n");
  std::printf("  Delta_EC (upload)        = %8.4f s\n",
              result.timings.delta_ec_sec);
  std::printf("  Delta_CS (cloud search)  = %8.2f s\n",
              result.timings.delta_cs_sec);
  std::printf("  Delta_CE (download)      = %8.4f s\n",
              result.timings.delta_ce_sec);
  std::printf("  Delta_initial            = %8.2f s   (paper: ~3 s)\n\n",
              result.timings.delta_initial_sec);
  std::printf("edge tracking iteration (device model): mean %.2f s, "
              "max %.2f s   (paper: ~0.9 s, budget 1 s)\n",
              result.timings.mean_track_sec, result.timings.max_track_sec);

  // Cloud re-call cadence.
  std::size_t calls = 0;
  std::size_t tracked_iterations = 0;
  for (const auto& record : result.iterations) {
    if (record.cloud_call_issued) {
      ++calls;
    }
    if (record.tracked) {
      ++tracked_iterations;
    }
  }
  if (calls > 1) {
    std::printf("cloud re-call cadence: one call per %.1f tracked "
                "iterations   (paper: ~5)\n",
                static_cast<double>(tracked_iterations) /
                    static_cast<double>(calls));
  }

  std::printf("\nactivity timeline, first 20 s "
              "(#: busy; tracking overlaps the background cloud call):\n");
  std::printf("%s", result.trace.render_ascii(20.0, 100).c_str());

  bench::write_headline(
      "fig9", {{"delta_ec_sec", result.timings.delta_ec_sec},
               {"delta_cs_sec", result.timings.delta_cs_sec},
               {"delta_ce_sec", result.timings.delta_ce_sec},
               {"delta_initial_sec", result.timings.delta_initial_sec},
               {"mean_track_sec", result.timings.mean_track_sec},
               {"max_track_sec", result.timings.max_track_sec}});

  const bool latency_band = result.timings.delta_initial_sec > 1.5 &&
                            result.timings.delta_initial_sec < 5.0;
  const bool real_time = result.timings.mean_track_sec < 1.0;
  std::printf("\nshape check: Delta_initial in the ~3 s band -> %s; "
              "edge iteration < 1 s -> %s\n",
              latency_band ? "REPRODUCED" : "off-band",
              real_time ? "REPRODUCED" : "violated");
  return 0;
}
