// Fig. 11 reproduction: accuracy of Algorithm 1 vs the exhaustive search.
//
// Paper: over 100 normal and 100 anomalous inputs, the average
// cross-correlation of the top-100 signals found by Algorithm 1 is nearly
// identical to the exhaustive search's (loss "almost non-existent"), with
// occasional low-correlation outlier sets caused by the sliding window.
//
// Defaults are sized for a single-core CI run (store subset + fewer inputs
// per class); pass `--full` for the paper-scale sweep.
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "emap/baselines/exhaustive.hpp"
#include "emap/core/search.hpp"

namespace {

using namespace emap;

double top_mean_omega(const core::SearchResult& result) {
  if (result.matches.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& match : result.matches) {
    sum += match.omega;
  }
  return sum / static_cast<double>(result.matches.size());
}

}  // namespace

int main(int argc, char** argv) {
  // The paper's "loss is almost non-existent" claim depends on a large,
  // highly redundant database: Algorithm 1 only needs *some* near-perfect
  // match to land on its probe grid.  The full store is therefore used
  // even in the default configuration; --full raises the input count to
  // the paper's 100 per class.
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const int inputs_per_class = full ? 100 : (bench::quick_mode() ? 6 : 25);
  mdb::MdbStore store = bench::load_or_build_mdb(bench::per_corpus(26));

  const core::EmapConfig config = core::EmapConfig::paper_defaults();
  core::CrossCorrelationSearch algorithm1(config);
  baselines::ExhaustiveSearch exhaustive(config);

  std::printf("=== Fig. 11: avg top-100 cross-correlation, Algorithm 1 vs "
              "exhaustive ===\n");
  std::printf("store: %zu sets, %d inputs per class%s\n\n", store.size(),
              inputs_per_class, full ? " (--full)" : "");

  double algo1_corr_anomalous = 0.0;
  double loss_pct_anomalous = 0.0;
  for (bool anomalous : {false, true}) {
    std::printf("%s inputs:\n", anomalous ? "anomalous" : "normal");
    double sum_fast = 0.0;
    double sum_full = 0.0;
    double worst_gap = 0.0;
    int counted = 0;
    int outliers = 0;
    for (int i = 0; i < inputs_per_class; ++i) {
      synth::EvalInputSpec spec;
      spec.cls = anomalous ? synth::AnomalyClass::kSeizure
                           : synth::AnomalyClass::kNormal;
      spec.seed = 5000 + static_cast<std::uint64_t>(i) +
                  (anomalous ? 50000 : 0);
      const auto input = synth::make_eval_input(spec);
      const auto filtered = bench::filter_recording(input);
      const auto probe =
          bench::window_at(filtered, spec.onset_sec - 30.0);

      const auto fast = algorithm1.search(probe, store);
      const auto slow = exhaustive.search(probe, store);
      if (fast.matches.empty() || slow.matches.empty()) {
        continue;
      }
      const double mean_fast = top_mean_omega(fast);
      const double mean_full = top_mean_omega(slow);
      sum_fast += mean_fast;
      sum_full += mean_full;
      worst_gap = std::max(worst_gap, mean_full - mean_fast);
      if (mean_full - mean_fast > 0.05) {
        ++outliers;  // the paper's "worst set of signals" spikes
      }
      ++counted;
    }
    if (counted == 0) {
      std::printf("  (no inputs produced matches)\n");
      continue;
    }
    const double avg_fast = sum_fast / counted;
    const double avg_full = sum_full / counted;
    if (anomalous) {
      algo1_corr_anomalous = avg_fast;
      loss_pct_anomalous = (avg_full - avg_fast) / avg_full * 100.0;
    }
    std::printf("  inputs with matches: %d\n", counted);
    std::printf("  avg top-100 corr, exhaustive : %.4f\n", avg_full);
    std::printf("  avg top-100 corr, Algorithm 1: %.4f\n", avg_fast);
    std::printf("  mean loss: %.4f (%.2f%%)  worst per-input gap: %.4f  "
                "outlier inputs (>0.02): %d\n\n",
                avg_full - avg_fast, (avg_full - avg_fast) / avg_full * 100.0,
                worst_gap, outliers);
  }
  // The paper attributes its near-zero loss to "the substantially large
  // and highly redundant data-set".  Measure how the loss depends on store
  // size at our scale (spoiler: it is roughly constant here — the gap is
  // dominated by the probe grid's phase misses within each matching set,
  // so closing it needs redundancy orders of magnitude beyond this MDB, or
  // the exact FFT engine of bench_ablation A5).
  std::printf("scale sweep: Algorithm 1 loss vs MDB size\n");
  std::printf("%-10s %14s\n", "sets", "mean loss");
  const std::size_t sweep_full[] = {1000u, 2000u, 4000u, 8190u};
  const std::size_t sweep_quick[] = {500u};
  const std::span<const std::size_t> sweep =
      bench::quick_mode() ? std::span<const std::size_t>(sweep_quick)
                          : std::span<const std::size_t>(sweep_full);
  for (std::size_t limit : sweep) {
    mdb::MdbStore subset(store.info());
    for (std::size_t i = 0; i < std::min<std::size_t>(limit, store.size());
         ++i) {
      auto set = store.at(i);
      set.id = 0;
      subset.insert(std::move(set));
    }
    double loss_sum = 0.0;
    int counted = 0;
    for (int i = 0; i < (bench::quick_mode() ? 3 : 10); ++i) {
      synth::EvalInputSpec spec;
      spec.cls = synth::AnomalyClass::kSeizure;
      spec.seed = 7000 + static_cast<std::uint64_t>(i);
      const auto input = synth::make_eval_input(spec);
      const auto filtered = bench::filter_recording(input);
      const auto probe = bench::window_at(filtered, spec.onset_sec - 30.0);
      const auto fast = algorithm1.search(probe, subset);
      const auto slow = exhaustive.search(probe, subset);
      if (fast.matches.empty() || slow.matches.empty()) {
        continue;
      }
      loss_sum += top_mean_omega(slow) - top_mean_omega(fast);
      ++counted;
    }
    std::printf("%-10zu %14.4f\n", subset.size(),
                counted > 0 ? loss_sum / counted : 0.0);
  }
  std::printf("\nshape check (paper): Algorithm 1's top-100 stays close to "
              "the exhaustive search's, with low-correlation outlier sets "
              "— our gap (~5-10%%) is larger than the paper's near-zero "
              "one; see EXPERIMENTS.md for the discussion\n");
  bench::write_headline(
      "fig11", {{"algo1_avg_corr_anomalous", algo1_corr_anomalous},
                {"algo1_loss_anomalous_pct", loss_pct_anomalous}});
  return 0;
}
