// emapctl — the EMAP tool-flow driver.
//
// The paper promises an open-source tool-flow; this binary is that flow for
// the reproduction: generate corpora to EDF, build the mega-database from a
// directory of EDF files, inspect a database, and monitor a recording.
//
// Subcommands:
//   emapctl gen-corpus  <out-dir> [recordings-per-corpus]
//       Generates the five synthetic corpora as EDF files plus a labels
//       manifest (CSV: file,class,onset_sec,whole_signal).
//   emapctl build-mdb   <corpus-dir> <out.mdb>
//       Ingests every EDF listed in the manifest into a signal-set store
//       (resample -> bandpass -> slice -> label) and persists it.
//   emapctl info        <store.mdb>
//       Prints store statistics (sizes, labels, per-corpus counts).
//   emapctl monitor     <store.mdb> <input.edf> [onset_sec]
//       Runs the full pipeline on channel 0 of the EDF input and reports
//       the P_A trace and alarm.
//   emapctl synth-run   [duration_sec] [recordings-per-corpus]
//       Builds an in-memory MDB, monitors a synthetic seizure input, and
//       exercises the telemetry surface end to end (CI smoke path).
//   emapctl trace       <spans.jsonl> [flight.jsonl]
//       Reconstructs per-window critical paths from a --spans-out file
//       (plus an optional flight dump) and prints the Eq. 4 decomposition
//       table — the in-binary twin of tools/tracecat.
//
// Telemetry flags (monitor and synth-run):
//   --metrics-out <file>   write Prometheus text exposition at end of run
//   --trace-out <file>     write Chrome trace_event JSON (open in
//                          chrome://tracing or ui.perfetto.dev)
//   --summary-out <file>   append one JSONL record of headline numbers
//   --metrics-dump         print the metrics table to stdout at end of run
//   --profile-out <file>   enable the stage profiler; write the JSON
//                          profile (per-stage call/total/self-time table)
//   --flame-out <file>     enable the stage profiler; write collapsed
//                          stacks for flamegraph.pl / speedscope
//   --slo-report <file>    write the SLO summary (".csv" extension selects
//                          CSV, anything else JSON)
//
// Fault/retry flags (monitor and synth-run) — exercise the lossy-link
// recovery path (docs/fault_injection.md):
//   --fault-drop <p>       drop probability per message, both directions
//   --fault-corrupt <p>    bit-flip probability per message
//   --fault-duplicate <p>  duplicate-delivery probability
//   --fault-delay <p>      extra-delay probability
//   --fault-seed <n>       fault schedule seed (default 0x600dcafe)
//   --retry-attempts <n>   max attempts per cloud call (default 3)
//   --retry-deadline <s>   per-call cumulative wait cap (default 20 s)
//
// Robustness flags (monitor and synth-run) — the adaptive overload control
// loop (docs/robustness.md):
//   --robust-off           disable the degradation controller, breaker,
//                          watchdog, and quality gate for this run
//   --robust-report <file> write the robust summary JSON (controller
//                          states, shed levels, breaker/quality counters)
//
// Crash-recovery flags (monitor and synth-run) — crash-consistent
// checkpoint/restore (docs/robustness.md, "Crash recovery"):
//   --checkpoint-dir <dir> snapshot the session state into <dir> at window
//                          boundaries (atomic write + rename)
//   --checkpoint-interval <n>  snapshot every n completed windows
//                          (default 1)
//   --resume               restore from <dir>'s snapshot at run start and
//                          replay from the first un-checkpointed window
//   --crash-at <point[:n]> die (exit code 42, no destructors) at the n-th
//                          hit of the named crash point; names come from
//                          robust::crash_point_catalog()
//
// Tracing flags (monitor and synth-run) — causal tracing + flight recorder
// (docs/tracing.md):
//   --spans-out <file>     write the span log as JSONL (one span per line,
//                          trace ids included; input for `emapctl trace`)
//   --flight-out <file>    arm the flight recorder; dumps here on a crash
//                          point, breaker open, or SLO burn page, and at
//                          end of run when nothing else triggered
//   --edge-slowdown <f>    divide the edge device throughput by f (> 1
//                          forces edge SLO misses; CI uses it to provoke
//                          a flight dump deterministically)
//
// Streaming flags (monitor and synth-run) — the staged concurrent
// scheduler (docs/streaming.md):
//   --stream               run on the threaded stage graph (supervised
//                          stage threads over bounded queues) instead of
//                          the single-threaded virtual-time batch loop
//   --stage-threads <n>    uplink worker threads = max overlapping cloud
//                          calls (default 2)
//   --queue-capacity <n>   bound of every stage queue (default 8; rounded
//                          up to a power of two)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "emap/common/build_info.hpp"
#include "emap/common/error.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/core/stream.hpp"
#include "emap/dsp/montage.hpp"
#include "emap/dsp/resample.hpp"
#include "emap/edf/edf.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/obs/alert.hpp"
#include "emap/obs/dashboard.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/profiler.hpp"
#include "emap/obs/slo.hpp"
#include "emap/obs/tracecat.hpp"
#include "emap/robust/robust.hpp"
#include "emap/sim/device.hpp"
#include "emap/synth/corpus.hpp"

namespace {

using namespace emap;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  emapctl gen-corpus <out-dir> [recordings-per-corpus]\n"
      "  emapctl build-mdb  <corpus-dir> <out.mdb>\n"
      "  emapctl info       <store.mdb>\n"
      "  emapctl monitor    <store.mdb> <input.edf> [onset_sec] "
      "[telemetry flags]\n"
      "  emapctl synth-run  [duration_sec] [recordings-per-corpus] "
      "[telemetry flags]\n"
      "  emapctl trace      <spans.jsonl> [flight.jsonl]\n"
      "  emapctl report     <series.jsonl> [--alerts <alerts.jsonl>] "
      "[--html <out.html>]\n"
      "telemetry flags: --metrics-out <file> --trace-out <file> "
      "--summary-out <file> --metrics-dump\n"
      "profiling flags: --profile-out <file> --flame-out <file> "
      "--slo-report <file>\n"
      "series flags:    --series-out <file> --alerts-out <file> "
      "--scrape-interval <sec> --alert-rules <file>\n"
      "fault flags:     --fault-drop <p> --fault-corrupt <p> "
      "--fault-duplicate <p> --fault-delay <p> --fault-seed <n>\n"
      "retry flags:     --retry-attempts <n> --retry-deadline <sec>\n"
      "robust flags:    --robust-off --robust-report <file>\n"
      "recovery flags:  --checkpoint-dir <dir> --checkpoint-interval <n> "
      "--resume --crash-at <point[:n]>\n"
      "tracing flags:   --spans-out <file> --flight-out <file> "
      "--edge-slowdown <factor>\n"
      "streaming flags: --stream --stage-threads <n> "
      "--queue-capacity <n> --drain-timeout <sec>\n");
  return 2;
}

/// Output switches of the telemetry surface plus the fault/retry model,
/// shared by `monitor` and `synth-run`.
struct TelemetryOptions {
  std::string metrics_out;
  std::string trace_out;
  std::string summary_out;
  std::string profile_out;
  std::string flame_out;
  std::string slo_report;
  std::string robust_report;
  bool metrics_dump = false;
  bool robust_off = false;
  net::FaultOptions fault;
  net::RetryOptions retry;
  std::string checkpoint_dir;
  std::size_t checkpoint_interval = 1;
  bool resume = false;
  std::string crash_at;  ///< "point" or "point:n" (1-based hit)
  std::string spans_out;
  std::string flight_out;
  double edge_slowdown = 1.0;  ///< > 1 divides edge device throughput
  std::string series_out;      ///< time-series JSONL (enables scraping)
  std::string alerts_out;      ///< alert-transition JSONL
  double scrape_interval_sec = 1.0;
  std::string alert_rules;     ///< rule file; empty = default rules
  bool stream = false;         ///< threaded stage graph instead of batch
  std::size_t stage_threads = 2;
  std::size_t queue_capacity = 8;
  /// Wall-clock budget for settling in-flight cloud calls at a streamed
  /// checkpoint before they fall back to to-replay entries.
  double drain_timeout_sec = 1.0;
};

/// Extracts telemetry and fault/retry flags from (argc, argv), leaving only
/// positional arguments behind.  Returns false on a malformed flag.
bool extract_telemetry_flags(int& argc, char** argv,
                             TelemetryOptions& telemetry) {
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take_value = [&](std::string& slot) {
      if (i + 1 >= argc) {
        return false;
      }
      slot = argv[++i];
      return true;
    };
    auto take_double = [&](auto setter) {
      if (i + 1 >= argc) {
        return false;
      }
      setter(std::atof(argv[++i]));
      return true;
    };
    if (arg == "--metrics-out") {
      if (!take_value(telemetry.metrics_out)) return false;
    } else if (arg == "--trace-out") {
      if (!take_value(telemetry.trace_out)) return false;
    } else if (arg == "--summary-out") {
      if (!take_value(telemetry.summary_out)) return false;
    } else if (arg == "--profile-out") {
      if (!take_value(telemetry.profile_out)) return false;
    } else if (arg == "--flame-out") {
      if (!take_value(telemetry.flame_out)) return false;
    } else if (arg == "--slo-report") {
      if (!take_value(telemetry.slo_report)) return false;
    } else if (arg == "--metrics-dump") {
      telemetry.metrics_dump = true;
    } else if (arg == "--robust-off") {
      telemetry.robust_off = true;
    } else if (arg == "--robust-report") {
      if (!take_value(telemetry.robust_report)) return false;
    } else if (arg == "--fault-drop") {
      if (!take_double([&](double p) {
            telemetry.fault.up.drop = telemetry.fault.down.drop = p;
          }))
        return false;
    } else if (arg == "--fault-corrupt") {
      if (!take_double([&](double p) {
            telemetry.fault.up.corrupt = telemetry.fault.down.corrupt = p;
          }))
        return false;
    } else if (arg == "--fault-duplicate") {
      if (!take_double([&](double p) {
            telemetry.fault.up.duplicate = telemetry.fault.down.duplicate = p;
          }))
        return false;
    } else if (arg == "--fault-delay") {
      if (!take_double([&](double p) {
            telemetry.fault.up.delay = telemetry.fault.down.delay = p;
          }))
        return false;
    } else if (arg == "--fault-seed") {
      if (!take_double([&](double seed) {
            telemetry.fault.seed = static_cast<std::uint64_t>(seed);
          }))
        return false;
    } else if (arg == "--retry-attempts") {
      if (!take_double([&](double n) {
            telemetry.retry.max_attempts = static_cast<std::size_t>(n);
          }))
        return false;
    } else if (arg == "--retry-deadline") {
      if (!take_double(
              [&](double sec) { telemetry.retry.deadline_sec = sec; }))
        return false;
    } else if (arg == "--checkpoint-dir") {
      if (!take_value(telemetry.checkpoint_dir)) return false;
    } else if (arg == "--checkpoint-interval") {
      if (!take_double([&](double n) {
            telemetry.checkpoint_interval = static_cast<std::size_t>(n);
          }))
        return false;
    } else if (arg == "--resume") {
      telemetry.resume = true;
    } else if (arg == "--crash-at") {
      if (!take_value(telemetry.crash_at)) return false;
    } else if (arg == "--spans-out") {
      if (!take_value(telemetry.spans_out)) return false;
    } else if (arg == "--flight-out") {
      if (!take_value(telemetry.flight_out)) return false;
    } else if (arg == "--edge-slowdown") {
      if (!take_double(
              [&](double factor) { telemetry.edge_slowdown = factor; }))
        return false;
    } else if (arg == "--series-out") {
      if (!take_value(telemetry.series_out)) return false;
    } else if (arg == "--alerts-out") {
      if (!take_value(telemetry.alerts_out)) return false;
    } else if (arg == "--scrape-interval") {
      if (!take_double(
              [&](double sec) { telemetry.scrape_interval_sec = sec; }))
        return false;
    } else if (arg == "--alert-rules") {
      if (!take_value(telemetry.alert_rules)) return false;
    } else if (arg == "--stream") {
      telemetry.stream = true;
    } else if (arg == "--stage-threads") {
      if (!take_double([&](double n) {
            telemetry.stage_threads = static_cast<std::size_t>(n);
          }))
        return false;
    } else if (arg == "--queue-capacity") {
      if (!take_double([&](double n) {
            telemetry.queue_capacity = static_cast<std::size_t>(n);
          }))
        return false;
    } else if (arg == "--drain-timeout") {
      if (!take_double(
              [&](double sec) { telemetry.drain_timeout_sec = sec; }))
        return false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "emapctl: unknown flag %s\n", arg.c_str());
      return false;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return true;
}

/// Applies the checkpoint/crash flags.  The crash registry lives in the
/// caller's frame; an armed point fires as a hard process exit (code 42,
/// no destructors) so the CI harness kill-and-resumes like a real crash.
/// Returns false on an unknown crash-point name.
bool apply_recovery_flags(const TelemetryOptions& telemetry,
                          core::PipelineOptions& options,
                          robust::CrashPointRegistry& crashpoints) {
  if (!telemetry.checkpoint_dir.empty()) {
    options.recovery.checkpoint_dir = telemetry.checkpoint_dir;
    options.recovery.interval_windows = telemetry.checkpoint_interval;
    options.recovery.resume = telemetry.resume;
  }
  if (!telemetry.crash_at.empty()) {
    robust::CrashSchedule schedule;
    schedule.point = telemetry.crash_at;
    const std::size_t colon = schedule.point.find(':');
    if (colon != std::string::npos) {
      schedule.hit = static_cast<std::uint64_t>(
          std::atoll(schedule.point.c_str() + colon + 1));
      schedule.point.resize(colon);
    }
    const auto& catalog = robust::crash_point_catalog();
    if (std::find(catalog.begin(), catalog.end(), schedule.point) ==
        catalog.end()) {
      std::fprintf(stderr, "emapctl: unknown crash point '%s'\n",
                   schedule.point.c_str());
      return false;
    }
    crashpoints.arm(std::move(schedule), robust::CrashAction::kExit);
    options.crashpoints = &crashpoints;
  }
  return true;
}

/// Applies the tracing flags: arms the flight recorder (the pipeline also
/// forwards it to the channel and crash-point registry) and slows the edge
/// device model by --edge-slowdown, which pushes track steps past the 1 s
/// budget — the deterministic way to provoke an SLO burn page and hence a
/// flight dump.  Returns the recorder the run uses, or nullptr when no
/// --flight-out was requested.
obs::FlightRecorder* apply_tracing_flags(const TelemetryOptions& telemetry,
                                         core::PipelineOptions& options,
                                         obs::FlightRecorder& flight) {
  if (telemetry.edge_slowdown > 1.0) {
    sim::DeviceProfile edge = sim::edge_raspberry_pi();
    edge.name += "-slowed";
    edge.mac_ops_per_sec /= telemetry.edge_slowdown;
    edge.abs_ops_per_sec /= telemetry.edge_slowdown;
    edge.per_signal_overhead_sec *= telemetry.edge_slowdown;
    options.edge_device = edge;
  }
  if (telemetry.flight_out.empty()) {
    return nullptr;
  }
  flight.set_dump_path(telemetry.flight_out);
  options.flight = &flight;
  return &flight;
}

/// Applies the time-series/alerting flags: any of --series-out or
/// --alerts-out turns scraping on; --alert-rules replaces the default
/// rule set.  Returns false on an unparseable rule file.
bool apply_timeseries_flags(const TelemetryOptions& telemetry,
                            core::PipelineOptions& options) {
  if (telemetry.series_out.empty() && telemetry.alerts_out.empty()) {
    return true;
  }
  options.timeseries.enabled = true;
  options.timeseries.scrape_interval_sec = telemetry.scrape_interval_sec;
  if (!telemetry.alert_rules.empty()) {
    std::string error;
    options.alert_rules = obs::load_alert_rules(telemetry.alert_rules, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "emapctl: %s\n", error.c_str());
      return false;
    }
  }
  return true;
}

/// Runs `input` through the pipeline on the scheduler the flags selected:
/// the default single-threaded virtual-time batch loop, or (--stream) the
/// threaded stage graph with --stage-threads uplink workers and
/// --queue-capacity bounded queues (docs/streaming.md).
core::RunResult run_scheduled(const TelemetryOptions& telemetry,
                              core::EmapPipeline& pipeline,
                              const synth::Recording& input) {
  if (!telemetry.stream) {
    return pipeline.run(input);
  }
  core::StreamOptions stream_options;
  stream_options.mode = core::SchedulerMode::kThreaded;
  stream_options.stage_threads = telemetry.stage_threads;
  stream_options.queue_capacity = telemetry.queue_capacity;
  stream_options.drain_timeout_sec = telemetry.drain_timeout_sec;
  std::printf("streaming: threaded scheduler, %zu uplink worker(s), "
              "queue capacity %zu\n",
              stream_options.stage_threads, stream_options.queue_capacity);
  if (!telemetry.checkpoint_dir.empty()) {
    std::printf("streaming checkpoints: every %zu window(s) into %s "
                "(drain timeout %.2f s)%s\n",
                telemetry.checkpoint_interval,
                telemetry.checkpoint_dir.c_str(),
                stream_options.drain_timeout_sec,
                telemetry.resume ? ", resuming" : "");
  }
  core::StreamPipeline stream(pipeline, stream_options);
  return stream.run(input);
}

/// After a streamed run: the supervisor scoreboard and the per-queue
/// occupancy columns (the same numbers --robust-report exports as
/// stage_*/q_* fields).
void print_stream_summary(const core::RunResult& result) {
  if (!result.robust.streamed) {
    return;
  }
  std::printf("stream supervisor: stalls=%zu restarts=%zu crashes=%zu\n",
              result.robust.supervisor_stalls,
              result.robust.supervisor_restarts,
              result.robust.supervisor_crashes);
  for (const auto& row : result.robust.stages) {
    if (row.queue.empty()) {
      continue;
    }
    std::printf("  queue %-9s depth max %llu/%llu  pushed %llu  "
                "shed %llu\n",
                row.queue.c_str(),
                static_cast<unsigned long long>(row.queue_max_depth),
                static_cast<unsigned long long>(row.queue_capacity),
                static_cast<unsigned long long>(row.queue_pushed),
                static_cast<unsigned long long>(row.queue_shed));
  }
  const auto& recovery = result.robust.recovery;
  if (recovery.enabled) {
    std::printf("stream checkpoints: written=%llu last_window=%llu "
                "drain_timeouts=%llu replay_recorded=%llu aborts=%llu%s%s\n",
                static_cast<unsigned long long>(recovery.checkpoints_written),
                static_cast<unsigned long long>(recovery.last_snapshot_window),
                static_cast<unsigned long long>(recovery.drain_timeouts),
                static_cast<unsigned long long>(recovery.replay_recorded),
                static_cast<unsigned long long>(recovery.snapshot_aborts),
                recovery.emergency_snapshot ? " (emergency)" : "",
                recovery.resumed ? " (resumed)" : "");
  }
}

/// Turns on the global stage profiler when any profiling output was
/// requested.  Must run before the pipeline so the hot-path hooks record.
void maybe_enable_profiler(const TelemetryOptions& telemetry) {
  if (!telemetry.profile_out.empty() || !telemetry.flame_out.empty()) {
    obs::Profiler::set_enabled(true);
  }
}

/// Writes the requested telemetry outputs after a monitored run.
void emit_telemetry(const TelemetryOptions& telemetry,
                    obs::MetricsRegistry& registry,
                    const core::RunResult& result,
                    obs::FlightRecorder* flight = nullptr) {
  if (!telemetry.metrics_out.empty()) {
    if (obs::Profiler::enabled()) {
      obs::export_profiler_alloc_metrics(registry, obs::Profiler::instance());
    }
    obs::write_prometheus(telemetry.metrics_out, registry);
    std::printf("metrics -> %s\n", telemetry.metrics_out.c_str());
  }
  if (!telemetry.profile_out.empty()) {
    obs::write_profile_json(telemetry.profile_out,
                            obs::Profiler::instance());
    std::printf("profile -> %s\n", telemetry.profile_out.c_str());
  }
  if (!telemetry.flame_out.empty()) {
    obs::write_collapsed_stacks(telemetry.flame_out,
                                obs::Profiler::instance());
    std::printf("flame   -> %s (feed to flamegraph.pl or speedscope)\n",
                telemetry.flame_out.c_str());
  }
  if (!telemetry.slo_report.empty()) {
    obs::write_slo_report(telemetry.slo_report, result.slo);
    std::printf("slo     -> %s\n", telemetry.slo_report.c_str());
  }
  if (!telemetry.robust_report.empty()) {
    robust::write_robust_summary(telemetry.robust_report, result.robust);
    std::printf("robust  -> %s\n", telemetry.robust_report.c_str());
  }
  if (!telemetry.trace_out.empty() && result.tracer != nullptr) {
    obs::write_chrome_trace(telemetry.trace_out, *result.tracer);
    std::printf("trace   -> %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                telemetry.trace_out.c_str());
  }
  if (!telemetry.spans_out.empty() && result.tracer != nullptr) {
    obs::write_spans_jsonl(telemetry.spans_out, *result.tracer);
    std::printf("spans   -> %s (feed to tracecat or 'emapctl trace')\n",
                telemetry.spans_out.c_str());
  }
  if (!telemetry.series_out.empty() && result.series != nullptr) {
    result.series->write_jsonl(telemetry.series_out);
    std::printf("series  -> %s (%llu scrape(s); feed to emapreport or "
                "'emapctl report')\n",
                telemetry.series_out.c_str(),
                static_cast<unsigned long long>(result.series->scrapes()));
  }
  if (!telemetry.alerts_out.empty() && result.alerts != nullptr) {
    result.alerts->write_jsonl(telemetry.alerts_out);
    std::printf("alerts  -> %s (%zu transition(s))\n",
                telemetry.alerts_out.c_str(),
                result.alerts->transitions().size());
  }
  if (flight != nullptr) {
    // A breaker/SLO/crash trigger already wrote the interesting dump; only
    // dump at end of run when nothing else did, so that file survives.
    if (flight->dumps_written() == 0) {
      flight->trigger_dump("run_end");
    }
    std::printf("flight  -> %s (%llu dump(s))\n",
                telemetry.flight_out.c_str(),
                static_cast<unsigned long long>(flight->dumps_written()));
  }
  if (telemetry.metrics_dump) {
    std::printf("\n%s", obs::metrics_table(registry).c_str());
  }
}

/// One JSONL record of the run's headline numbers.
std::string run_summary_line(const std::string& run_name,
                             const core::RunResult& result,
                             double duration_sec) {
  obs::JsonWriter json;
  json.field("run", run_name)
      .field("git_sha", std::string(build_info::kGitSha))
      .field("build_type", std::string(build_info::kBuildType))
      .field("duration_sec", duration_sec)
      .field("windows", static_cast<std::uint64_t>(result.iterations.size()))
      .field("cloud_calls", static_cast<std::uint64_t>(result.cloud_calls))
      .field("delta_ec_sec", result.timings.delta_ec_sec)
      .field("delta_cs_sec", result.timings.delta_cs_sec)
      .field("delta_ce_sec", result.timings.delta_ce_sec)
      .field("delta_initial_sec", result.timings.delta_initial_sec)
      .field("mean_track_sec", result.timings.mean_track_sec)
      .field("max_track_sec", result.timings.max_track_sec)
      .field("anomaly_predicted", result.anomaly_predicted)
      .field("first_alarm_sec", result.first_alarm_sec)
      .field("failed_cloud_calls",
             static_cast<std::uint64_t>(result.failed_cloud_calls))
      .field("retry_attempts",
             static_cast<std::uint64_t>(result.retry_attempts))
      .field("duplicates_discarded",
             static_cast<std::uint64_t>(result.duplicates_discarded))
      .field("degraded", result.degraded)
      .field("robust_enabled", result.robust.enabled)
      .field("robust_entered_degraded",
             result.robust.degrade.entered_degraded)
      .field("robust_final_state",
             std::string(robust::degrade_state_name(
                 result.robust.degrade.final_state)));
  // Final P_A plus the recovery outcome: the CI crash-recovery matrix
  // diffs these fields between a crashed-then-resumed run and an
  // uninterrupted one.
  const auto pa = result.pa_history();
  json.field("final_pa", pa.empty() ? 0.0 : pa.back())
      .field("robust_recovered", result.robust.recovery.resumed)
      .field("recovery_resume_window",
             static_cast<std::uint64_t>(result.robust.recovery.resume_window))
      .field("recovery_checkpoints_written",
             static_cast<std::uint64_t>(
                 result.robust.recovery.checkpoints_written))
      .field("recovery_cold_start_fallback",
             result.robust.recovery.cold_start_fallback);
  for (const auto& slo : result.slo) {
    json.field("slo_" + slo.name + "_deadline_misses",
               static_cast<std::uint64_t>(slo.deadline_misses));
  }
  return json.str();
}

edf::EdfFile to_edf(const synth::Recording& recording) {
  edf::EdfFile file;
  file.sample_rate_hz = recording.fs();
  // EDF stores an integer number of samples per data record; non-integer
  // rates (UCI's 173.61 Hz) need a longer record duration.
  for (double duration : {1.0, 2.0, 4.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    const double spr = recording.fs() * duration;
    if (std::abs(spr - std::round(spr)) < 1e-6) {
      file.record_duration_sec = duration;
      break;
    }
  }
  file.recording_id = std::string("Startdate 01-JAN-2020 emap-synth ") +
                      synth::anomaly_name(recording.spec.cls);
  edf::EdfChannel channel;
  channel.label = "EEG synth";
  channel.physical_min = -400.0;
  channel.physical_max = 400.0;
  channel.samples = recording.samples;
  file.channels.push_back(std::move(channel));
  return file;
}

int cmd_gen_corpus(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const std::filesystem::path out_dir = argv[0];
  const std::size_t per_corpus =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  std::filesystem::create_directories(out_dir);

  std::ofstream manifest(out_dir / "manifest.csv");
  manifest << "file,corpus,native_fs,class,onset_sec,whole_signal\n";
  std::size_t written = 0;
  for (const auto& corpus : synth::standard_corpora(per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      const auto& recording = recordings[i];
      std::ostringstream name;
      name << corpus.name << "_" << i << ".edf";
      edf::write_edf(out_dir / name.str(), to_edf(recording));
      manifest << name.str() << ',' << corpus.name << ','
               << corpus.native_fs_hz << ','
               << synth::anomaly_name(recording.spec.cls) << ','
               << recording.spec.onset_sec << ','
               << (recording.spec.whole_signal_label ? 1 : 0) << "\n";
      ++written;
    }
    std::printf("corpus %-18s -> %zu recordings at %.2f Hz\n",
                corpus.name.c_str(), recordings.size(),
                corpus.native_fs_hz);
  }
  std::printf("wrote %zu EDF files + manifest.csv to %s\n", written,
              out_dir.c_str());
  return 0;
}

struct ManifestRow {
  std::string file;
  std::string corpus;
  synth::AnomalyClass cls = synth::AnomalyClass::kNormal;
  double onset_sec = 0.0;
  bool whole_signal = false;
};

std::vector<ManifestRow> read_manifest(const std::filesystem::path& dir) {
  std::ifstream stream(dir / "manifest.csv");
  if (!stream) {
    throw IoError("cannot open manifest.csv in " + dir.string());
  }
  std::vector<ManifestRow> rows;
  std::string line;
  std::getline(stream, line);  // header
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    ManifestRow row;
    std::string cls;
    std::string fs;
    std::string onset;
    std::string whole;
    std::getline(fields, row.file, ',');
    std::getline(fields, row.corpus, ',');
    std::getline(fields, fs, ',');
    std::getline(fields, cls, ',');
    std::getline(fields, onset, ',');
    std::getline(fields, whole, ',');
    row.cls = synth::anomaly_from_name(cls);
    row.onset_sec = std::atof(onset.c_str());
    row.whole_signal = whole == "1";
    rows.push_back(std::move(row));
  }
  return rows;
}

int cmd_build_mdb(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::filesystem::path dir = argv[0];
  const std::filesystem::path out = argv[1];
  const auto rows = read_manifest(dir);

  mdb::MdbBuilder builder;
  std::uint32_t recording_index = 0;
  for (const auto& row : rows) {
    const bool anomalous_recording = row.cls != synth::AnomalyClass::kNormal;
    // Label function mirroring the corpora's annotation policies.
    const double anomalous_from =
        row.whole_signal
            ? 0.0
            : std::max(0.0, row.onset_sec -
                                synth::Morphology::kProdromeSeconds);
    auto label_at = [anomalous_recording, anomalous_from](double t) {
      return anomalous_recording && t >= anomalous_from;
    };
    builder.add_edf(dir / row.file, row.corpus, recording_index++, label_at,
                    static_cast<std::uint8_t>(row.cls));
  }
  auto store = builder.take_store();
  store.save(out);
  std::printf("built %s: %zu signal-sets (%zu anomalous) from %zu EDF "
              "files\n",
              out.c_str(), store.size(), store.count_anomalous(),
              rows.size());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const auto store = mdb::MdbStore::load(argv[0]);
  std::printf("store: %s\n", argv[0]);
  std::printf("  base rate     : %.2f Hz\n", store.info().base_fs_hz);
  std::printf("  slice length  : %u samples\n", store.info().slice_length);
  std::printf("  signal-sets   : %zu\n", store.size());
  std::printf("  anomalous     : %zu (%.1f%%)\n", store.count_anomalous(),
              store.empty() ? 0.0
                            : 100.0 * static_cast<double>(
                                          store.count_anomalous()) /
                                  static_cast<double>(store.size()));
  std::map<std::string, std::size_t> per_source;
  std::map<int, std::size_t> per_class;
  for (const auto& set : store.all()) {
    ++per_source[set.source];
    ++per_class[set.class_tag];
  }
  std::printf("  per corpus    :\n");
  for (const auto& [source, count] : per_source) {
    std::printf("    %-20s %zu\n", source.c_str(), count);
  }
  std::printf("  per class tag :\n");
  for (const auto& [tag, count] : per_class) {
    std::printf("    %-20s %zu\n",
                synth::anomaly_name(static_cast<synth::AnomalyClass>(tag)),
                count);
  }
  return 0;
}

int cmd_monitor(int argc, char** argv) {
  TelemetryOptions telemetry;
  if (!extract_telemetry_flags(argc, argv, telemetry)) {
    return usage();
  }
  if (argc < 2) {
    return usage();
  }
  auto store = mdb::MdbStore::load(argv[0]);
  const auto file = edf::read_edf(argv[1]);
  require(!file.channels.empty(), "monitor: EDF has no channels");
  const double onset =
      argc > 2 ? std::atof(argv[2]) : -1.0;

  // Pick the electrode with the strongest 11-40 Hz content (the EMAP
  // passband) and wrap it as a recording at the base rate.
  dsp::ChannelBlock block;
  for (const auto& channel : file.channels) {
    block.push_back(channel.samples);
  }
  const std::size_t picked =
      dsp::pick_channel(block, dsp::ChannelPick::kMaxBandPower,
                        file.sample_rate_hz);
  std::printf("monitoring channel %zu/%zu ('%s')\n", picked + 1,
              file.channels.size(), file.channels[picked].label.c_str());
  synth::Recording input;
  input.spec.fs = 256.0;
  input.spec.cls = synth::AnomalyClass::kNormal;  // unknown; labels unused
  input.spec.duration_sec =
      static_cast<double>(file.channels[picked].samples.size()) /
      file.sample_rate_hz;
  input.samples = dsp::resample(file.channels[picked].samples,
                                file.sample_rate_hz, 256.0);

  maybe_enable_profiler(telemetry);
  obs::MetricsRegistry registry;
  core::PipelineOptions pipeline_options;
  pipeline_options.metrics = &registry;
  pipeline_options.fault = telemetry.fault;
  pipeline_options.retry = telemetry.retry;
  pipeline_options.robust.enabled = !telemetry.robust_off;
  robust::CrashPointRegistry crashpoints;
  if (!apply_recovery_flags(telemetry, pipeline_options, crashpoints) ||
      !apply_timeseries_flags(telemetry, pipeline_options)) {
    return usage();
  }
  obs::FlightRecorder flight_recorder;
  obs::FlightRecorder* flight =
      apply_tracing_flags(telemetry, pipeline_options, flight_recorder);
  // The streaming scheduler reads stop_at_sec from the pipeline options
  // (it has no per-run override), so fold the onset in before running.
  if (telemetry.stream) {
    pipeline_options.stop_at_sec = onset > 0.0 ? onset : -1.0;
  }
  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults(),
                              pipeline_options);
  const auto result = telemetry.stream
                          ? run_scheduled(telemetry, pipeline, input)
                          : pipeline.run(input, onset > 0.0 ? onset : -1.0);
  if (result.robust.recovery.resumed) {
    std::printf("resumed from checkpoint at window %zu\n",
                static_cast<std::size_t>(
                    result.robust.recovery.resume_window));
  }

  std::printf("monitored %.0f s; cloud calls: %zu; Delta_initial %.2f s\n",
              input.spec.duration_sec, result.cloud_calls,
              result.timings.delta_initial_sec);
  if (result.degraded) {
    std::printf("link degraded: %zu cloud calls failed after %zu retries\n",
                result.failed_cloud_calls, result.retry_attempts);
  }
  if (result.robust.enabled && result.robust.degrade.entered_degraded) {
    std::printf("overload handled: max shed level %zu, final state %s\n",
                result.robust.degrade.max_shed_level,
                robust::degrade_state_name(result.robust.degrade.final_state));
  }
  print_stream_summary(result);
  for (std::size_t i = 0; i < result.iterations.size(); i += 15) {
    const auto& record = result.iterations[i];
    if (record.tracked) {
      std::printf("  t=%5.0f  P_A=%.2f  tracked=%zu\n", record.t_sec,
                  record.anomaly_probability, record.tracked_after);
    }
  }
  if (result.anomaly_predicted) {
    std::printf("ANOMALY PREDICTED at t=%.0f s%s\n", result.first_alarm_sec,
                onset > 0.0 ? " (before the provided onset)" : "");
  } else {
    std::printf("no anomaly predicted\n");
  }
  if (!telemetry.summary_out.empty()) {
    obs::append_jsonl_line(
        telemetry.summary_out,
        run_summary_line("monitor", result, input.spec.duration_sec));
    std::printf("summary -> %s\n", telemetry.summary_out.c_str());
  }
  emit_telemetry(telemetry, registry, result, flight);
  return 0;
}

int cmd_synth_run(int argc, char** argv) {
  TelemetryOptions telemetry;
  if (!extract_telemetry_flags(argc, argv, telemetry)) {
    return usage();
  }
  const double duration_sec =
      argc > 0 ? std::atof(argv[0]) : 30.0;
  const std::size_t per_corpus =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  require(duration_sec >= 2.0, "synth-run: duration must be >= 2 s");
  require(per_corpus >= 1, "synth-run: need >= 1 recording per corpus");

  std::printf("building in-memory MDB (%zu recordings/corpus)...\n",
              per_corpus);
  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  auto store = builder.take_store();
  std::printf("MDB ready: %zu signal-sets (%zu anomalous)\n", store.size(),
              store.count_anomalous());

  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 11;
  spec.duration_sec = duration_sec;
  spec.onset_sec = duration_sec * 0.75;
  const auto input = synth::make_eval_input(spec);

  maybe_enable_profiler(telemetry);
  obs::MetricsRegistry registry;
  core::PipelineOptions options;
  options.metrics = &registry;
  options.fault = telemetry.fault;
  options.retry = telemetry.retry;
  options.robust.enabled = !telemetry.robust_off;
  robust::CrashPointRegistry crashpoints;
  if (!apply_recovery_flags(telemetry, options, crashpoints) ||
      !apply_timeseries_flags(telemetry, options)) {
    return usage();
  }
  obs::FlightRecorder flight_recorder;
  obs::FlightRecorder* flight =
      apply_tracing_flags(telemetry, options, flight_recorder);
  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults(), options);
  const auto result = run_scheduled(telemetry, pipeline, input);
  if (result.robust.recovery.resumed) {
    std::printf("resumed from checkpoint at window %zu\n",
                static_cast<std::size_t>(
                    result.robust.recovery.resume_window));
  }

  std::printf("monitored %.0f s; cloud calls: %zu; Delta_initial %.3f s; "
              "mean edge iteration %.3f s\n",
              duration_sec, result.cloud_calls,
              result.timings.delta_initial_sec,
              result.timings.mean_track_sec);
  if (result.degraded) {
    std::printf("link degraded: %zu cloud calls failed after %zu retries\n",
                result.failed_cloud_calls, result.retry_attempts);
  }
  if (result.robust.enabled && result.robust.degrade.entered_degraded) {
    std::printf("overload handled: max shed level %zu, final state %s\n",
                result.robust.degrade.max_shed_level,
                robust::degrade_state_name(result.robust.degrade.final_state));
  }
  print_stream_summary(result);
  std::printf(result.anomaly_predicted ? "ANOMALY PREDICTED at t=%.0f s\n"
                                       : "no alarm (t=%.0f)\n",
              result.first_alarm_sec);

  if (!telemetry.summary_out.empty()) {
    obs::append_jsonl_line(telemetry.summary_out,
                           run_summary_line("synth-run", result,
                                            duration_sec));
    std::printf("summary -> %s\n", telemetry.summary_out.c_str());
  }
  emit_telemetry(telemetry, registry, result, flight);
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const auto spans = obs::load_spans_jsonl(argv[0]);
  std::vector<obs::ParsedFlightEvent> events;
  if (argc > 1) {
    const auto flight = obs::load_flight_jsonl(argv[1]);
    events = flight.events;
    if (!flight.dump_reason.empty()) {
      std::printf("flight dump reason: %s\n", flight.dump_reason.c_str());
    }
    if (flight.skipped_lines > 0) {
      std::printf("flight: skipped %zu malformed line(s)\n",
                  flight.skipped_lines);
    }
  }
  if (spans.skipped_lines > 0) {
    std::printf("spans: skipped %zu malformed line(s)\n",
                spans.skipped_lines);
  }
  const auto paths = obs::build_critical_paths(spans.spans, events);
  std::fputs(obs::critical_path_table(paths).c_str(), stdout);
  return 0;
}

int cmd_report(int argc, char** argv) {
  std::string series_path;
  std::string alerts_path;
  std::string html_path;
  obs::ReportOptions report;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--alerts") {
      const char* v = value();
      if (v == nullptr) return usage();
      alerts_path = v;
    } else if (arg == "--html") {
      const char* v = value();
      if (v == nullptr) return usage();
      html_path = v;
    } else if (arg == "--series-filter") {
      const char* v = value();
      if (v == nullptr) return usage();
      report.series_filter = v;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (series_path.empty()) {
      series_path = arg;
    } else {
      return usage();
    }
  }
  if (series_path.empty()) {
    return usage();
  }
  const auto series = obs::load_series_jsonl(series_path);
  obs::AlertLoadResult alerts;
  if (!alerts_path.empty()) {
    alerts = obs::load_alerts_jsonl(alerts_path);
  }
  std::fputs(obs::render_ascii_report(series, alerts, report).c_str(),
             stdout);
  if (!html_path.empty()) {
    std::ofstream html(html_path);
    require(static_cast<bool>(html), "report: cannot write the HTML output");
    html << obs::render_html_report(series, alerts, report);
    std::printf("\nhtml report -> %s\n", html_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  try {
    if (std::strcmp(argv[1], "gen-corpus") == 0) {
      return cmd_gen_corpus(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "build-mdb") == 0) {
      return cmd_build_mdb(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "info") == 0) {
      return cmd_info(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "monitor") == 0) {
      return cmd_monitor(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "synth-run") == 0) {
      return cmd_synth_run(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "trace") == 0) {
      return cmd_trace(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "report") == 0) {
      return cmd_report(argc - 2, argv + 2);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "emapctl: %s\n", error.what());
    return 1;
  }
  return usage();
}
