// emapctl — the EMAP tool-flow driver.
//
// The paper promises an open-source tool-flow; this binary is that flow for
// the reproduction: generate corpora to EDF, build the mega-database from a
// directory of EDF files, inspect a database, and monitor a recording.
//
// Subcommands:
//   emapctl gen-corpus  <out-dir> [recordings-per-corpus]
//       Generates the five synthetic corpora as EDF files plus a labels
//       manifest (CSV: file,class,onset_sec,whole_signal).
//   emapctl build-mdb   <corpus-dir> <out.mdb>
//       Ingests every EDF listed in the manifest into a signal-set store
//       (resample -> bandpass -> slice -> label) and persists it.
//   emapctl info        <store.mdb>
//       Prints store statistics (sizes, labels, per-corpus counts).
//   emapctl monitor     <store.mdb> <input.edf> [onset_sec]
//       Runs the full pipeline on channel 0 of the EDF input and reports
//       the P_A trace and alarm.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/dsp/montage.hpp"
#include "emap/dsp/resample.hpp"
#include "emap/edf/edf.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

namespace {

using namespace emap;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  emapctl gen-corpus <out-dir> [recordings-per-corpus]\n"
               "  emapctl build-mdb  <corpus-dir> <out.mdb>\n"
               "  emapctl info       <store.mdb>\n"
               "  emapctl monitor    <store.mdb> <input.edf> [onset_sec]\n");
  return 2;
}

edf::EdfFile to_edf(const synth::Recording& recording) {
  edf::EdfFile file;
  file.sample_rate_hz = recording.fs();
  // EDF stores an integer number of samples per data record; non-integer
  // rates (UCI's 173.61 Hz) need a longer record duration.
  for (double duration : {1.0, 2.0, 4.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    const double spr = recording.fs() * duration;
    if (std::abs(spr - std::round(spr)) < 1e-6) {
      file.record_duration_sec = duration;
      break;
    }
  }
  file.recording_id = std::string("Startdate 01-JAN-2020 emap-synth ") +
                      synth::anomaly_name(recording.spec.cls);
  edf::EdfChannel channel;
  channel.label = "EEG synth";
  channel.physical_min = -400.0;
  channel.physical_max = 400.0;
  channel.samples = recording.samples;
  file.channels.push_back(std::move(channel));
  return file;
}

int cmd_gen_corpus(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const std::filesystem::path out_dir = argv[0];
  const std::size_t per_corpus =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  std::filesystem::create_directories(out_dir);

  std::ofstream manifest(out_dir / "manifest.csv");
  manifest << "file,corpus,native_fs,class,onset_sec,whole_signal\n";
  std::size_t written = 0;
  for (const auto& corpus : synth::standard_corpora(per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      const auto& recording = recordings[i];
      std::ostringstream name;
      name << corpus.name << "_" << i << ".edf";
      edf::write_edf(out_dir / name.str(), to_edf(recording));
      manifest << name.str() << ',' << corpus.name << ','
               << corpus.native_fs_hz << ','
               << synth::anomaly_name(recording.spec.cls) << ','
               << recording.spec.onset_sec << ','
               << (recording.spec.whole_signal_label ? 1 : 0) << "\n";
      ++written;
    }
    std::printf("corpus %-18s -> %zu recordings at %.2f Hz\n",
                corpus.name.c_str(), recordings.size(),
                corpus.native_fs_hz);
  }
  std::printf("wrote %zu EDF files + manifest.csv to %s\n", written,
              out_dir.c_str());
  return 0;
}

struct ManifestRow {
  std::string file;
  std::string corpus;
  synth::AnomalyClass cls = synth::AnomalyClass::kNormal;
  double onset_sec = 0.0;
  bool whole_signal = false;
};

std::vector<ManifestRow> read_manifest(const std::filesystem::path& dir) {
  std::ifstream stream(dir / "manifest.csv");
  if (!stream) {
    throw IoError("cannot open manifest.csv in " + dir.string());
  }
  std::vector<ManifestRow> rows;
  std::string line;
  std::getline(stream, line);  // header
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    ManifestRow row;
    std::string cls;
    std::string fs;
    std::string onset;
    std::string whole;
    std::getline(fields, row.file, ',');
    std::getline(fields, row.corpus, ',');
    std::getline(fields, fs, ',');
    std::getline(fields, cls, ',');
    std::getline(fields, onset, ',');
    std::getline(fields, whole, ',');
    row.cls = synth::anomaly_from_name(cls);
    row.onset_sec = std::atof(onset.c_str());
    row.whole_signal = whole == "1";
    rows.push_back(std::move(row));
  }
  return rows;
}

int cmd_build_mdb(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::filesystem::path dir = argv[0];
  const std::filesystem::path out = argv[1];
  const auto rows = read_manifest(dir);

  mdb::MdbBuilder builder;
  std::uint32_t recording_index = 0;
  for (const auto& row : rows) {
    const bool anomalous_recording = row.cls != synth::AnomalyClass::kNormal;
    // Label function mirroring the corpora's annotation policies.
    const double anomalous_from =
        row.whole_signal
            ? 0.0
            : std::max(0.0, row.onset_sec -
                                synth::Morphology::kProdromeSeconds);
    auto label_at = [anomalous_recording, anomalous_from](double t) {
      return anomalous_recording && t >= anomalous_from;
    };
    builder.add_edf(dir / row.file, row.corpus, recording_index++, label_at,
                    static_cast<std::uint8_t>(row.cls));
  }
  auto store = builder.take_store();
  store.save(out);
  std::printf("built %s: %zu signal-sets (%zu anomalous) from %zu EDF "
              "files\n",
              out.c_str(), store.size(), store.count_anomalous(),
              rows.size());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const auto store = mdb::MdbStore::load(argv[0]);
  std::printf("store: %s\n", argv[0]);
  std::printf("  base rate     : %.2f Hz\n", store.info().base_fs_hz);
  std::printf("  slice length  : %u samples\n", store.info().slice_length);
  std::printf("  signal-sets   : %zu\n", store.size());
  std::printf("  anomalous     : %zu (%.1f%%)\n", store.count_anomalous(),
              store.empty() ? 0.0
                            : 100.0 * static_cast<double>(
                                          store.count_anomalous()) /
                                  static_cast<double>(store.size()));
  std::map<std::string, std::size_t> per_source;
  std::map<int, std::size_t> per_class;
  for (const auto& set : store.all()) {
    ++per_source[set.source];
    ++per_class[set.class_tag];
  }
  std::printf("  per corpus    :\n");
  for (const auto& [source, count] : per_source) {
    std::printf("    %-20s %zu\n", source.c_str(), count);
  }
  std::printf("  per class tag :\n");
  for (const auto& [tag, count] : per_class) {
    std::printf("    %-20s %zu\n",
                synth::anomaly_name(static_cast<synth::AnomalyClass>(tag)),
                count);
  }
  return 0;
}

int cmd_monitor(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  auto store = mdb::MdbStore::load(argv[0]);
  const auto file = edf::read_edf(argv[1]);
  require(!file.channels.empty(), "monitor: EDF has no channels");
  const double onset =
      argc > 2 ? std::atof(argv[2]) : -1.0;

  // Pick the electrode with the strongest 11-40 Hz content (the EMAP
  // passband) and wrap it as a recording at the base rate.
  dsp::ChannelBlock block;
  for (const auto& channel : file.channels) {
    block.push_back(channel.samples);
  }
  const std::size_t picked =
      dsp::pick_channel(block, dsp::ChannelPick::kMaxBandPower,
                        file.sample_rate_hz);
  std::printf("monitoring channel %zu/%zu ('%s')\n", picked + 1,
              file.channels.size(), file.channels[picked].label.c_str());
  synth::Recording input;
  input.spec.fs = 256.0;
  input.spec.cls = synth::AnomalyClass::kNormal;  // unknown; labels unused
  input.spec.duration_sec =
      static_cast<double>(file.channels[picked].samples.size()) /
      file.sample_rate_hz;
  input.samples = dsp::resample(file.channels[picked].samples,
                                file.sample_rate_hz, 256.0);

  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults());
  const auto result =
      pipeline.run(input, onset > 0.0 ? onset : -1.0);

  std::printf("monitored %.0f s; cloud calls: %zu; Delta_initial %.2f s\n",
              input.spec.duration_sec, result.cloud_calls,
              result.timings.delta_initial_sec);
  for (std::size_t i = 0; i < result.iterations.size(); i += 15) {
    const auto& record = result.iterations[i];
    if (record.tracked) {
      std::printf("  t=%5.0f  P_A=%.2f  tracked=%zu\n", record.t_sec,
                  record.anomaly_probability, record.tracked_after);
    }
  }
  if (result.anomaly_predicted) {
    std::printf("ANOMALY PREDICTED at t=%.0f s%s\n", result.first_alarm_sec,
                onset > 0.0 ? " (before the provided onset)" : "");
  } else {
    std::printf("no anomaly predicted\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  try {
    if (std::strcmp(argv[1], "gen-corpus") == 0) {
      return cmd_gen_corpus(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "build-mdb") == 0) {
      return cmd_build_mdb(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "info") == 0) {
      return cmd_info(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "monitor") == 0) {
      return cmd_monitor(argc - 2, argv + 2);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "emapctl: %s\n", error.what());
    return 1;
  }
  return usage();
}
