// Driving-scenario monitor: the paper's motivating use case is a patient
// prone to seizures operating a vehicle.  This example streams several
// patients through EMAP side by side with the Samie-style IoT baseline
// [13], comparing alarms and lead times.
//
//   $ ./seizure_monitor [patients]
#include <cstdio>
#include <cstdlib>

#include "emap/baselines/iot_predictor.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

int main(int argc, char** argv) {
  using namespace emap;
  const int patients = argc > 1 ? std::atoi(argv[1]) : 6;

  // Shared cloud database.
  mdb::MdbBuilder builder;
  std::vector<synth::Recording> training;
  for (const auto& corpus : synth::standard_corpora(10)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
      // The baseline trains on the 256 Hz corpus only (it has no
      // resampling stage of its own).
      if (std::abs(recordings[i].fs() - 256.0) < 1e-9) {
        training.push_back(recordings[i]);
      }
    }
  }
  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(builder.take_store(),
                              core::EmapConfig::paper_defaults(), options);

  baselines::IotPredictor iot;
  iot.train(training);

  std::printf("%-8s %-10s %-22s %-22s\n", "patient", "onset[s]",
              "EMAP alarm (lead)", "IoT baseline alarm (lead)");
  int emap_hits = 0;
  int iot_hits = 0;
  for (int p = 0; p < patients; ++p) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 40 + static_cast<std::uint64_t>(p);
    const auto input = synth::make_eval_input(spec);

    const auto result = pipeline.run(input, spec.onset_sec);
    const bool emap_alarm = result.anomaly_predicted;
    if (emap_alarm) {
      ++emap_hits;
    }

    iot.reset_stream();
    double iot_alarm_at = -1.0;
    for (std::size_t w = 0; (w + 1) * 256 <= input.samples.size(); ++w) {
      const double t = static_cast<double>(w + 1);
      if (t > spec.onset_sec) {
        break;
      }
      (void)iot.observe_window(std::span<const double>(
          input.samples.data() + w * 256, 256));
      if (iot.alarm()) {
        iot_alarm_at = t;
        ++iot_hits;
        break;
      }
    }

    char emap_cell[32];
    char iot_cell[32];
    if (emap_alarm) {
      std::snprintf(emap_cell, sizeof emap_cell, "t=%.0f (%.0f s early)",
                    result.first_alarm_sec,
                    spec.onset_sec - result.first_alarm_sec);
    } else {
      std::snprintf(emap_cell, sizeof emap_cell, "missed");
    }
    if (iot_alarm_at >= 0.0) {
      std::snprintf(iot_cell, sizeof iot_cell, "t=%.0f (%.0f s early)",
                    iot_alarm_at, spec.onset_sec - iot_alarm_at);
    } else {
      std::snprintf(iot_cell, sizeof iot_cell, "missed");
    }
    std::printf("%-8d %-10.0f %-22s %-22s\n", p, spec.onset_sec, emap_cell,
                iot_cell);
  }
  std::printf("\nEMAP predicted %d/%d, IoT baseline %d/%d\n", emap_hits,
              patients, iot_hits, patients);
  std::printf("note: EMAP additionally generalizes to encephalopathy and "
              "stroke (see multi_anomaly); the baseline is seizure-only.\n");
  return 0;
}
