// Quickstart: build a small mega-database, monitor one synthetic seizure
// patient with the full EMAP pipeline, and print the anomaly-probability
// trace plus the Eq. 4 timing decomposition.
//
//   $ ./quickstart [recordings-per-corpus]
#include <cstdio>
#include <cstdlib>

#include "emap/core/pipeline.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

int main(int argc, char** argv) {
  using namespace emap;
  const std::size_t per_corpus =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  // 1) Construct the mega-database from the five synthetic corpora
  //    (resample -> bandpass -> slice -> label; paper Fig. 3 left).
  std::printf("building mega-database (%zu recordings per corpus)...\n",
              per_corpus);
  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
    std::printf("  + %-18s native %.2f Hz\n", corpus.name.c_str(),
                corpus.native_fs_hz);
  }
  auto store = builder.take_store();
  std::printf("MDB ready: %zu signal-sets (%zu anomalous)\n\n", store.size(),
              store.count_anomalous());

  // 2) A patient stream: synthetic EEG with a seizure onset.
  synth::EvalInputSpec patient;
  patient.cls = synth::AnomalyClass::kSeizure;
  patient.seed = 7;
  const auto input = synth::make_eval_input(patient);
  std::printf("monitoring a %.0f s stream, seizure onset at %.0f s\n",
              patient.duration_sec, patient.onset_sec);

  // 3) Run the cloud-edge pipeline with the paper's configuration.
  core::EmapPipeline pipeline(std::move(store),
                              core::EmapConfig::paper_defaults());
  const auto result = pipeline.run(input, patient.onset_sec);

  // 4) Report.
  std::printf("\nP_A trace (one row per 10 iterations):\n");
  for (std::size_t i = 0; i < result.iterations.size(); i += 10) {
    const auto& record = result.iterations[i];
    if (!record.tracked) {
      continue;
    }
    std::printf("  t=%5.0f s  P_A=%.2f  tracked=%3zu\n", record.t_sec,
                record.anomaly_probability, record.tracked_after);
  }
  std::printf("\ncloud calls: %zu\n", result.cloud_calls);
  std::printf("Delta_initial = %.2f s  (EC %.4f + CS %.2f + CE %.4f)\n",
              result.timings.delta_initial_sec, result.timings.delta_ec_sec,
              result.timings.delta_cs_sec, result.timings.delta_ce_sec);
  std::printf("edge iteration: mean %.3f s (device model)\n",
              result.timings.mean_track_sec);
  if (result.anomaly_predicted) {
    std::printf("ANOMALY PREDICTED at t=%.0f s, %.0f s before onset\n",
                result.first_alarm_sec,
                patient.onset_sec - result.first_alarm_sec);
  } else {
    std::printf("no anomaly predicted before onset (missed)\n");
  }
  return 0;
}
