// Multi-anomaly prediction: the headline capability of EMAP over the
// single-purpose SoA — one framework and one database predicting seizures,
// encephalopathy, and stroke (paper Table I).
//
//   $ ./multi_anomaly [inputs-per-class]
#include <cstdio>
#include <cstdlib>

#include "emap/core/pipeline.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

int main(int argc, char** argv) {
  using namespace emap;
  const int per_class = argc > 1 ? std::atoi(argv[1]) : 8;

  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(12)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(builder.take_store(),
                              core::EmapConfig::paper_defaults(), options);

  std::printf("%-16s %-10s %-12s %-14s\n", "anomaly", "inputs", "predicted",
              "mean lead [s]");
  for (auto cls : synth::kAnomalyClasses) {
    int predicted = 0;
    double lead_sum = 0.0;
    for (int i = 0; i < per_class; ++i) {
      synth::EvalInputSpec spec;
      spec.cls = cls;
      spec.seed = 90 + static_cast<std::uint64_t>(i);
      const auto input = synth::make_eval_input(spec);
      const auto result = pipeline.run(input, spec.onset_sec);
      if (result.anomaly_predicted) {
        ++predicted;
        lead_sum += spec.onset_sec - result.first_alarm_sec;
      }
    }
    std::printf("%-16s %-10d %-12d %-14.1f\n", synth::anomaly_name(cls),
                per_class, predicted,
                predicted > 0 ? lead_sum / predicted : 0.0);
  }

  // False-positive check on healthy subjects.
  int false_alarms = 0;
  for (int i = 0; i < per_class; ++i) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kNormal;
    spec.seed = 400 + static_cast<std::uint64_t>(i);
    const auto result = pipeline.run(synth::make_eval_input(spec));
    if (result.anomaly_predicted) {
      ++false_alarms;
    }
  }
  std::printf("%-16s %-10d %-12d (false alarms; paper reports ~15%%)\n",
              "normal", per_class, false_alarms);
  return 0;
}
