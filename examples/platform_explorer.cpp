// Communication-platform explorer: is EMAP real-time on a given link?
// Evaluates Eq. 4's Delta_initial and the per-iteration budget across the
// six platforms of Fig. 4, including the paper's two hard constraints
// (upload < 1 ms serialization, top-100 download < 200 ms).
//
//   $ ./platform_explorer
#include <cstdio>

#include "emap/core/pipeline.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/net/channel.hpp"
#include "emap/net/transport.hpp"
#include "emap/synth/corpus.hpp"

int main() {
  using namespace emap;

  // Message sizes of the paper's operating point.
  net::SignalUploadMessage upload;
  upload.samples.assign(256, 1.0);
  net::CorrelationSetMessage download;
  for (int i = 0; i < 100; ++i) {
    net::CorrelationEntry entry;
    entry.samples.assign(1000, 1.0);
    download.entries.push_back(std::move(entry));
  }
  const std::size_t up_bytes = net::wire_size(upload);
  const std::size_t down_bytes = net::wire_size(download);
  std::printf("payloads: upload %zu B (1 s window), download %zu B "
              "(top-100 set)\n\n",
              up_bytes, down_bytes);

  std::printf("%-10s %14s %14s %10s %10s\n", "platform", "upload[us]",
              "download[ms]", "up<1ms", "down<200ms");
  net::ChannelOptions serialization_only;
  serialization_only.include_latency = false;
  for (auto platform : net::kAllPlatforms) {
    net::Channel channel(platform, serialization_only);
    const double up = channel.upload_seconds(up_bytes);
    const double down = channel.download_seconds(down_bytes);
    std::printf("%-10s %14.1f %14.2f %10s %10s\n",
                net::platform_name(platform), up * 1e6, down * 1e3,
                up < 1e-3 ? "yes" : "NO", down < 0.2 ? "yes" : "NO");
  }

  // End-to-end Delta_initial on each platform with a realistic MDB.
  std::printf("\nbuilding MDB for the end-to-end latency check...\n");
  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(10)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  const auto store = builder.take_store();
  std::printf("MDB: %zu signal-sets\n\n", store.size());

  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 5;
  const auto input = synth::make_eval_input(spec);

  std::printf("%-10s %16s %18s\n", "platform", "Delta_initial[s]",
              "edge iter mean[s]");
  for (auto platform : net::kAllPlatforms) {
    core::PipelineOptions options;
    options.platform = platform;
    core::EmapPipeline pipeline(mdb::MdbStore(store),
                                core::EmapConfig::paper_defaults(), options);
    const auto result = pipeline.run(input, /*stop_at_sec=*/40.0);
    std::printf("%-10s %16.2f %18.3f\n", net::platform_name(platform),
                result.timings.delta_initial_sec,
                result.timings.mean_track_sec);
  }
  std::printf("\n(Delta_initial is dominated by the cloud search Delta_CS; "
              "the paper reports ~3 s at full MDB scale.)\n");
  return 0;
}
