// Privacy exposure analysis.
//
// The paper's introduction motivates the hybrid design partly on privacy:
// fully cloud-based techniques stream the entire bio-signal to a third
// party, while EMAP transmits "only one second of the EEG signal data to
// the cloud every few seconds", from which "the third party cannot
// retrieve the complete signal information".  This example quantifies
// that: the fraction of the patient's signal that ever leaves the edge,
// and the upload cadence, across anomaly classes.
//
//   $ ./privacy_exposure [inputs-per-class]
#include <cstdio>
#include <cstdlib>

#include "emap/core/pipeline.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/net/transport.hpp"
#include "emap/synth/corpus.hpp"

int main(int argc, char** argv) {
  using namespace emap;
  const int per_class = argc > 1 ? std::atoi(argv[1]) : 4;

  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(10)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  core::EmapPipeline pipeline(builder.take_store(),
                              core::EmapConfig::paper_defaults());

  std::printf("%-16s %14s %14s %16s %18s\n", "input class",
              "monitored [s]", "uploads", "signal exposed",
              "upload rate [B/s]");
  const synth::AnomalyClass classes[] = {
      synth::AnomalyClass::kNormal, synth::AnomalyClass::kSeizure,
      synth::AnomalyClass::kEncephalopathy, synth::AnomalyClass::kStroke};
  for (auto cls : classes) {
    double monitored = 0.0;
    double uploads = 0.0;
    for (int i = 0; i < per_class; ++i) {
      synth::EvalInputSpec spec;
      spec.cls = cls;
      spec.seed = 600 + static_cast<std::uint64_t>(i);
      const auto input = synth::make_eval_input(spec);
      const auto result = pipeline.run(input);
      uploads += static_cast<double>(result.cloud_calls);
      monitored += result.iterations.empty()
                       ? 0.0
                       : result.iterations.back().t_sec;
    }
    // Each upload carries exactly one 256-sample window.
    net::SignalUploadMessage window;
    window.samples.assign(256, 1.0);
    const double bytes_per_upload =
        static_cast<double>(net::wire_size(window));
    const double exposed_seconds = uploads;  // 1 s of signal per upload
    std::printf("%-16s %14.0f %14.0f %15.1f%% %18.1f\n",
                synth::anomaly_name(cls), monitored / per_class,
                uploads / per_class,
                100.0 * exposed_seconds / monitored,
                uploads * bytes_per_upload / monitored);
  }

  std::printf("\nfully cloud-based reference: 100%% exposure at %.0f B/s "
              "(16-bit 256 Hz stream)\n", 256.0 * 2.0);
  std::printf("EMAP uploads non-contiguous 1 s fragments only when the "
              "tracked set thins out (N(F) < H);\n"
              "the cloud never observes the complete signal "
              "(paper Section I's privacy/urgency trade-off).\n");
  return 0;
}
