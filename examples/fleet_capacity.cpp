// Fleet capacity planning: how many patients can one EMAP cloud serve?
//
// Each monitored patient re-calls the cloud roughly every 6 tracked
// iterations (Fig. 9 cadence).  This example loads a shared mega-database,
// generates a Poisson-like request schedule for fleets of increasing size,
// and reports response-time statistics from the multi-patient CloudService
// — the capacity question a deployment of the paper's design has to answer.
//
//   $ ./fleet_capacity [horizon-seconds]
#include <cstdio>
#include <cstdlib>

#include "emap/common/rng.hpp"
#include "emap/core/cloud_service.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

int main(int argc, char** argv) {
  using namespace emap;
  const double horizon = argc > 1 ? std::atof(argv[1]) : 120.0;
  const double recall_period_sec = 6.0;  // observed Fig. 9 cadence

  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(10)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  const auto store = builder.take_store();
  std::printf("MDB: %zu signal-sets; re-call period %.0f s; horizon %.0f s\n\n",
              store.size(), recall_period_sec, horizon);

  // One pre-filtered request window per patient (content barely matters
  // for the timing study; reuse a seizure prodrome window).
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 17;
  const auto input = synth::make_eval_input(spec);
  dsp::FirFilter filter{core::EmapConfig{}.filter};
  const auto filtered = filter.apply(input.samples);
  net::SignalUploadMessage upload;
  upload.samples.assign(filtered.begin() + 200 * 256,
                        filtered.begin() + 201 * 256);

  std::printf("%-10s %-9s %12s %12s %12s %12s\n", "patients", "workers",
              "mean rsp[s]", "max rsp[s]", "util", "rt ok");
  for (std::size_t workers : {1u, 2u, 4u}) {
    for (std::size_t patients : {1u, 2u, 4u, 8u, 16u}) {
      core::CloudService service(mdb::MdbStore(store),
                                 core::EmapConfig::paper_defaults(), workers);
      Rng rng(99);
      for (std::size_t p = 0; p < patients; ++p) {
        // Each patient re-calls on its own jittered clock.
        double t = rng.uniform(0.0, recall_period_sec);
        std::uint32_t sequence = 0;
        while (t < horizon) {
          net::SignalUploadMessage request = upload;
          request.sequence = sequence++;
          service.submit(core::ServiceRequest{
              static_cast<std::uint32_t>(p), std::move(request), t});
          t += recall_period_sec * rng.uniform(0.8, 1.2);
        }
      }
      (void)service.process_all();
      const auto& stats = service.stats();
      // "Real-time" here: a response within one re-call period keeps every
      // edge tracker fed before its set thins out.
      const bool real_time_ok = stats.max_response_sec < recall_period_sec;
      std::printf("%-10zu %-9zu %12.2f %12.2f %12.2f %12s\n", patients,
                  workers, stats.mean_response_sec, stats.max_response_sec,
                  stats.utilization, real_time_ok ? "yes" : "NO");
    }
  }
  std::printf("\nreading: with the paper's single-server cloud the fleet "
              "saturates once utilization -> 1;\nscaling workers (or the "
              "FFT search, see bench_ablation) restores the margin.\n");
  return 0;
}
