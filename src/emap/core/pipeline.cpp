#include "emap/core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"

namespace emap::core {

std::vector<double> RunResult::pa_history() const {
  std::vector<double> history;
  for (const auto& record : iterations) {
    if (record.tracked) {
      history.push_back(record.anomaly_probability);
    }
  }
  return history;
}

EmapPipeline::EmapPipeline(mdb::MdbStore store, EmapConfig config,
                           PipelineOptions options)
    : config_(config),
      options_(options),
      cloud_(std::move(store), config_, options.cloud_threads),
      edge_device_(sim::edge_raspberry_pi()),
      cloud_device_(sim::cloud_i7()) {
  config_.validate();
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    cloud_.set_metrics(&registry);
    metrics_.windows = &registry.counter(
        "emap_pipeline_windows_total", {}, "One-second windows processed");
    metrics_.cloud_calls = &registry.counter(
        "emap_pipeline_cloud_calls_total", {}, "Cloud searches issued");
    metrics_.delta_ec = &registry.histogram(
        "emap_delta_ec_seconds", {}, obs::Histogram::default_latency_bounds(),
        "Edge-to-cloud upload time per cloud call (Eq. 4)");
    metrics_.delta_cs = &registry.histogram(
        "emap_delta_cs_seconds", {}, obs::Histogram::default_latency_bounds(),
        "Cloud search time per cloud call (Eq. 4)");
    metrics_.delta_ce = &registry.histogram(
        "emap_delta_ce_seconds", {}, obs::Histogram::default_latency_bounds(),
        "Cloud-to-edge download time per cloud call (Eq. 4)");
    metrics_.delta_initial = &registry.histogram(
        "emap_delta_initial_seconds", {},
        obs::Histogram::default_latency_bounds(),
        "Full round-trip overhead per cloud call (Eq. 4 sum)");
    metrics_.track_step = &registry.histogram(
        "emap_track_step_seconds", {},
        obs::Histogram::default_latency_bounds(),
        "Edge-device-model time of one Algorithm 2 iteration");
    metrics_.encode = &registry.histogram(
        "emap_codec_encode_seconds", {},
        obs::Histogram::default_latency_bounds(),
        "Wire-message encode wall time");
    metrics_.decode = &registry.histogram(
        "emap_codec_decode_seconds", {},
        obs::Histogram::default_latency_bounds(),
        "Wire-message decode wall time");
  }
}

EmapPipeline::PendingSearch EmapPipeline::issue_cloud_call(
    std::uint32_t sequence, const std::vector<double>& filtered_window,
    double now_sec, net::Channel& channel, obs::Tracer* tracer) const {
  net::SignalUploadMessage upload;
  upload.sequence = sequence;
  upload.samples = filtered_window;

  PendingSearch pending;
  pending.delta_ec = channel.upload_seconds(net::wire_size(upload));

  net::CorrelationSetMessage response;
  if (options_.use_transport) {
    // Full wire path: the cloud sees the 16-bit quantized window and the
    // edge receives 16-bit quantized signal-sets.
    std::vector<std::uint8_t> upload_bytes;
    if (metrics_.encode != nullptr) {
      obs::ScopedTimer timer(*metrics_.encode);
      upload_bytes = net::encode_upload(upload);
    } else {
      upload_bytes = net::encode_upload(upload);
    }
    const auto decoded = net::decode_upload(upload_bytes);
    response = cloud_.respond(decoded);
    const auto download_bytes = net::encode_correlation_set(response);
    if (metrics_.decode != nullptr) {
      obs::ScopedTimer timer(*metrics_.decode);
      response = net::decode_correlation_set(download_bytes);
    } else {
      response = net::decode_correlation_set(download_bytes);
    }
  } else {
    response = cloud_.respond(upload);
  }
  const SearchStats& stats = cloud_.last_stats();
  pending.delta_cs =
      cloud_device_.seconds_for_macs(static_cast<double>(stats.mac_ops)) +
      cloud_device_.per_signal_overhead_sec *
          static_cast<double>(stats.sets_scanned);
  pending.delta_ce = channel.download_seconds(net::wire_size(response));
  pending.ready_at_sec =
      now_sec + pending.delta_ec + pending.delta_cs + pending.delta_ce;

  pending.correlation_set.reserve(response.entries.size());
  for (const auto& entry : response.entries) {
    TrackedSignal signal;
    signal.set_id = entry.set_id;
    signal.omega = static_cast<double>(entry.omega);
    signal.beta = entry.beta;
    signal.anomalous = entry.anomalous != 0;
    signal.class_tag = entry.class_tag;
    signal.samples = entry.samples;
    pending.correlation_set.push_back(std::move(signal));
  }

  if (metrics_.cloud_calls != nullptr) {
    metrics_.cloud_calls->increment();
    metrics_.delta_ec->observe(pending.delta_ec);
    metrics_.delta_cs->observe(pending.delta_cs);
    metrics_.delta_ce->observe(pending.delta_ce);
    metrics_.delta_initial->observe(pending.delta_ec + pending.delta_cs +
                                    pending.delta_ce);
  }

  if (tracer != nullptr) {
    // One parent span per round trip; the Eq. 4 legs nest under it.
    const std::uint64_t call = tracer->record_sim(
        "cloud_call_" + std::to_string(sequence), "cloud-call", now_sec,
        pending.ready_at_sec);
    tracer->record_sim("delta_EC", "upload", now_sec,
                       now_sec + pending.delta_ec, call);
    tracer->record_sim("delta_CS", "cloud-search", now_sec + pending.delta_ec,
                       now_sec + pending.delta_ec + pending.delta_cs, call);
    tracer->record_sim("delta_CE", "download",
                       now_sec + pending.delta_ec + pending.delta_cs,
                       pending.ready_at_sec, call);
  }
  return pending;
}

RunResult EmapPipeline::run(const synth::Recording& input,
                            double stop_at_sec) {
  const double saved = options_.stop_at_sec;
  options_.stop_at_sec = stop_at_sec;
  RunResult result = run(input);
  options_.stop_at_sec = saved;
  return result;
}

RunResult EmapPipeline::run(const synth::Recording& input) {
  require(std::abs(input.fs() - config_.base_fs_hz) < 1e-9,
          "EmapPipeline::run: input must be sampled at the base rate");
  const std::size_t window = config_.window_length;
  require(input.samples.size() >= window,
          "EmapPipeline::run: input shorter than one window");

  EdgeNode edge(config_);
  net::Channel channel(options_.platform, options_.channel);
  if (options_.metrics != nullptr) {
    channel.set_metrics(options_.metrics);
    edge.tracker().set_metrics(options_.metrics);
  }

  RunResult result;
  obs::Tracer* tracer = nullptr;
  if (options_.collect_trace) {
    result.tracer = std::make_shared<obs::Tracer>();
    tracer = result.tracer.get();
  }
  std::optional<PendingSearch> pending;
  bool first_round_trip_recorded = false;
  double total_track_sec = 0.0;
  std::size_t track_steps = 0;

  const std::size_t window_count =
      std::min(options_.max_windows, input.samples.size() / window);

  for (std::size_t w = 0; w < window_count; ++w) {
    // Window w covers input time [w, w+1) seconds; processing happens at
    // its completion instant.
    const double t_end = static_cast<double>(w + 1);
    if (options_.stop_at_sec >= 0.0 && t_end > options_.stop_at_sec) {
      break;
    }
    const std::span<const double> raw(input.samples.data() + w * window,
                                      window);
    if (tracer != nullptr) {
      tracer->record_sim("sample", "sample", t_end - 1.0, t_end);
      tracer->record_sim("filter", "filter", t_end,
                         t_end + options_.filter_accelerator_sec);
    }
    const auto filtered = edge.acquire_window(raw);

    IterationRecord record;
    record.window_index = w;
    record.t_sec = t_end;
    if (metrics_.windows != nullptr) {
      metrics_.windows->increment();
    }

    // Deliver a completed cloud search (the paper reloads T wholesale; the
    // edge kept tracking the old set in the meantime).
    if (pending && pending->ready_at_sec <= t_end) {
      edge.tracker().load(std::move(pending->correlation_set));
      record.set_loaded = true;
      record.pa_on_load = edge.tracker().anomaly_probability();
      if (!first_round_trip_recorded) {
        result.timings.delta_ec_sec = pending->delta_ec;
        result.timings.delta_cs_sec = pending->delta_cs;
        result.timings.delta_ce_sec = pending->delta_ce;
        result.timings.delta_initial_sec =
            pending->delta_ec + pending->delta_cs + pending->delta_ce;
        first_round_trip_recorded = true;
      }
      ++result.cloud_calls;
      pending.reset();
    }

    if (edge.tracker().loaded()) {
      const TrackStepResult step = edge.tracker().step(filtered);
      record.tracked = true;
      record.anomaly_probability = step.anomaly_probability;
      record.tracked_before = step.tracked_before;
      record.tracked_after = step.tracked_after;
      record.removed_dissimilar = step.removed_dissimilar;
      record.removed_exhausted = step.removed_exhausted;
      record.abs_ops = step.abs_ops;
      record.track_device_sec =
          edge_device_.seconds_for_abs(static_cast<double>(step.abs_ops)) +
          edge_device_.per_signal_overhead_sec *
              static_cast<double>(step.tracked_before);
      total_track_sec += record.track_device_sec;
      result.timings.max_track_sec =
          std::max(result.timings.max_track_sec, record.track_device_sec);
      ++track_steps;
      if (metrics_.track_step != nullptr) {
        metrics_.track_step->observe(record.track_device_sec);
      }
      if (tracer != nullptr) {
        tracer->record_sim("edge-track", "edge-track", t_end,
                           t_end + record.track_device_sec);
        tracer->record_sim("prediction", "prediction",
                           t_end + record.track_device_sec,
                           t_end + record.track_device_sec + 1e-3);
      }
      if (step.tracked_after >= config_.predict_min_support) {
        edge.predictor().observe(step.anomaly_probability, t_end);
      }

      // "The previous set of sampled signals is transmitted to the cloud
      // ... while doing real-time signal tracking at the edge in parallel."
      if (step.cloud_call_needed && !pending) {
        pending = issue_cloud_call(static_cast<std::uint32_t>(w), filtered,
                                   t_end, channel, tracer);
        record.cloud_call_issued = true;
      }
    } else if (!pending) {
      // Cold start: the very first window triggers the initial MDB search.
      pending = issue_cloud_call(static_cast<std::uint32_t>(w), filtered,
                                 t_end, channel, tracer);
      record.cloud_call_issued = true;
    }

    result.iterations.push_back(record);
    if (options_.stop_on_alarm && edge.predictor().anomaly_predicted()) {
      break;
    }
  }

  if (track_steps > 0) {
    result.timings.mean_track_sec =
        total_track_sec / static_cast<double>(track_steps);
  }
  result.anomaly_predicted = edge.predictor().anomaly_predicted();
  result.first_alarm_sec = edge.predictor().first_alarm_sec();
  if (tracer != nullptr) {
    // The legacy Fig. 9 timeline is a projection of the span log.
    result.trace = obs::timeline_view(*tracer);
  }
  return result;
}

}  // namespace emap::core
