#include "emap/core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "emap/common/crc32.hpp"
#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/profiler.hpp"
#include "emap/obs/slo.hpp"

namespace emap::core {

robust::TrackedSignalState to_signal_state(const TrackedSignal& signal) {
  robust::TrackedSignalState state;
  state.set_id = signal.set_id;
  state.omega = signal.omega;
  state.beta = static_cast<std::uint64_t>(signal.beta);
  state.anomalous = signal.anomalous;
  state.class_tag = signal.class_tag;
  state.samples = signal.samples;
  return state;
}

TrackedSignal from_signal_state(robust::TrackedSignalState&& state) {
  TrackedSignal signal;
  signal.set_id = state.set_id;
  signal.omega = state.omega;
  signal.beta = static_cast<std::size_t>(state.beta);
  signal.anomalous = state.anomalous;
  signal.class_tag = state.class_tag;
  signal.samples = std::move(state.samples);
  return signal;
}

robust::PendingCallCheckpoint to_call_checkpoint(const PendingSearch& call) {
  robust::PendingCallCheckpoint out;
  out.ready_at_sec = call.ready_at_sec;
  out.delta_ec = call.delta_ec;
  out.delta_cs = call.delta_cs;
  out.delta_ce = call.delta_ce;
  out.sequence = call.sequence;
  out.attempts = call.attempts;
  out.duplicates = call.duplicates;
  out.succeeded = call.succeeded;
  out.trace_id = call.trace.trace_id;
  out.parent_span = call.trace.parent_span;
  out.correlation_set.reserve(call.correlation_set.size());
  for (const TrackedSignal& signal : call.correlation_set) {
    out.correlation_set.push_back(to_signal_state(signal));
  }
  return out;
}

PendingSearch from_call_checkpoint(robust::PendingCallCheckpoint&& call) {
  PendingSearch out;
  out.ready_at_sec = call.ready_at_sec;
  out.delta_ec = call.delta_ec;
  out.delta_cs = call.delta_cs;
  out.delta_ce = call.delta_ce;
  out.sequence = call.sequence;
  out.attempts = static_cast<std::size_t>(call.attempts);
  out.duplicates = static_cast<std::size_t>(call.duplicates);
  out.succeeded = call.succeeded;
  out.trace.trace_id = call.trace_id;
  out.trace.parent_span = call.parent_span;
  out.correlation_set.reserve(call.correlation_set.size());
  for (robust::TrackedSignalState& signal : call.correlation_set) {
    out.correlation_set.push_back(from_signal_state(std::move(signal)));
  }
  return out;
}

std::vector<double> RunResult::pa_history() const {
  std::vector<double> history;
  for (const auto& record : iterations) {
    if (record.tracked) {
      history.push_back(record.anomaly_probability);
    }
  }
  return history;
}

EmapPipeline::EmapPipeline(mdb::MdbStore store, EmapConfig config,
                           PipelineOptions options)
    : config_(config),
      options_(options),
      cloud_(std::move(store), config_, options.cloud_threads),
      edge_device_(options.edge_device.value_or(sim::edge_raspberry_pi())),
      cloud_device_(options.cloud_device.value_or(sim::cloud_i7())),
      executor_(&cloud_, &config_, &cloud_device_, options_.use_transport,
                options_.flight, CloudCallMetrics::resolve(options_.metrics)) {
  config_.validate();
  options_.fault.validate();
  options_.retry.validate();
  options_.robust.validate();
  options_.recovery.validate();
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    cloud_.set_metrics(&registry);
    metrics_.windows = &registry.counter(
        "emap_pipeline_windows_total", {}, "One-second windows processed");
    metrics_.degraded_windows = &registry.counter(
        "emap_edge_degraded_windows_total", {},
        "Windows at which the edge kept a stale set after a failed call");
    metrics_.recovery_checkpoints = &registry.counter(
        "emap_recovery_checkpoints_total", {},
        "Session snapshots atomically published");
    metrics_.recovery_resumes = &registry.counter(
        "emap_recovery_resumes_total", {},
        "Runs resumed from a session snapshot");
    metrics_.recovery_cold_starts = &registry.counter(
        "emap_recovery_cold_start_fallbacks_total", {},
        "Resume requests that found no usable snapshot and ran cold");
    metrics_.recovery_resume_window = &registry.gauge(
        "emap_recovery_resume_window", {},
        "First window index executed by the most recent resumed run");
    metrics_.track_step = &registry.histogram(
        "emap_track_step_seconds", {},
        obs::Histogram::default_latency_bounds(),
        "Edge-device-model time of one Algorithm 2 iteration");
  }
}

RunResult EmapPipeline::run(const synth::Recording& input,
                            double stop_at_sec) {
  const double saved = options_.stop_at_sec;
  options_.stop_at_sec = stop_at_sec;
  RunResult result = run(input);
  options_.stop_at_sec = saved;
  return result;
}

RunResult EmapPipeline::run(const synth::Recording& input) {
  require(std::abs(input.fs() - config_.base_fs_hz) < 1e-9,
          "EmapPipeline::run: input must be sampled at the base rate");
  const std::size_t window = config_.window_length;
  require(input.samples.size() >= window,
          "EmapPipeline::run: input shorter than one window");

  EdgeNode edge(config_);
  net::Channel channel(options_.platform, options_.channel);
  net::FaultInjector injector(options_.fault);
  channel.set_fault_injector(&injector);
  const net::RetryPolicy retry(options_.retry);
  if (options_.metrics != nullptr) {
    channel.set_metrics(options_.metrics);
    injector.set_metrics(options_.metrics);
    edge.tracker().set_metrics(options_.metrics);
  }

  RunResult result;

  // Robustness closed loop: fresh per run, so every counter and state
  // machine starts NOMINAL/closed (the per-run reset regression test
  // reuses one pipeline across runs and asserts exactly this).
  const bool robust_on = options_.robust.enabled;
  std::optional<robust::DegradationController> controller;
  std::optional<robust::CircuitBreaker> breaker;
  std::optional<robust::StageWatchdog> watchdog;
  std::optional<robust::SignalQualityGate> quality;
  if (robust_on) {
    controller.emplace(options_.robust.degrade, options_.metrics);
    breaker.emplace(options_.robust.breaker, options_.metrics);
    watchdog.emplace(options_.robust.watchdog, options_.metrics);
    if (options_.robust.quality_gate) {
      quality.emplace(options_.robust.quality, options_.metrics);
      edge.set_quality_gate(&*quality);
    }
  }
  result.robust.enabled = robust_on;
  // P_A served while tracking is suspended (CRITICAL) or a window is
  // quality-gated: the last value a real tracking step produced.
  double last_pa = 0.0;
  // Non-essential telemetry observations buffered while the controller is
  // away from NOMINAL; flushed on return to NOMINAL or at run end.
  std::vector<double> deferred_track_obs;
  auto flush_deferred = [&] {
    if (metrics_.track_step != nullptr) {
      for (const double observation : deferred_track_obs) {
        metrics_.track_step->observe(observation);
      }
    }
    deferred_track_obs.clear();
  };
  obs::Tracer* tracer = nullptr;
  if (options_.collect_trace) {
    result.tracer = std::make_shared<obs::Tracer>();
    tracer = result.tracer.get();
  }
  // Causal tracing: every window mints a deterministic trace id from this
  // seed.  It rides the span log, so no tracer means no tracing — and the
  // wire stays byte-identical V1 (the bit-identity tests rely on that).
  std::uint64_t trace_seed = tracer != nullptr ? options_.trace_seed : 0;
  obs::FlightRecorder* flight = options_.flight;
  channel.set_flight_recorder(flight);
  if (options_.crashpoints != nullptr) {
    options_.crashpoints->set_flight_recorder(flight);
  }

  // Time-series scraping + alerting, both strictly opt-in: disabled, no
  // hook runs anywhere in the loop and the run is bit-identical to a
  // build without this subsystem.
  std::shared_ptr<obs::TimeSeriesStore> series_store;
  std::optional<obs::TimeSeriesScraper> scraper;
  std::shared_ptr<obs::AlertEngine> alert_engine;
  if (options_.timeseries.enabled && options_.metrics != nullptr) {
    // These families measure *host* time (ScopedTimer / search wall
    // clock), so their values differ between identical seeded runs.
    // Excluding them keeps the exported JSONL bit-identical run to run;
    // every other family the pipeline records is virtual-clock driven.
    obs::TimeSeriesOptions scrape_options = options_.timeseries;
    for (const char* family :
         {"emap_search_wall_seconds", "emap_codec_encode_seconds",
          "emap_codec_decode_seconds"}) {
      scrape_options.skip_families.emplace_back(family);
    }
    series_store = std::make_shared<obs::TimeSeriesStore>(scrape_options);
    scraper.emplace(options_.metrics, series_store.get());
    result.series = series_store;
    if (options_.alerts_enabled) {
      obs::AlertEngine::Hooks hooks;
      hooks.registry = options_.metrics;
      hooks.tracer = tracer;
      hooks.flight = flight;
      alert_engine = std::make_shared<obs::AlertEngine>(
          options_.alert_rules.empty() ? obs::default_alert_rules()
                                       : options_.alert_rules,
          hooks);
      result.alerts = alert_engine;
    }
  }

  // Fresh per run (runs are independent); the registry-side emap_slo_*
  // counters accumulate across runs like every other pipeline metric.
  obs::SloMonitor edge_slo(obs::edge_iteration_slo(), options_.metrics);
  obs::SloMonitor initial_slo(obs::initial_response_slo(), options_.metrics);
  std::optional<PendingSearch> pending;
  bool first_round_trip_recorded = false;
  std::int64_t last_loaded_sequence = -1;
  double total_track_sec = 0.0;
  std::size_t track_steps = 0;
  double last_window_end_sec = 0.0;

  // ---- Crash-consistent checkpoint/restore (robust/checkpoint.hpp). ----
  robust::CrashPointRegistry* crashpoints = options_.crashpoints;
  const robust::RecoveryOptions& recovery = options_.recovery;
  robust::RecoverySummary& recovery_summary = result.robust.recovery;
  recovery_summary.enabled = recovery.enabled();
  const std::string config_fp = config_.fingerprint();
  const std::uint32_t input_fp = crc32(
      input.samples.data(), input.samples.size() * sizeof(double));
  // Baselines carried over from a restored snapshot for components whose
  // own counters restart at zero in the resumed process (watchdog trips,
  // quality-gate verdicts); folded back in at summary time.
  std::size_t watchdog_trips_base = 0;
  robust::QualitySummary quality_base{};
  std::size_t start_window = 0;

  if (recovery.enabled() && recovery.resume) {
    try {
      std::optional<robust::SessionState> snapshot =
          robust::read_checkpoint(recovery.checkpoint_dir);
      if (!snapshot.has_value()) {
        throw robust::CheckpointError("checkpoint: no snapshot in " +
                                      recovery.checkpoint_dir.string());
      }
      if (snapshot->config_fingerprint != config_fp) {
        throw robust::CheckpointError(
            "checkpoint: config fingerprint mismatch (snapshot " +
            snapshot->config_fingerprint + ", pipeline " + config_fp + ")");
      }
      if (snapshot->input_fingerprint != input_fp) {
        throw robust::CheckpointError(
            "checkpoint: input fingerprint mismatch — snapshot belongs to "
            "a different recording");
      }
      if (!snapshot->stream_fingerprint.empty()) {
        throw robust::CheckpointError(
            "checkpoint: stream topology mismatch (snapshot \"" +
            snapshot->stream_fingerprint +
            "\", batch loop takes only virtual-time snapshots)");
      }
      robust::SessionState& s = *snapshot;
      std::vector<TrackedSignal> tracked;
      tracked.reserve(s.tracker.tracked.size());
      for (robust::TrackedSignalState& signal : s.tracker.tracked) {
        tracked.push_back(from_signal_state(std::move(signal)));
      }
      edge.tracker().restore(
          std::move(tracked), s.tracker.loaded,
          static_cast<std::size_t>(s.tracker.steps_since_load));
      edge.predictor().restore(
          std::move(s.predictor.history), s.predictor.alarmed,
          s.predictor.alarm_time_sec,
          static_cast<std::size_t>(s.predictor.consecutive));
      edge.filter().restore_stream(s.fir);
      if (controller) {
        controller->restore(s.degrade);
      }
      if (breaker) {
        breaker->restore(s.breaker);
      }
      edge_slo.restore_state(s.edge_slo);
      initial_slo.restore_state(s.initial_slo);
      injector.restore(s.injector);
      channel.restore_rng(s.channel_rng);
      if (trace_seed != 0 && s.trace_seed != 0) {
        // Re-adopt the writing run's seed: windows keep the trace ids the
        // uninterrupted run would have minted — lineage survives the crash.
        trace_seed = s.trace_seed;
      }
      if (s.pending.has_value()) {
        pending = from_call_checkpoint(std::move(*s.pending));
      }
      last_pa = s.last_pa;
      last_loaded_sequence = s.last_loaded_sequence;
      first_round_trip_recorded = s.counters.first_round_trip_recorded;
      total_track_sec = s.counters.total_track_sec;
      track_steps = static_cast<std::size_t>(s.counters.track_steps);
      result.cloud_calls = static_cast<std::size_t>(s.counters.cloud_calls);
      result.failed_cloud_calls =
          static_cast<std::size_t>(s.counters.failed_cloud_calls);
      result.retry_attempts =
          static_cast<std::size_t>(s.counters.retry_attempts);
      result.duplicates_discarded =
          static_cast<std::size_t>(s.counters.duplicates_discarded);
      result.degraded = s.counters.degraded;
      result.timings.delta_ec_sec = s.counters.delta_ec_sec;
      result.timings.delta_cs_sec = s.counters.delta_cs_sec;
      result.timings.delta_ce_sec = s.counters.delta_ce_sec;
      result.timings.delta_initial_sec = s.counters.delta_initial_sec;
      result.timings.max_track_sec = s.counters.max_track_sec;
      result.robust.critical_windows =
          static_cast<std::size_t>(s.counters.critical_windows);
      result.robust.shed_loads =
          static_cast<std::size_t>(s.counters.shed_loads);
      result.robust.deferred_flushes =
          static_cast<std::size_t>(s.counters.deferred_flushes);
      watchdog_trips_base =
          static_cast<std::size_t>(s.counters.watchdog_trips);
      quality_base = s.counters.quality;
      start_window = static_cast<std::size_t>(s.next_window);
      recovery_summary.resumed = true;
      recovery_summary.resume_window = start_window;
      if (metrics_.recovery_resumes != nullptr) {
        metrics_.recovery_resumes->increment();
        metrics_.recovery_resume_window->set(
            static_cast<double>(start_window));
      }
      const std::uint64_t resume_trace =
          trace_seed != 0 ? obs::mint_trace_id(trace_seed, start_window)
                          : 0;
      if (tracer != nullptr) {
        const double t_resume = static_cast<double>(start_window);
        tracer->record_sim("recovery_resume", "recovery", t_resume,
                           t_resume, 0, resume_trace);
      }
      if (flight != nullptr) {
        flight->log(obs::FlightEventType::kResume, "resume",
                    static_cast<double>(start_window), resume_trace,
                    static_cast<double>(start_window));
      }
    } catch (const robust::CheckpointError& error) {
      // Missing or rejected snapshot: fail closed in strict mode, fall
      // back to a cold start otherwise (the run is then a fresh session).
      if (recovery.strict) {
        throw;
      }
      recovery_summary.cold_start_fallback = true;
      recovery_summary.reject_reason = error.what();
      if (metrics_.recovery_cold_starts != nullptr) {
        metrics_.recovery_cold_starts->increment();
      }
    }
  }

  auto write_session_checkpoint = [&](std::size_t next_window) {
    robust::SessionState s;
    s.config_fingerprint = config_fp;
    s.input_fingerprint = input_fp;
    s.next_window = next_window;
    s.last_pa = last_pa;
    s.last_loaded_sequence = last_loaded_sequence;
    s.counters.cloud_calls = result.cloud_calls;
    s.counters.failed_cloud_calls = result.failed_cloud_calls;
    s.counters.retry_attempts = result.retry_attempts;
    s.counters.duplicates_discarded = result.duplicates_discarded;
    s.counters.degraded = result.degraded;
    s.counters.first_round_trip_recorded = first_round_trip_recorded;
    s.counters.delta_ec_sec = result.timings.delta_ec_sec;
    s.counters.delta_cs_sec = result.timings.delta_cs_sec;
    s.counters.delta_ce_sec = result.timings.delta_ce_sec;
    s.counters.delta_initial_sec = result.timings.delta_initial_sec;
    s.counters.total_track_sec = total_track_sec;
    s.counters.track_steps = track_steps;
    s.counters.max_track_sec = result.timings.max_track_sec;
    s.counters.critical_windows = result.robust.critical_windows;
    s.counters.shed_loads = result.robust.shed_loads;
    s.counters.deferred_flushes = result.robust.deferred_flushes;
    s.counters.watchdog_trips =
        watchdog_trips_base + (watchdog ? watchdog->trips() : 0);
    s.counters.quality =
        quality ? quality->summary() : robust::QualitySummary{};
    s.counters.quality.assessed += quality_base.assessed;
    s.counters.quality.good += quality_base.good;
    s.counters.quality.nan += quality_base.nan;
    s.counters.quality.flatline += quality_base.flatline;
    s.counters.quality.saturated += quality_base.saturated;
    s.counters.quality.artifact += quality_base.artifact;
    s.tracker.loaded = edge.tracker().loaded();
    s.tracker.steps_since_load = edge.tracker().steps_since_load();
    s.tracker.tracked.reserve(edge.tracker().active().size());
    for (const TrackedSignal& signal : edge.tracker().active()) {
      s.tracker.tracked.push_back(to_signal_state(signal));
    }
    s.predictor.history = edge.predictor().history();
    s.predictor.alarmed = edge.predictor().anomaly_predicted();
    s.predictor.alarm_time_sec = edge.predictor().first_alarm_sec();
    s.predictor.consecutive = edge.predictor().consecutive_hits();
    s.fir = edge.filter().save_stream();
    if (pending.has_value()) {
      s.pending = to_call_checkpoint(*pending);
    }
    if (controller) {
      s.degrade = controller->checkpoint();
    }
    if (breaker) {
      s.breaker = breaker->checkpoint();
    }
    s.edge_slo = edge_slo.save_state();
    s.initial_slo = initial_slo.save_state();
    s.injector = injector.save();
    s.channel_rng = channel.save_rng();
    s.trace_seed = trace_seed;
    robust::write_checkpoint(recovery.checkpoint_dir, s, crashpoints);
    ++recovery_summary.checkpoints_written;
    recovery_summary.last_snapshot_window = next_window;
    if (metrics_.recovery_checkpoints != nullptr) {
      metrics_.recovery_checkpoints->increment();
    }
    if (flight != nullptr) {
      flight->log(obs::FlightEventType::kCheckpoint, "checkpoint",
                  static_cast<double>(next_window),
                  trace_seed != 0 && next_window > 0
                      ? obs::mint_trace_id(trace_seed, next_window - 1)
                      : 0,
                  static_cast<double>(next_window));
    }
  };

  // One-shot flight-dump latches (a page or a breaker open is interesting
  // once; re-dumping every subsequent window would just thrash the file).
  bool slo_burn_paged = false;
  bool breaker_dumped = false;
  bool watchdog_dumped = false;
  bool watchdog_dump_pending = false;
  robust::BreakerState last_breaker_state =
      breaker ? breaker->state() : robust::BreakerState::kClosed;

  std::size_t window_count =
      std::min(options_.max_windows, input.samples.size() / window);
  if (options_.stop_on_alarm && edge.predictor().anomaly_predicted()) {
    // The restored predictor already latched its alarm; nothing is left to
    // monitor.
    window_count = start_window;
  }

  for (std::size_t w = start_window; w < window_count; ++w) {
    // Window w covers input time [w, w+1) seconds; processing happens at
    // its completion instant.
    const double t_end = static_cast<double>(w + 1);
    if (options_.stop_at_sec >= 0.0 && t_end > options_.stop_at_sec) {
      break;
    }
    EMAP_PROFILE_SCOPE("pipeline_window");
    EMAP_CRASH_POINT(crashpoints, "pipeline_window_start");
    const std::span<const double> raw(input.samples.data() + w * window,
                                      window);
    // The window's causal identity: a deterministic trace id (pure function
    // of seed and index) and a root span every edge- and cloud-side span of
    // this window hangs off, directly or over the wire.
    const std::uint64_t window_trace =
        trace_seed != 0 ? obs::mint_trace_id(trace_seed, w) : 0;
    std::uint64_t window_span = 0;
    if (tracer != nullptr) {
      window_span =
          tracer->record_sim("window_" + std::to_string(w), "window",
                             t_end - 1.0, t_end, 0, window_trace);
      tracer->record_sim("sample", "sample", t_end - 1.0, t_end,
                         window_span, window_trace);
      tracer->record_sim("filter", "filter", t_end,
                         t_end + options_.filter_accelerator_sec,
                         window_span, window_trace);
    }
    if (flight != nullptr) {
      flight->log(obs::FlightEventType::kSpan,
                  ("window_" + std::to_string(w)).c_str(), t_end,
                  window_trace, static_cast<double>(w));
    }
    const auto filtered = edge.acquire_window(raw);

    IterationRecord record;
    record.window_index = w;
    record.t_sec = t_end;
    record.recovered = recovery_summary.resumed;
    record.quality = edge.last_quality().verdict;
    if (metrics_.windows != nullptr) {
      metrics_.windows->increment();
    }

    // Apply the controller's decisions from the state the previous window
    // left behind (act on state, run the window, feed the outcome back).
    std::size_t shed_cap = 0;
    if (controller) {
      record.robust_state = controller->state();
      edge.tracker().set_stride_multiplier(controller->stride_multiplier());
      if (controller->shed_level() > 0) {
        shed_cap = controller->tracked_cap(config_.top_k);
        edge.tracker().set_recall_threshold(controller->recall_threshold(
            config_.tracking_threshold_h, config_.top_k));
        edge.tracker().shed_to(shed_cap);
      } else {
        edge.tracker().set_recall_threshold(0);
      }
      record.shed_cap = shed_cap;
    }

    // Deliver a completed cloud search (the paper reloads T wholesale; the
    // edge kept tracking the old set in the meantime).
    if (pending && pending->ready_at_sec <= t_end) {
      result.retry_attempts +=
          pending->attempts > 0 ? pending->attempts - 1 : 0;
      result.duplicates_discarded += pending->duplicates;
      if (pending->succeeded &&
          static_cast<std::int64_t>(pending->sequence) >
              last_loaded_sequence) {
        last_loaded_sequence =
            static_cast<std::int64_t>(pending->sequence);
        if (shed_cap > 0 && pending->correlation_set.size() > shed_cap) {
          // Deliveries issued before shedding kicked in still carry the
          // full top-k set; truncate to the active cap.
          pending->correlation_set.resize(shed_cap);
          ++result.robust.shed_loads;
        }
        edge.tracker().load(std::move(pending->correlation_set));
        record.set_loaded = true;
        record.pa_on_load = edge.tracker().anomaly_probability();
        const double initial_sec =
            pending->delta_ec + pending->delta_cs + pending->delta_ce;
        initial_slo.observe(initial_sec);
        if (flight != nullptr &&
            initial_sec > initial_slo.spec().budget_sec) {
          flight->log(obs::FlightEventType::kSloMiss, "initial_response",
                      t_end, pending->trace.trace_id, initial_sec,
                      initial_slo.spec().budget_sec);
        }
        if (!first_round_trip_recorded) {
          result.timings.delta_ec_sec = pending->delta_ec;
          result.timings.delta_cs_sec = pending->delta_cs;
          result.timings.delta_ce_sec = pending->delta_ce;
          result.timings.delta_initial_sec =
              pending->delta_ec + pending->delta_cs + pending->delta_ce;
          first_round_trip_recorded = true;
        }
        ++result.cloud_calls;
      } else {
        // Retries exhausted (or the response was stale): degrade — keep
        // tracking whatever set is loaded and re-attempt on the next
        // iteration that wants a cloud call.
        record.degraded = true;
        result.degraded = true;
        ++result.failed_cloud_calls;
        if (metrics_.degraded_windows != nullptr) {
          metrics_.degraded_windows->increment();
        }
      }
      pending.reset();
    }

    const bool quality_bad = quality && !edge.last_quality().good();
    bool stage_stuck = false;
    bool observed_latency = false;
    double step_latency = 0.0;
    robust::CircuitBreaker* breaker_ptr = breaker ? &*breaker : nullptr;

    if (controller && controller->critical()) {
      // CRITICAL: tracking is suspended; serve the last-known P_A with the
      // explicit stale flag and wait out the hold.
      record.robust_critical = true;
      record.anomaly_probability = last_pa;
      ++result.robust.critical_windows;
    } else if (quality_bad) {
      // Quality-gated window: the FIR consumed it (stream continuity) but
      // it must not reach tracking or P_A — an electrode pop would evict
      // half the tracked set as "dissimilar".
      record.anomaly_probability = last_pa;
    } else if (edge.tracker().loaded()) {
      EMAP_CRASH_POINT(crashpoints, "pipeline_tracker_step");
      const TrackStepResult step = edge.tracker().step(filtered);
      record.tracked = true;
      record.anomaly_probability = step.anomaly_probability;
      record.tracked_before = step.tracked_before;
      record.tracked_after = step.tracked_after;
      record.removed_dissimilar = step.removed_dissimilar;
      record.removed_exhausted = step.removed_exhausted;
      record.abs_ops = step.abs_ops;
      record.track_device_sec =
          edge_device_.seconds_for_abs(static_cast<double>(step.abs_ops)) +
          edge_device_.per_signal_overhead_sec *
              static_cast<double>(step.tracked_before);
      total_track_sec += record.track_device_sec;
      edge_slo.observe(record.track_device_sec);
      if (flight != nullptr &&
          record.track_device_sec > edge_slo.spec().budget_sec) {
        flight->log(obs::FlightEventType::kSloMiss, "edge_iteration", t_end,
                    window_trace, record.track_device_sec,
                    edge_slo.spec().budget_sec);
      }
      result.timings.max_track_sec =
          std::max(result.timings.max_track_sec, record.track_device_sec);
      ++track_steps;
      last_pa = step.anomaly_probability;
      observed_latency = true;
      step_latency = record.track_device_sec;
      if (watchdog) {
        stage_stuck = watchdog->check_stage(record.track_device_sec);
      }
      if (controller && controller->defer_flushes()) {
        // Non-essential telemetry deferred while degraded; the latency
        // histogram catches up once the controller returns to NOMINAL.
        deferred_track_obs.push_back(record.track_device_sec);
        ++result.robust.deferred_flushes;
      } else if (metrics_.track_step != nullptr) {
        metrics_.track_step->observe(record.track_device_sec);
      }
      if (tracer != nullptr) {
        tracer->record_sim("edge-track", "edge-track", t_end,
                           t_end + record.track_device_sec, window_span,
                           window_trace);
        tracer->record_sim("prediction", "prediction",
                           t_end + record.track_device_sec,
                           t_end + record.track_device_sec + 1e-3,
                           window_span, window_trace);
      }
      if (step.tracked_after >= config_.predict_min_support) {
        edge.predictor().observe(step.anomaly_probability, t_end);
      }

      // "The previous set of sampled signals is transmitted to the cloud
      // ... while doing real-time signal tracking at the edge in parallel."
      if (step.cloud_call_needed && !pending) {
        if (breaker_ptr != nullptr && !breaker_ptr->allow(t_end)) {
          record.breaker_rejected = true;
          if (tracer != nullptr) {
            tracer->record_sim("breaker_reject", "robust", t_end, t_end,
                               window_span, window_trace);
          }
          if (flight != nullptr) {
            flight->log(obs::FlightEventType::kShed, "breaker_reject",
                        t_end, window_trace);
          }
        } else {
          EMAP_CRASH_POINT(crashpoints, "pipeline_pre_cloud_call");
          pending = executor_.issue(
              static_cast<std::uint32_t>(w), filtered, t_end, channel,
              retry, tracer, breaker_ptr,
              obs::TraceContext{window_trace, window_span});
          EMAP_CRASH_POINT(crashpoints, "pipeline_post_cloud_call");
          record.cloud_call_issued = true;
        }
      }
    } else if (!pending) {
      // Cold start: the very first window triggers the initial MDB search.
      if (breaker_ptr != nullptr && !breaker_ptr->allow(t_end)) {
        record.breaker_rejected = true;
        if (tracer != nullptr) {
          tracer->record_sim("breaker_reject", "robust", t_end, t_end,
                             window_span, window_trace);
        }
        if (flight != nullptr) {
          flight->log(obs::FlightEventType::kShed, "breaker_reject", t_end,
                      window_trace);
        }
      } else {
        EMAP_CRASH_POINT(crashpoints, "pipeline_pre_cloud_call");
        pending = executor_.issue(static_cast<std::uint32_t>(w), filtered,
                                  t_end, channel, retry, tracer,
                                  breaker_ptr,
                                  obs::TraceContext{window_trace,
                                                    window_span});
        EMAP_CRASH_POINT(crashpoints, "pipeline_post_cloud_call");
        record.cloud_call_issued = true;
      }
    }

    // Close the loop: feed the window's outcome back into the controller.
    if (controller) {
      robust::WindowSignal signal;
      signal.window_index = w;
      signal.t_sec = t_end;
      signal.burn_rate = edge_slo.burn_rate();
      signal.stage_stuck = stage_stuck;
      if (observed_latency) {
        const obs::SloSpec& spec = edge_slo.spec();
        signal.deadline_miss = step_latency > spec.budget_sec;
        signal.near_miss =
            !signal.deadline_miss &&
            step_latency > spec.near_miss_fraction * spec.budget_sec;
      } else {
        signal.no_observation = true;
      }
      const robust::DegradeState state_before = controller->state();
      controller->observe_window(signal);
      const robust::DegradeState state_after = controller->state();
      if (flight != nullptr && state_after != state_before) {
        flight->log(obs::FlightEventType::kRobustTransition,
                    (std::string(robust::degrade_state_name(state_before)) +
                     "_to_" + robust::degrade_state_name(state_after))
                        .c_str(),
                    t_end, window_trace);
        // A watchdog trip that forces CRITICAL is exactly the moment the
        // flight recorder exists for — the stuck step and everything that
        // led to it are still in the ring.  Latched like the breaker-open
        // and burn-page dumps, but written *after* this window's burn-page
        // check below: the stuck step usually pages the edge SLO in the
        // same window, and CRITICAL is the more severe verdict, so it
        // should own the (single) dump file.
        if (signal.stage_stuck &&
            state_after == robust::DegradeState::kCritical &&
            !watchdog_dumped) {
          watchdog_dumped = true;
          watchdog_dump_pending = true;
        }
      }
      if (!controller->defer_flushes()) {
        flush_deferred();
      }
    }

    // Breaker state can flip anywhere inside the window (allow() or a
    // failure recorded mid-call); detect the edge here, once per window.
    if (breaker && flight != nullptr) {
      const robust::BreakerState breaker_state = breaker->state();
      if (breaker_state != last_breaker_state) {
        if (breaker_state == robust::BreakerState::kOpen) {
          flight->log(obs::FlightEventType::kBreakerOpen, "breaker_open",
                      t_end, window_trace);
          if (tracer != nullptr) {
            tracer->record_sim("breaker_open", "robust", t_end, t_end,
                               window_span, window_trace);
          }
          if (!breaker_dumped) {
            breaker_dumped = true;
            flight->trigger_dump("breaker_open");
          }
        } else if (breaker_state == robust::BreakerState::kClosed) {
          flight->log(obs::FlightEventType::kBreakerClose, "breaker_close",
                      t_end, window_trace);
        }
        last_breaker_state = breaker_state;
      }
    }
    // A burning error budget is the page the flight recorder exists for:
    // dump the ring once, while the events leading up to it are still in.
    if (flight != nullptr && !slo_burn_paged) {
      const bool edge_burning = !edge_slo.healthy();
      if (edge_burning || !initial_slo.healthy()) {
        slo_burn_paged = true;
        obs::SloMonitor& burning = edge_burning ? edge_slo : initial_slo;
        flight->log(obs::FlightEventType::kSloBurnPage,
                    burning.spec().name.c_str(), t_end, window_trace,
                    burning.burn_rate());
        flight->trigger_dump("slo_burn_page");
      }
    }
    if (flight != nullptr && watchdog_dump_pending) {
      watchdog_dump_pending = false;
      flight->trigger_dump("watchdog_critical");
    }

    // Scrape on the virtual clock at the window boundary; alert rules see
    // the store immediately after, attributed to this window's trace.
    if (scraper) {
      last_window_end_sec = t_end;
      if (scraper->maybe_scrape(t_end) && alert_engine) {
        alert_engine->evaluate(*series_store, t_end, window_trace);
      }
    }

    result.iterations.push_back(record);
    EMAP_CRASH_POINT(crashpoints, "pipeline_window_end");
    // Snapshot at the window boundary (absolute index, so a resumed run
    // checkpoints at exactly the windows the uninterrupted run would).
    if (recovery.enabled() && (w + 1) % recovery.interval_windows == 0) {
      write_session_checkpoint(w + 1);
    }
    if (options_.stop_on_alarm && edge.predictor().anomaly_predicted()) {
      break;
    }
  }

  if (track_steps > 0) {
    result.timings.mean_track_sec =
        total_track_sec / static_cast<double>(track_steps);
  }
  result.anomaly_predicted = edge.predictor().anomaly_predicted();
  result.first_alarm_sec = edge.predictor().first_alarm_sec();
  // A run shorter than one scrape interval still exports one sample per
  // series (otherwise short smoke runs produce an empty file).
  if (scraper && series_store->scrapes() == 0) {
    scraper->scrape_now(last_window_end_sec);
    if (alert_engine) {
      alert_engine->evaluate(*series_store, last_window_end_sec, 0);
    }
  }
  result.slo = {edge_slo.summary(), initial_slo.summary()};
  flush_deferred();
  if (controller) {
    result.robust.degrade = controller->summary();
    if (tracer != nullptr) {
      for (const auto& transition : controller->transitions()) {
        // Attribute the transition to the window whose feedback caused it
        // (transitions land at window completion instants, t_sec = w + 1).
        const std::uint64_t transition_trace =
            trace_seed != 0 && transition.t_sec >= 1.0
                ? obs::mint_trace_id(
                      trace_seed,
                      static_cast<std::uint64_t>(transition.t_sec - 1.0))
                : 0;
        tracer->record_sim(
            std::string("robust_") +
                robust::degrade_state_name(transition.from) + "_to_" +
                robust::degrade_state_name(transition.to),
            "robust", transition.t_sec, transition.t_sec, 0,
            transition_trace);
      }
    }
  }
  if (breaker) {
    result.robust.breaker = breaker->summary();
  }
  if (quality) {
    result.robust.quality = quality->summary();
  }
  // Fold in pre-crash counts a restored snapshot carried (zeros otherwise).
  result.robust.quality.assessed += quality_base.assessed;
  result.robust.quality.good += quality_base.good;
  result.robust.quality.nan += quality_base.nan;
  result.robust.quality.flatline += quality_base.flatline;
  result.robust.quality.saturated += quality_base.saturated;
  result.robust.quality.artifact += quality_base.artifact;
  result.robust.watchdog_trips =
      watchdog_trips_base + (watchdog ? watchdog->trips() : 0);
  if (tracer != nullptr) {
    // The legacy Fig. 9 timeline is a projection of the span log.
    result.trace = obs::timeline_view(*tracer);
  }
  return result;
}

}  // namespace emap::core
