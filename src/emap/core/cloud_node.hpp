// The cloud node: hosts the mega-database and serves cross-correlation
// search requests (paper Fig. 3, middle).
#pragma once

#include <memory>
#include <span>

#include "emap/common/thread_pool.hpp"
#include "emap/core/config.hpp"
#include "emap/core/search.hpp"
#include "emap/mdb/store.hpp"
#include "emap/net/transport.hpp"
#include "emap/obs/metrics.hpp"

namespace emap::core {

/// Cloud-side service wrapping Algorithm 1 over an owned MdbStore.
class CloudNode {
 public:
  /// `threads` = 0 selects hardware concurrency; 1 disables parallelism.
  CloudNode(mdb::MdbStore store, const EmapConfig& config,
            std::size_t threads = 0);

  const mdb::MdbStore& store() const { return store_; }
  const EmapConfig& config() const { return config_; }

  /// Runs Algorithm 1 for one filtered input window.
  SearchResult search(std::span<const double> input_window) const;

  /// Full request path: decodes nothing (message is already structured),
  /// runs the search, and packages the correlation set with the matched
  /// signal-sets' samples for download.
  net::CorrelationSetMessage respond(
      const net::SignalUploadMessage& request) const;

  /// Thread-safe respond: writes the search stats into `stats_out` instead
  /// of the shared last_stats() slot, so concurrent uplink workers can call
  /// it without racing on the timing accounting.
  net::CorrelationSetMessage respond(const net::SignalUploadMessage& request,
                                     SearchStats* stats_out) const;

  /// Stats of the most recent search (for timing accounting).  Only
  /// meaningful with single-threaded callers; concurrent paths use the
  /// stats-out respond overload.
  const SearchStats& last_stats() const { return last_stats_; }

  /// Attaches a telemetry registry (borrowed; nullptr disables).  Every
  /// search then records scan counters, the exponential-window skip ratio,
  /// and wall-time into `emap_search_*` metrics.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  EmapConfig config_;
  mdb::MdbStore store_;
  std::unique_ptr<ThreadPool> pool_;
  CrossCorrelationSearch searcher_;
  mutable SearchStats last_stats_{};

  /// Cached instrument handles (registry lookups happen once, in
  /// set_metrics, keeping the search hot path lock-free).
  struct SearchMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* sets_scanned = nullptr;
    obs::Counter* correlation_evals = nullptr;
    obs::Counter* candidates = nullptr;
    obs::Histogram* skip_ratio = nullptr;
    obs::Histogram* wall_seconds = nullptr;
  };
  SearchMetrics metrics_{};
};

}  // namespace emap::core
