// EmapPipeline: the closed-loop cloud-edge system (paper Fig. 3 + Fig. 9).
//
// Drives an input recording through the full framework — acquisition,
// upload, cloud search, download, edge tracking, prediction — while
// maintaining a virtual clock: the input advances one window per second of
// simulated time, transfers take Channel time, and compute takes
// DeviceProfile time, so the Fig. 9 timeline and Eq. 4's Δ_initial fall out
// of the run.
//
// Failure semantics: every cloud call runs under the edge's RetryPolicy.
// A message lost or corrupted in flight (net::FaultInjector) costs the
// edge one timeout, then a backoff, then a retry; when the policy's
// attempts or deadline are exhausted the pipeline degrades gracefully —
// it keeps tracking the stale correlation set (flagged `degraded` in the
// RunResult and report), and re-attempts the cloud call on the next
// iteration that wants one.  Timeouts guard message *loss*; a message
// that is merely delayed still arrives and is accepted late.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "emap/core/cloud_call.hpp"
#include "emap/core/cloud_node.hpp"
#include "emap/core/edge_node.hpp"
#include "emap/mdb/store.hpp"
#include "emap/net/channel.hpp"
#include "emap/net/fault.hpp"
#include "emap/net/retry.hpp"
#include "emap/obs/alert.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/slo.hpp"
#include "emap/obs/timeseries.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/trace_context.hpp"
#include "emap/robust/robust.hpp"
#include "emap/sim/device.hpp"
#include "emap/sim/trace.hpp"
#include "emap/synth/generator.hpp"

namespace emap::obs {
class FlightRecorder;
}

namespace emap::core {

/// Pipeline environment switches.
struct PipelineOptions {
  net::CommPlatform platform = net::CommPlatform::kLte;
  net::ChannelOptions channel{};
  /// Link fault model.  All probabilities default to zero, in which case
  /// the run is bit-identical to a fault-free pipeline.
  net::FaultOptions fault{};
  /// Edge-side retry/timeout/backoff policy for cloud calls.
  net::RetryOptions retry{};
  /// Route messages through encode/decode (includes the 16-bit wire
  /// quantization in the signal path, as the real system would).
  bool use_transport = true;
  /// Stop monitoring at this input time (seconds); negative = whole input.
  /// Used by the lead-time evaluation (Fig. 10): predictions made before
  /// `stop_at_sec` with the anomaly at onset_sec count at lead
  /// onset_sec - stop_at_sec.
  double stop_at_sec = -1.0;
  std::size_t max_windows = std::numeric_limits<std::size_t>::max();
  /// End the run at the first alarm (the alarm latches, so lead-time
  /// evaluation only needs first_alarm_sec).
  bool stop_on_alarm = false;
  /// Number of cloud worker threads (0 = hardware concurrency).
  std::size_t cloud_threads = 0;
  /// Collect the Fig. 9 activity trace (span log + TimelineTrace view).
  bool collect_trace = true;
  /// Seed for the per-window causal trace ids (obs::mint_trace_id).  With
  /// collect_trace on, every window mints a deterministic 64-bit trace id
  /// that rides the wire messages (V2 transport header) into the cloud and
  /// back, so edge and cloud spans of one window share a trace.  0 disables
  /// causal tracing — messages stay byte-identical V1 — as does
  /// collect_trace = false.
  std::uint64_t trace_seed = obs::kDefaultTraceSeed;
  /// Flight recorder (borrowed; nullptr disables): the pipeline logs window
  /// boundaries, SLO misses, robust transitions, retries, breaker events,
  /// and checkpoint/resume marks into the ring, and triggers a dump when
  /// the breaker opens or the edge SLO burn rate pages.  Also attached to
  /// the run's channel (fault verdicts) and, via options.crashpoints, the
  /// crash-point registry (crash dumps) when those are set.
  obs::FlightRecorder* flight = nullptr;
  /// Fixed latency of the edge's hard-coded filter accelerator.
  double filter_accelerator_sec = 0.002;
  /// Telemetry registry (borrowed; nullptr disables).  When set, the
  /// pipeline and every layer it drives (search, tracker, channel, codec,
  /// fault injector) record `emap_*` metrics into it, including the
  /// `emap_slo_*` families of the two paper budgets.
  obs::MetricsRegistry* metrics = nullptr;
  /// Device-model overrides (default: Raspberry Pi edge, i7 cloud).  A
  /// slower edge profile pushes track steps past the 1 s budget — which is
  /// how the SLO integration test provokes deadline misses on demand.
  std::optional<sim::DeviceProfile> edge_device;
  std::optional<sim::DeviceProfile> cloud_device;
  /// Closed-loop robustness subsystem: burn-rate-driven degradation
  /// controller, cloud-link circuit breaker, stuck-stage watchdog, and the
  /// signal-quality gate.  Defaults are behaviour-preserving on a clean
  /// run (the controller stays NOMINAL and nothing is shed or gated);
  /// robust.enabled = false removes every hook.
  robust::RobustOptions robust{};
  /// Crash-consistent checkpoint/restore (robust/checkpoint.hpp).  With a
  /// checkpoint_dir set, the pipeline snapshots the full resumable session
  /// state every `interval_windows` completed windows; with resume = true
  /// it restores the snapshot at run start and replays from the first
  /// un-checkpointed window — on a clean link the resumed P_A trajectory
  /// is bit-identical to the uninterrupted run's.
  robust::RecoveryOptions recovery{};
  /// Deterministic crash injection (borrowed; nullptr disables).  Armed
  /// points fire inside the window loop and the checkpoint writer; see
  /// robust::crash_point_catalog() for the registered names.
  robust::CrashPointRegistry* crashpoints = nullptr;
  /// Time-series scraping of options.metrics into per-series ring buffers
  /// (obs/timeseries.hpp).  Requires metrics != nullptr; scrapes happen at
  /// window boundaries on the virtual clock, so identical seeded runs
  /// export bit-identical series JSONL.  Disabled (the default) installs
  /// no hook at all — runs stay bit-identical to pre-time-series output.
  obs::TimeSeriesOptions timeseries{};
  /// Alert rules evaluated after every scrape (only with
  /// timeseries.enabled).  Empty installs obs::default_alert_rules();
  /// alerts_enabled = false evaluates nothing.
  std::vector<obs::AlertRule> alert_rules{};
  bool alerts_enabled = true;
};

/// Per-iteration record of the run.
struct IterationRecord {
  std::size_t window_index = 0;
  double t_sec = 0.0;                ///< virtual time at window completion
  bool set_loaded = false;           ///< a correlation set arrived here
  double pa_on_load = -1.0;          ///< P_A of the freshly loaded set
  bool tracked = false;              ///< a tracking step ran this window
  double anomaly_probability = 0.0;  ///< P_A after the step
  std::size_t tracked_before = 0;
  std::size_t tracked_after = 0;
  std::size_t removed_dissimilar = 0;
  std::size_t removed_exhausted = 0;
  bool cloud_call_issued = false;
  /// A cloud call exhausted its retries at this window; the edge kept the
  /// stale correlation set instead of loading a fresh one.
  bool degraded = false;
  double track_device_sec = 0.0;     ///< edge-device-model time of the step
  std::uint64_t abs_ops = 0;
  /// Degradation-controller state the window ran under (decisions apply
  /// from the state the *previous* window left behind; kNominal when the
  /// robust subsystem is off).
  robust::DegradeState robust_state = robust::DegradeState::kNominal;
  /// Tracked-set cap active this window (0 = uncapped).
  std::size_t shed_cap = 0;
  /// Quality-gate verdict of the raw window; anything but kGood excluded
  /// the window from tracking and P_A updates.
  robust::QualityVerdict quality = robust::QualityVerdict::kGood;
  /// The tracker wanted a cloud call but the circuit breaker was open.
  bool breaker_rejected = false;
  /// Tracking suspended (CRITICAL): anomaly_probability is the last-known
  /// P_A served stale.
  bool robust_critical = false;
  /// This window was executed by a run resumed from a checkpoint.
  bool recovered = false;
};

/// Eq. 4 decomposition of the first cloud round trip.
struct RunTimings {
  double delta_ec_sec = 0.0;   ///< edge -> cloud transfer
  double delta_cs_sec = 0.0;   ///< cloud search (device model)
  double delta_ce_sec = 0.0;   ///< cloud -> edge transfer
  double delta_initial_sec = 0.0;  ///< sum (Eq. 4)
  double mean_track_sec = 0.0;     ///< average edge iteration (device model)
  double max_track_sec = 0.0;
};

/// Outcome of one monitored input.
struct RunResult {
  std::vector<IterationRecord> iterations;
  bool anomaly_predicted = false;
  double first_alarm_sec = -1.0;
  std::size_t cloud_calls = 0;       ///< correlation sets delivered
  /// Cloud calls that exhausted every retry; the edge degraded to its
  /// stale set for those rounds.
  std::size_t failed_cloud_calls = 0;
  /// Retry attempts beyond the first, summed over all cloud calls.
  std::size_t retry_attempts = 0;
  /// Duplicate downloads discarded by the edge's sequence dedup.
  std::size_t duplicates_discarded = 0;
  /// True when any cloud call exhausted its retries during the run.
  bool degraded = false;
  RunTimings timings;
  /// Fig. 9 view of the span log below (kept for the ASCII renderer and
  /// existing callers; both are projections of the same spans).
  sim::TimelineTrace trace;
  /// Full span log of the run (null when options.collect_trace is false);
  /// export with obs::to_chrome_trace / obs::write_chrome_trace.
  std::shared_ptr<obs::Tracer> tracer;
  /// Verdicts of the paper's two latency budgets over this run
  /// (edge_iteration, initial_response); export with
  /// obs::write_slo_report.
  std::vector<obs::SloSummary> slo;
  /// Robustness controller-loop outcome (all zeros with enabled = false);
  /// export with robust::write_robust_summary.
  robust::RobustSummary robust;
  /// Scraped time series (null when options.timeseries.enabled is false);
  /// export with TimeSeriesStore::write_jsonl.
  std::shared_ptr<obs::TimeSeriesStore> series;
  /// Alert engine after the run — rule states and the transition log
  /// (null when time-series scraping or alerting is off); export with
  /// AlertEngine::write_jsonl.
  std::shared_ptr<obs::AlertEngine> alerts;

  /// P_A sequence across tracked iterations.
  std::vector<double> pa_history() const;
};

/// Checkpoint conversions shared by the batch loop and the streaming
/// engine (robust/checkpoint.hpp holds the serializable mirror types).
robust::TrackedSignalState to_signal_state(const TrackedSignal& signal);
TrackedSignal from_signal_state(robust::TrackedSignalState&& state);
robust::PendingCallCheckpoint to_call_checkpoint(const PendingSearch& call);
PendingSearch from_call_checkpoint(robust::PendingCallCheckpoint&& call);

/// The full framework instance.
class EmapPipeline {
 public:
  EmapPipeline(mdb::MdbStore store, EmapConfig config,
               PipelineOptions options = {});

  /// Monitors `input` (must be sampled at config.base_fs_hz) and returns
  /// the run record.  The pipeline resets per run; runs are independent.
  RunResult run(const synth::Recording& input);

  /// Same, overriding options().stop_at_sec for this run only (the Fig. 10
  /// lead-time sweep re-runs one pipeline at many stop points).
  RunResult run(const synth::Recording& input, double stop_at_sec);

  const CloudNode& cloud() const { return cloud_; }
  const EmapConfig& config() const { return config_; }
  const PipelineOptions& options() const { return options_; }

  /// Device profiles used for the virtual-time accounting.
  const sim::DeviceProfile& edge_device() const { return edge_device_; }
  const sim::DeviceProfile& cloud_device() const { return cloud_device_; }

 private:
  friend class StreamPipeline;

  EmapConfig config_;
  PipelineOptions options_;
  CloudNode cloud_;
  sim::DeviceProfile edge_device_;
  sim::DeviceProfile cloud_device_;
  /// The cloud round trip shared with the streaming uplink stage
  /// (core/cloud_call.hpp); the batch loop and the threaded engine issue
  /// calls through the same code.
  CloudCallExecutor executor_;

  /// Cached telemetry handles (resolved once in the constructor; all null
  /// when options.metrics is null).  Round-trip families live in the
  /// executor's CloudCallMetrics.
  struct PipelineMetrics {
    obs::Counter* windows = nullptr;
    obs::Counter* degraded_windows = nullptr;
    obs::Counter* recovery_checkpoints = nullptr;
    obs::Counter* recovery_resumes = nullptr;
    obs::Counter* recovery_cold_starts = nullptr;
    obs::Gauge* recovery_resume_window = nullptr;
    obs::Histogram* track_step = nullptr;
  };
  PipelineMetrics metrics_{};
};

}  // namespace emap::core
