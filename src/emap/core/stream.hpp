// StreamPipeline: the staged concurrent scheduler over EmapPipeline.
//
// The batch loop (pipeline.cpp) runs acquire → filter → deliver → track →
// predict inline, one window at a time, on the virtual clock.  This engine
// splits the same dataflow into supervised stage threads connected by
// bounded lock-free queues (common/bounded_queue.hpp):
//
//   acquire ─q_raw→ filter ─q_filtered→ track ─q_outcome→ predict
//                                        │  ▲
//                                 q_uplink  q_deliver
//                                        ▼  │
//                                  uplink workers (×N)
//
// so edge iteration overlaps in-flight cloud calls: while an uplink worker
// runs the MDB search of window w, the track stage is already stepping
// window w+1.  Backpressure is explicit — every queue is bounded, and the
// configured QueueFullPolicy decides what a full queue does to its
// producer (block, shed the oldest item, or degrade by dropping the
// newest).
//
// Scheduler modes:
//   kVirtualTime — single-threaded, delegates to EmapPipeline::run.  Bit-
//     identical to the batch loop by construction; every existing
//     bit-identity / checkpoint-resume / kernel-equivalence guarantee
//     carries over unchanged.  This is the default.
//   kThreaded — real concurrency with deliberately relaxed semantics:
//     * deliveries land at max(virtual ready time, compute arrival), so a
//       run is plausible rather than bit-identical;
//     * stop_on_alarm may admit a few extra in-flight windows before the
//       stop flag propagates back to the acquire stage;
//     * a stage crash (injected or real) loses at most its in-flight
//       window — the supervisor restarts the body and the queues retain
//       everything else;
//     * checkpoint/restore runs through a quiesce barrier: on cadence the
//       acquire stage stops admitting windows, the stages park in
//       topological order, the issued/applied ledger drains (bounded by
//       drain_timeout_sec — unsettled in-flight windows fall back to
//       to-replay entries in the snapshot), and the session state is
//       published with the same atomic temp-write+rename + CRC discipline
//       as the batch loop.  Resume rebuilds the stage graph from the
//       snapshot with the settled-ledger semantics above (≤1 in-flight
//       window per stage death re-delivered as failed/degraded).
//
// Robustness integration: a robust::StageSupervisor monitors per-stage
// wall-clock heartbeats, restarts stalled or crashed stages, and — after
// max_restarts — forces the DegradationController CRITICAL and shuts the
// run down.  Stage-queue occupancy feeds the controller each window as
// WindowSignal.queue_pressure, queue depths are exported as
// emap_stage_queue_depth{queue=...}, and supervisor interventions land in
// the flight recorder (kStageStall events + triggered dumps).  See
// docs/streaming.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "emap/core/pipeline.hpp"
#include "emap/robust/supervisor.hpp"

namespace emap::core {

/// Which engine executes the run.
enum class SchedulerMode {
  kVirtualTime,  ///< single-threaded batch loop (bit-identical, default)
  kThreaded,     ///< supervised stage threads over bounded queues
};

/// What a producer does when its outbound queue is full.
enum class QueueFullPolicy {
  kBlock,      ///< wait for space (lossless backpressure, default)
  kShedOldest, ///< discard the stalest queued item to admit the newest
  kDegrade,    ///< drop the newest item and flag the window degraded
};

/// Deterministic stage-fault injection for the soak suite: when the named
/// stage's work-item cursor reaches `at_cursor`, the fault fires once.
struct StageFaultSpec {
  enum class Kind {
    kStall,  ///< stop heartbeating (busy-sleep) until the supervisor aborts
    kCrash,  ///< throw from the stage body (supervisor restarts it)
  };
  std::string stage;             ///< supervised stage name ("track", ...)
  std::uint64_t at_cursor = 1;   ///< fires as the stage begins its
                                 ///< at_cursor-th work item (1-based)
  Kind kind = Kind::kStall;
  /// Upper bound on an injected stall (safety net if supervision is
  /// disabled; the supervisor normally aborts the stall much earlier).
  double stall_max_sec = 10.0;
};

/// Streaming scheduler knobs.
struct StreamOptions {
  SchedulerMode mode = SchedulerMode::kVirtualTime;
  /// Uplink worker threads = maximum overlapping cloud calls (each worker
  /// owns its own Channel + FaultInjector fork, so fault schedules stay
  /// deterministic per worker).
  std::size_t stage_threads = 2;
  /// Bound of every stage queue (rounded up to a power of two).
  std::size_t queue_capacity = 8;
  QueueFullPolicy policy = QueueFullPolicy::kBlock;
  /// Wall-clock heartbeat supervision of the stage threads.
  robust::SupervisorOptions supervisor{};
  /// Injected stage faults (kThreaded only; empty = none).
  std::vector<StageFaultSpec> faults{};
  /// Wall-clock bound on the checkpoint quiesce drain (kThreaded only):
  /// in-flight cloud calls that have not settled within this budget are
  /// recorded as to-replay entries instead of blocking the snapshot.
  double drain_timeout_sec = 1.0;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;

  /// Stream-topology fingerprint embedded in checkpoints: empty for
  /// kVirtualTime (batch snapshots stay bit-identical to v2 producers);
  /// for kThreaded a stable "threaded/workers=N/cap=N/policy=..." label.
  /// A resume under a different topology is an explicit reject, never a
  /// silent mismatch.
  std::string fingerprint() const;
};

/// Lowercase mode / policy labels for reports and CLIs.
const char* scheduler_mode_name(SchedulerMode mode);
const char* queue_full_policy_name(QueueFullPolicy policy);

/// The staged scheduler.  Borrows the pipeline: configuration, cloud node,
/// device models, and the cloud-call executor are shared with the batch
/// loop, so both engines run the same per-window code.
class StreamPipeline {
 public:
  explicit StreamPipeline(EmapPipeline& pipeline, StreamOptions options = {});

  /// Monitors `input` under the configured scheduler and returns the run
  /// record.  kVirtualTime delegates to EmapPipeline::run (bit-identical);
  /// kThreaded runs the supervised stage graph.
  RunResult run(const synth::Recording& input);

  const StreamOptions& options() const { return options_; }

 private:
  RunResult run_threaded(const synth::Recording& input);

  EmapPipeline& pipeline_;
  StreamOptions options_;
};

}  // namespace emap::core
