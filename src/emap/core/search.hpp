// Algorithm 1: the signal cross-correlation search.
//
// Scans every signal-set of the mega-database with an exponential sliding
// window: after evaluating the correlation ω at offset β, the offset
// advances by α^(ω-1) (clamped to [1, max_skip]) — low correlation jumps
// far, high correlation steps finely — and offsets whose ω exceeds δ become
// candidates.  The top-100 candidates by ω form the signal correlation set
// T that is transmitted to the edge.
//
// Deviation note (documented in DESIGN.md): the paper's pseudocode ends
// with "AscendingSort(SignalArray, ω); T = SignalArray(0:99)", which as
// written selects the *lowest* correlations; we sort descending, which is
// the evident intent ("top-100 signals, which have the maximum correlation
// with the input signal").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "emap/common/thread_pool.hpp"
#include "emap/core/config.hpp"
#include "emap/mdb/store.hpp"

namespace emap::core {

/// One entry of the signal correlation set T.
struct SearchMatch {
  std::size_t store_index = 0;  ///< position of the set within the store
  std::uint64_t set_id = 0;
  double omega = 0.0;           ///< normalized cross-correlation at β
  std::size_t beta = 0;         ///< matching offset within the signal-set
  bool anomalous = false;
  std::uint8_t class_tag = 0;
};

/// Cost and coverage accounting of one search.
struct SearchStats {
  std::uint64_t correlation_evals = 0;  ///< windows correlated
  std::uint64_t mac_ops = 0;            ///< correlation_evals * window length
  std::uint64_t candidates = 0;         ///< evaluations with ω > δ
  std::uint64_t sets_scanned = 0;
  /// Offsets an exhaustive scan would have evaluated (Σ per-set positions);
  /// the exponential window's savings are offsets_total - correlation_evals.
  std::uint64_t offsets_total = 0;
  double wall_seconds = 0.0;            ///< measured host time

  /// Fraction of candidate offsets the exponential window skipped
  /// (0 = exhaustive coverage, → 1 as the skip grows); 0 when nothing was
  /// scannable.
  double skip_ratio() const {
    if (offsets_total == 0) {
      return 0.0;
    }
    return 1.0 - static_cast<double>(correlation_evals) /
                     static_cast<double>(offsets_total);
  }
};

/// Search outcome: T plus its statistics.
struct SearchResult {
  std::vector<SearchMatch> matches;  ///< descending ω, at most top_k
  SearchStats stats;
};

/// Algorithm 1 over an MdbStore, optionally parallel across store shards.
class CrossCorrelationSearch {
 public:
  /// `pool` may be null (serial scan); the pool is borrowed, not owned.
  explicit CrossCorrelationSearch(const EmapConfig& config,
                                  ThreadPool* pool = nullptr);

  /// Runs the search for one input window (window_length samples).
  /// Results are deterministic and independent of the shard count.
  SearchResult search(std::span<const double> input_window,
                      const mdb::MdbStore& store) const;

  /// The exponential skip: clamp(round(α^(ω-1)), 1, max_skip) with ω
  /// clamped below at 0 (paper Algorithm 1 lines 9-12).
  std::size_t skip_for_omega(double omega) const;

 private:
  EmapConfig config_;
  ThreadPool* pool_;
};

/// Selects the top-k matches (descending ω, ties broken by set id then β)
/// from an unsorted candidate list.  Shared with the exhaustive baseline.
std::vector<SearchMatch> select_top_k(std::vector<SearchMatch> candidates,
                                      std::size_t k);

/// Samples per resident chunk of the cache-blocked MDB scan: the inner
/// scan loop never ranges over more than this many candidate offsets of
/// one signal-set before outer-loop bookkeeping runs.  Blocking is pure
/// iteration structure — the evaluated β sequence and every result are
/// identical for any block size (asserted by the search equivalence
/// tests).  32k samples (256 KiB) keeps a chunk plus the probe inside a
/// typical L2.
inline constexpr std::size_t kDefaultScanBlockSamples = 32768;

/// The active block size: the forced value if set, else $EMAP_SCAN_BLOCK
/// (samples; 0 disables blocking) read once per process, else
/// kDefaultScanBlockSamples.
std::size_t scan_block_samples();

/// Test hook: overrides the scan block size (0 disables blocking) until
/// reset with std::nullopt — the invariance tests sweep block sizes
/// within one process.
void force_scan_block(std::optional<std::size_t> block);

}  // namespace emap::core
