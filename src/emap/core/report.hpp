// Export of pipeline run results for offline analysis.
//
// The paper's figures are time series over the run (P_A trajectories,
// activity timelines).  These writers dump a RunResult in the two formats
// an analysis notebook actually wants: per-iteration CSV and a compact
// JSON summary.
#pragma once

#include <filesystem>
#include <string>

#include "emap/core/pipeline.hpp"

namespace emap::core {

/// Writes one CSV row per iteration:
///   window,t_sec,tracked,set_loaded,pa_on_load,anomaly_probability,
///   tracked_before,tracked_after,removed_dissimilar,removed_exhausted,
///   cloud_call_issued,degraded,track_device_sec
/// Throws IoError on filesystem failure.
void write_iterations_csv(const RunResult& result,
                          const std::filesystem::path& path);

/// Writes the Fig. 9-style activity trace as CSV:
///   kind,start_sec,end_sec,label
void write_trace_csv(const RunResult& result,
                     const std::filesystem::path& path);

/// Compact JSON summary (timings, alarm, cloud calls, iteration count) —
/// a flat object of scalars, no external JSON dependency needed.
std::string run_summary_json(const RunResult& result);

}  // namespace emap::core
