// The edge's cloud round trip, extracted from the pipeline loop so the
// batch pipeline and the streaming uplink stage run the *same* code: one
// retry loop with typed failure accounting, breaker feedback, Eq. 4 leg
// timing, and causal-trace propagation.
//
// Thread safety: issue() touches only thread-safe collaborators (CloudNode
// search via the stats-out overload, Tracer, FlightRecorder, metrics,
// CircuitBreaker) plus the Channel passed per call — the caller owns the
// channel's thread confinement (the streaming engine gives each uplink
// worker its own Channel + FaultInjector so the fault RNG streams stay
// deterministic per worker).
#pragma once

#include <cstdint>
#include <vector>

#include "emap/core/cloud_node.hpp"
#include "emap/core/config.hpp"
#include "emap/core/tracker.hpp"
#include "emap/net/channel.hpp"
#include "emap/net/retry.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/trace_context.hpp"
#include "emap/robust/breaker.hpp"
#include "emap/sim/device.hpp"

namespace emap::obs {
class FlightRecorder;
}

namespace emap::core {

/// One in-flight (or completed) cloud search: what the edge needs to
/// deliver the correlation set at its virtual ready time.
struct PendingSearch {
  double ready_at_sec = 0.0;
  std::vector<TrackedSignal> correlation_set;
  double delta_ec = 0.0;
  double delta_cs = 0.0;
  double delta_ce = 0.0;
  std::uint32_t sequence = 0;
  std::size_t attempts = 0;    ///< attempts actually started
  std::size_t duplicates = 0;  ///< duplicate deliveries deduped away
  bool succeeded = false;      ///< false = retries/deadline exhausted
  /// Causal chain of the issuing window (trace id + window root span).
  obs::TraceContext trace;
};

/// Telemetry handles of the round trip (all null = no recording).  Both
/// the pipeline constructor and the streaming engine resolve the same
/// family names through resolve(), so the instruments are shared.
struct CloudCallMetrics {
  obs::Counter* cloud_calls = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* retry_timeouts = nullptr;
  obs::Counter* rejects_timeout = nullptr;
  obs::Counter* rejects_corrupt = nullptr;
  obs::Counter* call_failures = nullptr;
  obs::Counter* duplicates_discarded = nullptr;
  obs::Histogram* retry_backoff = nullptr;
  obs::Histogram* delta_ec = nullptr;
  obs::Histogram* delta_cs = nullptr;
  obs::Histogram* delta_ce = nullptr;
  obs::Histogram* delta_initial = nullptr;
  obs::Histogram* encode = nullptr;
  obs::Histogram* decode = nullptr;

  /// Registers (or re-finds) every family in `registry`; all-null when
  /// registry is null.
  static CloudCallMetrics resolve(obs::MetricsRegistry* registry);
};

/// Stateless executor of one cloud round trip (Fig. 9's ΔEC + ΔCS + ΔCE
/// with the PR 2 failure semantics).  Borrows everything; the referenced
/// cloud node, config, and device profile must outlive it.
class CloudCallExecutor {
 public:
  CloudCallExecutor(const CloudNode* cloud, const EmapConfig* config,
                    const sim::DeviceProfile* cloud_device,
                    bool use_transport, obs::FlightRecorder* flight,
                    CloudCallMetrics metrics)
      : cloud_(cloud),
        config_(config),
        cloud_device_(cloud_device),
        use_transport_(use_transport),
        flight_(flight),
        metrics_(metrics) {}

  /// Runs the full retry loop for one upload at virtual time `now_sec`.
  /// `channel` must not be shared with a concurrent issue() call.
  PendingSearch issue(std::uint32_t sequence,
                      const std::vector<double>& filtered_window,
                      double now_sec, net::Channel& channel,
                      const net::RetryPolicy& retry, obs::Tracer* tracer,
                      robust::CircuitBreaker* breaker,
                      obs::TraceContext trace) const;

 private:
  const CloudNode* cloud_;
  const EmapConfig* config_;
  const sim::DeviceProfile* cloud_device_;
  bool use_transport_;
  obs::FlightRecorder* flight_;
  CloudCallMetrics metrics_;
};

}  // namespace emap::core
