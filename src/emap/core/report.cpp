#include "emap/core/report.hpp"

#include <fstream>
#include <sstream>

#include "emap/common/error.hpp"

namespace emap::core {
namespace {

std::ofstream open_for_write(const std::filesystem::path& path) {
  std::ofstream stream(path, std::ios::trunc);
  if (!stream) {
    throw IoError("report: cannot open " + path.string());
  }
  return stream;
}

}  // namespace

void write_iterations_csv(const RunResult& result,
                          const std::filesystem::path& path) {
  auto stream = open_for_write(path);
  stream << "window,t_sec,tracked,set_loaded,pa_on_load,"
            "anomaly_probability,tracked_before,tracked_after,"
            "removed_dissimilar,removed_exhausted,cloud_call_issued,"
            "degraded,track_device_sec,robust_state,shed_cap,quality,"
            "breaker_rejected,robust_critical,robust_recovered\n";
  for (const auto& record : result.iterations) {
    stream << record.window_index << ',' << record.t_sec << ','
           << (record.tracked ? 1 : 0) << ',' << (record.set_loaded ? 1 : 0)
           << ',' << record.pa_on_load << ',' << record.anomaly_probability
           << ',' << record.tracked_before << ',' << record.tracked_after
           << ',' << record.removed_dissimilar << ','
           << record.removed_exhausted << ','
           << (record.cloud_call_issued ? 1 : 0) << ','
           << (record.degraded ? 1 : 0) << ','
           << record.track_device_sec << ','
           << robust::degrade_state_name(record.robust_state) << ','
           << record.shed_cap << ','
           << robust::quality_verdict_name(record.quality) << ','
           << (record.breaker_rejected ? 1 : 0) << ','
           << (record.robust_critical ? 1 : 0) << ','
           << (record.recovered ? 1 : 0) << '\n';
  }
  if (!stream) {
    throw IoError("report: write failed for " + path.string());
  }
}

void write_trace_csv(const RunResult& result,
                     const std::filesystem::path& path) {
  auto stream = open_for_write(path);
  stream << "kind,start_sec,end_sec,label\n";
  for (const auto& activity : result.trace.activities()) {
    stream << sim::activity_name(activity.kind) << ',' << activity.start
           << ',' << activity.end << ',' << activity.label << '\n';
  }
  if (!stream) {
    throw IoError("report: write failed for " + path.string());
  }
}

std::string run_summary_json(const RunResult& result) {
  std::ostringstream json;
  json << "{";
  json << "\"iterations\":" << result.iterations.size() << ",";
  json << "\"cloud_calls\":" << result.cloud_calls << ",";
  json << "\"failed_cloud_calls\":" << result.failed_cloud_calls << ",";
  json << "\"retry_attempts\":" << result.retry_attempts << ",";
  json << "\"duplicates_discarded\":" << result.duplicates_discarded << ",";
  json << "\"degraded\":" << (result.degraded ? "true" : "false") << ",";
  json << "\"anomaly_predicted\":"
       << (result.anomaly_predicted ? "true" : "false") << ",";
  json << "\"first_alarm_sec\":" << result.first_alarm_sec << ",";
  json << "\"delta_ec_sec\":" << result.timings.delta_ec_sec << ",";
  json << "\"delta_cs_sec\":" << result.timings.delta_cs_sec << ",";
  json << "\"delta_ce_sec\":" << result.timings.delta_ce_sec << ",";
  json << "\"delta_initial_sec\":" << result.timings.delta_initial_sec
       << ",";
  json << "\"mean_track_sec\":" << result.timings.mean_track_sec << ",";
  json << "\"max_track_sec\":" << result.timings.max_track_sec;
  for (const auto& slo : result.slo) {
    json << ",\"slo_" << slo.name
         << "_deadline_misses\":" << slo.deadline_misses;
    json << ",\"slo_" << slo.name << "_near_misses\":" << slo.near_misses;
    json << ",\"slo_" << slo.name << "_burn_rate\":" << slo.burn_rate;
  }
  const robust::RobustSummary& rb = result.robust;
  json << ",\"robust_enabled\":" << (rb.enabled ? "true" : "false");
  json << ",\"robust_final_state\":\""
       << robust::degrade_state_name(rb.degrade.final_state) << "\"";
  json << ",\"robust_transitions\":" << rb.degrade.transitions;
  json << ",\"robust_max_shed_level\":" << rb.degrade.max_shed_level;
  json << ",\"robust_entered_degraded\":"
       << (rb.degrade.entered_degraded ? "true" : "false");
  json << ",\"robust_critical_windows\":" << rb.critical_windows;
  json << ",\"robust_breaker_opens\":" << rb.breaker.opens;
  json << ",\"robust_breaker_rejected\":" << rb.breaker.rejected;
  json << ",\"robust_quality_bad_windows\":" << rb.quality.bad();
  json << ",\"robust_watchdog_trips\":" << rb.watchdog_trips;
  json << ",\"robust_shed_loads\":" << rb.shed_loads;
  json << ",\"robust_recovered\":" << (rb.recovery.resumed ? "true" : "false");
  json << ",\"recovery_resume_window\":" << rb.recovery.resume_window;
  json << ",\"recovery_checkpoints_written\":"
       << rb.recovery.checkpoints_written;
  json << ",\"recovery_cold_start_fallback\":"
       << (rb.recovery.cold_start_fallback ? "true" : "false");
  json << "}";
  return json.str();
}

}  // namespace emap::core
