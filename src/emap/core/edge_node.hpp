// The edge sensor node: acquisition (sampling + streaming bandpass),
// upload packaging, tracking, and prediction (paper Fig. 3, right).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "emap/core/config.hpp"
#include "emap/core/predictor.hpp"
#include "emap/core/tracker.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/net/transport.hpp"

namespace emap::core {

/// Edge device state machine (acquisition side is stateful: the FIR runs in
/// streaming mode across window boundaries, like the paper's "hard-coded
/// accelerator" would).
class EdgeNode {
 public:
  explicit EdgeNode(const EmapConfig& config);

  /// Filters one raw input window (window_length samples); filter history
  /// carries across calls so consecutive windows form a continuous stream.
  std::vector<double> acquire_window(std::span<const double> raw_window);

  /// Packages a filtered window for upload (time-step `sequence`).
  net::SignalUploadMessage make_upload(
      std::uint32_t sequence, std::span<const double> filtered_window) const;

  EdgeTracker& tracker() { return tracker_; }
  const EdgeTracker& tracker() const { return tracker_; }
  AnomalyPredictor& predictor() { return predictor_; }
  const AnomalyPredictor& predictor() const { return predictor_; }

  const EmapConfig& config() const { return config_; }

  /// Clears filter history, tracker contents, and predictor state.
  void reset();

 private:
  EmapConfig config_;
  dsp::FirFilter filter_;
  EdgeTracker tracker_;
  AnomalyPredictor predictor_;
};

}  // namespace emap::core
