// The edge sensor node: acquisition (sampling + streaming bandpass),
// upload packaging, tracking, and prediction (paper Fig. 3, right).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "emap/core/config.hpp"
#include "emap/core/predictor.hpp"
#include "emap/core/tracker.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/net/transport.hpp"
#include "emap/robust/quality.hpp"

namespace emap::core {

/// Edge device state machine (acquisition side is stateful: the FIR runs in
/// streaming mode across window boundaries, like the paper's "hard-coded
/// accelerator" would).
class EdgeNode {
 public:
  explicit EdgeNode(const EmapConfig& config);

  /// Filters one raw input window (window_length samples); filter history
  /// carries across calls so consecutive windows form a continuous stream.
  std::vector<double> acquire_window(std::span<const double> raw_window);

  /// Packages a filtered window for upload (time-step `sequence`).
  net::SignalUploadMessage make_upload(
      std::uint32_t sequence, std::span<const double> filtered_window) const;

  EdgeTracker& tracker() { return tracker_; }
  const EdgeTracker& tracker() const { return tracker_; }
  AnomalyPredictor& predictor() { return predictor_; }
  const AnomalyPredictor& predictor() const { return predictor_; }
  /// The streaming acquisition filter (checkpoint support: its delay line
  /// carries across windows and must survive a resume).
  dsp::FirFilter& filter() { return filter_; }
  const dsp::FirFilter& filter() const { return filter_; }

  const EmapConfig& config() const { return config_; }

  /// Attaches the robustness signal-quality gate (borrowed; nullptr
  /// disables).  acquire_window then assesses each *raw* window before
  /// filtering — the FIR would smear a rail-flat or clipped segment into
  /// something plausible — and stores the verdict for last_quality().
  /// The window is always filtered regardless of verdict (streaming FIR
  /// continuity); exclusion from tracking is the pipeline's decision.
  void set_quality_gate(robust::SignalQualityGate* gate) {
    quality_gate_ = gate;
  }

  /// Verdict of the most recent acquire_window (kGood when no gate).
  const robust::QualityReport& last_quality() const { return last_quality_; }

  /// Clears filter history, tracker contents, and predictor state.
  void reset();

 private:
  EmapConfig config_;
  dsp::FirFilter filter_;
  EdgeTracker tracker_;
  AnomalyPredictor predictor_;
  robust::SignalQualityGate* quality_gate_ = nullptr;
  robust::QualityReport last_quality_{};
};

}  // namespace emap::core
