#include "emap/core/config.hpp"

#include "emap/common/error.hpp"

namespace emap::core {

void EmapConfig::validate() const {
  require(base_fs_hz > 0.0, "EmapConfig: base_fs_hz must be > 0");
  require(window_length >= 8, "EmapConfig: window_length must be >= 8");
  require(alpha > 0.0 && alpha < 1.0, "EmapConfig: alpha must be in (0, 1)");
  require(delta > -1.0 && delta < 1.0, "EmapConfig: delta must be in (-1, 1)");
  require(top_k > 0, "EmapConfig: top_k must be > 0");
  require(max_skip >= 1, "EmapConfig: max_skip must be >= 1");
  require(delta_area > 0.0, "EmapConfig: delta_area must be > 0");
  require(track_scan_stride >= 1,
          "EmapConfig: track_scan_stride must be >= 1");
  require(track_max_scan_offsets >= 1,
          "EmapConfig: track_max_scan_offsets must be >= 1");
  require(predict_high_probability > 0.0 && predict_high_probability <= 1.0,
          "EmapConfig: predict_high_probability must be in (0, 1]");
  require(predict_rise_threshold >= 0.0,
          "EmapConfig: predict_rise_threshold must be >= 0");
  require(predict_trend_window >= 2,
          "EmapConfig: predict_trend_window must be >= 2");
  require(predict_persistence >= 1,
          "EmapConfig: predict_persistence must be >= 1");
}

}  // namespace emap::core
