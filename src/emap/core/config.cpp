#include "emap/core/config.hpp"

#include <cstdio>

#include "emap/common/crc32.hpp"
#include "emap/common/error.hpp"

namespace emap::core {

void EmapConfig::validate() const {
  require(base_fs_hz > 0.0, "EmapConfig: base_fs_hz must be > 0");
  require(window_length >= 8, "EmapConfig: window_length must be >= 8");
  require(alpha > 0.0 && alpha < 1.0, "EmapConfig: alpha must be in (0, 1)");
  require(delta > -1.0 && delta < 1.0, "EmapConfig: delta must be in (-1, 1)");
  require(top_k > 0, "EmapConfig: top_k must be > 0");
  require(max_skip >= 1, "EmapConfig: max_skip must be >= 1");
  require(delta_area > 0.0, "EmapConfig: delta_area must be > 0");
  require(track_scan_stride >= 1,
          "EmapConfig: track_scan_stride must be >= 1");
  require(track_max_scan_offsets >= 1,
          "EmapConfig: track_max_scan_offsets must be >= 1");
  require(predict_high_probability > 0.0 && predict_high_probability <= 1.0,
          "EmapConfig: predict_high_probability must be in (0, 1]");
  require(predict_rise_threshold >= 0.0,
          "EmapConfig: predict_rise_threshold must be >= 0");
  require(predict_trend_window >= 2,
          "EmapConfig: predict_trend_window must be >= 2");
  require(predict_persistence >= 1,
          "EmapConfig: predict_persistence must be >= 1");
}

std::string EmapConfig::fingerprint() const {
  char canonical[512];
  const int written = std::snprintf(
      canonical, sizeof(canonical),
      "fs=%.9g;win=%zu;taps=%zu;lo=%.9g;hi=%.9g;alpha=%.9g;delta=%.9g;"
      "topk=%zu;skip=%zu;darea=%.9g;h=%zu;stride=%zu;scan=%zu;"
      "phigh=%.9g;rise=%.9g;pbase=%.9g;trend=%zu;support=%zu;persist=%zu",
      base_fs_hz, window_length, filter.taps, filter.low_cut_hz,
      filter.high_cut_hz, alpha, delta, top_k, max_skip, delta_area,
      tracking_threshold_h, track_scan_stride, track_max_scan_offsets,
      predict_high_probability, predict_rise_threshold,
      predict_base_probability, predict_trend_window, predict_min_support,
      predict_persistence);
  const std::uint32_t digest =
      crc32(canonical, static_cast<std::size_t>(written));
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08x", digest);
  return hex;
}

}  // namespace emap::core
