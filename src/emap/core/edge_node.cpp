#include "emap/core/edge_node.hpp"

#include "emap/common/error.hpp"

namespace emap::core {

EdgeNode::EdgeNode(const EmapConfig& config)
    : config_(config),
      filter_([&config] {
        dsp::FirDesign design = config.filter;
        design.sample_rate_hz = config.base_fs_hz;
        return dsp::FirFilter(design);
      }()),
      tracker_(config),
      predictor_(config) {
  config_.validate();
}

std::vector<double> EdgeNode::acquire_window(
    std::span<const double> raw_window) {
  require(raw_window.size() == config_.window_length,
          "EdgeNode::acquire_window: window length mismatch");
  if (quality_gate_ != nullptr) {
    last_quality_ = quality_gate_->assess(raw_window);
  } else {
    last_quality_ = robust::QualityReport{};
  }
  return filter_.process_block(raw_window);
}

net::SignalUploadMessage EdgeNode::make_upload(
    std::uint32_t sequence, std::span<const double> filtered_window) const {
  require(filtered_window.size() == config_.window_length,
          "EdgeNode::make_upload: window length mismatch");
  net::SignalUploadMessage message;
  message.sequence = sequence;
  message.samples.assign(filtered_window.begin(), filtered_window.end());
  return message;
}

void EdgeNode::reset() {
  filter_.reset();
  tracker_ = EdgeTracker(config_);
  predictor_.reset();
}

}  // namespace emap::core
