#include "emap/core/tracker.hpp"

#include <algorithm>
#include <chrono>

#include "emap/common/error.hpp"
#include "emap/dsp/area.hpp"
#include "emap/dsp/simd.hpp"
#include "emap/obs/profiler.hpp"

namespace emap::core {

EdgeTracker::EdgeTracker(const EmapConfig& config) : config_(config) {
  config_.validate();
}

void EdgeTracker::load(std::vector<TrackedSignal> correlation_set) {
  tracked_ = std::move(correlation_set);
  loaded_ = true;
  steps_since_load_ = 0;
  if (metrics_.staleness != nullptr) {
    metrics_.staleness->set(0.0);
  }
}

void EdgeTracker::load_from_search(const SearchResult& result,
                                   const mdb::MdbStore& store) {
  std::vector<TrackedSignal> set;
  set.reserve(result.matches.size());
  for (const auto& match : result.matches) {
    TrackedSignal signal;
    signal.set_id = match.set_id;
    signal.omega = match.omega;
    signal.beta = match.beta;
    signal.anomalous = match.anomalous;
    signal.class_tag = match.class_tag;
    signal.samples = store.at(match.store_index).samples;
    set.push_back(std::move(signal));
  }
  load(std::move(set));
}

void EdgeTracker::load_from_message(
    const net::CorrelationSetMessage& message) {
  std::vector<TrackedSignal> set;
  set.reserve(message.entries.size());
  for (const auto& entry : message.entries) {
    TrackedSignal signal;
    signal.set_id = entry.set_id;
    signal.omega = static_cast<double>(entry.omega);
    signal.beta = entry.beta;
    signal.anomalous = entry.anomalous != 0;
    signal.class_tag = entry.class_tag;
    signal.samples = entry.samples;
    set.push_back(std::move(signal));
  }
  load(std::move(set));
}

void EdgeTracker::restore(std::vector<TrackedSignal> correlation_set,
                          bool loaded, std::size_t steps_since_load) {
  tracked_ = std::move(correlation_set);
  loaded_ = loaded;
  steps_since_load_ = steps_since_load;
  if (metrics_.staleness != nullptr) {
    metrics_.staleness->set(static_cast<double>(steps_since_load_));
  }
  if (metrics_.set_size != nullptr) {
    metrics_.set_size->set(static_cast<double>(tracked_.size()));
  }
}

std::size_t EdgeTracker::shed_to(std::size_t cap) {
  if (cap == 0 || tracked_.size() <= cap) {
    return 0;
  }
  const std::size_t shed = tracked_.size() - cap;
  tracked_.resize(cap);
  if (metrics_.set_size != nullptr) {
    metrics_.set_size->set(static_cast<double>(tracked_.size()));
  }
  return shed;
}

void EdgeTracker::set_stride_multiplier(std::size_t multiplier) {
  require(multiplier >= 1,
          "EdgeTracker::set_stride_multiplier: multiplier must be >= 1");
  stride_multiplier_ = multiplier;
}

void EdgeTracker::set_recall_threshold(std::size_t threshold) {
  recall_threshold_override_ = threshold;
}

void EdgeTracker::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = TrackMetrics{};
    return;
  }
  metrics_.steps = &registry->counter("emap_tracker_steps_total", {},
                                      "Algorithm 2 iterations executed");
  metrics_.removed_dissimilar = &registry->counter(
      "emap_tracker_removed_total", {{"reason", "dissimilar"}},
      "Tracked signals removed per cause");
  metrics_.removed_exhausted = &registry->counter(
      "emap_tracker_removed_total", {{"reason", "exhausted"}},
      "Tracked signals removed per cause");
  metrics_.abs_ops = &registry->counter(
      "emap_tracker_abs_ops_total", {},
      "Early-exit ABS operations spent across all steps");
  metrics_.set_size = &registry->gauge(
      "emap_tracker_set_size", {}, "Signals tracked after the latest step");
  metrics_.staleness = &registry->gauge(
      "emap_tracker_staleness", {},
      "Tracking steps run since the last correlation-set load");
  metrics_.pa = &registry->histogram(
      "emap_tracker_pa", {}, obs::Histogram::linear_bounds(0.0, 1.0, 20),
      "Anomaly probability P_A per tracked step (Eq. 5)");
}

double EdgeTracker::anomaly_probability() const {
  if (tracked_.empty()) {
    return 0.0;
  }
  const auto anomalous = static_cast<double>(
      std::count_if(tracked_.begin(), tracked_.end(),
                    [](const TrackedSignal& s) { return s.anomalous; }));
  return anomalous / static_cast<double>(tracked_.size());
}

TrackStepResult EdgeTracker::step(std::span<const double> filtered_window) {
  TrackStepResult result;
  if (!loaded_) {
    return result;
  }
  require(filtered_window.size() == config_.window_length,
          "EdgeTracker::step: window length mismatch");
  // Work = early-exit ABS ops, the unit the edge device model charges for.
  // One stage-path literal per dispatch arm (ProfileScope keys by literal
  // identity) so flamegraphs separate scalar and AVX2 tracking time.
  obs::ProfileScope profile_scope(
      dsp::simd::active_level() == dsp::simd::Level::kAvx2
          ? "track_step[impl=avx2]"
          : "track_step[impl=scalar]");
  const auto start_time = std::chrono::steady_clock::now();

  const std::size_t window = config_.window_length;
  result.tracked_before = tracked_.size();
  ++steps_since_load_;

  std::vector<TrackedSignal> survivors;
  survivors.reserve(tracked_.size());
  for (auto& signal : tracked_) {
    if (signal.samples.size() < window ||
        signal.beta > signal.samples.size() - window) {
      ++result.removed_exhausted;
      continue;
    }
    const std::span<const double> samples(signal.samples);
    // Forward re-match scan from the current offset (Algorithm 2's
    // while-loop over W.β).  The range limit always derives from the
    // configured stride; a widened stride (degraded mode) probes the same
    // range with proportionally fewer area evaluations.
    const std::size_t stride =
        config_.track_scan_stride * stride_multiplier_;
    const std::size_t limit =
        std::min(signal.samples.size() - window,
                 signal.beta + config_.track_scan_stride *
                                   (config_.track_max_scan_offsets - 1));
    bool matched = false;
    for (std::size_t offset = signal.beta; offset <= limit;
         offset += stride) {
      const double area = dsp::area_between_capped_counted(
          filtered_window, samples.subspan(offset, window),
          config_.delta_area, result.abs_ops);
      if (area <= config_.delta_area) {
        signal.beta = offset;
        matched = true;
        break;
      }
    }
    if (matched) {
      survivors.push_back(std::move(signal));
    } else {
      ++result.removed_dissimilar;
    }
  }
  tracked_ = std::move(survivors);

  profile_scope.add_work(result.abs_ops);
  result.tracked_after = tracked_.size();
  result.anomaly_probability = anomaly_probability();
  const std::size_t recall_threshold = recall_threshold_override_ > 0
                                           ? recall_threshold_override_
                                           : config_.tracking_threshold_h;
  result.cloud_call_needed = tracked_.size() < recall_threshold;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  if (metrics_.steps != nullptr) {
    metrics_.steps->increment();
    metrics_.removed_dissimilar->increment(result.removed_dissimilar);
    metrics_.removed_exhausted->increment(result.removed_exhausted);
    metrics_.abs_ops->increment(result.abs_ops);
    metrics_.set_size->set(static_cast<double>(result.tracked_after));
    metrics_.staleness->set(static_cast<double>(steps_since_load_));
    metrics_.pa->observe(result.anomaly_probability);
  }
  return result;
}

}  // namespace emap::core
