#include "emap/core/cloud_node.hpp"

#include "emap/common/error.hpp"

namespace emap::core {

CloudNode::CloudNode(mdb::MdbStore store, const EmapConfig& config,
                     std::size_t threads)
    : config_(config),
      store_(std::move(store)),
      pool_(threads == 1 ? nullptr : std::make_unique<ThreadPool>(threads)),
      searcher_(config_, pool_.get()) {
  config_.validate();
}

void CloudNode::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = SearchMetrics{};
    return;
  }
  metrics_.requests = &registry->counter(
      "emap_search_requests_total", {}, "Cloud MDB searches served");
  metrics_.sets_scanned = &registry->counter(
      "emap_search_sets_scanned_total", {},
      "Signal-sets scanned across all searches");
  metrics_.correlation_evals = &registry->counter(
      "emap_search_correlation_evals_total", {},
      "Cross-correlation windows evaluated (Algorithm 1)");
  metrics_.candidates = &registry->counter(
      "emap_search_candidates_total", {},
      "Offsets exceeding the correlation threshold delta");
  metrics_.skip_ratio = &registry->histogram(
      "emap_search_skip_ratio", {}, obs::Histogram::linear_bounds(0.0, 1.0, 50),
      "Fraction of offsets skipped by the exponential window per search");
  metrics_.wall_seconds = &registry->histogram(
      "emap_search_wall_seconds", {}, obs::Histogram::default_latency_bounds(),
      "Measured host time of one MDB search");
}

SearchResult CloudNode::search(std::span<const double> input_window) const {
  SearchResult result = searcher_.search(input_window, store_);
  last_stats_ = result.stats;
  if (metrics_.requests != nullptr) {
    metrics_.requests->increment();
    metrics_.sets_scanned->increment(result.stats.sets_scanned);
    metrics_.correlation_evals->increment(result.stats.correlation_evals);
    metrics_.candidates->increment(result.stats.candidates);
    metrics_.skip_ratio->observe(result.stats.skip_ratio());
    metrics_.wall_seconds->observe(result.stats.wall_seconds);
  }
  return result;
}

net::CorrelationSetMessage CloudNode::respond(
    const net::SignalUploadMessage& request, SearchStats* stats_out) const {
  require(request.samples.size() == config_.window_length,
          "CloudNode::respond: bad request window length");
  // Same search path as search(), but the stats land in the caller's slot:
  // the shared mutable last_stats_ would be a data race under concurrent
  // uplink workers (metrics below are lock-free and safe).
  SearchResult result = searcher_.search(request.samples, store_);
  if (stats_out != nullptr) {
    *stats_out = result.stats;
  }
  if (metrics_.requests != nullptr) {
    metrics_.requests->increment();
    metrics_.sets_scanned->increment(result.stats.sets_scanned);
    metrics_.correlation_evals->increment(result.stats.correlation_evals);
    metrics_.candidates->increment(result.stats.candidates);
    metrics_.skip_ratio->observe(result.stats.skip_ratio());
    metrics_.wall_seconds->observe(result.stats.wall_seconds);
  }

  net::CorrelationSetMessage response;
  response.request_sequence = request.sequence;
  response.entries.reserve(result.matches.size());
  for (const auto& match : result.matches) {
    net::CorrelationEntry entry;
    entry.set_id = match.set_id;
    entry.omega = static_cast<float>(match.omega);
    entry.beta = static_cast<std::uint32_t>(match.beta);
    entry.anomalous = match.anomalous ? 1 : 0;
    entry.class_tag = match.class_tag;
    entry.samples = store_.at(match.store_index).samples;
    response.entries.push_back(std::move(entry));
  }
  return response;
}

net::CorrelationSetMessage CloudNode::respond(
    const net::SignalUploadMessage& request) const {
  require(request.samples.size() == config_.window_length,
          "CloudNode::respond: bad request window length");
  const SearchResult result = search(request.samples);

  net::CorrelationSetMessage response;
  response.request_sequence = request.sequence;
  response.entries.reserve(result.matches.size());
  for (const auto& match : result.matches) {
    net::CorrelationEntry entry;
    entry.set_id = match.set_id;
    entry.omega = static_cast<float>(match.omega);
    entry.beta = static_cast<std::uint32_t>(match.beta);
    entry.anomalous = match.anomalous ? 1 : 0;
    entry.class_tag = match.class_tag;
    entry.samples = store_.at(match.store_index).samples;
    response.entries.push_back(std::move(entry));
  }
  return response;
}

}  // namespace emap::core
