#include "emap/core/cloud_node.hpp"

#include "emap/common/error.hpp"

namespace emap::core {

CloudNode::CloudNode(mdb::MdbStore store, const EmapConfig& config,
                     std::size_t threads)
    : config_(config),
      store_(std::move(store)),
      pool_(threads == 1 ? nullptr : std::make_unique<ThreadPool>(threads)),
      searcher_(config_, pool_.get()) {
  config_.validate();
}

SearchResult CloudNode::search(std::span<const double> input_window) const {
  SearchResult result = searcher_.search(input_window, store_);
  last_stats_ = result.stats;
  return result;
}

net::CorrelationSetMessage CloudNode::respond(
    const net::SignalUploadMessage& request) const {
  require(request.samples.size() == config_.window_length,
          "CloudNode::respond: bad request window length");
  const SearchResult result = search(request.samples);

  net::CorrelationSetMessage response;
  response.request_sequence = request.sequence;
  response.entries.reserve(result.matches.size());
  for (const auto& match : result.matches) {
    net::CorrelationEntry entry;
    entry.set_id = match.set_id;
    entry.omega = static_cast<float>(match.omega);
    entry.beta = static_cast<std::uint32_t>(match.beta);
    entry.anomalous = match.anomalous ? 1 : 0;
    entry.class_tag = match.class_tag;
    entry.samples = store_.at(match.store_index).samples;
    response.entries.push_back(std::move(entry));
  }
  return response;
}

}  // namespace emap::core
