#include "emap/core/stream.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "emap/common/bounded_queue.hpp"
#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/robust/crashpoint.hpp"

namespace emap::core {

namespace {

/// acquire → filter: one raw input window plus its causal identity.
struct RawItem {
  std::size_t window_index = 0;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::vector<double> raw;
};

/// filter → track: the filtered window plus the quality verdict.
struct FilteredItem {
  std::size_t window_index = 0;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::vector<double> filtered;
  robust::QualityReport quality{};
};

/// track → uplink worker: one cloud-call job.
struct UplinkJob {
  std::uint32_t sequence = 0;
  double t_issue_sec = 0.0;
  obs::TraceContext trace{};
  std::vector<double> filtered;
};

/// track → predict: the finished window record.
struct OutcomeItem {
  IterationRecord record{};
  bool supports_predict = false;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;
};

/// One-shot injected fault, armed per StageFaultSpec.
struct FaultArm {
  StageFaultSpec spec;
  std::atomic<bool> fired{false};
};

}  // namespace

void StreamOptions::validate() const {
  require(stage_threads >= 1,
          "StreamOptions: stage_threads must be at least 1");
  require(queue_capacity >= 2,
          "StreamOptions: queue_capacity must be at least 2");
  supervisor.validate();
  for (const StageFaultSpec& fault : faults) {
    require(!fault.stage.empty(), "StreamOptions: fault stage name empty");
    require(fault.at_cursor >= 1,
            "StreamOptions: fault at_cursor is 1-based");
    require(fault.stall_max_sec > 0.0,
            "StreamOptions: fault stall_max_sec must be positive");
  }
}

const char* scheduler_mode_name(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kVirtualTime:
      return "virtual";
    case SchedulerMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}

const char* queue_full_policy_name(QueueFullPolicy policy) {
  switch (policy) {
    case QueueFullPolicy::kBlock:
      return "block";
    case QueueFullPolicy::kShedOldest:
      return "shed_oldest";
    case QueueFullPolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

StreamPipeline::StreamPipeline(EmapPipeline& pipeline, StreamOptions options)
    : pipeline_(pipeline), options_(options) {
  options_.validate();
}

RunResult StreamPipeline::run(const synth::Recording& input) {
  if (options_.mode == SchedulerMode::kVirtualTime) {
    // The deterministic scheduler IS the batch loop: bit-identity with
    // every existing replay / checkpoint / equivalence guarantee holds by
    // construction, not by re-implementation.
    return pipeline_.run(input);
  }
  return run_threaded(input);
}

RunResult StreamPipeline::run_threaded(const synth::Recording& input) {
  EmapPipeline& p = pipeline_;
  const EmapConfig& config = p.config_;
  const PipelineOptions& opts = p.options_;
  require(std::abs(input.fs() - config.base_fs_hz) < 1e-9,
          "StreamPipeline::run: input must be sampled at the base rate");
  const std::size_t window = config.window_length;
  require(input.samples.size() >= window,
          "StreamPipeline::run: input shorter than one window");

  EdgeNode edge(config);
  if (opts.metrics != nullptr) {
    edge.tracker().set_metrics(opts.metrics);
  }

  RunResult result;

  const bool robust_on = opts.robust.enabled;
  std::optional<robust::DegradationController> controller;
  std::optional<robust::CircuitBreaker> breaker;
  std::optional<robust::StageWatchdog> watchdog;
  std::optional<robust::SignalQualityGate> quality;
  if (robust_on) {
    controller.emplace(opts.robust.degrade, opts.metrics);
    breaker.emplace(opts.robust.breaker, opts.metrics);
    watchdog.emplace(opts.robust.watchdog, opts.metrics);
    if (opts.robust.quality_gate) {
      quality.emplace(opts.robust.quality, opts.metrics);
      edge.set_quality_gate(&*quality);
    }
  }
  result.robust.enabled = robust_on;
  result.robust.streamed = true;
  robust::CircuitBreaker* breaker_ptr = breaker ? &*breaker : nullptr;

  obs::Tracer* tracer = nullptr;
  if (opts.collect_trace) {
    result.tracer = std::make_shared<obs::Tracer>();
    tracer = result.tracer.get();
  }
  const std::uint64_t trace_seed =
      tracer != nullptr ? opts.trace_seed : 0;
  obs::FlightRecorder* flight = opts.flight;
  robust::CrashPointRegistry* crashpoints = opts.crashpoints;
  if (crashpoints != nullptr) {
    crashpoints->set_flight_recorder(flight);
  }

  std::shared_ptr<obs::TimeSeriesStore> series_store;
  std::optional<obs::TimeSeriesScraper> scraper;
  std::shared_ptr<obs::AlertEngine> alert_engine;
  if (opts.timeseries.enabled && opts.metrics != nullptr) {
    obs::TimeSeriesOptions scrape_options = opts.timeseries;
    for (const char* family :
         {"emap_search_wall_seconds", "emap_codec_encode_seconds",
          "emap_codec_decode_seconds"}) {
      scrape_options.skip_families.emplace_back(family);
    }
    series_store = std::make_shared<obs::TimeSeriesStore>(scrape_options);
    scraper.emplace(opts.metrics, series_store.get());
    result.series = series_store;
    if (opts.alerts_enabled) {
      obs::AlertEngine::Hooks hooks;
      hooks.registry = opts.metrics;
      hooks.tracer = tracer;
      hooks.flight = flight;
      alert_engine = std::make_shared<obs::AlertEngine>(
          opts.alert_rules.empty() ? obs::default_alert_rules()
                                   : opts.alert_rules,
          hooks);
      result.alerts = alert_engine;
    }
  }

  obs::SloMonitor edge_slo(obs::edge_iteration_slo(), opts.metrics);
  obs::SloMonitor initial_slo(obs::initial_response_slo(), opts.metrics);

  const std::size_t window_count =
      std::min(opts.max_windows, input.samples.size() / window);
  const std::size_t workers = options_.stage_threads;

  // ---- The stage graph. ----
  BoundedQueue<RawItem> q_raw(options_.queue_capacity);
  BoundedQueue<FilteredItem> q_filtered(options_.queue_capacity);
  BoundedQueue<UplinkJob> q_uplink(options_.queue_capacity);
  BoundedQueue<PendingSearch> q_deliver(options_.queue_capacity);
  BoundedQueue<OutcomeItem> q_outcome(options_.queue_capacity);
  auto close_all_queues = [&] {
    q_raw.close();
    q_filtered.close();
    q_uplink.close();
    q_deliver.close();
    q_outcome.close();
  };

  obs::Gauge* depth_raw = nullptr;
  obs::Gauge* depth_filtered = nullptr;
  obs::Gauge* depth_uplink = nullptr;
  obs::Gauge* depth_deliver = nullptr;
  obs::Gauge* depth_outcome = nullptr;
  if (opts.metrics != nullptr) {
    auto depth_gauge = [&](const char* name) {
      return &opts.metrics->gauge("emap_stage_queue_depth",
                                  {{"queue", name}},
                                  "Instantaneous stage-queue occupancy");
    };
    depth_raw = depth_gauge("raw");
    depth_filtered = depth_gauge("filtered");
    depth_uplink = depth_gauge("uplink");
    depth_deliver = depth_gauge("deliver");
    depth_outcome = depth_gauge("outcome");
  }

  std::atomic<bool> stop{false};

  // Injected stage faults (soak suite): each arm fires once.
  std::vector<std::unique_ptr<FaultArm>> arms;
  arms.reserve(options_.faults.size());
  for (const StageFaultSpec& spec : options_.faults) {
    auto arm = std::make_unique<FaultArm>();
    arm->spec = spec;
    arms.push_back(std::move(arm));
  }
  auto maybe_fault = [&](const std::string& stage, std::uint64_t cursor,
                         robust::StageHealth& health) {
    for (auto& arm : arms) {
      if (arm->spec.at_cursor != cursor || arm->spec.stage != stage) {
        continue;
      }
      if (arm->fired.exchange(true, std::memory_order_acq_rel)) {
        continue;
      }
      if (arm->spec.kind == StageFaultSpec::Kind::kCrash) {
        throw std::runtime_error("injected stage crash: " + stage);
      }
      // Stall: stop heartbeating while not idle.  The supervisor's monitor
      // declares the stall and requests an abort; the caller returns at its
      // next abort check and the body restarts.
      const auto started = std::chrono::steady_clock::now();
      while (!health.abort_requested()) {
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        if (waited >= arm->spec.stall_max_sec) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  };

  const QueueFullPolicy policy = options_.policy;
  std::atomic<std::uint64_t> dropped_newest{0};
  // Applies the configured backpressure policy to one push.  Returns false
  // when the item was not enqueued (queue closed, or kDegrade dropped it).
  // Only the processing queues (q_filtered, q_outcome) are governed by
  // the policy; the source queue and the cloud-call queues always block
  // (see the comments at their push sites).
  auto push_with_policy = [&](auto& queue, auto item) -> bool {
    switch (policy) {
      case QueueFullPolicy::kBlock:
        return queue.push(std::move(item));
      case QueueFullPolicy::kShedOldest:
        return queue.push_shed_oldest(std::move(item));
      case QueueFullPolicy::kDegrade: {
        if (queue.try_push(item)) {
          return true;
        }
        if (!queue.closed()) {
          dropped_newest.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
    }
    return false;
  };

  // ---- Per-stage state (each struct is confined to its stage thread and
  // survives supervisor restarts; read from the main thread after join).
  struct FilterState {
    std::uint64_t processed = 0;
  } filter_state;

  struct TrackState {
    std::uint64_t processed = 0;
    double last_pa = 0.0;
    std::int64_t last_loaded_sequence = -1;
    bool first_round_trip_recorded = false;
    double total_track_sec = 0.0;
    std::size_t track_steps = 0;
    std::uint64_t issued = 0;    ///< uplink jobs enqueued
    std::uint64_t applied = 0;   ///< deliveries applied (or discarded)
    std::vector<PendingSearch> completed;  ///< popped, not yet ready
    std::vector<double> deferred_track_obs;
    bool slo_burn_paged = false;
    bool breaker_dumped = false;
    bool watchdog_dumped = false;
    bool watchdog_dump_pending = false;
    robust::BreakerState last_breaker_state = robust::BreakerState::kClosed;
    /// Timestamped queue-pressure samples inside the debounce window.
    std::vector<std::pair<double, double>> pressure_samples;
    /// Downstream shed/drop total at the previous window (loss detector).
    std::uint64_t last_loss_total = 0;
  } ts;
  ts.last_breaker_state =
      breaker ? breaker->state() : robust::BreakerState::kClosed;

  struct PredictState {
    std::uint64_t processed = 0;
    double last_window_end_sec = 0.0;
  } ps;

  // Uplink workers: each owns its Channel + FaultInjector fork, so the
  // per-worker fault schedule is a deterministic function of (options,
  // worker index) regardless of thread interleaving.
  struct WorkerState {
    WorkerState(const PipelineOptions& opts, std::size_t index)
        : injector([&] {
            net::FaultOptions forked = opts.fault;
            forked.seed ^= 0x9e3779b97f4a7c15ULL * (index + 1);
            return forked;
          }()),
          channel(opts.platform, opts.channel,
                  42 + static_cast<std::uint64_t>(index)),
          retry(opts.retry) {
      channel.set_fault_injector(&injector);
    }
    net::FaultInjector injector;
    net::Channel channel;
    net::RetryPolicy retry;
    std::uint64_t processed = 0;
    /// The job this worker is holding right now.  Survives a crash of the
    /// stage body: the restarted incarnation reports it as a failed call
    /// so the track stage's outstanding accounting settles (see below).
    struct {
      bool active = false;
      std::uint32_t sequence = 0;
      double t_issue_sec = 0.0;
      obs::TraceContext trace{};
    } in_flight;
  };
  std::vector<std::unique_ptr<WorkerState>> worker_states;
  for (std::size_t k = 0; k < workers; ++k) {
    auto state = std::make_unique<WorkerState>(opts, k);
    if (opts.metrics != nullptr) {
      state->channel.set_metrics(opts.metrics);
      state->injector.set_metrics(opts.metrics);
    }
    state->channel.set_flight_recorder(flight);
    worker_states.push_back(std::move(state));
  }
  std::atomic<std::size_t> active_workers{workers};

  robust::StageSupervisor supervisor(options_.supervisor, opts.metrics,
                                     flight);
  supervisor.set_failure_handler([&](const std::string& stage) {
    // A stage out of restart budget ends the run: force CRITICAL (the
    // operator-visible verdict), stop the source, and close every queue so
    // the rest of the graph drains and unwinds.
    if (controller) {
      controller->force_critical(ts.processed, 0.0);
    }
    stop.store(true, std::memory_order_release);
    close_all_queues();
    (void)stage;
  });

  // ---- Stage bodies. ----

  auto acquire_body = [&](robust::StageHealth& health) {
    health.set_idle(false);
    for (std::size_t w = health.resume_cursor(); w < window_count; ++w) {
      if (stop.load(std::memory_order_acquire) || health.abort_requested()) {
        break;
      }
      const double t_end = static_cast<double>(w + 1);
      if (opts.stop_at_sec >= 0.0 && t_end > opts.stop_at_sec) {
        break;
      }
      maybe_fault("acquire", w + 1, health);
      if (health.abort_requested()) {
        return;  // restart resumes from resume_cursor()
      }
      EMAP_CRASH_POINT(crashpoints, "pipeline_window_start");
      RawItem item;
      item.window_index = w;
      item.t_end = t_end;
      item.trace_id =
          trace_seed != 0 ? obs::mint_trace_id(trace_seed, w) : 0;
      if (tracer != nullptr) {
        item.span_id =
            tracer->record_sim("window_" + std::to_string(w), "window",
                               t_end - 1.0, t_end, 0, item.trace_id);
        tracer->record_sim("sample", "sample", t_end - 1.0, t_end,
                           item.span_id, item.trace_id);
        tracer->record_sim("filter", "filter", t_end,
                           t_end + opts.filter_accelerator_sec, item.span_id,
                           item.trace_id);
      }
      if (flight != nullptr) {
        flight->log(obs::FlightEventType::kSpan,
                    ("window_" + std::to_string(w)).c_str(), t_end,
                    item.trace_id, static_cast<double>(w));
      }
      item.raw.assign(input.samples.begin() +
                          static_cast<std::ptrdiff_t>(w * window),
                      input.samples.begin() +
                          static_cast<std::ptrdiff_t>((w + 1) * window));
      health.set_idle(true);  // a blocked push is backpressure, not a stall
      // The source is always paced by blocking backpressure: acquire runs
      // at virtual speed (no wall-clock cost per window), so a lossy
      // policy here would flood q_raw and shed most of the input before
      // the filter stage ever saw it.  The configured policy governs the
      // downstream processing queues instead.
      const bool pushed = q_raw.push(std::move(item));
      health.set_idle(false);
      if (!pushed && q_raw.closed()) {
        break;
      }
      health.heartbeat(w + 1);
    }
    health.set_idle(true);
    q_raw.close();
  };

  auto filter_body = [&](robust::StageHealth& health) {
    for (;;) {
      health.set_idle(true);
      std::optional<RawItem> item = q_raw.pop();
      health.set_idle(false);
      if (!item.has_value()) {
        break;
      }
      if (health.abort_requested()) {
        return;
      }
      ++filter_state.processed;
      maybe_fault("filter", filter_state.processed, health);
      if (health.abort_requested()) {
        return;
      }
      FilteredItem out;
      out.window_index = item->window_index;
      out.t_end = item->t_end;
      out.trace_id = item->trace_id;
      out.span_id = item->span_id;
      out.filtered = edge.acquire_window(
          std::span<const double>(item->raw.data(), item->raw.size()));
      out.quality = edge.last_quality();
      if (p.metrics_.windows != nullptr) {
        p.metrics_.windows->increment();
      }
      health.heartbeat(filter_state.processed);
      health.set_idle(true);
      const bool pushed = push_with_policy(q_filtered, std::move(out));
      health.set_idle(false);
      if (!pushed && q_filtered.closed()) {
        break;
      }
    }
    health.set_idle(true);
    q_filtered.close();
  };

  auto track_body = [&](robust::StageHealth& health) {
    for (;;) {
      health.set_idle(true);
      std::optional<FilteredItem> item = q_filtered.pop();
      health.set_idle(false);
      if (!item.has_value()) {
        break;
      }
      if (health.abort_requested()) {
        return;
      }
      ++ts.processed;
      maybe_fault("track", ts.processed, health);
      if (health.abort_requested()) {
        return;
      }
      const std::size_t w = item->window_index;
      const double t_end = item->t_end;
      const std::uint64_t window_trace = item->trace_id;
      const std::uint64_t window_span = item->span_id;

      IterationRecord record;
      record.window_index = w;
      record.t_sec = t_end;
      record.quality = item->quality.verdict;

      std::size_t shed_cap = 0;
      if (controller) {
        record.robust_state = controller->state();
        edge.tracker().set_stride_multiplier(
            controller->stride_multiplier());
        if (controller->shed_level() > 0) {
          shed_cap = controller->tracked_cap(config.top_k);
          edge.tracker().set_recall_threshold(controller->recall_threshold(
              config.tracking_threshold_h, config.top_k));
          edge.tracker().shed_to(shed_cap);
        } else {
          edge.tracker().set_recall_threshold(0);
        }
        record.shed_cap = shed_cap;
      }

      // Collect finished cloud calls and deliver every one whose virtual
      // ready time has arrived, oldest sequence first (the batch loop has
      // at most one outstanding; here up to `workers` overlap).
      while (std::optional<PendingSearch> done = q_deliver.try_pop()) {
        ts.completed.push_back(std::move(*done));
      }
      if (!edge.tracker().loaded() && ts.completed.empty() &&
          ts.issued > ts.applied) {
        // Cold start with the initial search still in flight: nothing can
        // be tracked until it lands, and the free-running edge would
        // otherwise race through the whole input while the cloud computes.
        // Wait for the result (the virtual ready-time gate below still
        // decides *which window* loads it, exactly like the batch loop).
        health.set_idle(true);
        std::optional<PendingSearch> done = q_deliver.pop();
        health.set_idle(false);
        if (done.has_value()) {
          ts.completed.push_back(std::move(*done));
        }
      }
      std::sort(ts.completed.begin(), ts.completed.end(),
                [](const PendingSearch& a, const PendingSearch& b) {
                  return a.sequence < b.sequence;
                });
      for (auto it = ts.completed.begin(); it != ts.completed.end();) {
        if (it->ready_at_sec > t_end) {
          ++it;
          continue;
        }
        PendingSearch pending = std::move(*it);
        it = ts.completed.erase(it);
        ++ts.applied;
        result.retry_attempts +=
            pending.attempts > 0 ? pending.attempts - 1 : 0;
        result.duplicates_discarded += pending.duplicates;
        if (pending.succeeded &&
            static_cast<std::int64_t>(pending.sequence) >
                ts.last_loaded_sequence) {
          ts.last_loaded_sequence =
              static_cast<std::int64_t>(pending.sequence);
          if (shed_cap > 0 && pending.correlation_set.size() > shed_cap) {
            pending.correlation_set.resize(shed_cap);
            ++result.robust.shed_loads;
          }
          edge.tracker().load(std::move(pending.correlation_set));
          record.set_loaded = true;
          record.pa_on_load = edge.tracker().anomaly_probability();
          const double initial_sec =
              pending.delta_ec + pending.delta_cs + pending.delta_ce;
          initial_slo.observe(initial_sec);
          if (flight != nullptr &&
              initial_sec > initial_slo.spec().budget_sec) {
            flight->log(obs::FlightEventType::kSloMiss, "initial_response",
                        t_end, pending.trace.trace_id, initial_sec,
                        initial_slo.spec().budget_sec);
          }
          if (!ts.first_round_trip_recorded) {
            result.timings.delta_ec_sec = pending.delta_ec;
            result.timings.delta_cs_sec = pending.delta_cs;
            result.timings.delta_ce_sec = pending.delta_ce;
            result.timings.delta_initial_sec = initial_sec;
            ts.first_round_trip_recorded = true;
          }
          ++result.cloud_calls;
        } else if (pending.succeeded) {
          // Stale success: with several uplink workers, an older search
          // can complete after a newer set already loaded.  The round
          // trip itself succeeded — count the call, discard the payload.
          // (Impossible in the batch loop, which holds one outstanding
          // call at a time.)
          ++result.cloud_calls;
        } else {
          record.degraded = true;
          result.degraded = true;
          ++result.failed_cloud_calls;
          if (p.metrics_.degraded_windows != nullptr) {
            p.metrics_.degraded_windows->increment();
          }
        }
      }

      const bool quality_bad = quality && !item->quality.good();
      bool stage_stuck = false;
      bool observed_latency = false;
      double step_latency = 0.0;
      const std::uint64_t outstanding = ts.issued - ts.applied;
      auto issue_job = [&] {
        if (breaker_ptr != nullptr && !breaker_ptr->allow(t_end)) {
          record.breaker_rejected = true;
          if (tracer != nullptr) {
            tracer->record_sim("breaker_reject", "robust", t_end, t_end,
                               window_span, window_trace);
          }
          if (flight != nullptr) {
            flight->log(obs::FlightEventType::kShed, "breaker_reject",
                        t_end, window_trace);
          }
          return;
        }
        EMAP_CRASH_POINT(crashpoints, "pipeline_pre_cloud_call");
        UplinkJob job;
        job.sequence = static_cast<std::uint32_t>(w);
        job.t_issue_sec = t_end;
        job.trace = obs::TraceContext{window_trace, window_span};
        job.filtered = item->filtered;
        health.set_idle(true);
        // Cloud jobs are never shed once created: a shed job would strand
        // the issued/applied ledger (the result could never arrive), so
        // the uplink queue always blocks regardless of policy.
        const bool pushed = q_uplink.push(std::move(job));
        health.set_idle(false);
        if (pushed) {
          ++ts.issued;
          record.cloud_call_issued = true;
        }
      };

      if (controller && controller->critical()) {
        record.robust_critical = true;
        record.anomaly_probability = ts.last_pa;
        ++result.robust.critical_windows;
      } else if (quality_bad) {
        record.anomaly_probability = ts.last_pa;
      } else if (edge.tracker().loaded()) {
        EMAP_CRASH_POINT(crashpoints, "pipeline_tracker_step");
        const TrackStepResult step = edge.tracker().step(item->filtered);
        record.tracked = true;
        record.anomaly_probability = step.anomaly_probability;
        record.tracked_before = step.tracked_before;
        record.tracked_after = step.tracked_after;
        record.removed_dissimilar = step.removed_dissimilar;
        record.removed_exhausted = step.removed_exhausted;
        record.abs_ops = step.abs_ops;
        record.track_device_sec =
            p.edge_device_.seconds_for_abs(
                static_cast<double>(step.abs_ops)) +
            p.edge_device_.per_signal_overhead_sec *
                static_cast<double>(step.tracked_before);
        ts.total_track_sec += record.track_device_sec;
        edge_slo.observe(record.track_device_sec);
        if (flight != nullptr &&
            record.track_device_sec > edge_slo.spec().budget_sec) {
          flight->log(obs::FlightEventType::kSloMiss, "edge_iteration",
                      t_end, window_trace, record.track_device_sec,
                      edge_slo.spec().budget_sec);
        }
        result.timings.max_track_sec =
            std::max(result.timings.max_track_sec, record.track_device_sec);
        ++ts.track_steps;
        ts.last_pa = step.anomaly_probability;
        observed_latency = true;
        step_latency = record.track_device_sec;
        if (watchdog) {
          stage_stuck = watchdog->check_stage(record.track_device_sec);
        }
        if (controller && controller->defer_flushes()) {
          ts.deferred_track_obs.push_back(record.track_device_sec);
          ++result.robust.deferred_flushes;
        } else if (p.metrics_.track_step != nullptr) {
          p.metrics_.track_step->observe(record.track_device_sec);
        }
        if (tracer != nullptr) {
          tracer->record_sim("edge-track", "edge-track", t_end,
                             t_end + record.track_device_sec, window_span,
                             window_trace);
          tracer->record_sim("prediction", "prediction",
                             t_end + record.track_device_sec,
                             t_end + record.track_device_sec + 1e-3,
                             window_span, window_trace);
        }
        if (step.cloud_call_needed && outstanding < workers) {
          issue_job();
        }
      } else if (outstanding == 0) {
        // Cold start: the first window triggers the initial MDB search.
        issue_job();
      }

      if (controller) {
        robust::WindowSignal signal;
        signal.window_index = w;
        signal.t_sec = t_end;
        signal.burn_rate = edge_slo.burn_rate();
        signal.stage_stuck = stage_stuck;
        double pressure = 0.0;
        auto fold = [&pressure](std::size_t depth, std::size_t capacity) {
          pressure = std::max(
              pressure, static_cast<double>(depth) /
                            static_cast<double>(capacity));
        };
        // The ingest queues (q_raw, q_filtered) are deliberately excluded:
        // the virtual-speed source saturates everything upstream of the
        // wall-clock bottleneck by design (blocking backpressure IS the
        // pacing), so their depth measures how far the simulation outruns
        // real time, not overload.  Pressure watches the cloud path and
        // the egress consumer, whose backlog is always genuine.
        fold(q_uplink.depth(), q_uplink.capacity());
        fold(q_deliver.depth(), q_deliver.capacity());
        fold(q_outcome.depth(), q_outcome.capacity());
        // Debounce on WALL time: at virtual speed the producer fills a
        // queue in microseconds, so a single descheduling of a consumer
        // thread reads as a full queue for many windows.  Report the
        // MINIMUM instantaneous pressure over the last quarter second of
        // wall clock — only saturation that persists that long (a
        // genuinely wedged or lagging consumer, e.g. a supervisor-level
        // stall) registers as pressure for the degrade controller.
        constexpr double kPressureSustainSec = 0.25;
        const double now_wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        ts.pressure_samples.emplace_back(now_wall, std::min(pressure, 1.0));
        // Prune, but keep ONE sample at or before the window start so we
        // can tell whether the window is fully covered by history.
        std::size_t keep_from = 0;
        while (keep_from + 1 < ts.pressure_samples.size() &&
               ts.pressure_samples[keep_from + 1].first <=
                   now_wall - kPressureSustainSec) {
          ++keep_from;
        }
        ts.pressure_samples.erase(ts.pressure_samples.begin(),
                                  ts.pressure_samples.begin() +
                                      static_cast<std::ptrdiff_t>(keep_from));
        if (ts.pressure_samples.front().first >
            now_wall - kPressureSustainSec) {
          // Not enough history yet to prove the backlog persisted.
          signal.queue_pressure = 0.0;
        } else {
          double sustained = 1.0;
          for (const auto& [when, sample] : ts.pressure_samples) {
            sustained = std::min(sustained, sample);
          }
          signal.queue_pressure = sustained;
        }
        // Actual record loss is unambiguous overload regardless of how
        // briefly the depth spiked: a transient the buffer absorbed is
        // what buffers are for, but a shed/dropped record means the
        // consumer truly fell behind its bound.
        const std::uint64_t loss_total =
            q_outcome.shed() + q_deliver.shed() + q_uplink.shed() +
            dropped_newest.load(std::memory_order_relaxed);
        if (loss_total > ts.last_loss_total) {
          signal.queue_pressure = 1.0;
        }
        ts.last_loss_total = loss_total;
        if (observed_latency) {
          const obs::SloSpec& spec = edge_slo.spec();
          signal.deadline_miss = step_latency > spec.budget_sec;
          signal.near_miss =
              !signal.deadline_miss &&
              step_latency > spec.near_miss_fraction * spec.budget_sec;
        } else {
          signal.no_observation = true;
        }
        const robust::DegradeState state_before = controller->state();
        controller->observe_window(signal);
        const robust::DegradeState state_after = controller->state();
        if (flight != nullptr && state_after != state_before) {
          flight->log(
              obs::FlightEventType::kRobustTransition,
              (std::string(robust::degrade_state_name(state_before)) +
               "_to_" + robust::degrade_state_name(state_after))
                  .c_str(),
              t_end, window_trace);
          if (signal.stage_stuck &&
              state_after == robust::DegradeState::kCritical &&
              !ts.watchdog_dumped) {
            ts.watchdog_dumped = true;
            ts.watchdog_dump_pending = true;
          }
        }
        if (!controller->defer_flushes() &&
            !ts.deferred_track_obs.empty()) {
          if (p.metrics_.track_step != nullptr) {
            for (const double observation : ts.deferred_track_obs) {
              p.metrics_.track_step->observe(observation);
            }
          }
          ts.deferred_track_obs.clear();
        }
      }
      if (depth_raw != nullptr) {
        depth_raw->set(static_cast<double>(q_raw.depth()));
        depth_filtered->set(static_cast<double>(q_filtered.depth()));
        depth_uplink->set(static_cast<double>(q_uplink.depth()));
        depth_deliver->set(static_cast<double>(q_deliver.depth()));
        depth_outcome->set(static_cast<double>(q_outcome.depth()));
      }

      if (breaker && flight != nullptr) {
        const robust::BreakerState breaker_state = breaker->state();
        if (breaker_state != ts.last_breaker_state) {
          if (breaker_state == robust::BreakerState::kOpen) {
            flight->log(obs::FlightEventType::kBreakerOpen, "breaker_open",
                        t_end, window_trace);
            if (tracer != nullptr) {
              tracer->record_sim("breaker_open", "robust", t_end, t_end,
                                 window_span, window_trace);
            }
            if (!ts.breaker_dumped) {
              ts.breaker_dumped = true;
              flight->trigger_dump("breaker_open");
            }
          } else if (breaker_state == robust::BreakerState::kClosed) {
            flight->log(obs::FlightEventType::kBreakerClose,
                        "breaker_close", t_end, window_trace);
          }
          ts.last_breaker_state = breaker_state;
        }
      }
      if (flight != nullptr && !ts.slo_burn_paged) {
        const bool edge_burning = !edge_slo.healthy();
        if (edge_burning || !initial_slo.healthy()) {
          ts.slo_burn_paged = true;
          obs::SloMonitor& burning = edge_burning ? edge_slo : initial_slo;
          flight->log(obs::FlightEventType::kSloBurnPage,
                      burning.spec().name.c_str(), t_end, window_trace,
                      burning.burn_rate());
          flight->trigger_dump("slo_burn_page");
        }
      }
      // After the burn-page check so CRITICAL owns the single dump file
      // (mirrors the batch loop's ordering).
      if (flight != nullptr && ts.watchdog_dump_pending) {
        ts.watchdog_dump_pending = false;
        flight->trigger_dump("watchdog_critical");
      }

      OutcomeItem out;
      out.supports_predict =
          record.tracked &&
          record.tracked_after >= config.predict_min_support;
      out.t_end = t_end;
      out.trace_id = window_trace;
      out.record = std::move(record);
      health.heartbeat(ts.processed);
      health.set_idle(true);
      const bool pushed = push_with_policy(q_outcome, std::move(out));
      health.set_idle(false);
      if (!pushed && q_outcome.closed()) {
        break;
      }
    }
    // Input drained: no more jobs will be issued.  Wait out in-flight
    // calls, then release the predict stage.  Results arriving after the
    // final window are discarded, like the batch loop's still-pending
    // search at run end.
    health.set_idle(true);
    q_uplink.close();
    while (ts.applied < ts.issued) {
      std::optional<PendingSearch> done = q_deliver.pop();
      if (!done.has_value()) {
        break;  // a worker died with the call in flight
      }
      ++ts.applied;
    }
    q_outcome.close();
  };

  auto predict_body = [&](robust::StageHealth& health) {
    for (;;) {
      health.set_idle(true);
      std::optional<OutcomeItem> item = q_outcome.pop();
      health.set_idle(false);
      if (!item.has_value()) {
        break;
      }
      if (health.abort_requested()) {
        return;
      }
      ++ps.processed;
      maybe_fault("predict", ps.processed, health);
      if (health.abort_requested()) {
        return;
      }
      if (item->supports_predict) {
        edge.predictor().observe(item->record.anomaly_probability,
                                 item->t_end);
      }
      if (scraper) {
        ps.last_window_end_sec = item->t_end;
        if (scraper->maybe_scrape(item->t_end) && alert_engine) {
          alert_engine->evaluate(*series_store, item->t_end,
                                 item->trace_id);
        }
      }
      result.iterations.push_back(std::move(item->record));
      EMAP_CRASH_POINT(crashpoints, "pipeline_window_end");
      if (opts.stop_on_alarm && edge.predictor().anomaly_predicted()) {
        stop.store(true, std::memory_order_release);
      }
      health.heartbeat(ps.processed);
    }
    health.set_idle(true);
  };

  auto make_worker_body = [&](std::size_t k) {
    return [&, k](robust::StageHealth& health) {
      WorkerState& me = *worker_states[k];
      const std::string name = "uplink" + std::to_string(k);
      if (me.in_flight.active) {
        // A previous incarnation died holding this job.  Deliver it as a
        // failed call (a degraded window, exactly like an exhausted
        // retry): without this, the issued/applied ledger never settles,
        // and a lost *cold-start* call would leave the track stage
        // waiting forever on a result that cannot arrive.
        PendingSearch lost;
        lost.sequence = me.in_flight.sequence;
        lost.ready_at_sec = me.in_flight.t_issue_sec;
        lost.succeeded = false;
        lost.trace = me.in_flight.trace;
        me.in_flight.active = false;
        health.set_idle(true);
        (void)q_deliver.push(std::move(lost));  // closed = run is ending
        health.set_idle(false);
      }
      for (;;) {
        health.set_idle(true);
        std::optional<UplinkJob> job = q_uplink.pop();
        health.set_idle(false);
        if (!job.has_value()) {
          break;
        }
        if (health.abort_requested()) {
          return;
        }
        ++me.processed;
        me.in_flight.active = true;
        me.in_flight.sequence = job->sequence;
        me.in_flight.t_issue_sec = job->t_issue_sec;
        me.in_flight.trace = job->trace;
        maybe_fault(name, me.processed, health);
        if (health.abort_requested()) {
          return;
        }
        PendingSearch pending = p.executor_.issue(
            job->sequence, job->filtered, job->t_issue_sec, me.channel,
            me.retry, tracer, breaker_ptr, job->trace);
        EMAP_CRASH_POINT(crashpoints, "pipeline_post_cloud_call");
        health.heartbeat(me.processed);
        health.set_idle(true);
        const bool delivered = q_deliver.push(std::move(pending));
        health.set_idle(false);
        me.in_flight.active = false;
        if (!delivered) {
          break;
        }
      }
      health.set_idle(true);
      if (active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        q_deliver.close();
      }
    };
  };

  supervisor.spawn("predict", predict_body);
  supervisor.spawn("track", track_body);
  for (std::size_t k = 0; k < workers; ++k) {
    supervisor.spawn("uplink" + std::to_string(k), make_worker_body(k));
  }
  supervisor.spawn("filter", filter_body);
  supervisor.spawn("acquire", acquire_body);

  // The join IS the wait: every stage exits when its input queue closes
  // and drains (or on supervisor intervention), and the close cascades
  // from the acquire stage down the graph.
  supervisor.join_all();

  // ---- Epilogue (single-threaded again; thread joins order everything
  // the stages wrote). ----
  if (ts.track_steps > 0) {
    result.timings.mean_track_sec =
        ts.total_track_sec / static_cast<double>(ts.track_steps);
  }
  result.anomaly_predicted = edge.predictor().anomaly_predicted();
  result.first_alarm_sec = edge.predictor().first_alarm_sec();
  if (scraper && series_store->scrapes() == 0) {
    scraper->scrape_now(ps.last_window_end_sec);
    if (alert_engine) {
      alert_engine->evaluate(*series_store, ps.last_window_end_sec, 0);
    }
  }
  result.slo = {edge_slo.summary(), initial_slo.summary()};
  if (p.metrics_.track_step != nullptr) {
    for (const double observation : ts.deferred_track_obs) {
      p.metrics_.track_step->observe(observation);
    }
  }
  ts.deferred_track_obs.clear();
  if (controller) {
    result.robust.degrade = controller->summary();
    if (tracer != nullptr) {
      for (const auto& transition : controller->transitions()) {
        const std::uint64_t transition_trace =
            trace_seed != 0 && transition.t_sec >= 1.0
                ? obs::mint_trace_id(
                      trace_seed,
                      static_cast<std::uint64_t>(transition.t_sec - 1.0))
                : 0;
        tracer->record_sim(
            std::string("robust_") +
                robust::degrade_state_name(transition.from) + "_to_" +
                robust::degrade_state_name(transition.to),
            "robust", transition.t_sec, transition.t_sec, 0,
            transition_trace);
      }
    }
  }
  if (breaker) {
    result.robust.breaker = breaker->summary();
  }
  if (quality) {
    result.robust.quality = quality->summary();
  }
  result.robust.watchdog_trips = watchdog ? watchdog->trips() : 0;
  result.robust.supervisor_stalls = supervisor.stalls_detected();
  result.robust.supervisor_restarts = supervisor.restarts();
  result.robust.supervisor_crashes = supervisor.crashes();
  for (const robust::StageStats& stats : supervisor.stats()) {
    robust::StageQueueSummary row;
    row.stage = stats.name;
    row.processed = stats.processed;
    row.stalls = stats.stalls;
    row.crashes = stats.crashes;
    row.restarts = stats.restarts;
    row.failed = stats.failed;
    result.robust.stages.push_back(std::move(row));
  }
  auto queue_row = [&](const char* name, std::size_t capacity,
                       std::size_t max_depth, std::uint64_t pushed,
                       std::uint64_t popped, std::uint64_t shed) {
    robust::StageQueueSummary row;
    row.stage = std::string("q_") + name;
    row.processed = popped;
    row.queue = name;
    row.queue_capacity = capacity;
    row.queue_max_depth = max_depth;
    row.queue_pushed = pushed;
    row.queue_shed = shed;
    result.robust.stages.push_back(std::move(row));
  };
  queue_row("raw", q_raw.capacity(), q_raw.max_depth(), q_raw.pushed(),
            q_raw.popped(), q_raw.shed());
  queue_row("filtered", q_filtered.capacity(), q_filtered.max_depth(),
            q_filtered.pushed(), q_filtered.popped(), q_filtered.shed());
  queue_row("uplink", q_uplink.capacity(), q_uplink.max_depth(),
            q_uplink.pushed(), q_uplink.popped(), q_uplink.shed());
  queue_row("deliver", q_deliver.capacity(), q_deliver.max_depth(),
            q_deliver.pushed(), q_deliver.popped(), q_deliver.shed());
  queue_row("outcome", q_outcome.capacity(), q_outcome.max_depth(),
            q_outcome.pushed(), q_outcome.popped(),
            q_outcome.shed() + dropped_newest.load());
  if (tracer != nullptr) {
    result.trace = obs::timeline_view(*tracer);
  }
  return result;
}

}  // namespace emap::core
