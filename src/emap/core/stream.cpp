#include "emap/core/stream.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "emap/common/bounded_queue.hpp"
#include "emap/common/crc32.hpp"
#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/robust/checkpoint.hpp"
#include "emap/robust/crashpoint.hpp"

namespace emap::core {

namespace {

/// acquire → filter: one raw input window plus its causal identity.
struct RawItem {
  std::size_t window_index = 0;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::vector<double> raw;
};

/// filter → track: the filtered window plus the quality verdict.
struct FilteredItem {
  std::size_t window_index = 0;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::vector<double> filtered;
  robust::QualityReport quality{};
};

/// track → uplink worker: one cloud-call job.
struct UplinkJob {
  std::uint32_t sequence = 0;
  double t_issue_sec = 0.0;
  obs::TraceContext trace{};
  std::vector<double> filtered;
};

/// track → predict: the finished window record.
struct OutcomeItem {
  IterationRecord record{};
  bool supports_predict = false;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;
};

/// One-shot injected fault, armed per StageFaultSpec.
struct FaultArm {
  StageFaultSpec spec;
  std::atomic<bool> fired{false};
};

}  // namespace

void StreamOptions::validate() const {
  require(stage_threads >= 1,
          "StreamOptions: stage_threads must be at least 1");
  require(queue_capacity >= 2,
          "StreamOptions: queue_capacity must be at least 2");
  require(drain_timeout_sec > 0.0,
          "StreamOptions: drain_timeout_sec must be positive");
  supervisor.validate();
  for (const StageFaultSpec& fault : faults) {
    require(!fault.stage.empty(), "StreamOptions: fault stage name empty");
    require(fault.at_cursor >= 1,
            "StreamOptions: fault at_cursor is 1-based");
    require(fault.stall_max_sec > 0.0,
            "StreamOptions: fault stall_max_sec must be positive");
  }
}

const char* scheduler_mode_name(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kVirtualTime:
      return "virtual";
    case SchedulerMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}

const char* queue_full_policy_name(QueueFullPolicy policy) {
  switch (policy) {
    case QueueFullPolicy::kBlock:
      return "block";
    case QueueFullPolicy::kShedOldest:
      return "shed_oldest";
    case QueueFullPolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

std::string StreamOptions::fingerprint() const {
  if (mode == SchedulerMode::kVirtualTime) {
    // Batch snapshots carry no topology label, so the batch loop keeps
    // reading (and producing) exactly the payloads it always has.
    return "";
  }
  return std::string("threaded/workers=") + std::to_string(stage_threads) +
         "/cap=" + std::to_string(queue_capacity) +
         "/policy=" + queue_full_policy_name(policy);
}

StreamPipeline::StreamPipeline(EmapPipeline& pipeline, StreamOptions options)
    : pipeline_(pipeline), options_(options) {
  options_.validate();
}

RunResult StreamPipeline::run(const synth::Recording& input) {
  if (options_.mode == SchedulerMode::kVirtualTime) {
    // The deterministic scheduler IS the batch loop: bit-identity with
    // every existing replay / checkpoint / equivalence guarantee holds by
    // construction, not by re-implementation.
    return pipeline_.run(input);
  }
  return run_threaded(input);
}

RunResult StreamPipeline::run_threaded(const synth::Recording& input) {
  EmapPipeline& p = pipeline_;
  const EmapConfig& config = p.config_;
  const PipelineOptions& opts = p.options_;
  require(std::abs(input.fs() - config.base_fs_hz) < 1e-9,
          "StreamPipeline::run: input must be sampled at the base rate");
  const std::size_t window = config.window_length;
  require(input.samples.size() >= window,
          "StreamPipeline::run: input shorter than one window");

  EdgeNode edge(config);
  if (opts.metrics != nullptr) {
    edge.tracker().set_metrics(opts.metrics);
  }

  RunResult result;

  const bool robust_on = opts.robust.enabled;
  std::optional<robust::DegradationController> controller;
  std::optional<robust::CircuitBreaker> breaker;
  std::optional<robust::StageWatchdog> watchdog;
  std::optional<robust::SignalQualityGate> quality;
  if (robust_on) {
    controller.emplace(opts.robust.degrade, opts.metrics);
    breaker.emplace(opts.robust.breaker, opts.metrics);
    watchdog.emplace(opts.robust.watchdog, opts.metrics);
    if (opts.robust.quality_gate) {
      quality.emplace(opts.robust.quality, opts.metrics);
      edge.set_quality_gate(&*quality);
    }
  }
  result.robust.enabled = robust_on;
  result.robust.streamed = true;
  robust::CircuitBreaker* breaker_ptr = breaker ? &*breaker : nullptr;

  obs::Tracer* tracer = nullptr;
  if (opts.collect_trace) {
    result.tracer = std::make_shared<obs::Tracer>();
    tracer = result.tracer.get();
  }
  std::uint64_t trace_seed =
      tracer != nullptr ? opts.trace_seed : 0;
  obs::FlightRecorder* flight = opts.flight;
  robust::CrashPointRegistry* crashpoints = opts.crashpoints;
  if (crashpoints != nullptr) {
    crashpoints->set_flight_recorder(flight);
  }

  std::shared_ptr<obs::TimeSeriesStore> series_store;
  std::optional<obs::TimeSeriesScraper> scraper;
  std::shared_ptr<obs::AlertEngine> alert_engine;
  if (opts.timeseries.enabled && opts.metrics != nullptr) {
    obs::TimeSeriesOptions scrape_options = opts.timeseries;
    for (const char* family :
         {"emap_search_wall_seconds", "emap_codec_encode_seconds",
          "emap_codec_decode_seconds"}) {
      scrape_options.skip_families.emplace_back(family);
    }
    series_store = std::make_shared<obs::TimeSeriesStore>(scrape_options);
    scraper.emplace(opts.metrics, series_store.get());
    result.series = series_store;
    if (opts.alerts_enabled) {
      obs::AlertEngine::Hooks hooks;
      hooks.registry = opts.metrics;
      hooks.tracer = tracer;
      hooks.flight = flight;
      alert_engine = std::make_shared<obs::AlertEngine>(
          opts.alert_rules.empty() ? obs::default_alert_rules()
                                   : opts.alert_rules,
          hooks);
      result.alerts = alert_engine;
    }
  }

  obs::SloMonitor edge_slo(obs::edge_iteration_slo(), opts.metrics);
  obs::SloMonitor initial_slo(obs::initial_response_slo(), opts.metrics);

  // ---- Durable streaming (robust/checkpoint.hpp): quiesce-barrier
  // snapshots on the acquire cadence, emergency / clean-shutdown snapshots
  // in the epilogue, resume before the stage graph spawns.  All of the
  // quiesce machinery is gated on `durable`, so a run without recovery
  // keeps the original blocking pops untouched. ----
  const robust::RecoveryOptions& recovery = opts.recovery;
  robust::RecoverySummary& recovery_summary = result.robust.recovery;
  recovery_summary.enabled = recovery.enabled();
  const bool durable = recovery.enabled();
  const std::string config_fp = config.fingerprint();
  const std::uint32_t input_fp = crc32(
      input.samples.data(), input.samples.size() * sizeof(double));
  const std::string stream_fp = options_.fingerprint();
  // Baselines carried over from a restored snapshot for components whose
  // own counters restart at zero in the resumed process (watchdog trips,
  // quality-gate verdicts); folded back in at summary time.
  std::size_t watchdog_trips_base = 0;
  robust::QualitySummary quality_base{};
  std::size_t start_window = 0;

  std::size_t window_count =
      std::min(opts.max_windows, input.samples.size() / window);
  const std::size_t workers = options_.stage_threads;

  // ---- The stage graph. ----
  BoundedQueue<RawItem> q_raw(options_.queue_capacity);
  BoundedQueue<FilteredItem> q_filtered(options_.queue_capacity);
  BoundedQueue<UplinkJob> q_uplink(options_.queue_capacity);
  BoundedQueue<PendingSearch> q_deliver(options_.queue_capacity);
  BoundedQueue<OutcomeItem> q_outcome(options_.queue_capacity);
  auto close_all_queues = [&] {
    q_raw.close();
    q_filtered.close();
    q_uplink.close();
    q_deliver.close();
    q_outcome.close();
  };

  obs::Gauge* depth_raw = nullptr;
  obs::Gauge* depth_filtered = nullptr;
  obs::Gauge* depth_uplink = nullptr;
  obs::Gauge* depth_deliver = nullptr;
  obs::Gauge* depth_outcome = nullptr;
  if (opts.metrics != nullptr) {
    auto depth_gauge = [&](const char* name) {
      return &opts.metrics->gauge("emap_stage_queue_depth",
                                  {{"queue", name}},
                                  "Instantaneous stage-queue occupancy");
    };
    depth_raw = depth_gauge("raw");
    depth_filtered = depth_gauge("filtered");
    depth_uplink = depth_gauge("uplink");
    depth_deliver = depth_gauge("deliver");
    depth_outcome = depth_gauge("outcome");
  }

  std::atomic<bool> stop{false};

  // Injected stage faults (soak suite): each arm fires once.
  std::vector<std::unique_ptr<FaultArm>> arms;
  arms.reserve(options_.faults.size());
  for (const StageFaultSpec& spec : options_.faults) {
    auto arm = std::make_unique<FaultArm>();
    arm->spec = spec;
    arms.push_back(std::move(arm));
  }
  auto maybe_fault = [&](const std::string& stage, std::uint64_t cursor,
                         robust::StageHealth& health) {
    for (auto& arm : arms) {
      if (arm->spec.at_cursor != cursor || arm->spec.stage != stage) {
        continue;
      }
      if (arm->fired.exchange(true, std::memory_order_acq_rel)) {
        continue;
      }
      if (arm->spec.kind == StageFaultSpec::Kind::kCrash) {
        throw std::runtime_error("injected stage crash: " + stage);
      }
      // Stall: stop heartbeating while not idle.  The supervisor's monitor
      // declares the stall and requests an abort; the caller returns at its
      // next abort check and the body restarts.
      const auto started = std::chrono::steady_clock::now();
      while (!health.abort_requested()) {
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        if (waited >= arm->spec.stall_max_sec) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  };

  const QueueFullPolicy policy = options_.policy;
  std::atomic<std::uint64_t> dropped_newest{0};
  // Applies the configured backpressure policy to one push.  Returns false
  // when the item was not enqueued (queue closed, or kDegrade dropped it).
  // Only the processing queues (q_filtered, q_outcome) are governed by
  // the policy; the source queue and the cloud-call queues always block
  // (see the comments at their push sites).
  auto push_with_policy = [&](auto& queue, auto item) -> bool {
    switch (policy) {
      case QueueFullPolicy::kBlock:
        return queue.push(std::move(item));
      case QueueFullPolicy::kShedOldest:
        return queue.push_shed_oldest(std::move(item));
      case QueueFullPolicy::kDegrade: {
        if (queue.try_push(item)) {
          return true;
        }
        if (!queue.closed()) {
          dropped_newest.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
    }
    return false;
  };

  // ---- Per-stage state (each struct is confined to its stage thread and
  // survives supervisor restarts; read from the main thread after join).
  struct FilterState {
    std::uint64_t processed = 0;
  } filter_state;

  struct TrackState {
    std::uint64_t processed = 0;
    double last_pa = 0.0;
    std::int64_t last_loaded_sequence = -1;
    bool first_round_trip_recorded = false;
    double total_track_sec = 0.0;
    std::size_t track_steps = 0;
    std::uint64_t issued = 0;    ///< uplink jobs enqueued
    std::uint64_t applied = 0;   ///< deliveries applied (or discarded)
    std::vector<PendingSearch> completed;  ///< popped, not yet ready
    /// Identity of every issued-not-yet-applied job (sequence → issue
    /// time + trace), so an unsettled checkpoint drain can name the
    /// in-flight windows it records as to-replay entries.  Maintained
    /// only when durable checkpointing is on.
    std::map<std::uint32_t, std::pair<double, obs::TraceContext>>
        outstanding_jobs;
    std::vector<double> deferred_track_obs;
    bool slo_burn_paged = false;
    bool breaker_dumped = false;
    bool watchdog_dumped = false;
    bool watchdog_dump_pending = false;
    robust::BreakerState last_breaker_state = robust::BreakerState::kClosed;
    /// Timestamped queue-pressure samples inside the debounce window.
    std::vector<std::pair<double, double>> pressure_samples;
    /// Downstream shed/drop total at the previous window (loss detector).
    std::uint64_t last_loss_total = 0;
  } ts;
  ts.last_breaker_state =
      breaker ? breaker->state() : robust::BreakerState::kClosed;

  struct PredictState {
    std::uint64_t processed = 0;
    double last_window_end_sec = 0.0;
  } ps;

  // Uplink workers: each owns its Channel + FaultInjector fork, so the
  // per-worker fault schedule is a deterministic function of (options,
  // worker index) regardless of thread interleaving.
  struct WorkerState {
    WorkerState(const PipelineOptions& opts, std::size_t index)
        : injector([&] {
            net::FaultOptions forked = opts.fault;
            forked.seed ^= 0x9e3779b97f4a7c15ULL * (index + 1);
            return forked;
          }()),
          channel(opts.platform, opts.channel,
                  42 + static_cast<std::uint64_t>(index)),
          retry(opts.retry) {
      channel.set_fault_injector(&injector);
    }
    net::FaultInjector injector;
    net::Channel channel;
    net::RetryPolicy retry;
    std::uint64_t processed = 0;
    /// The job this worker is holding right now.  Survives a crash of the
    /// stage body: the restarted incarnation reports it as a failed call
    /// so the track stage's outstanding accounting settles (see below).
    struct {
      bool active = false;
      std::uint32_t sequence = 0;
      double t_issue_sec = 0.0;
      obs::TraceContext trace{};
    } in_flight;
    /// Checkpoint mailbox: the injector/channel draw positions as of the
    /// last finished job, republished at every job boundary.  The quiesce
    /// coordinator reads the mailbox even when this worker is mid-search
    /// (an expired drain): the unfinished job becomes a to-replay entry
    /// and the cursors here are consistent with the jobs that actually
    /// completed, so a resumed worker replays a coherent fault schedule.
    struct Mailbox {
      std::mutex m;
      net::FaultInjectorState injector{};
      RngState channel_rng{};
    } mailbox;
  };
  std::vector<std::unique_ptr<WorkerState>> worker_states;
  for (std::size_t k = 0; k < workers; ++k) {
    auto state = std::make_unique<WorkerState>(opts, k);
    if (opts.metrics != nullptr) {
      state->channel.set_metrics(opts.metrics);
      state->injector.set_metrics(opts.metrics);
    }
    state->channel.set_flight_recorder(flight);
    state->mailbox.injector = state->injector.save();
    state->mailbox.channel_rng = state->channel.save_rng();
    worker_states.push_back(std::move(state));
  }
  std::atomic<std::size_t> active_workers{workers};

  // ---- Resume (single-threaded: the stage graph has not spawned yet).
  // Mirrors the batch loop's restore sequence, then rebuilds the settled
  // ledger: snapshot-completed calls are re-delivered from here, and every
  // to-replay entry lands as a failed call at its issue time — the
  // documented ≤1-lost-window-per-stage-death degradation. ----
  if (durable && recovery.resume) {
    try {
      std::optional<robust::SessionState> snapshot =
          robust::read_checkpoint(recovery.checkpoint_dir);
      if (!snapshot.has_value()) {
        throw robust::CheckpointError("checkpoint: no snapshot in " +
                                      recovery.checkpoint_dir.string());
      }
      if (snapshot->config_fingerprint != config_fp) {
        throw robust::CheckpointError(
            "checkpoint: config fingerprint mismatch (snapshot " +
            snapshot->config_fingerprint + ", pipeline " + config_fp + ")");
      }
      if (snapshot->input_fingerprint != input_fp) {
        throw robust::CheckpointError(
            "checkpoint: input fingerprint mismatch — snapshot belongs to "
            "a different recording");
      }
      if (snapshot->stream_fingerprint != stream_fp) {
        throw robust::CheckpointError(
            "checkpoint: stream topology mismatch (snapshot \"" +
            snapshot->stream_fingerprint + "\", run \"" + stream_fp +
            "\")");
      }
      if (snapshot->workers.size() != workers) {
        // Unreachable while worker count rides the fingerprint, but a
        // truncated-yet-valid payload must never index out of range.
        throw robust::CheckpointError(
            "checkpoint: stream topology mismatch (snapshot carries " +
            std::to_string(snapshot->workers.size()) +
            " worker cursors, run has " + std::to_string(workers) + ")");
      }
      robust::SessionState& s = *snapshot;
      std::vector<TrackedSignal> tracked;
      tracked.reserve(s.tracker.tracked.size());
      for (robust::TrackedSignalState& signal : s.tracker.tracked) {
        tracked.push_back(from_signal_state(std::move(signal)));
      }
      edge.tracker().restore(
          std::move(tracked), s.tracker.loaded,
          static_cast<std::size_t>(s.tracker.steps_since_load));
      edge.predictor().restore(
          std::move(s.predictor.history), s.predictor.alarmed,
          s.predictor.alarm_time_sec,
          static_cast<std::size_t>(s.predictor.consecutive));
      edge.filter().restore_stream(s.fir);
      if (controller) {
        controller->restore(s.degrade);
      }
      if (breaker) {
        breaker->restore(s.breaker);
        ts.last_breaker_state = breaker->state();
      }
      edge_slo.restore_state(s.edge_slo);
      initial_slo.restore_state(s.initial_slo);
      for (std::size_t k = 0; k < workers; ++k) {
        WorkerState& ws = *worker_states[k];
        ws.injector.restore(s.workers[k].injector);
        ws.channel.restore_rng(s.workers[k].channel_rng);
        ws.mailbox.injector = s.workers[k].injector;
        ws.mailbox.channel_rng = s.workers[k].channel_rng;
      }
      if (trace_seed != 0 && s.trace_seed != 0) {
        // Re-adopt the writing run's seed: windows keep the trace ids the
        // uninterrupted run would have minted — lineage survives the
        // crash.
        trace_seed = s.trace_seed;
      }
      for (robust::PendingCallCheckpoint& call : s.completed_calls) {
        PendingSearch restored = from_call_checkpoint(std::move(call));
        ts.outstanding_jobs[restored.sequence] = {restored.ready_at_sec,
                                                  restored.trace};
        ts.completed.push_back(std::move(restored));
      }
      for (const robust::ReplayEntryCheckpoint& entry : s.replay) {
        PendingSearch lost;
        lost.sequence = entry.sequence;
        lost.ready_at_sec = entry.t_issue_sec;
        lost.succeeded = false;
        lost.trace = obs::TraceContext{entry.trace_id, entry.parent_span};
        ts.outstanding_jobs[lost.sequence] = {entry.t_issue_sec,
                                              lost.trace};
        ts.completed.push_back(std::move(lost));
      }
      recovery_summary.replay_redelivered = s.replay.size();
      ts.issued = s.completed_calls.size() + s.replay.size();
      ts.applied = 0;
      ts.last_pa = s.last_pa;
      ts.last_loaded_sequence = s.last_loaded_sequence;
      ts.first_round_trip_recorded = s.counters.first_round_trip_recorded;
      ts.total_track_sec = s.counters.total_track_sec;
      ts.track_steps = static_cast<std::size_t>(s.counters.track_steps);
      result.cloud_calls = static_cast<std::size_t>(s.counters.cloud_calls);
      result.failed_cloud_calls =
          static_cast<std::size_t>(s.counters.failed_cloud_calls);
      result.retry_attempts =
          static_cast<std::size_t>(s.counters.retry_attempts);
      result.duplicates_discarded =
          static_cast<std::size_t>(s.counters.duplicates_discarded);
      result.degraded = s.counters.degraded;
      result.timings.delta_ec_sec = s.counters.delta_ec_sec;
      result.timings.delta_cs_sec = s.counters.delta_cs_sec;
      result.timings.delta_ce_sec = s.counters.delta_ce_sec;
      result.timings.delta_initial_sec = s.counters.delta_initial_sec;
      result.timings.max_track_sec = s.counters.max_track_sec;
      result.robust.critical_windows =
          static_cast<std::size_t>(s.counters.critical_windows);
      result.robust.shed_loads =
          static_cast<std::size_t>(s.counters.shed_loads);
      result.robust.deferred_flushes =
          static_cast<std::size_t>(s.counters.deferred_flushes);
      watchdog_trips_base =
          static_cast<std::size_t>(s.counters.watchdog_trips);
      quality_base = s.counters.quality;
      start_window = static_cast<std::size_t>(s.next_window);
      recovery_summary.resumed = true;
      recovery_summary.resume_window = start_window;
      recovery_summary.last_snapshot_window = s.next_window;
      if (p.metrics_.recovery_resumes != nullptr) {
        p.metrics_.recovery_resumes->increment();
        p.metrics_.recovery_resume_window->set(
            static_cast<double>(start_window));
      }
      const std::uint64_t resume_trace =
          trace_seed != 0 ? obs::mint_trace_id(trace_seed, start_window)
                          : 0;
      if (tracer != nullptr) {
        const double t_resume = static_cast<double>(start_window);
        tracer->record_sim("recovery_resume", "recovery", t_resume,
                           t_resume, 0, resume_trace);
      }
      if (flight != nullptr) {
        flight->log(obs::FlightEventType::kResume, "resume",
                    static_cast<double>(start_window), resume_trace,
                    static_cast<double>(start_window));
      }
    } catch (const robust::CheckpointError& error) {
      // Missing or rejected snapshot: fail closed in strict mode, fall
      // back to a cold start otherwise (the run is then a fresh session).
      if (recovery.strict) {
        throw;
      }
      recovery_summary.cold_start_fallback = true;
      recovery_summary.reject_reason = error.what();
      if (p.metrics_.recovery_cold_starts != nullptr) {
        p.metrics_.recovery_cold_starts->increment();
      }
    }
  }
  if (opts.stop_on_alarm && edge.predictor().anomaly_predicted()) {
    // The restored predictor already latched its alarm; nothing is left to
    // monitor.
    window_count = start_window;
  }

  robust::StageSupervisor supervisor(options_.supervisor, opts.metrics,
                                     flight);
  supervisor.set_failure_handler([&](const std::string& stage) {
    // A stage out of restart budget ends the run: force CRITICAL (the
    // operator-visible verdict), stop the source, and close every queue so
    // the rest of the graph drains and unwinds.
    if (controller) {
      controller->force_critical(ts.processed, 0.0);
    }
    stop.store(true, std::memory_order_release);
    close_all_queues();
    (void)stage;
  });

  // ---- Checkpoint quiesce barrier (durable runs only). ----
  //
  // On cadence the acquire stage (the coordinator) stops admitting source
  // windows and raises `draining`; each consumer stage parks at the gate
  // when its park precondition holds, in topological order (filter when
  // q_raw is empty, track when the ledger settled or the drain budget
  // expired, predict and the uplink workers behind track).  The
  // coordinator captures the snapshot while it holds the gate mutex — a
  // parked stage cannot resume until the epoch advances, so everything
  // the stages wrote happens-before the capture reads it.
  constexpr std::uint64_t kNeverParked =
      std::numeric_limits<std::uint64_t>::max();
  struct QuiesceGate {
    std::mutex m;
    std::condition_variable cv;
    std::atomic<bool> draining{false};
    std::atomic<bool> drain_expired{false};
    // Guarded by m.  A stage is parked at the *current* quiesce iff its
    // recorded epoch equals `epoch`; bumping the epoch on release makes
    // every park record stale at once, so a stage slow to wake from a
    // previous quiesce can never be mistaken for parked at this one.
    std::uint64_t epoch = 0;
    std::uint64_t filter_epoch = 0;
    std::uint64_t track_epoch = 0;
    std::uint64_t predict_epoch = 0;
    std::vector<std::uint64_t> worker_epochs;
  } gate;
  gate.filter_epoch = kNeverParked;
  gate.track_epoch = kNeverParked;
  gate.predict_epoch = kNeverParked;
  gate.worker_epochs.assign(workers, kNeverParked);

  // Parks the calling stage at the barrier until the coordinator bumps
  // the epoch.  `eligible` runs under the gate mutex; when it (or the
  // draining flag, re-checked under the lock so a release cannot be
  // missed) says no, the stage returns to its pop loop and retries.
  auto try_park = [&](std::uint64_t& stage_epoch, auto eligible) {
    std::unique_lock<std::mutex> lock(gate.m);
    if (!gate.draining.load(std::memory_order_acquire) || !eligible()) {
      return;
    }
    stage_epoch = gate.epoch;
    const std::uint64_t my_epoch = gate.epoch;
    gate.cv.notify_all();
    gate.cv.wait(lock, [&] { return gate.epoch != my_epoch; });
  };

  // Drop-in replacement for BoundedQueue::pop, used only on durable runs:
  // identical blocking semantics, plus the stage visits the quiesce gate
  // whenever the coordinator is draining.  Callers already bracket the
  // pop with set_idle(true/false), so a parked stage is exempt from
  // supervisor stall verdicts just like a blocked one.
  auto pop_or_park = [&](auto& queue, auto park) {
    for (;;) {
      if (auto item = queue.try_pop()) {
        return item;
      }
      if (queue.closed()) {
        return queue.try_pop();  // drain any racing final pushes
      }
      if (gate.draining.load(std::memory_order_acquire)) {
        park();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  auto ledger_settled = [&] {
    return ts.issued - ts.applied ==
           static_cast<std::uint64_t>(ts.completed.size());
  };

  // The track stage's park routine: settle the issued/applied ledger
  // first — collect in-flight results until every outstanding call has
  // landed or the drain budget expires — then park behind the filter
  // stage.  Runs on the track thread, off the gate mutex.
  auto track_park = [&] {
    while (gate.draining.load(std::memory_order_acquire) &&
           !gate.drain_expired.load(std::memory_order_acquire) &&
           !ledger_settled()) {
      if (std::optional<PendingSearch> done = q_deliver.try_pop()) {
        ts.completed.push_back(std::move(*done));
        continue;
      }
      if (q_deliver.closed()) {
        return;  // the run is shutting down; don't park
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    try_park(gate.track_epoch, [&] {
      return gate.filter_epoch == gate.epoch &&
             (ledger_settled() ||
              gate.drain_expired.load(std::memory_order_acquire));
    });
  };

  // Captures the full session state.  Caller must guarantee quiescence:
  // either every stage is parked at the gate (cadence snapshots) or the
  // stage threads are joined (epilogue snapshots).
  auto build_session_state = [&](std::size_t next_window) {
    robust::SessionState s;
    s.config_fingerprint = config_fp;
    s.input_fingerprint = input_fp;
    s.stream_fingerprint = stream_fp;
    s.next_window = next_window;
    s.last_pa = ts.last_pa;
    s.last_loaded_sequence = ts.last_loaded_sequence;
    s.counters.cloud_calls = result.cloud_calls;
    s.counters.failed_cloud_calls = result.failed_cloud_calls;
    s.counters.retry_attempts = result.retry_attempts;
    s.counters.duplicates_discarded = result.duplicates_discarded;
    s.counters.degraded = result.degraded;
    s.counters.first_round_trip_recorded = ts.first_round_trip_recorded;
    s.counters.delta_ec_sec = result.timings.delta_ec_sec;
    s.counters.delta_cs_sec = result.timings.delta_cs_sec;
    s.counters.delta_ce_sec = result.timings.delta_ce_sec;
    s.counters.delta_initial_sec = result.timings.delta_initial_sec;
    s.counters.total_track_sec = ts.total_track_sec;
    s.counters.track_steps = ts.track_steps;
    s.counters.max_track_sec = result.timings.max_track_sec;
    s.counters.critical_windows = result.robust.critical_windows;
    s.counters.shed_loads = result.robust.shed_loads;
    s.counters.deferred_flushes = result.robust.deferred_flushes;
    s.counters.watchdog_trips =
        watchdog_trips_base + (watchdog ? watchdog->trips() : 0);
    s.counters.quality =
        quality ? quality->summary() : robust::QualitySummary{};
    s.counters.quality.assessed += quality_base.assessed;
    s.counters.quality.good += quality_base.good;
    s.counters.quality.nan += quality_base.nan;
    s.counters.quality.flatline += quality_base.flatline;
    s.counters.quality.saturated += quality_base.saturated;
    s.counters.quality.artifact += quality_base.artifact;
    s.tracker.loaded = edge.tracker().loaded();
    s.tracker.steps_since_load = edge.tracker().steps_since_load();
    s.tracker.tracked.reserve(edge.tracker().active().size());
    for (const TrackedSignal& signal : edge.tracker().active()) {
      s.tracker.tracked.push_back(to_signal_state(signal));
    }
    s.predictor.history = edge.predictor().history();
    s.predictor.alarmed = edge.predictor().anomaly_predicted();
    s.predictor.alarm_time_sec = edge.predictor().first_alarm_sec();
    s.predictor.consecutive = edge.predictor().consecutive_hits();
    s.fir = edge.filter().save_stream();
    if (controller) {
      s.degrade = controller->checkpoint();
    }
    if (breaker) {
      s.breaker = breaker->checkpoint();
    }
    s.edge_slo = edge_slo.save_state();
    s.initial_slo = initial_slo.save_state();
    // The batch-mode injector/channel slots stay default-initialised: a
    // threaded session's fault state lives per worker below.
    s.trace_seed = trace_seed;
    s.completed_calls.reserve(ts.completed.size());
    for (const PendingSearch& call : ts.completed) {
      s.completed_calls.push_back(to_call_checkpoint(call));
    }
    for (const auto& [sequence, info] : ts.outstanding_jobs) {
      bool landed = false;
      for (const PendingSearch& call : ts.completed) {
        if (call.sequence == sequence) {
          landed = true;
          break;
        }
      }
      if (landed) {
        continue;
      }
      robust::ReplayEntryCheckpoint entry;
      entry.sequence = sequence;
      entry.t_issue_sec = info.first;
      entry.trace_id = info.second.trace_id;
      entry.parent_span = info.second.parent_span;
      s.replay.push_back(entry);
    }
    s.workers.reserve(workers);
    for (std::size_t k = 0; k < workers; ++k) {
      WorkerState& ws = *worker_states[k];
      std::lock_guard<std::mutex> mailbox_lock(ws.mailbox.m);
      robust::WorkerCheckpoint wc;
      wc.injector = ws.mailbox.injector;
      wc.channel_rng = ws.mailbox.channel_rng;
      s.workers.push_back(std::move(wc));
    }
    return s;
  };

  // The coordinator: runs on the acquire thread after admitting window
  // `next_window - 1`.  Raises the gate, waits for the graph to park,
  // captures and publishes the snapshot, then releases the gate.  Any
  // supervisor intervention while the gate is up aborts the snapshot (the
  // previous one on disk stays the resume point); the next cadence tries
  // again.
  auto quiesce_and_snapshot = [&](std::size_t next_window,
                                  robust::StageHealth& health) {
    health.set_idle(true);  // coordinating is waiting, not working
    EMAP_CRASH_POINT(crashpoints, "stream_quiesce");
    const std::uint64_t interventions_before = supervisor.interventions();
    gate.drain_expired.store(false, std::memory_order_release);
    gate.draining.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(gate.m);
    auto release = [&] {
      gate.draining.store(false, std::memory_order_release);
      ++gate.epoch;
      gate.cv.notify_all();
    };
    const auto started = std::chrono::steady_clock::now();
    auto elapsed = [&] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - started)
          .count();
    };
    // After the drain budget the unsettled ledger falls back to to-replay
    // entries and the stages park promptly; the hard bound on top exists
    // only so a wedged stage can never hold the gate forever.
    const double drain_budget = options_.drain_timeout_sec;
    const double hard_budget =
        drain_budget + std::max(5.0, drain_budget);
    bool aborted = false;
    for (;;) {
      if (supervisor.interventions() != interventions_before ||
          stop.load(std::memory_order_acquire) || q_raw.closed() ||
          q_outcome.closed() || health.abort_requested()) {
        aborted = true;  // a restart / stall / shutdown raced the quiesce
        break;
      }
      const bool stages_parked = gate.filter_epoch == gate.epoch &&
                                 gate.track_epoch == gate.epoch &&
                                 gate.predict_epoch == gate.epoch;
      std::size_t workers_parked = 0;
      for (const std::uint64_t worker_epoch : gate.worker_epochs) {
        if (worker_epoch == gate.epoch) {
          ++workers_parked;
        }
      }
      const bool workers_done =
          workers_parked == workers ||
          gate.drain_expired.load(std::memory_order_acquire);
      if (stages_parked && workers_done) {
        break;
      }
      if (elapsed() >= hard_budget) {
        aborted = true;
        break;
      }
      if (elapsed() >= drain_budget) {
        gate.drain_expired.store(true, std::memory_order_release);
      }
      gate.cv.wait_for(lock, std::chrono::milliseconds(5));
    }
    if (!aborted && supervisor.interventions() != interventions_before) {
      aborted = true;  // an intervention slipped in as the last stage parked
    }
    if (aborted) {
      ++recovery_summary.snapshot_aborts;
      release();
      return;
    }
    try {
      EMAP_CRASH_POINT(crashpoints, "stream_drain");
      if (gate.drain_expired.load(std::memory_order_acquire)) {
        ++recovery_summary.drain_timeouts;
      }
      robust::SessionState s = build_session_state(next_window);
      recovery_summary.replay_recorded += s.replay.size();
      robust::write_checkpoint(recovery.checkpoint_dir, s, crashpoints);
      ++recovery_summary.checkpoints_written;
      recovery_summary.last_snapshot_window = next_window;
      if (p.metrics_.recovery_checkpoints != nullptr) {
        p.metrics_.recovery_checkpoints->increment();
      }
      if (flight != nullptr) {
        flight->log(obs::FlightEventType::kCheckpoint, "checkpoint",
                    static_cast<double>(next_window),
                    trace_seed != 0 && next_window > 0
                        ? obs::mint_trace_id(trace_seed, next_window - 1)
                        : 0,
                    static_cast<double>(next_window));
      }
    } catch (...) {
      // An injected crash (kThrow) or I/O failure inside the capture must
      // not leave the gate raised: count the abort, release the stages,
      // and let the supervisor's wrapper handle the unwind.
      ++recovery_summary.snapshot_aborts;
      release();
      throw;
    }
    release();
  };

  // The acquire stage's admission cursor: the next window it would push.
  // Thread-confined to the acquire thread; read after join for the
  // shutdown snapshots.
  std::size_t acquired_next = start_window;

  // ---- Stage bodies. ----

  auto acquire_body = [&](robust::StageHealth& health) {
    health.set_idle(false);
    // A restarted incarnation resumes at its heartbeat cursor; a resumed
    // session starts at the snapshot's next window, whichever is later.
    for (std::size_t w = std::max(
             start_window, static_cast<std::size_t>(health.resume_cursor()));
         w < window_count; ++w) {
      if (stop.load(std::memory_order_acquire) || health.abort_requested()) {
        break;
      }
      const double t_end = static_cast<double>(w + 1);
      if (opts.stop_at_sec >= 0.0 && t_end > opts.stop_at_sec) {
        break;
      }
      maybe_fault("acquire", w + 1, health);
      if (health.abort_requested()) {
        return;  // restart resumes from resume_cursor()
      }
      EMAP_CRASH_POINT(crashpoints, "pipeline_window_start");
      RawItem item;
      item.window_index = w;
      item.t_end = t_end;
      item.trace_id =
          trace_seed != 0 ? obs::mint_trace_id(trace_seed, w) : 0;
      if (tracer != nullptr) {
        item.span_id =
            tracer->record_sim("window_" + std::to_string(w), "window",
                               t_end - 1.0, t_end, 0, item.trace_id);
        tracer->record_sim("sample", "sample", t_end - 1.0, t_end,
                           item.span_id, item.trace_id);
        tracer->record_sim("filter", "filter", t_end,
                           t_end + opts.filter_accelerator_sec, item.span_id,
                           item.trace_id);
      }
      if (flight != nullptr) {
        flight->log(obs::FlightEventType::kSpan,
                    ("window_" + std::to_string(w)).c_str(), t_end,
                    item.trace_id, static_cast<double>(w));
      }
      item.raw.assign(input.samples.begin() +
                          static_cast<std::ptrdiff_t>(w * window),
                      input.samples.begin() +
                          static_cast<std::ptrdiff_t>((w + 1) * window));
      health.set_idle(true);  // a blocked push is backpressure, not a stall
      // The source is always paced by blocking backpressure: acquire runs
      // at virtual speed (no wall-clock cost per window), so a lossy
      // policy here would flood q_raw and shed most of the input before
      // the filter stage ever saw it.  The configured policy governs the
      // downstream processing queues instead.
      const bool pushed = q_raw.push(std::move(item));
      health.set_idle(false);
      if (!pushed && q_raw.closed()) {
        break;
      }
      health.heartbeat(w + 1);
      acquired_next = w + 1;
      // The heartbeat precedes the quiesce on purpose: a crash inside the
      // barrier restarts this body at w + 1, skipping the failed cadence —
      // the next one snapshots normally.
      if (durable && (w + 1) % recovery.interval_windows == 0) {
        quiesce_and_snapshot(w + 1, health);
        health.set_idle(false);
        if (health.abort_requested()) {
          return;
        }
      }
    }
    health.set_idle(true);
    q_raw.close();
  };

  auto filter_body = [&](robust::StageHealth& health) {
    for (;;) {
      health.set_idle(true);
      std::optional<RawItem> item =
          durable ? pop_or_park(q_raw,
                                [&] {
                                  // The coordinator stopped admitting, so
                                  // an empty q_raw stays empty: park.
                                  try_park(gate.filter_epoch,
                                           [] { return true; });
                                })
                  : q_raw.pop();
      health.set_idle(false);
      if (!item.has_value()) {
        break;
      }
      if (health.abort_requested()) {
        return;
      }
      ++filter_state.processed;
      maybe_fault("filter", filter_state.processed, health);
      if (health.abort_requested()) {
        return;
      }
      FilteredItem out;
      out.window_index = item->window_index;
      out.t_end = item->t_end;
      out.trace_id = item->trace_id;
      out.span_id = item->span_id;
      out.filtered = edge.acquire_window(
          std::span<const double>(item->raw.data(), item->raw.size()));
      out.quality = edge.last_quality();
      if (p.metrics_.windows != nullptr) {
        p.metrics_.windows->increment();
      }
      health.heartbeat(filter_state.processed);
      health.set_idle(true);
      const bool pushed = push_with_policy(q_filtered, std::move(out));
      health.set_idle(false);
      if (!pushed && q_filtered.closed()) {
        break;
      }
    }
    health.set_idle(true);
    q_filtered.close();
  };

  auto track_body = [&](robust::StageHealth& health) {
    for (;;) {
      health.set_idle(true);
      std::optional<FilteredItem> item =
          durable ? pop_or_park(q_filtered, track_park) : q_filtered.pop();
      health.set_idle(false);
      if (!item.has_value()) {
        break;
      }
      if (health.abort_requested()) {
        return;
      }
      ++ts.processed;
      maybe_fault("track", ts.processed, health);
      if (health.abort_requested()) {
        return;
      }
      const std::size_t w = item->window_index;
      const double t_end = item->t_end;
      const std::uint64_t window_trace = item->trace_id;
      const std::uint64_t window_span = item->span_id;

      IterationRecord record;
      record.window_index = w;
      record.t_sec = t_end;
      record.quality = item->quality.verdict;
      record.recovered = recovery_summary.resumed;

      std::size_t shed_cap = 0;
      if (controller) {
        record.robust_state = controller->state();
        edge.tracker().set_stride_multiplier(
            controller->stride_multiplier());
        if (controller->shed_level() > 0) {
          shed_cap = controller->tracked_cap(config.top_k);
          edge.tracker().set_recall_threshold(controller->recall_threshold(
              config.tracking_threshold_h, config.top_k));
          edge.tracker().shed_to(shed_cap);
        } else {
          edge.tracker().set_recall_threshold(0);
        }
        record.shed_cap = shed_cap;
      }

      // Collect finished cloud calls and deliver every one whose virtual
      // ready time has arrived, oldest sequence first (the batch loop has
      // at most one outstanding; here up to `workers` overlap).
      while (std::optional<PendingSearch> done = q_deliver.try_pop()) {
        ts.completed.push_back(std::move(*done));
      }
      if (!edge.tracker().loaded() && ts.completed.empty() &&
          ts.issued > ts.applied) {
        // Cold start with the initial search still in flight: nothing can
        // be tracked until it lands, and the free-running edge would
        // otherwise race through the whole input while the cloud computes.
        // Wait for the result (the virtual ready-time gate below still
        // decides *which window* loads it, exactly like the batch loop).
        health.set_idle(true);
        std::optional<PendingSearch> done = q_deliver.pop();
        health.set_idle(false);
        if (done.has_value()) {
          ts.completed.push_back(std::move(*done));
        }
      }
      std::sort(ts.completed.begin(), ts.completed.end(),
                [](const PendingSearch& a, const PendingSearch& b) {
                  return a.sequence < b.sequence;
                });
      for (auto it = ts.completed.begin(); it != ts.completed.end();) {
        if (it->ready_at_sec > t_end) {
          ++it;
          continue;
        }
        PendingSearch pending = std::move(*it);
        it = ts.completed.erase(it);
        ++ts.applied;
        if (durable) {
          ts.outstanding_jobs.erase(pending.sequence);
        }
        result.retry_attempts +=
            pending.attempts > 0 ? pending.attempts - 1 : 0;
        result.duplicates_discarded += pending.duplicates;
        if (pending.succeeded &&
            static_cast<std::int64_t>(pending.sequence) >
                ts.last_loaded_sequence) {
          ts.last_loaded_sequence =
              static_cast<std::int64_t>(pending.sequence);
          if (shed_cap > 0 && pending.correlation_set.size() > shed_cap) {
            pending.correlation_set.resize(shed_cap);
            ++result.robust.shed_loads;
          }
          edge.tracker().load(std::move(pending.correlation_set));
          record.set_loaded = true;
          record.pa_on_load = edge.tracker().anomaly_probability();
          const double initial_sec =
              pending.delta_ec + pending.delta_cs + pending.delta_ce;
          initial_slo.observe(initial_sec);
          if (flight != nullptr &&
              initial_sec > initial_slo.spec().budget_sec) {
            flight->log(obs::FlightEventType::kSloMiss, "initial_response",
                        t_end, pending.trace.trace_id, initial_sec,
                        initial_slo.spec().budget_sec);
          }
          if (!ts.first_round_trip_recorded) {
            result.timings.delta_ec_sec = pending.delta_ec;
            result.timings.delta_cs_sec = pending.delta_cs;
            result.timings.delta_ce_sec = pending.delta_ce;
            result.timings.delta_initial_sec = initial_sec;
            ts.first_round_trip_recorded = true;
          }
          ++result.cloud_calls;
        } else if (pending.succeeded) {
          // Stale success: with several uplink workers, an older search
          // can complete after a newer set already loaded.  The round
          // trip itself succeeded — count the call, discard the payload.
          // (Impossible in the batch loop, which holds one outstanding
          // call at a time.)
          ++result.cloud_calls;
        } else {
          record.degraded = true;
          result.degraded = true;
          ++result.failed_cloud_calls;
          if (p.metrics_.degraded_windows != nullptr) {
            p.metrics_.degraded_windows->increment();
          }
        }
      }

      const bool quality_bad = quality && !item->quality.good();
      bool stage_stuck = false;
      bool observed_latency = false;
      double step_latency = 0.0;
      const std::uint64_t outstanding = ts.issued - ts.applied;
      auto issue_job = [&] {
        if (breaker_ptr != nullptr && !breaker_ptr->allow(t_end)) {
          record.breaker_rejected = true;
          if (tracer != nullptr) {
            tracer->record_sim("breaker_reject", "robust", t_end, t_end,
                               window_span, window_trace);
          }
          if (flight != nullptr) {
            flight->log(obs::FlightEventType::kShed, "breaker_reject",
                        t_end, window_trace);
          }
          return;
        }
        EMAP_CRASH_POINT(crashpoints, "pipeline_pre_cloud_call");
        UplinkJob job;
        job.sequence = static_cast<std::uint32_t>(w);
        job.t_issue_sec = t_end;
        job.trace = obs::TraceContext{window_trace, window_span};
        job.filtered = item->filtered;
        health.set_idle(true);
        // Cloud jobs are never shed once created: a shed job would strand
        // the issued/applied ledger (the result could never arrive), so
        // the uplink queue always blocks regardless of policy.
        const bool pushed = q_uplink.push(std::move(job));
        health.set_idle(false);
        if (pushed) {
          ++ts.issued;
          record.cloud_call_issued = true;
          if (durable) {
            ts.outstanding_jobs[static_cast<std::uint32_t>(w)] = {
                t_end, obs::TraceContext{window_trace, window_span}};
          }
        }
      };

      if (controller && controller->critical()) {
        record.robust_critical = true;
        record.anomaly_probability = ts.last_pa;
        ++result.robust.critical_windows;
      } else if (quality_bad) {
        record.anomaly_probability = ts.last_pa;
      } else if (edge.tracker().loaded()) {
        EMAP_CRASH_POINT(crashpoints, "pipeline_tracker_step");
        const TrackStepResult step = edge.tracker().step(item->filtered);
        record.tracked = true;
        record.anomaly_probability = step.anomaly_probability;
        record.tracked_before = step.tracked_before;
        record.tracked_after = step.tracked_after;
        record.removed_dissimilar = step.removed_dissimilar;
        record.removed_exhausted = step.removed_exhausted;
        record.abs_ops = step.abs_ops;
        record.track_device_sec =
            p.edge_device_.seconds_for_abs(
                static_cast<double>(step.abs_ops)) +
            p.edge_device_.per_signal_overhead_sec *
                static_cast<double>(step.tracked_before);
        ts.total_track_sec += record.track_device_sec;
        edge_slo.observe(record.track_device_sec);
        if (flight != nullptr &&
            record.track_device_sec > edge_slo.spec().budget_sec) {
          flight->log(obs::FlightEventType::kSloMiss, "edge_iteration",
                      t_end, window_trace, record.track_device_sec,
                      edge_slo.spec().budget_sec);
        }
        result.timings.max_track_sec =
            std::max(result.timings.max_track_sec, record.track_device_sec);
        ++ts.track_steps;
        ts.last_pa = step.anomaly_probability;
        observed_latency = true;
        step_latency = record.track_device_sec;
        if (watchdog) {
          stage_stuck = watchdog->check_stage(record.track_device_sec);
        }
        if (controller && controller->defer_flushes()) {
          ts.deferred_track_obs.push_back(record.track_device_sec);
          ++result.robust.deferred_flushes;
        } else if (p.metrics_.track_step != nullptr) {
          p.metrics_.track_step->observe(record.track_device_sec);
        }
        if (tracer != nullptr) {
          tracer->record_sim("edge-track", "edge-track", t_end,
                             t_end + record.track_device_sec, window_span,
                             window_trace);
          tracer->record_sim("prediction", "prediction",
                             t_end + record.track_device_sec,
                             t_end + record.track_device_sec + 1e-3,
                             window_span, window_trace);
        }
        if (step.cloud_call_needed && outstanding < workers) {
          issue_job();
        }
      } else if (outstanding == 0) {
        // Cold start: the first window triggers the initial MDB search.
        issue_job();
      }

      if (controller) {
        robust::WindowSignal signal;
        signal.window_index = w;
        signal.t_sec = t_end;
        signal.burn_rate = edge_slo.burn_rate();
        signal.stage_stuck = stage_stuck;
        double pressure = 0.0;
        auto fold = [&pressure](std::size_t depth, std::size_t capacity) {
          pressure = std::max(
              pressure, static_cast<double>(depth) /
                            static_cast<double>(capacity));
        };
        // The ingest queues (q_raw, q_filtered) are deliberately excluded:
        // the virtual-speed source saturates everything upstream of the
        // wall-clock bottleneck by design (blocking backpressure IS the
        // pacing), so their depth measures how far the simulation outruns
        // real time, not overload.  Pressure watches the cloud path and
        // the egress consumer, whose backlog is always genuine.
        fold(q_uplink.depth(), q_uplink.capacity());
        fold(q_deliver.depth(), q_deliver.capacity());
        fold(q_outcome.depth(), q_outcome.capacity());
        // Debounce on WALL time: at virtual speed the producer fills a
        // queue in microseconds, so a single descheduling of a consumer
        // thread reads as a full queue for many windows.  Report the
        // MINIMUM instantaneous pressure over the last quarter second of
        // wall clock — only saturation that persists that long (a
        // genuinely wedged or lagging consumer, e.g. a supervisor-level
        // stall) registers as pressure for the degrade controller.
        constexpr double kPressureSustainSec = 0.25;
        const double now_wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        ts.pressure_samples.emplace_back(now_wall, std::min(pressure, 1.0));
        // Prune, but keep ONE sample at or before the window start so we
        // can tell whether the window is fully covered by history.
        std::size_t keep_from = 0;
        while (keep_from + 1 < ts.pressure_samples.size() &&
               ts.pressure_samples[keep_from + 1].first <=
                   now_wall - kPressureSustainSec) {
          ++keep_from;
        }
        ts.pressure_samples.erase(ts.pressure_samples.begin(),
                                  ts.pressure_samples.begin() +
                                      static_cast<std::ptrdiff_t>(keep_from));
        if (ts.pressure_samples.front().first >
            now_wall - kPressureSustainSec) {
          // Not enough history yet to prove the backlog persisted.
          signal.queue_pressure = 0.0;
        } else {
          double sustained = 1.0;
          for (const auto& [when, sample] : ts.pressure_samples) {
            sustained = std::min(sustained, sample);
          }
          signal.queue_pressure = sustained;
        }
        // Actual record loss is unambiguous overload regardless of how
        // briefly the depth spiked: a transient the buffer absorbed is
        // what buffers are for, but a shed/dropped record means the
        // consumer truly fell behind its bound.
        const std::uint64_t loss_total =
            q_outcome.shed() + q_deliver.shed() + q_uplink.shed() +
            dropped_newest.load(std::memory_order_relaxed);
        if (loss_total > ts.last_loss_total) {
          signal.queue_pressure = 1.0;
        }
        ts.last_loss_total = loss_total;
        if (observed_latency) {
          const obs::SloSpec& spec = edge_slo.spec();
          signal.deadline_miss = step_latency > spec.budget_sec;
          signal.near_miss =
              !signal.deadline_miss &&
              step_latency > spec.near_miss_fraction * spec.budget_sec;
        } else {
          signal.no_observation = true;
        }
        const robust::DegradeState state_before = controller->state();
        controller->observe_window(signal);
        const robust::DegradeState state_after = controller->state();
        if (flight != nullptr && state_after != state_before) {
          flight->log(
              obs::FlightEventType::kRobustTransition,
              (std::string(robust::degrade_state_name(state_before)) +
               "_to_" + robust::degrade_state_name(state_after))
                  .c_str(),
              t_end, window_trace);
          if (signal.stage_stuck &&
              state_after == robust::DegradeState::kCritical &&
              !ts.watchdog_dumped) {
            ts.watchdog_dumped = true;
            ts.watchdog_dump_pending = true;
          }
        }
        if (!controller->defer_flushes() &&
            !ts.deferred_track_obs.empty()) {
          if (p.metrics_.track_step != nullptr) {
            for (const double observation : ts.deferred_track_obs) {
              p.metrics_.track_step->observe(observation);
            }
          }
          ts.deferred_track_obs.clear();
        }
      }
      if (depth_raw != nullptr) {
        depth_raw->set(static_cast<double>(q_raw.depth()));
        depth_filtered->set(static_cast<double>(q_filtered.depth()));
        depth_uplink->set(static_cast<double>(q_uplink.depth()));
        depth_deliver->set(static_cast<double>(q_deliver.depth()));
        depth_outcome->set(static_cast<double>(q_outcome.depth()));
      }

      if (breaker && flight != nullptr) {
        const robust::BreakerState breaker_state = breaker->state();
        if (breaker_state != ts.last_breaker_state) {
          if (breaker_state == robust::BreakerState::kOpen) {
            flight->log(obs::FlightEventType::kBreakerOpen, "breaker_open",
                        t_end, window_trace);
            if (tracer != nullptr) {
              tracer->record_sim("breaker_open", "robust", t_end, t_end,
                                 window_span, window_trace);
            }
            if (!ts.breaker_dumped) {
              ts.breaker_dumped = true;
              flight->trigger_dump("breaker_open");
            }
          } else if (breaker_state == robust::BreakerState::kClosed) {
            flight->log(obs::FlightEventType::kBreakerClose,
                        "breaker_close", t_end, window_trace);
          }
          ts.last_breaker_state = breaker_state;
        }
      }
      if (flight != nullptr && !ts.slo_burn_paged) {
        const bool edge_burning = !edge_slo.healthy();
        if (edge_burning || !initial_slo.healthy()) {
          ts.slo_burn_paged = true;
          obs::SloMonitor& burning = edge_burning ? edge_slo : initial_slo;
          flight->log(obs::FlightEventType::kSloBurnPage,
                      burning.spec().name.c_str(), t_end, window_trace,
                      burning.burn_rate());
          flight->trigger_dump("slo_burn_page");
        }
      }
      // After the burn-page check so CRITICAL owns the single dump file
      // (mirrors the batch loop's ordering).
      if (flight != nullptr && ts.watchdog_dump_pending) {
        ts.watchdog_dump_pending = false;
        flight->trigger_dump("watchdog_critical");
      }

      OutcomeItem out;
      out.supports_predict =
          record.tracked &&
          record.tracked_after >= config.predict_min_support;
      out.t_end = t_end;
      out.trace_id = window_trace;
      out.record = std::move(record);
      health.heartbeat(ts.processed);
      health.set_idle(true);
      const bool pushed = push_with_policy(q_outcome, std::move(out));
      health.set_idle(false);
      if (!pushed && q_outcome.closed()) {
        break;
      }
    }
    // Input drained: no more jobs will be issued.  Wait out in-flight
    // calls, then release the predict stage.  Results arriving after the
    // final window are discarded, like the batch loop's still-pending
    // search at run end.
    health.set_idle(true);
    q_uplink.close();
    while (ts.applied < ts.issued) {
      std::optional<PendingSearch> done = q_deliver.pop();
      if (!done.has_value()) {
        break;  // a worker died with the call in flight
      }
      ++ts.applied;
      if (durable) {
        ts.outstanding_jobs.erase(done->sequence);
      }
    }
    q_outcome.close();
  };

  auto predict_body = [&](robust::StageHealth& health) {
    for (;;) {
      health.set_idle(true);
      std::optional<OutcomeItem> item =
          durable ? pop_or_park(q_outcome,
                                [&] {
                                  try_park(gate.predict_epoch, [&] {
                                    return gate.track_epoch == gate.epoch;
                                  });
                                })
                  : q_outcome.pop();
      health.set_idle(false);
      if (!item.has_value()) {
        break;
      }
      if (health.abort_requested()) {
        return;
      }
      ++ps.processed;
      maybe_fault("predict", ps.processed, health);
      if (health.abort_requested()) {
        return;
      }
      if (item->supports_predict) {
        edge.predictor().observe(item->record.anomaly_probability,
                                 item->t_end);
      }
      if (scraper) {
        ps.last_window_end_sec = item->t_end;
        if (scraper->maybe_scrape(item->t_end) && alert_engine) {
          alert_engine->evaluate(*series_store, item->t_end,
                                 item->trace_id);
        }
      }
      result.iterations.push_back(std::move(item->record));
      EMAP_CRASH_POINT(crashpoints, "pipeline_window_end");
      if (opts.stop_on_alarm && edge.predictor().anomaly_predicted()) {
        stop.store(true, std::memory_order_release);
      }
      health.heartbeat(ps.processed);
    }
    health.set_idle(true);
  };

  auto make_worker_body = [&](std::size_t k) {
    return [&, k](robust::StageHealth& health) {
      WorkerState& me = *worker_states[k];
      const std::string name = "uplink" + std::to_string(k);
      if (me.in_flight.active) {
        // A previous incarnation died holding this job.  Deliver it as a
        // failed call (a degraded window, exactly like an exhausted
        // retry): without this, the issued/applied ledger never settles,
        // and a lost *cold-start* call would leave the track stage
        // waiting forever on a result that cannot arrive.
        PendingSearch lost;
        lost.sequence = me.in_flight.sequence;
        lost.ready_at_sec = me.in_flight.t_issue_sec;
        lost.succeeded = false;
        lost.trace = me.in_flight.trace;
        me.in_flight.active = false;
        health.set_idle(true);
        (void)q_deliver.push(std::move(lost));  // closed = run is ending
        health.set_idle(false);
      }
      for (;;) {
        health.set_idle(true);
        std::optional<UplinkJob> job =
            durable ? pop_or_park(q_uplink,
                                  [&] {
                                    // Track parked ⇒ no further issues;
                                    // only then is an empty uplink queue a
                                    // settled one.
                                    try_park(gate.worker_epochs[k], [&] {
                                      return gate.track_epoch == gate.epoch;
                                    });
                                  })
                    : q_uplink.pop();
        health.set_idle(false);
        if (!job.has_value()) {
          break;
        }
        if (health.abort_requested()) {
          return;
        }
        ++me.processed;
        me.in_flight.active = true;
        me.in_flight.sequence = job->sequence;
        me.in_flight.t_issue_sec = job->t_issue_sec;
        me.in_flight.trace = job->trace;
        maybe_fault(name, me.processed, health);
        if (health.abort_requested()) {
          return;
        }
        PendingSearch pending = p.executor_.issue(
            job->sequence, job->filtered, job->t_issue_sec, me.channel,
            me.retry, tracer, breaker_ptr, job->trace);
        EMAP_CRASH_POINT(crashpoints, "pipeline_post_cloud_call");
        if (durable) {
          // Republish the draw cursors at the job boundary, before the
          // delivery: whether or not the result below reaches the track
          // stage, the RNG streams advanced iff the search consumed them.
          std::lock_guard<std::mutex> mailbox_lock(me.mailbox.m);
          me.mailbox.injector = me.injector.save();
          me.mailbox.channel_rng = me.channel.save_rng();
        }
        health.heartbeat(me.processed);
        health.set_idle(true);
        const bool delivered = q_deliver.push(std::move(pending));
        health.set_idle(false);
        me.in_flight.active = false;
        if (!delivered) {
          break;
        }
      }
      health.set_idle(true);
      if (active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        q_deliver.close();
      }
    };
  };

  supervisor.spawn("predict", predict_body);
  supervisor.spawn("track", track_body);
  for (std::size_t k = 0; k < workers; ++k) {
    supervisor.spawn("uplink" + std::to_string(k), make_worker_body(k));
  }
  supervisor.spawn("filter", filter_body);
  supervisor.spawn("acquire", acquire_body);

  // The join IS the wait: every stage exits when its input queue closes
  // and drains (or on supervisor intervention), and the close cascades
  // from the acquire stage down the graph.
  supervisor.join_all();

  // ---- Epilogue (single-threaded again; thread joins order everything
  // the stages wrote). ----

  // Shutdown snapshots.  A supervisor give-up (forced CRITICAL) publishes
  // the post-mortem state durably — the emergency snapshot — so the next
  // run resumes at the admission cursor instead of cold-starting; a clean
  // end of input snapshots for the same reason.  Windows still in flight
  // at a forced shutdown are lost, exactly as the run's own forced-
  // shutdown semantics already allow.  A failed write must not take down
  // a finished run: the previously published snapshot stays the resume
  // point.
  if (durable) {
    const bool emergency = supervisor.any_failed();
    try {
      robust::SessionState s = build_session_state(acquired_next);
      recovery_summary.replay_recorded += s.replay.size();
      robust::write_checkpoint(recovery.checkpoint_dir, s, crashpoints);
      ++recovery_summary.checkpoints_written;
      recovery_summary.last_snapshot_window = acquired_next;
      recovery_summary.emergency_snapshot = emergency;
      if (p.metrics_.recovery_checkpoints != nullptr) {
        p.metrics_.recovery_checkpoints->increment();
      }
      if (flight != nullptr) {
        flight->log(obs::FlightEventType::kCheckpoint,
                    emergency ? "emergency_checkpoint"
                              : "shutdown_checkpoint",
                    static_cast<double>(acquired_next), 0,
                    static_cast<double>(acquired_next));
      }
    } catch (const std::exception&) {
      ++recovery_summary.snapshot_aborts;
    }
  }

  if (ts.track_steps > 0) {
    result.timings.mean_track_sec =
        ts.total_track_sec / static_cast<double>(ts.track_steps);
  }
  result.anomaly_predicted = edge.predictor().anomaly_predicted();
  result.first_alarm_sec = edge.predictor().first_alarm_sec();
  if (scraper && series_store->scrapes() == 0) {
    scraper->scrape_now(ps.last_window_end_sec);
    if (alert_engine) {
      alert_engine->evaluate(*series_store, ps.last_window_end_sec, 0);
    }
  }
  result.slo = {edge_slo.summary(), initial_slo.summary()};
  if (p.metrics_.track_step != nullptr) {
    for (const double observation : ts.deferred_track_obs) {
      p.metrics_.track_step->observe(observation);
    }
  }
  ts.deferred_track_obs.clear();
  if (controller) {
    result.robust.degrade = controller->summary();
    if (tracer != nullptr) {
      for (const auto& transition : controller->transitions()) {
        const std::uint64_t transition_trace =
            trace_seed != 0 && transition.t_sec >= 1.0
                ? obs::mint_trace_id(
                      trace_seed,
                      static_cast<std::uint64_t>(transition.t_sec - 1.0))
                : 0;
        tracer->record_sim(
            std::string("robust_") +
                robust::degrade_state_name(transition.from) + "_to_" +
                robust::degrade_state_name(transition.to),
            "robust", transition.t_sec, transition.t_sec, 0,
            transition_trace);
      }
    }
  }
  if (breaker) {
    result.robust.breaker = breaker->summary();
  }
  if (quality) {
    result.robust.quality = quality->summary();
  }
  // Fold in pre-crash counts a restored snapshot carried (zeros
  // otherwise), mirroring the batch epilogue.
  result.robust.quality.assessed += quality_base.assessed;
  result.robust.quality.good += quality_base.good;
  result.robust.quality.nan += quality_base.nan;
  result.robust.quality.flatline += quality_base.flatline;
  result.robust.quality.saturated += quality_base.saturated;
  result.robust.quality.artifact += quality_base.artifact;
  result.robust.watchdog_trips =
      watchdog_trips_base + (watchdog ? watchdog->trips() : 0);
  result.robust.supervisor_stalls = supervisor.stalls_detected();
  result.robust.supervisor_restarts = supervisor.restarts();
  result.robust.supervisor_crashes = supervisor.crashes();
  for (const robust::StageStats& stats : supervisor.stats()) {
    robust::StageQueueSummary row;
    row.stage = stats.name;
    row.processed = stats.processed;
    row.stalls = stats.stalls;
    row.crashes = stats.crashes;
    row.restarts = stats.restarts;
    row.failed = stats.failed;
    result.robust.stages.push_back(std::move(row));
  }
  auto queue_row = [&](const char* name, std::size_t capacity,
                       std::size_t max_depth, std::uint64_t pushed,
                       std::uint64_t popped, std::uint64_t shed) {
    robust::StageQueueSummary row;
    row.stage = std::string("q_") + name;
    row.processed = popped;
    row.queue = name;
    row.queue_capacity = capacity;
    row.queue_max_depth = max_depth;
    row.queue_pushed = pushed;
    row.queue_shed = shed;
    result.robust.stages.push_back(std::move(row));
  };
  queue_row("raw", q_raw.capacity(), q_raw.max_depth(), q_raw.pushed(),
            q_raw.popped(), q_raw.shed());
  queue_row("filtered", q_filtered.capacity(), q_filtered.max_depth(),
            q_filtered.pushed(), q_filtered.popped(), q_filtered.shed());
  queue_row("uplink", q_uplink.capacity(), q_uplink.max_depth(),
            q_uplink.pushed(), q_uplink.popped(), q_uplink.shed());
  queue_row("deliver", q_deliver.capacity(), q_deliver.max_depth(),
            q_deliver.pushed(), q_deliver.popped(), q_deliver.shed());
  queue_row("outcome", q_outcome.capacity(), q_outcome.max_depth(),
            q_outcome.pushed(), q_outcome.popped(),
            q_outcome.shed() + dropped_newest.load());
  if (tracer != nullptr) {
    result.trace = obs::timeline_view(*tracer);
  }
  return result;
}

}  // namespace emap::core
