#include "emap/core/predictor.hpp"

#include <algorithm>

#include "emap/common/error.hpp"

namespace emap::core {

AnomalyPredictor::AnomalyPredictor(const EmapConfig& config)
    : config_(config) {
  config_.validate();
}

void AnomalyPredictor::observe(double anomaly_probability, double t_sec) {
  require(anomaly_probability >= 0.0 && anomaly_probability <= 1.0,
          "AnomalyPredictor::observe: probability out of [0, 1]");
  history_.push_back(anomaly_probability);
  if (!alarmed_) {
    evaluate(t_sec);
    if (alarmed_) {
      alarm_time_sec_ = t_sec;
    }
  }
}

double AnomalyPredictor::latest() const {
  return history_.empty() ? 0.0 : history_.back();
}

double AnomalyPredictor::trend_rise() const {
  const std::size_t window =
      std::min(config_.predict_trend_window, history_.size());
  if (window < 2) {
    return 0.0;
  }
  const std::size_t begin = history_.size() - window;
  const std::size_t half = window / 2;
  double old_mean = 0.0;
  double new_mean = 0.0;
  for (std::size_t i = 0; i < half; ++i) {
    old_mean += history_[begin + i];
  }
  for (std::size_t i = window - half; i < window; ++i) {
    new_mean += history_[begin + i];
  }
  old_mean /= static_cast<double>(half);
  new_mean /= static_cast<double>(half);
  return new_mean - old_mean;
}

void AnomalyPredictor::evaluate(double) {
  const double p = latest();
  const bool condition =
      p >= config_.predict_high_probability ||
      (p >= config_.predict_base_probability &&
       trend_rise() >= config_.predict_rise_threshold);
  consecutive_ = condition ? consecutive_ + 1 : 0;
  if (consecutive_ >= config_.predict_persistence) {
    alarmed_ = true;
  }
}

void AnomalyPredictor::reset() {
  history_.clear();
  alarmed_ = false;
  alarm_time_sec_ = -1.0;
  consecutive_ = 0;
}

void AnomalyPredictor::restore(std::vector<double> history, bool alarmed,
                               double alarm_time_sec,
                               std::size_t consecutive) {
  for (const double p : history) {
    require(p >= 0.0 && p <= 1.0,
            "AnomalyPredictor::restore: probability out of [0, 1]");
  }
  history_ = std::move(history);
  alarmed_ = alarmed;
  alarm_time_sec_ = alarm_time_sec;
  consecutive_ = consecutive;
}

}  // namespace emap::core
