#include "emap/core/cloud_call.hpp"

#include <optional>
#include <string>

#include "emap/common/error.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/profiler.hpp"

namespace emap::core {

CloudCallMetrics CloudCallMetrics::resolve(obs::MetricsRegistry* registry) {
  CloudCallMetrics m;
  if (registry == nullptr) {
    return m;
  }
  m.cloud_calls = &registry->counter("emap_pipeline_cloud_calls_total", {},
                                     "Cloud searches issued");
  m.retries = &registry->counter(
      "emap_edge_retries_total", {},
      "Cloud-call attempts beyond the first (RetryPolicy re-sends)");
  m.retry_timeouts = &registry->counter(
      "emap_edge_retry_timeouts_total", {},
      "Cloud-call attempts that timed out (message lost, or corrupted "
      "where only the receiver could tell)");
  m.rejects_timeout = &registry->counter(
      "emap_edge_rejects_total", {{"reason", "timeout"}},
      "Cloud-call attempts rejected, by typed reason");
  m.rejects_corrupt = &registry->counter(
      "emap_edge_rejects_total", {{"reason", "corrupt"}},
      "Cloud-call attempts rejected, by typed reason");
  m.call_failures = &registry->counter(
      "emap_edge_cloud_call_failures_total", {},
      "Cloud calls that exhausted every retry and degraded");
  m.duplicates_discarded = &registry->counter(
      "emap_edge_duplicates_discarded_total", {},
      "Duplicate correlation-set downloads dropped by sequence dedup");
  m.retry_backoff = &registry->histogram(
      "emap_edge_retry_backoff_seconds", {},
      obs::Histogram::default_latency_bounds(),
      "Backoff waited before each cloud-call retry");
  m.delta_ec = &registry->histogram(
      "emap_delta_ec_seconds", {}, obs::Histogram::default_latency_bounds(),
      "Edge-to-cloud upload time per cloud call (Eq. 4)");
  m.delta_cs = &registry->histogram(
      "emap_delta_cs_seconds", {}, obs::Histogram::default_latency_bounds(),
      "Cloud search time per cloud call (Eq. 4)");
  m.delta_ce = &registry->histogram(
      "emap_delta_ce_seconds", {}, obs::Histogram::default_latency_bounds(),
      "Cloud-to-edge download time per cloud call (Eq. 4)");
  m.delta_initial = &registry->histogram(
      "emap_delta_initial_seconds", {},
      obs::Histogram::default_latency_bounds(),
      "Full round-trip overhead per cloud call (Eq. 4 sum)");
  m.encode = &registry->histogram(
      "emap_codec_encode_seconds", {},
      obs::Histogram::default_latency_bounds(),
      "Wire-message encode wall time");
  m.decode = &registry->histogram(
      "emap_codec_decode_seconds", {},
      obs::Histogram::default_latency_bounds(),
      "Wire-message decode wall time");
  return m;
}

PendingSearch CloudCallExecutor::issue(
    std::uint32_t sequence, const std::vector<double>& filtered_window,
    double now_sec, net::Channel& channel, const net::RetryPolicy& retry,
    obs::Tracer* tracer, robust::CircuitBreaker* breaker,
    obs::TraceContext trace) const {
  EMAP_PROFILE_SCOPE("cloud_call");
  net::SignalUploadMessage upload;
  upload.sequence = sequence;
  upload.samples = filtered_window;
  // The upload carries the issuing window's causal chain across the wire
  // (V2 header); an invalid context keeps the message byte-identical V1.
  upload.trace = trace;
  const std::size_t upload_bytes_size = net::wire_size(upload);

  PendingSearch pending;
  pending.sequence = sequence;
  pending.trace = trace;

  // Timeout derives from the channel's expected transfer times: the upload
  // plus a full top-k response (the edge knows the set size it asked for).
  // The response size is extrapolated from a one-entry message so the
  // per-message latency/framing terms are counted once, not top_k times.
  net::CorrelationSetMessage response_shape;
  response_shape.entries.emplace_back().samples.resize(
      cloud_->store().info().slice_length);
  const std::size_t empty_response_bytes =
      net::wire_size(net::CorrelationSetMessage{});
  const std::size_t per_entry_bytes =
      net::wire_size(response_shape) - empty_response_bytes;
  const std::size_t response_bytes =
      empty_response_bytes + config_->top_k * per_entry_bytes;
  const double expected_transfer =
      channel.expected_seconds(net::Direction::kUpload, upload_bytes_size) +
      channel.expected_seconds(net::Direction::kDownload, response_bytes);
  const double timeout = retry.timeout_for(expected_transfer);

  // Children of the per-call parent span, recorded after the loop once the
  // parent's full (retries included) extent is known.  Each leg carries its
  // own trace id: the delta_CS leg takes it from the *decoded* upload, so a
  // shared id in the span log proves the context crossed the wire.
  struct Leg {
    std::string name;
    std::string category;
    double start_sec;
    double end_sec;
    std::uint64_t trace_id;
  };
  std::vector<Leg> legs;

  double elapsed = 0.0;
  // Typed failure accounting: the *reason* decides what the attempt costs
  // (a timeout charges the full timeout; a CRC-detected corrupt download
  // fails fast, charging only the transfer time actually spent) and what
  // backoff the next attempt waits (see RetryPolicy::backoff_for).
  net::RejectReason last_reason = net::RejectReason::kNone;
  auto fail_attempt = [&](std::size_t attempt, net::RejectReason reason,
                          double charged_sec) {
    if (tracer != nullptr) {
      legs.push_back({"attempt_" + std::to_string(attempt) + "_" +
                          net::reject_reason_name(reason),
                      "retry", now_sec + elapsed,
                      now_sec + elapsed + charged_sec, trace.trace_id});
    }
    if (flight_ != nullptr) {
      flight_->log(obs::FlightEventType::kRetry,
                   net::reject_reason_name(reason), now_sec + elapsed,
                   trace.trace_id, static_cast<double>(attempt), charged_sec);
    }
    elapsed += charged_sec;
    last_reason = reason;
    if (reason == net::RejectReason::kTimeout) {
      if (metrics_.retry_timeouts != nullptr) {
        metrics_.retry_timeouts->increment();
      }
      if (metrics_.rejects_timeout != nullptr) {
        metrics_.rejects_timeout->increment();
      }
    } else if (reason == net::RejectReason::kCorrupt &&
               metrics_.rejects_corrupt != nullptr) {
      metrics_.rejects_corrupt->increment();
    }
    if (breaker != nullptr) {
      breaker->record_failure(now_sec + elapsed);
    }
  };

  for (std::size_t attempt = 0;; ++attempt) {
    // The breaker's remaining OPEN cooldown doubles as a RetryAfter hint:
    // a retry against a link the edge itself has declared down waits out
    // the cooldown instead of hammering it (the cloud's admission
    // controller feeds the same parameter on its shed responses).
    const double retry_after_hint =
        breaker != nullptr ? breaker->retry_after_hint(now_sec + elapsed)
                           : 0.0;
    const double backoff =
        retry.backoff_for(attempt, last_reason, retry_after_hint);
    if (!retry.allow_attempt_after(attempt, elapsed, backoff, timeout)) {
      break;
    }
    if (attempt > 0) {
      if (tracer != nullptr && backoff > 0.0) {
        legs.push_back({"backoff_" + std::to_string(attempt), "retry",
                        now_sec + elapsed, now_sec + elapsed + backoff,
                        trace.trace_id});
      }
      elapsed += backoff;
      if (metrics_.retries != nullptr) {
        metrics_.retries->increment();
        metrics_.retry_backoff->observe(backoff);
      }
    }
    ++pending.attempts;

    // ---- Upload leg (edge -> cloud). ----
    double up_sec = 0.0;
    bool leg_ok = true;
    std::optional<net::SignalUploadMessage> at_cloud;
    if (use_transport_) {
      // Full wire path: the cloud sees the 16-bit quantized window and the
      // edge receives 16-bit quantized signal-sets.
      std::vector<std::uint8_t> upload_bytes;
      if (metrics_.encode != nullptr) {
        obs::ScopedTimer timer(*metrics_.encode);
        upload_bytes = net::encode_upload(upload);
      } else {
        upload_bytes = net::encode_upload(upload);
      }
      const net::TransferOutcome out =
          channel.transfer(net::Direction::kUpload, upload_bytes);
      up_sec = out.seconds;
      if (!out.delivered()) {
        leg_ok = false;
      } else {
        try {
          at_cloud = net::decode_upload(upload_bytes);
        } catch (const CorruptData&) {
          // The cloud cannot answer a request it cannot read; the edge
          // sees silence and times out.
          leg_ok = false;
        }
      }
    } else {
      up_sec = channel.upload_seconds(upload_bytes_size);
      if (net::FaultInjector* injector = channel.fault_injector()) {
        const net::FaultPlan plan =
            injector->apply(net::Direction::kUpload, {});
        up_sec += plan.extra_delay_sec;
        leg_ok = !plan.dropped;
      }
      at_cloud = upload;
    }
    if (!leg_ok) {
      // Either way the edge observed nothing but silence: an upload lost
      // in flight and one corrupted past recognition are indistinguishable
      // from this side of the link.
      fail_attempt(attempt, net::RejectReason::kTimeout, timeout);
      continue;
    }

    // ---- Cloud search. ----
    SearchStats stats;
    net::CorrelationSetMessage response = cloud_->respond(*at_cloud, &stats);
    // Echo the *received* context back, exactly as CloudService does: the
    // downlink message then carries the chain for the edge's delta_CE leg.
    response.trace = at_cloud->trace;
    const double cs_sec =
        cloud_device_->seconds_for_macs(static_cast<double>(stats.mac_ops)) +
        cloud_device_->per_signal_overhead_sec *
            static_cast<double>(stats.sets_scanned);

    // ---- Download leg (cloud -> edge). ----
    double down_sec = 0.0;
    bool duplicated = false;
    // A dropped response is silence (timeout); a response that *arrives*
    // but fails CRC/sequence validation is detected the moment it is
    // decoded — the edge fails fast, charging only the time the round
    // trip actually took, and retries on the flat corrupt backoff.
    net::RejectReason down_reason = net::RejectReason::kTimeout;
    if (use_transport_) {
      auto download_bytes = net::encode_correlation_set(response);
      const net::TransferOutcome out =
          channel.transfer(net::Direction::kDownload, download_bytes);
      down_sec = out.seconds;
      duplicated = out.fault.duplicated;
      if (!out.delivered()) {
        leg_ok = false;
      } else {
        try {
          if (metrics_.decode != nullptr) {
            obs::ScopedTimer timer(*metrics_.decode);
            response = net::decode_correlation_set(download_bytes);
          } else {
            response = net::decode_correlation_set(download_bytes);
          }
          // Monotone sequence handling: a response must answer the request
          // the edge has outstanding; anything else is discarded.
          if (response.request_sequence != sequence) {
            leg_ok = false;
            down_reason = net::RejectReason::kCorrupt;
          }
        } catch (const CorruptData&) {
          leg_ok = false;
          down_reason = net::RejectReason::kCorrupt;
        }
      }
    } else {
      down_sec = channel.download_seconds(net::wire_size(response));
      if (net::FaultInjector* injector = channel.fault_injector()) {
        const net::FaultPlan plan =
            injector->apply(net::Direction::kDownload, {});
        down_sec += plan.extra_delay_sec;
        duplicated = plan.duplicated;
        leg_ok = !plan.dropped;
      }
    }
    if (!leg_ok) {
      fail_attempt(attempt, down_reason,
                   down_reason == net::RejectReason::kCorrupt
                       ? up_sec + cs_sec + down_sec
                       : timeout);
      continue;
    }
    if (duplicated) {
      // The link delivered the response twice; the edge's sequence dedup
      // keeps the first copy and drops the echo.
      ++pending.duplicates;
      if (metrics_.duplicates_discarded != nullptr) {
        metrics_.duplicates_discarded->increment();
      }
    }
    pending.succeeded = true;
    pending.delta_ec = up_sec;
    pending.delta_cs = cs_sec;
    pending.delta_ce = down_sec;

    if (tracer != nullptr) {
      const double t0 = now_sec + elapsed;
      // delta_CS carries the trace id the *cloud* decoded from the upload
      // and delta_CE the one the *edge* decoded from the response — both
      // equal trace.trace_id only because the context survived the wire.
      legs.push_back({"delta_EC", "upload", t0, t0 + up_sec,
                      trace.trace_id});
      legs.push_back({"delta_CS", "cloud-search", t0 + up_sec,
                      t0 + up_sec + cs_sec, at_cloud->trace.trace_id});
      legs.push_back({"delta_CE", "download", t0 + up_sec + cs_sec,
                      t0 + up_sec + cs_sec + down_sec,
                      response.trace.trace_id});
    }
    elapsed += up_sec + cs_sec + down_sec;

    pending.correlation_set.reserve(response.entries.size());
    for (const auto& entry : response.entries) {
      TrackedSignal signal;
      signal.set_id = entry.set_id;
      signal.omega = static_cast<double>(entry.omega);
      signal.beta = entry.beta;
      signal.anomalous = entry.anomalous != 0;
      signal.class_tag = entry.class_tag;
      signal.samples = entry.samples;
      pending.correlation_set.push_back(std::move(signal));
    }
    if (breaker != nullptr) {
      breaker->record_success(now_sec + elapsed);
    }
    break;
  }
  pending.ready_at_sec = now_sec + elapsed;

  if (pending.succeeded && metrics_.cloud_calls != nullptr) {
    metrics_.cloud_calls->increment();
    metrics_.delta_ec->observe(pending.delta_ec);
    metrics_.delta_cs->observe(pending.delta_cs);
    metrics_.delta_ce->observe(pending.delta_ce);
    metrics_.delta_initial->observe(pending.delta_ec + pending.delta_cs +
                                    pending.delta_ce);
  }
  if (!pending.succeeded && metrics_.call_failures != nullptr) {
    metrics_.call_failures->increment();
  }

  if (tracer != nullptr) {
    // One parent span per round trip, spanning retries and all; the Eq. 4
    // legs and any timeout/backoff intervals nest under it, and the whole
    // subtree attaches to the issuing window via trace.parent_span.
    const std::uint64_t call = tracer->record_sim(
        "cloud_call_" + std::to_string(sequence), "cloud-call", now_sec,
        pending.ready_at_sec, trace.parent_span, trace.trace_id);
    for (const Leg& leg : legs) {
      tracer->record_sim(leg.name, leg.category, leg.start_sec, leg.end_sec,
                         call, leg.trace_id);
    }
  }
  return pending;
}

}  // namespace emap::core
