// EMAP framework configuration (the paper's operating parameters).
#pragma once

#include <cstddef>
#include <string>

#include "emap/dsp/fir.hpp"

namespace emap::core {

/// All tunables of the EMAP framework, preset to the paper's values
/// (Section V): 256 Hz sampling, 256-sample windows, 1000-sample
/// signal-sets, α = 0.004, δ = 0.8, δ_A ≈ 900, top-100 tracking.
struct EmapConfig {
  // --- Acquisition ---
  double base_fs_hz = 256.0;       ///< sampling rate
  std::size_t window_length = 256; ///< samples per time-step (1 s)
  dsp::FirDesign filter{};         ///< 100-tap 11-40 Hz bandpass (Eq. 1)

  // --- Cloud search (Algorithm 1) ---
  double alpha = 0.004;            ///< step-size of the sliding window
  double delta = 0.8;              ///< cross-correlation threshold
  std::size_t top_k = 100;         ///< size of the correlation set T
  /// Clamp on the exponential skip β += α^(ω-1); equals 1/α at ω = 0 for
  /// the paper's α but guards degenerate configurations.
  std::size_t max_skip = 4096;

  // --- Edge tracking (Algorithm 2) ---
  double delta_area = 900.0;       ///< area threshold δ_A (sq. units)
  std::size_t tracking_threshold_h = 30;  ///< H: re-call cloud below this
  /// Offset stride of the forward re-match scan (Algorithm 2's inner
  /// while-loop over W.β; see DESIGN.md on the interpretation).
  std::size_t track_scan_stride = 4;
  /// Maximum offsets probed per signal per iteration: the tracker looks at
  /// most stride * max_scan samples ahead (one window with the defaults),
  /// which bounds the per-iteration edge cost ("lightweight").
  std::size_t track_max_scan_offsets = 32;

  // --- Prediction ---
  double predict_high_probability = 0.80;  ///< alarm when P_A exceeds this
  double predict_rise_threshold = 0.12;    ///< or when P_A rises this much
  double predict_base_probability = 0.30;  ///< ... above this floor
  std::size_t predict_trend_window = 5;    ///< iterations in the rise test
  /// P_A estimates over fewer tracked signals than this are statistically
  /// meaningless (2 survivors that happen to be anomalous read as
  /// P_A = 1.0) and are not fed to the predictor.
  std::size_t predict_min_support = 7;
  /// The alarm condition must hold on this many consecutive observations.
  /// A true prodrome keeps P_A elevated for many iterations; transient
  /// spikes from correlated survivors (several slices of one recording
  /// tracking together) do not.
  std::size_t predict_persistence = 2;

  /// Throws InvalidArgument when any parameter is out of range.
  void validate() const;

  /// Eight-hex-digit CRC-32 over the canonical parameter text.  Two runs
  /// are perf-comparable only when their fingerprints match; bench and
  /// telemetry exports stamp it so tools/perfdiff can refuse apples-to-
  /// oranges comparisons.
  std::string fingerprint() const;

  /// The configuration used throughout the paper's evaluation.
  static EmapConfig paper_defaults() { return EmapConfig{}; }
};

}  // namespace emap::core
