// Anomaly prediction from the P_A time series.
//
// "Each time-step of the input signal is compared with the set of
// correlated signals to estimate the anomaly probability, which if
// increasing is classified as an anomaly" (paper Section VI-B).  The
// predictor watches the P_A sequence produced by the edge tracker and
// raises an alarm when the probability is high outright or rising from a
// non-trivial floor.
#pragma once

#include <cstddef>
#include <vector>

#include "emap/core/config.hpp"

namespace emap::core {

/// Trend-based anomaly alarm over the P_A sequence.
class AnomalyPredictor {
 public:
  explicit AnomalyPredictor(const EmapConfig& config);

  /// Feeds the P_A estimate of one tracking iteration at time `t_sec`.
  void observe(double anomaly_probability, double t_sec);

  /// True once an alarm has been raised (alarms latch).
  bool anomaly_predicted() const { return alarmed_; }

  /// Time of the first alarm; negative when no alarm was raised.
  double first_alarm_sec() const { return alarm_time_sec_; }

  /// Latest observed P_A (0 before any observation).
  double latest() const;

  /// Rise of P_A over the trend window: mean of the newest half minus
  /// mean of the oldest half of the last `predict_trend_window` samples.
  double trend_rise() const;

  const std::vector<double>& history() const { return history_; }

  /// Clears observations and the alarm latch.
  void reset();

  /// Reinstates a previously captured P_A history, alarm latch, and
  /// persistence streak (checkpoint support).
  void restore(std::vector<double> history, bool alarmed,
               double alarm_time_sec, std::size_t consecutive);

  /// Consecutive alarm-condition hits so far (checkpoint support).
  std::size_t consecutive_hits() const { return consecutive_; }

 private:
  void evaluate(double t_sec);

  EmapConfig config_;
  std::vector<double> history_;
  bool alarmed_ = false;
  double alarm_time_sec_ = -1.0;
  std::size_t consecutive_ = 0;  ///< consecutive alarm-condition hits
};

}  // namespace emap::core
