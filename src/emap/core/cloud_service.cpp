#include "emap/core/cloud_service.hpp"

#include <algorithm>
#include <string>

#include "emap/common/error.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/timeseries.hpp"

namespace emap::core {

CloudService::CloudService(mdb::MdbStore store, const EmapConfig& config,
                           std::size_t virtual_workers)
    : node_(std::move(store), config, /*threads=*/1),
      device_(sim::cloud_i7()),
      virtual_workers_(virtual_workers) {
  require(virtual_workers_ >= 1, "CloudService: need at least one worker");
}

void CloudService::set_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  node_.set_metrics(registry);
  if (registry == nullptr) {
    metrics_ = ServiceMetrics{};
    return;
  }
  metrics_.queue_depth = &registry->gauge(
      "emap_cloud_queue_depth", {}, "Requests waiting in the service queue");
  metrics_.wait = &registry->histogram(
      "emap_cloud_wait_seconds", {}, obs::Histogram::default_latency_bounds(),
      "Queueing delay before a worker picks a request up");
  metrics_.service = &registry->histogram(
      "emap_cloud_service_seconds", {},
      obs::Histogram::default_latency_bounds(),
      "Device-model search time per request");
  metrics_.response = &registry->histogram(
      "emap_cloud_response_seconds", {},
      obs::Histogram::default_latency_bounds(),
      "Arrival-to-completion time per request");
  metrics_.utilization = &registry->gauge(
      "emap_cloud_utilization", {},
      "Busy worker-time over workers * makespan of the last batch");
}

void CloudService::enable_admission(robust::AdmissionOptions options) {
  admission_ = std::make_unique<robust::AdmissionController>(
      options, virtual_workers_, registry_);
}

robust::AdmissionDecision CloudService::submit(ServiceRequest request) {
  if (admission_ != nullptr) {
    const double remaining =
        request.deadline_sec - request.arrival_sec;
    const robust::AdmissionDecision decision =
        admission_->try_admit(remaining);
    if (!decision.accepted) {
      ++shed_accum_;
      if (flight_ != nullptr) {
        flight_->log(obs::FlightEventType::kShed, "admission_shed",
                     request.arrival_sec, request.upload.trace.trace_id,
                     decision.retry_after_sec);
      }
      return decision;
    }
    queue_.push_back(std::move(request));
    if (metrics_.queue_depth != nullptr) {
      metrics_.queue_depth->set(static_cast<double>(queue_.size()));
    }
    return decision;
  }
  queue_.push_back(std::move(request));
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->set(static_cast<double>(queue_.size()));
  }
  return robust::AdmissionDecision{};
}

std::vector<ServiceResponse> CloudService::process_all() {
  // FIFO by arrival; stable sort keeps submission order on simultaneous
  // arrivals.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const ServiceRequest& a, const ServiceRequest& b) {
                     return a.arrival_sec < b.arrival_sec;
                   });

  std::vector<double> worker_free(virtual_workers_, 0.0);
  std::vector<double> worker_busy(virtual_workers_, 0.0);
  std::vector<ServiceResponse> responses;
  responses.reserve(queue_.size());

  double busy_time = 0.0;
  double first_arrival = queue_.empty() ? 0.0 : queue_.front().arrival_sec;
  double last_completion = first_arrival;
  double total_wait = 0.0;
  double total_service = 0.0;
  double total_response = 0.0;
  double max_response = 0.0;

  std::size_t lost_requests = 0;
  for (auto& request : queue_) {
    if (injector_ != nullptr &&
        injector_->apply(net::Direction::kUpload, {}).lost()) {
      // The uplink ate this request; no worker ever sees it, the patient's
      // edge times out and retries on its own schedule.
      ++lost_requests;
      if (admission_ != nullptr) {
        // Drain the admitted slot without perturbing the EWMA: feeding the
        // current estimate back leaves it fixed.
        admission_->on_start();
        admission_->on_complete(admission_->expected_service_sec());
      }
      continue;
    }
    if (admission_ != nullptr) {
      admission_->on_start();
    }
    // Earliest-free worker serves next (FIFO dispatch).
    auto worker = std::min_element(worker_free.begin(), worker_free.end());
    ServiceResponse response;
    response.patient = request.patient;
    response.sequence = request.upload.sequence;
    response.arrival_sec = request.arrival_sec;
    response.start_sec = std::max(*worker, request.arrival_sec);

    response.correlation_set = node_.respond(request.upload);
    const SearchStats& stats = node_.last_stats();
    const double service =
        device_.seconds_for_macs(static_cast<double>(stats.mac_ops)) +
        device_.per_signal_overhead_sec *
            static_cast<double>(stats.sets_scanned);
    response.completion_sec = response.start_sec + service;
    if (request.upload.trace.valid()) {
      // Continue the edge's causal chain on the cloud side: queue_wait and
      // cloud_scan attach under the decoded upload's trace id, and the
      // response carries the context back for the downlink leg.
      std::uint64_t scan_parent = request.upload.trace.parent_span;
      if (tracer_ != nullptr) {
        const std::uint64_t wait_span = tracer_->record_sim(
            "queue_wait", "cloud", response.arrival_sec, response.start_sec,
            request.upload.trace.parent_span, request.upload.trace.trace_id);
        scan_parent = wait_span;
        tracer_->record_sim("cloud_scan", "cloud", response.start_sec,
                            response.completion_sec, wait_span,
                            request.upload.trace.trace_id);
      }
      response.correlation_set.trace.trace_id =
          request.upload.trace.trace_id;
      response.correlation_set.trace.parent_span = scan_parent;
    }
    if (admission_ != nullptr) {
      admission_->on_complete(service);
    }
    *worker = response.completion_sec;
    worker_busy[static_cast<std::size_t>(worker - worker_free.begin())] +=
        service;

    busy_time += service;
    total_wait += response.wait_sec();
    total_service += service;
    total_response += response.response_sec();
    max_response = std::max(max_response, response.response_sec());
    last_completion = std::max(last_completion, response.completion_sec);
    if (metrics_.wait != nullptr) {
      metrics_.wait->observe(response.wait_sec());
      metrics_.service->observe(service);
      metrics_.response->observe(response.response_sec());
    }
    if (scraper_ != nullptr) {
      // Sample along the batch's virtual timeline (the scraper rate-limits
      // to its own interval; most completions are a no-op).
      scraper_->maybe_scrape(response.completion_sec);
    }
    responses.push_back(std::move(response));
  }

  stats_ = CloudServiceStats{};
  stats_.requests = responses.size();
  stats_.lost_requests = lost_requests;
  stats_.shed_requests = shed_accum_;
  shed_accum_ = 0;
  if (!responses.empty()) {
    const auto count = static_cast<double>(responses.size());
    stats_.mean_wait_sec = total_wait / count;
    stats_.mean_service_sec = total_service / count;
    stats_.mean_response_sec = total_response / count;
    stats_.max_response_sec = max_response;
    stats_.makespan_sec = last_completion - first_arrival;
    // A zero makespan (single instantaneous request, or an empty store
    // whose searches cost nothing) must not divide: utilization stays 0.
    if (stats_.makespan_sec > 0.0) {
      stats_.utilization = busy_time / (static_cast<double>(virtual_workers_) *
                                        stats_.makespan_sec);
    }
  }
  if (registry_ != nullptr) {
    metrics_.queue_depth->set(0.0);
    metrics_.utilization->set(stats_.utilization);
    for (std::size_t i = 0; i < virtual_workers_; ++i) {
      registry_
          ->gauge("emap_cloud_worker_utilization",
                  {{"worker", std::to_string(i)}},
                  "Per-worker busy fraction of the last batch's makespan")
          .set(stats_.makespan_sec > 0.0 ? worker_busy[i] / stats_.makespan_sec
                                         : 0.0);
    }
  }
  queue_.clear();
  std::sort(responses.begin(), responses.end(),
            [](const ServiceResponse& a, const ServiceResponse& b) {
              if (a.completion_sec != b.completion_sec) {
                return a.completion_sec < b.completion_sec;
              }
              return a.patient < b.patient;
            });
  return responses;
}

}  // namespace emap::core
