// Algorithm 2: lightweight signal tracking at the edge.
//
// The edge holds the signal correlation set T downloaded from the cloud.
// For every subsequent one-second input window it evaluates the area
// between curves (Eq. 3) between the input and each tracked signal-set,
// removes sets that no longer match, estimates the anomaly probability
// P_A = N(AS)/N(F) (Eq. 5), and requests a new cloud search when the
// number of tracked signals drops below H.
//
// Interpretation note (see DESIGN.md): the paper's Algorithm 2 pseudocode
// scans W.β over the remaining offsets of each tracked set.  We implement
// that literal reading: starting from the current matched offset β, scan
// forward (stride `track_scan_stride`, early-exit area evaluation); the
// first offset within δ_A becomes the new β and the signal survives, sets
// with no remaining matching offset are removed.  This is what lets a
// quasi-stationary match survive the ~5 tracked iterations of Fig. 9 while
// diverging signals are eliminated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "emap/core/config.hpp"
#include "emap/core/search.hpp"
#include "emap/mdb/store.hpp"
#include "emap/net/transport.hpp"
#include "emap/obs/metrics.hpp"

namespace emap::core {

/// One signal-set being tracked at the edge (W = [S, ω, β] of the paper).
struct TrackedSignal {
  std::uint64_t set_id = 0;
  double omega = 0.0;            ///< correlation at the original cloud match
  std::size_t beta = 0;          ///< current matched offset within samples
  bool anomalous = false;
  std::uint8_t class_tag = 0;
  std::vector<double> samples;   ///< the full signal-set
};

/// Outcome of one tracking iteration.
struct TrackStepResult {
  std::size_t tracked_before = 0;
  std::size_t removed_dissimilar = 0;  ///< no offset within δ_A
  std::size_t removed_exhausted = 0;   ///< ran out of signal-set samples
  std::size_t tracked_after = 0;
  double anomaly_probability = 0.0;    ///< P_A after removals (Eq. 5)
  bool cloud_call_needed = false;      ///< N(F) < H
  std::uint64_t abs_ops = 0;           ///< early-exit ABS ops actually spent
  double wall_seconds = 0.0;
};

/// The edge-side tracker.
class EdgeTracker {
 public:
  explicit EdgeTracker(const EmapConfig& config);

  /// Installs a freshly downloaded correlation set, replacing any previous
  /// one (the paper reloads T wholesale after each cloud call).
  void load(std::vector<TrackedSignal> correlation_set);

  /// Builds TrackedSignals from a cloud SearchResult plus the store the
  /// search ran against, then installs them.
  void load_from_search(const SearchResult& result,
                        const mdb::MdbStore& store);

  /// Builds TrackedSignals from the wire message (edge side of the
  /// transport path), then installs them.
  void load_from_message(const net::CorrelationSetMessage& message);

  /// Reinstates a previously captured tracking state (checkpoint support).
  /// Unlike load() this does NOT reset the staleness counter — a resumed
  /// tracker is exactly as stale as the crashed one was.
  void restore(std::vector<TrackedSignal> correlation_set, bool loaded,
               std::size_t steps_since_load);

  /// Runs one Algorithm 2 iteration against the next filtered window.
  /// No-op returning an empty result when nothing is loaded.
  TrackStepResult step(std::span<const double> filtered_window);

  // Overload-control hooks (driven by robust::DegradationController; the
  // defaults reproduce the fault-free Algorithm 2 behaviour exactly).

  /// Truncates the tracked set to its first `cap` entries — the cloud
  /// returns matches in descending correlation order, so the survivors are
  /// the strongest.  Returns the number of signals shed (0 when cap is 0
  /// or nothing exceeds it).
  std::size_t shed_to(std::size_t cap);

  /// Widens the re-check scan stride by `multiplier` (>= 1; 1 restores the
  /// configured stride).  The scan *range* is unchanged — fewer probes
  /// cover the same offsets, trading recall for ABS ops.
  void set_stride_multiplier(std::size_t multiplier);

  /// Overrides the cloud re-call threshold H (0 restores the configured
  /// tracking_threshold_h) so a shed set does not storm the cloud.
  void set_recall_threshold(std::size_t threshold);

  bool loaded() const { return loaded_; }
  std::size_t active_count() const { return tracked_.size(); }
  const std::vector<TrackedSignal>& active() const { return tracked_; }

  /// Tracking steps run since the last load().  Grows while the cloud is
  /// unreachable and the edge degrades to its stale correlation set; the
  /// paper's fault-free cadence reloads roughly every 5 steps.
  std::size_t steps_since_load() const { return steps_since_load_; }

  /// P_A over the currently tracked set (Eq. 5); 0 when empty.
  double anomaly_probability() const;

  /// Attaches a telemetry registry (borrowed; nullptr disables): tracked
  /// set size, removal counters, P_A, and ABS-op cost per step.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  EmapConfig config_;
  std::vector<TrackedSignal> tracked_;
  bool loaded_ = false;
  std::size_t steps_since_load_ = 0;
  std::size_t stride_multiplier_ = 1;
  std::size_t recall_threshold_override_ = 0;  ///< 0 = config value

  struct TrackMetrics {
    obs::Counter* steps = nullptr;
    obs::Counter* removed_dissimilar = nullptr;
    obs::Counter* removed_exhausted = nullptr;
    obs::Counter* abs_ops = nullptr;
    obs::Gauge* set_size = nullptr;
    obs::Gauge* staleness = nullptr;
    obs::Histogram* pa = nullptr;
  };
  TrackMetrics metrics_{};
};

}  // namespace emap::core
