// Multi-patient cloud service (extension beyond the paper).
//
// The paper evaluates one patient against one cloud; a deployed EMAP cloud
// serves a fleet of edge devices concurrently.  CloudService models that:
// search requests from multiple patients arrive over (virtual) time, are
// queued FIFO, and are executed by a fixed number of virtual search
// workers whose service time comes from the calibrated cloud device model.
// The resulting waiting times show how Δ_CS — and with it Δ_initial and
// the real-time guarantee — degrades with patient count, which is the
// capacity-planning question the hybrid design raises.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "emap/core/cloud_node.hpp"
#include "emap/net/fault.hpp"
#include "emap/robust/admission.hpp"
#include "emap/sim/device.hpp"

namespace emap::obs {
class FlightRecorder;
class TimeSeriesScraper;
class Tracer;
}  // namespace emap::obs

namespace emap::core {

/// One queued search request.
struct ServiceRequest {
  std::uint32_t patient = 0;
  net::SignalUploadMessage upload;
  double arrival_sec = 0.0;
  /// Absolute sim-time deadline: a response completing after this instant
  /// is useless to the edge (it already timed out).  With admission
  /// control enabled, a request whose remaining budget cannot cover the
  /// expected wait + scan is shed at submit(); infinity = no deadline.
  double deadline_sec = std::numeric_limits<double>::infinity();
};

/// Completed request with its queueing/service timeline.
struct ServiceResponse {
  std::uint32_t patient = 0;
  std::uint32_t sequence = 0;
  net::CorrelationSetMessage correlation_set;
  double arrival_sec = 0.0;
  double start_sec = 0.0;       ///< when a worker picked it up
  double completion_sec = 0.0;  ///< start + device-model service time
  double wait_sec() const { return start_sec - arrival_sec; }
  double response_sec() const { return completion_sec - arrival_sec; }
};

/// Aggregate service statistics over one process_all() run.
struct CloudServiceStats {
  std::size_t requests = 0;
  /// Requests lost on the (faulty) uplink before reaching a worker.
  std::size_t lost_requests = 0;
  /// Requests rejected at the door by admission control (never queued).
  std::size_t shed_requests = 0;
  double mean_wait_sec = 0.0;
  double mean_service_sec = 0.0;
  double mean_response_sec = 0.0;
  double max_response_sec = 0.0;
  double makespan_sec = 0.0;    ///< last completion - first arrival
  /// Busy worker-time / (workers * makespan).  A run whose makespan is 0
  /// (e.g. a single instantaneous request against an empty store) reports
  /// 0 rather than NaN/inf.
  double utilization = 0.0;
};

/// FIFO multi-worker search service over one mega-database.
class CloudService {
 public:
  /// `virtual_workers` is the number of device-model search servers the
  /// cloud provisions (each as fast as the calibrated i7 profile).
  CloudService(mdb::MdbStore store, const EmapConfig& config,
               std::size_t virtual_workers = 1);

  /// Enqueues a request; arrivals need not be submitted in time order.
  /// With admission control enabled the request may instead be shed at the
  /// door — the decision carries the typed reason and a RetryAfter hint
  /// the edge's RetryPolicy honors.  Without admission control every
  /// request is accepted (existing callers may ignore the return value).
  robust::AdmissionDecision submit(ServiceRequest request);

  /// Turns on admission control (bounded queue + deadline-aware shedding
  /// + EWMA service-time estimation).  Call after set_metrics to get the
  /// emap_robust_admission_* instruments registered.
  void enable_admission(robust::AdmissionOptions options = {});

  /// The admission controller, or nullptr when disabled.
  const robust::AdmissionController* admission() const {
    return admission_.get();
  }

  std::size_t pending() const { return queue_.size(); }

  /// Serves every queued request (FIFO by arrival, stable on ties),
  /// returning the responses in completion order and updating stats().
  /// The queue is empty afterwards.
  std::vector<ServiceResponse> process_all();

  const CloudServiceStats& stats() const { return stats_; }
  const CloudNode& node() const { return node_; }

  /// Attaches a telemetry registry (borrowed; nullptr disables): queue
  /// depth gauge, wait/service/response histograms, and per-worker
  /// utilization gauges under `emap_cloud_*`.  Also propagated to the
  /// underlying CloudNode's search metrics.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a fault injector to the fleet's shared uplink (borrowed;
  /// nullptr restores the perfect link).  process_all() consults it once
  /// per request; a dropped request never reaches a worker and is counted
  /// in stats().lost_requests — the fleet-capacity question under loss.
  void set_fault_injector(net::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Attaches a span tracer (borrowed; nullptr disables).  Each served
  /// request whose upload carries a valid TraceContext gets a queue_wait
  /// span (arrival -> worker pickup) and a child cloud_scan span (pickup ->
  /// completion) under the *edge's* trace id — the cross-boundary half of
  /// the causal chain.  The response echoes the trace back so the edge can
  /// attribute the downlink leg too.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches a flight recorder (borrowed; nullptr disables): admission
  /// sheds log kShed events attributed to the rejected request's trace.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  /// Attaches a time-series scraper (borrowed; nullptr disables).
  /// process_all() offers every response's virtual completion instant to
  /// the scraper, so the queue/wait/utilization metrics get sampled along
  /// the batch's simulated timeline rather than once at exit.
  void set_timeseries(obs::TimeSeriesScraper* scraper) {
    scraper_ = scraper;
  }

 private:
  CloudNode node_;
  sim::DeviceProfile device_;
  std::size_t virtual_workers_;
  std::vector<ServiceRequest> queue_;
  CloudServiceStats stats_{};
  /// Sheds accumulated between process_all() runs (submit-time events),
  /// copied into stats_ at the next batch.
  std::size_t shed_accum_ = 0;
  obs::MetricsRegistry* registry_ = nullptr;
  net::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesScraper* scraper_ = nullptr;
  std::unique_ptr<robust::AdmissionController> admission_;

  struct ServiceMetrics {
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* wait = nullptr;
    obs::Histogram* service = nullptr;
    obs::Histogram* response = nullptr;
    obs::Gauge* utilization = nullptr;
  };
  ServiceMetrics metrics_{};
};

}  // namespace emap::core
