#include "emap/core/search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "emap/common/error.hpp"
#include "emap/dsp/simd.hpp"
#include "emap/dsp/xcorr.hpp"
#include "emap/obs/profiler.hpp"

namespace emap::core {
namespace {

bool better_match(const SearchMatch& a, const SearchMatch& b) {
  if (a.omega != b.omega) return a.omega > b.omega;
  if (a.set_id != b.set_id) return a.set_id < b.set_id;
  return a.beta < b.beta;
}

// Stage-path literal per dispatch arm, so flamegraphs and perfdiff
// headlines distinguish scalar from AVX2 scans.  ProfileScope keys nodes
// by literal pointer identity, hence one literal per arm rather than a
// formatted string.
const char* scan_stage_name() {
  return dsp::simd::active_level() == dsp::simd::Level::kAvx2
             ? "search_scan[impl=avx2]"
             : "search_scan[impl=scalar]";
}

}  // namespace

namespace {

// -1 = no override; >= 0 = forced block size (tests).
std::atomic<long long> forced_scan_block{-1};

}  // namespace

void force_scan_block(std::optional<std::size_t> block) {
  forced_scan_block.store(
      block.has_value() ? static_cast<long long>(*block) : -1,
      std::memory_order_relaxed);
}

std::size_t scan_block_samples() {
  const long long forced = forced_scan_block.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<std::size_t>(forced);
  }
  static const std::size_t block = [] {
    if (const char* env = std::getenv("EMAP_SCAN_BLOCK");
        env != nullptr && *env != '\0') {
      const long parsed = std::strtol(env, nullptr, 10);
      return parsed > 0 ? static_cast<std::size_t>(parsed)
                        : static_cast<std::size_t>(0);
    }
    return kDefaultScanBlockSamples;
  }();
  return block;
}

std::vector<SearchMatch> select_top_k(std::vector<SearchMatch> candidates,
                                      std::size_t k) {
  if (candidates.size() > k) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(k),
                     candidates.end(), better_match);
    candidates.resize(k);
  }
  std::sort(candidates.begin(), candidates.end(), better_match);
  return candidates;
}

CrossCorrelationSearch::CrossCorrelationSearch(const EmapConfig& config,
                                               ThreadPool* pool)
    : config_(config), pool_(pool) {
  config_.validate();
}

std::size_t CrossCorrelationSearch::skip_for_omega(double omega) const {
  // Paper lines 9-11: negative correlations are clamped to zero before the
  // skip computation, so anti-correlated regions jump the farthest.
  const double clamped = std::clamp(omega, 0.0, 1.0);
  const double step = std::pow(config_.alpha, clamped - 1.0);
  const double bounded =
      std::min(step, static_cast<double>(config_.max_skip));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(bounded)));
}

SearchResult CrossCorrelationSearch::search(
    std::span<const double> input_window, const mdb::MdbStore& store) const {
  const auto start_time = std::chrono::steady_clock::now();
  require(input_window.size() == config_.window_length,
          "CrossCorrelationSearch: input window length mismatch");

  const dsp::NormalizedWindow probe(input_window);
  const std::size_t window = config_.window_length;

  std::mutex merge_mutex;
  std::vector<SearchMatch> candidates;
  std::atomic<std::uint64_t> total_evals{0};
  std::atomic<std::uint64_t> total_hits{0};
  std::atomic<std::uint64_t> total_offsets{0};

  const std::size_t block = scan_block_samples();

  auto scan_range = [&](std::size_t begin, std::size_t end) {
    // The work counter records offsets leapt over by the exponential
    // window (offsets covered minus correlations evaluated) — the quantity
    // Algorithm 1's speedup claim rides on.
    obs::ProfileScope profile_scope(scan_stage_name());
    std::vector<SearchMatch> local;
    std::uint64_t evals = 0;
    std::uint64_t offsets = 0;
    for (std::size_t index = begin; index < end; ++index) {
      const auto& set = store.at(index);
      if (set.samples.size() < window) {
        continue;  // degenerate record; nothing to correlate
      }
      const std::span<const double> samples(set.samples);
      // Paper line 4: while β < Length(S) - Length(I_N).
      const std::size_t limit = set.samples.size() - window;
      offsets += limit;
      // Cache-blocked scan: the inner loop runs the skip sequence only
      // within one `block`-sample chunk of the signal-set before any
      // outer-loop bookkeeping, keeping that chunk plus the normalized
      // probe resident.  The β sequence is exactly the unblocked one —
      // blocking is pure iteration structure, so results (and the
      // deterministic tests) are unchanged; sets smaller than a block
      // degenerate to the original single loop.
      std::size_t beta = 0;
      while (beta < limit) {
        const std::size_t block_limit =
            block > 0 ? std::min(limit, beta + block) : limit;
        while (beta < block_limit) {
          const double omega = probe.correlate(samples.subspan(beta, window));
          ++evals;
          if (omega > config_.delta) {
            local.push_back(SearchMatch{index, set.id, omega, beta,
                                        set.anomalous, set.class_tag});
          }
          beta += skip_for_omega(omega);
        }
      }
    }
    total_evals.fetch_add(evals, std::memory_order_relaxed);
    total_hits.fetch_add(local.size(), std::memory_order_relaxed);
    total_offsets.fetch_add(offsets, std::memory_order_relaxed);
    profile_scope.add_work(offsets > evals ? offsets - evals : 0);
    std::lock_guard<std::mutex> lock(merge_mutex);
    candidates.insert(candidates.end(), local.begin(), local.end());
  };

  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(store.size(), scan_range);
  } else {
    scan_range(0, store.size());
  }

  SearchResult result;
  result.matches = select_top_k(std::move(candidates), config_.top_k);
  result.stats.correlation_evals = total_evals.load();
  result.stats.mac_ops = total_evals.load() * window;
  result.stats.candidates = total_hits.load();
  result.stats.sets_scanned = store.size();
  result.stats.offsets_total = total_offsets.load();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

}  // namespace emap::core
