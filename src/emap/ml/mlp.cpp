#include "emap/ml/mlp.hpp"

#include <cmath>
#include <numeric>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::ml {
namespace {

double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

Mlp::Mlp(MlpConfig config) : config_(config) {
  require(config_.hidden_units >= 1, "Mlp: need at least one hidden unit");
  require(config_.learning_rate > 0.0, "Mlp: bad learning rate");
  require(config_.epochs > 0, "Mlp: bad epochs");
  require(config_.batch_size > 0, "Mlp: bad batch size");
}

void Mlp::fit(const std::vector<FeatureVector>& rows,
              const std::vector<int>& labels) {
  require(!rows.empty(), "Mlp::fit: empty data");
  require(rows.size() == labels.size(), "Mlp::fit: size mismatch");

  const std::size_t hidden = config_.hidden_units;
  Rng rng(config_.seed);
  // Xavier-ish init.
  const double scale = 1.0 / std::sqrt(static_cast<double>(kFeatureCount));
  w1_.assign(hidden * kFeatureCount, 0.0);
  for (double& w : w1_) {
    w = rng.normal(0.0, scale);
  }
  b1_.assign(hidden, 0.0);
  w2_.assign(hidden, 0.0);
  const double out_scale = 1.0 / std::sqrt(static_cast<double>(hidden));
  for (double& w : w2_) {
    w = rng.normal(0.0, out_scale);
  }
  b2_ = 0.0;

  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> activation(hidden, 0.0);
  std::vector<double> grad_w1(hidden * kFeatureCount, 0.0);
  std::vector<double> grad_b1(hidden, 0.0);
  std::vector<double> grad_w2(hidden, 0.0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    const double lr =
        config_.learning_rate / (1.0 + 0.005 * static_cast<double>(epoch));

    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      std::fill(grad_w1.begin(), grad_w1.end(), 0.0);
      std::fill(grad_b1.begin(), grad_b1.end(), 0.0);
      std::fill(grad_w2.begin(), grad_w2.end(), 0.0);
      double grad_b2 = 0.0;

      for (std::size_t k = start; k < end; ++k) {
        const auto& row = rows[order[k]];
        const double target = static_cast<double>(labels[order[k]]);
        // Forward.
        double z_out = b2_;
        for (std::size_t h = 0; h < hidden; ++h) {
          double z = b1_[h];
          for (std::size_t j = 0; j < kFeatureCount; ++j) {
            z += w1_[h * kFeatureCount + j] * row[j];
          }
          activation[h] = std::tanh(z);
          z_out += w2_[h] * activation[h];
        }
        const double error = sigmoid(z_out) - target;  // dL/dz_out
        // Backward.
        grad_b2 += error;
        for (std::size_t h = 0; h < hidden; ++h) {
          grad_w2[h] += error * activation[h];
          const double delta =
              error * w2_[h] * (1.0 - activation[h] * activation[h]);
          grad_b1[h] += delta;
          for (std::size_t j = 0; j < kFeatureCount; ++j) {
            grad_w1[h * kFeatureCount + j] += delta * row[j];
          }
        }
      }

      const double step = lr / static_cast<double>(end - start);
      for (std::size_t idx = 0; idx < w1_.size(); ++idx) {
        w1_[idx] -= step * (grad_w1[idx] + config_.l2 * w1_[idx]);
      }
      for (std::size_t h = 0; h < hidden; ++h) {
        b1_[h] -= step * grad_b1[h];
        w2_[h] -= step * (grad_w2[h] + config_.l2 * w2_[h]);
      }
      b2_ -= step * grad_b2;
    }
  }
  trained_ = true;
}

double Mlp::predict_proba(const FeatureVector& row) const {
  require(trained_, "Mlp::predict_proba: not trained");
  const std::size_t hidden = config_.hidden_units;
  double z_out = b2_;
  for (std::size_t h = 0; h < hidden; ++h) {
    double z = b1_[h];
    for (std::size_t j = 0; j < kFeatureCount; ++j) {
      z += w1_[h * kFeatureCount + j] * row[j];
    }
    z_out += w2_[h] * std::tanh(z);
  }
  return sigmoid(z_out);
}

int Mlp::predict(const FeatureVector& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

}  // namespace emap::ml
