// Binary classification metrics.
#pragma once

#include <cstddef>
#include <vector>

namespace emap::ml {

/// 2x2 confusion-matrix counts.
struct Confusion {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  /// (TP + TN) / total; 0 when empty.
  double accuracy() const;
  /// TP / (TP + FN); 0 when no positives.
  double sensitivity() const;
  /// TN / (TN + FP); 0 when no negatives.
  double specificity() const;
  /// FP / (FP + TN); 0 when no negatives.
  double false_positive_rate() const;
};

/// Builds the confusion matrix from 0/1 truth and prediction vectors of
/// equal length.
Confusion confusion_matrix(const std::vector<int>& truth,
                           const std::vector<int>& predicted);

}  // namespace emap::ml
