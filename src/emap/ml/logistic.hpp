// L2-regularized logistic regression trained by mini-batch SGD.
//
// The lightweight classifier behind both SoA-style baselines.  Written
// from scratch (no external ML dependency) and deterministic given the
// training seed.
#pragma once

#include <cstdint>
#include <vector>

#include "emap/ml/features.hpp"

namespace emap::ml {

/// Training hyperparameters.
struct LogisticConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t epochs = 200;
  std::size_t batch_size = 16;
  std::uint64_t seed = 7;
};

/// Binary logistic-regression model over FeatureVector inputs.
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig config = {});

  /// Fits on (rows, labels); labels are 0/1.  Requires equal non-zero
  /// sizes and at least one example of each class for a meaningful model
  /// (single-class data trains but predicts that class everywhere).
  void fit(const std::vector<FeatureVector>& rows,
           const std::vector<int>& labels);

  /// P(label = 1 | row).
  double predict_proba(const FeatureVector& row) const;

  /// Hard decision at threshold 0.5.
  int predict(const FeatureVector& row) const;

  bool trained() const { return trained_; }
  const FeatureVector& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticConfig config_;
  FeatureVector weights_{};
  double bias_ = 0.0;
  bool trained_ = false;
};

}  // namespace emap::ml
