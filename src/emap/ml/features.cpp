#include "emap/ml/features.hpp"

#include "emap/dsp/fft.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::ml {

const std::array<std::string, kFeatureCount>& feature_names() {
  static const std::array<std::string, kFeatureCount> names = {
      "power_delta_theta",  // 1-8 Hz
      "power_alpha",        // 8-13 Hz
      "power_low_beta",     // 13-22 Hz
      "power_high_beta",    // 22-40 Hz
      "line_length",
      "variance",
      "hjorth_mobility",
      "hjorth_complexity",
      "zero_crossings",
      "rms",
  };
  return names;
}

FeatureVector extract_features(std::span<const double> window, double fs_hz) {
  FeatureVector features{};
  if (window.size() < 8) {
    return features;
  }
  features[0] = dsp::band_power(window, fs_hz, 1.0, 8.0);
  features[1] = dsp::band_power(window, fs_hz, 8.0, 13.0);
  features[2] = dsp::band_power(window, fs_hz, 13.0, 22.0);
  features[3] = dsp::band_power(window, fs_hz, 22.0, 40.0);
  features[4] = dsp::line_length(window);
  features[5] = dsp::variance(window);
  features[6] = dsp::hjorth_mobility(window);
  features[7] = dsp::hjorth_complexity(window);
  features[8] = static_cast<double>(dsp::zero_crossings(window));
  features[9] = dsp::rms(window);
  return features;
}

std::vector<FeatureVector> extract_features_batch(
    const std::vector<std::vector<double>>& windows, double fs_hz) {
  std::vector<FeatureVector> rows;
  rows.reserve(windows.size());
  for (const auto& window : windows) {
    rows.push_back(extract_features(window, fs_hz));
  }
  return rows;
}

}  // namespace emap::ml
