// Feature standardization (zero mean, unit variance per column).
#pragma once

#include <vector>

#include "emap/ml/features.hpp"

namespace emap::ml {

/// Per-feature affine normalizer fitted on training data.
class Standardizer {
 public:
  /// Fits column means and standard deviations.  Constant columns get unit
  /// scale (they standardize to zero).  Requires a non-empty batch.
  void fit(const std::vector<FeatureVector>& rows);

  /// Applies (x - mean) / std columnwise.  fit() must have been called.
  FeatureVector transform(const FeatureVector& row) const;

  /// Batch transform.
  std::vector<FeatureVector> transform(
      const std::vector<FeatureVector>& rows) const;

  bool fitted() const { return fitted_; }
  const FeatureVector& means() const { return means_; }
  const FeatureVector& stddevs() const { return stddevs_; }

 private:
  FeatureVector means_{};
  FeatureVector stddevs_{};
  bool fitted_ = false;
};

}  // namespace emap::ml
