#include "emap/ml/roc.hpp"

#include <algorithm>
#include <numeric>

#include "emap/common/error.hpp"

namespace emap::ml {

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  require(scores.size() == labels.size(), "roc_curve: size mismatch");
  require(!scores.empty(), "roc_curve: empty input");
  std::size_t positives = 0;
  for (int label : labels) {
    if (label != 0) {
      ++positives;
    }
  }
  const std::size_t negatives = labels.size() - positives;
  require(positives > 0 && negatives > 0,
          "roc_curve: need both classes present");

  // Sort indices by score descending; sweep thresholds at each distinct
  // score value.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](std::size_t a,
                                                  std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back(RocPoint{scores[order.front()] + 1.0, 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] != 0) {
      ++tp;
    } else {
      ++fp;
    }
    // Emit a point only after consuming all examples with this score.
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    curve.push_back(RocPoint{
        scores[order[i]],
        static_cast<double>(tp) / static_cast<double>(positives),
        static_cast<double>(fp) / static_cast<double>(negatives)});
  }
  return curve;
}

double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  const auto curve = roc_curve(scores, labels);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double width =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    const double height =
        (curve[i].true_positive_rate + curve[i - 1].true_positive_rate) /
        2.0;
    area += width * height;
  }
  return area;
}

}  // namespace emap::ml
