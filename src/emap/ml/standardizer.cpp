#include "emap/ml/standardizer.hpp"

#include <cmath>

#include "emap/common/error.hpp"

namespace emap::ml {

void Standardizer::fit(const std::vector<FeatureVector>& rows) {
  require(!rows.empty(), "Standardizer::fit: empty batch");
  means_.fill(0.0);
  stddevs_.fill(0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < kFeatureCount; ++j) {
      means_[j] += row[j];
    }
  }
  const double n = static_cast<double>(rows.size());
  for (double& m : means_) {
    m /= n;
  }
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < kFeatureCount; ++j) {
      const double d = row[j] - means_[j];
      stddevs_[j] += d * d;
    }
  }
  for (double& s : stddevs_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) {
      s = 1.0;  // constant column: map to zero, don't blow up
    }
  }
  fitted_ = true;
}

FeatureVector Standardizer::transform(const FeatureVector& row) const {
  require(fitted_, "Standardizer::transform: fit() not called");
  FeatureVector out{};
  for (std::size_t j = 0; j < kFeatureCount; ++j) {
    out[j] = (row[j] - means_[j]) / stddevs_[j];
  }
  return out;
}

std::vector<FeatureVector> Standardizer::transform(
    const std::vector<FeatureVector>& rows) const {
  std::vector<FeatureVector> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(transform(row));
  }
  return out;
}

}  // namespace emap::ml
