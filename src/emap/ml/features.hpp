// EEG window feature extraction for the baseline predictors.
//
// The SoA comparison points the paper cites ([13] Samie et al., [18] Zhang
// et al.) are feature-plus-classifier pipelines; this extractor provides
// the classic low-cost feature set they build on: band powers, line
// length, variance, Hjorth parameters, and zero crossings.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

namespace emap::ml {

/// Number of features produced per window.
inline constexpr std::size_t kFeatureCount = 10;

/// Feature vector of one EEG window.
using FeatureVector = std::array<double, kFeatureCount>;

/// Feature names, index-aligned with FeatureVector.
const std::array<std::string, kFeatureCount>& feature_names();

/// Extracts the feature vector from `window` sampled at `fs_hz`.
/// Windows shorter than 8 samples yield all-zero features.
FeatureVector extract_features(std::span<const double> window, double fs_hz);

/// Batch helper: one row per window.
std::vector<FeatureVector> extract_features_batch(
    const std::vector<std::vector<double>>& windows, double fs_hz);

}  // namespace emap::ml
