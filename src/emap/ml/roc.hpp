// ROC analysis for score-producing classifiers.
#pragma once

#include <cstddef>
#include <vector>

namespace emap::ml {

/// One ROC operating point.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
};

/// ROC curve from scores and 0/1 labels.
///
/// Points are ordered by decreasing threshold (FPR increasing), including
/// the trivial (0,0) and (1,1) endpoints.  Requires equal sizes and at
/// least one example of each class.
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Area under the ROC curve (trapezoidal over roc_curve()).
/// Equals the Mann-Whitney probability that a random positive scores
/// higher than a random negative (ties counted half).
double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels);

}  // namespace emap::ml
