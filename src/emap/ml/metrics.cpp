#include "emap/ml/metrics.hpp"

#include "emap/common/error.hpp"

namespace emap::ml {

double Confusion::accuracy() const {
  const std::size_t n = total();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double Confusion::sensitivity() const {
  const std::size_t positives = true_positive + false_negative;
  if (positives == 0) {
    return 0.0;
  }
  return static_cast<double>(true_positive) / static_cast<double>(positives);
}

double Confusion::specificity() const {
  const std::size_t negatives = true_negative + false_positive;
  if (negatives == 0) {
    return 0.0;
  }
  return static_cast<double>(true_negative) / static_cast<double>(negatives);
}

double Confusion::false_positive_rate() const {
  const std::size_t negatives = true_negative + false_positive;
  if (negatives == 0) {
    return 0.0;
  }
  return static_cast<double>(false_positive) / static_cast<double>(negatives);
}

Confusion confusion_matrix(const std::vector<int>& truth,
                           const std::vector<int>& predicted) {
  require(truth.size() == predicted.size(),
          "confusion_matrix: size mismatch");
  Confusion confusion;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool actual = truth[i] != 0;
    const bool guess = predicted[i] != 0;
    if (actual && guess) {
      ++confusion.true_positive;
    } else if (actual && !guess) {
      ++confusion.false_negative;
    } else if (!actual && guess) {
      ++confusion.false_positive;
    } else {
      ++confusion.true_negative;
    }
  }
  return confusion;
}

}  // namespace emap::ml
