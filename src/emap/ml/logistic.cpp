#include "emap/ml/logistic.hpp"

#include <cmath>
#include <numeric>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::ml {
namespace {

double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(LogisticConfig config)
    : config_(config) {
  require(config_.learning_rate > 0.0, "LogisticRegression: bad lr");
  require(config_.epochs > 0, "LogisticRegression: bad epochs");
  require(config_.batch_size > 0, "LogisticRegression: bad batch size");
}

void LogisticRegression::fit(const std::vector<FeatureVector>& rows,
                             const std::vector<int>& labels) {
  require(!rows.empty(), "LogisticRegression::fit: empty data");
  require(rows.size() == labels.size(),
          "LogisticRegression::fit: rows/labels size mismatch");
  weights_.fill(0.0);
  bias_ = 0.0;

  Rng rng(config_.seed);
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher-Yates shuffle with the deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = rng.uniform_index(i);
      std::swap(order[i - 1], order[j]);
    }
    // Learning-rate decay keeps late epochs stable.
    const double lr =
        config_.learning_rate /
        (1.0 + 0.01 * static_cast<double>(epoch));

    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      FeatureVector grad{};
      double grad_bias = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        const auto& row = rows[order[k]];
        const double target = static_cast<double>(labels[order[k]]);
        double z = bias_;
        for (std::size_t j = 0; j < kFeatureCount; ++j) {
          z += weights_[j] * row[j];
        }
        const double error = sigmoid(z) - target;
        for (std::size_t j = 0; j < kFeatureCount; ++j) {
          grad[j] += error * row[j];
        }
        grad_bias += error;
      }
      const double scale = lr / static_cast<double>(end - start);
      for (std::size_t j = 0; j < kFeatureCount; ++j) {
        weights_[j] -= scale * (grad[j] + config_.l2 * weights_[j]);
      }
      bias_ -= scale * grad_bias;
    }
  }
  trained_ = true;
}

double LogisticRegression::predict_proba(const FeatureVector& row) const {
  require(trained_, "LogisticRegression::predict_proba: not trained");
  double z = bias_;
  for (std::size_t j = 0; j < kFeatureCount; ++j) {
    z += weights_[j] * row[j];
  }
  return sigmoid(z);
}

int LogisticRegression::predict(const FeatureVector& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

}  // namespace emap::ml
