// Single-hidden-layer perceptron trained by backprop SGD.
//
// The paper's Table I quotes several deep-learning systems ([11] Hosseini
// et al. cloud DL prediction, [16] CNN detection).  Full replicas are out
// of scope, but a small MLP over the same window features is the honest
// minimal member of that family, and the IoT predictor can run on it
// (IotPredictorConfig::hidden_units) to produce a measured "[11]-style"
// comparison row.  From scratch, deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "emap/ml/features.hpp"

namespace emap::ml {

/// Training hyperparameters of the MLP.
struct MlpConfig {
  std::size_t hidden_units = 16;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  std::size_t epochs = 300;
  std::size_t batch_size = 16;
  std::uint64_t seed = 11;
};

/// Binary classifier: FeatureVector -> tanh hidden layer -> sigmoid.
class Mlp {
 public:
  explicit Mlp(MlpConfig config = {});

  /// Fits on (rows, labels in {0,1}); sizes must match and be non-zero.
  void fit(const std::vector<FeatureVector>& rows,
           const std::vector<int>& labels);

  /// P(label = 1 | row).
  double predict_proba(const FeatureVector& row) const;

  /// Hard decision at 0.5.
  int predict(const FeatureVector& row) const;

  bool trained() const { return trained_; }
  std::size_t hidden_units() const { return config_.hidden_units; }

 private:
  MlpConfig config_;
  // Row-major [hidden][input] weights, hidden biases, output weights+bias.
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;
  bool trained_ = false;
};

}  // namespace emap::ml
