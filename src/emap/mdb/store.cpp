#include "emap/mdb/store.hpp"

#include <algorithm>
#include <fstream>

#include "emap/common/error.hpp"

namespace emap::mdb {
namespace {

constexpr std::uint32_t kMagic = 0x42444d45u;  // "EMDB" little-endian
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::uint64_t MdbStore::insert(SignalSet set) {
  require(set.samples.size() == info_.slice_length,
          "MdbStore::insert: signal-set length must match store slice length");
  if (set.id == 0) {
    set.id = next_id_++;
  } else {
    next_id_ = std::max(next_id_, set.id + 1);
  }
  const std::uint64_t id = set.id;
  sets_.push_back(std::move(set));
  return id;
}

const SignalSet& MdbStore::at(std::size_t index) const {
  require(index < sets_.size(), "MdbStore::at: index out of range");
  return sets_[index];
}

std::size_t MdbStore::count_anomalous() const {
  return static_cast<std::size_t>(
      std::count_if(sets_.begin(), sets_.end(),
                    [](const SignalSet& s) { return s.anomalous; }));
}

std::vector<std::size_t> MdbStore::query_label(bool anomalous) const {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (sets_[i].anomalous == anomalous) {
      positions.push_back(i);
    }
  }
  return positions;
}

std::vector<std::size_t> MdbStore::query_source(
    std::string_view source) const {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (sets_[i].source == source) {
      positions.push_back(i);
    }
  }
  return positions;
}

std::vector<std::pair<std::size_t, std::size_t>> MdbStore::shards(
    std::size_t shard_count) const {
  require(shard_count > 0, "MdbStore::shards: shard_count must be > 0");
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const std::size_t total = sets_.size();
  const std::size_t per_shard = (total + shard_count - 1) / shard_count;
  for (std::size_t begin = 0; begin < total; begin += per_shard) {
    ranges.emplace_back(begin, std::min(total, begin + per_shard));
  }
  return ranges;
}

std::vector<std::uint8_t> MdbStore::encode() const {
  Encoder header;
  header.write_u32(kMagic);
  header.write_u32(kVersion);
  header.write_f64(info_.base_fs_hz);
  header.write_u32(info_.slice_length);
  header.write_u64(sets_.size());
  std::vector<std::uint8_t> out = header.take();
  for (const auto& set : sets_) {
    const auto record = encode_record(set);
    out.insert(out.end(), record.begin(), record.end());
  }
  return out;
}

MdbStore MdbStore::decode(const std::vector<std::uint8_t>& bytes) {
  Decoder decoder(bytes);
  if (decoder.read_u32() != kMagic) {
    throw CorruptData("MdbStore::decode: bad magic");
  }
  const std::uint32_t version = decoder.read_u32();
  if (version != kVersion) {
    throw CorruptData("MdbStore::decode: unsupported version " +
                      std::to_string(version));
  }
  StoreInfo info;
  info.base_fs_hz = decoder.read_f64();
  info.slice_length = decoder.read_u32();
  if (info.base_fs_hz <= 0.0 || info.slice_length == 0) {
    throw CorruptData("MdbStore::decode: invalid store info");
  }
  const std::uint64_t count = decoder.read_u64();
  MdbStore store(info);
  store.sets_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SignalSet set = decoder.read_record();
    if (set.samples.size() != info.slice_length) {
      throw CorruptData("MdbStore::decode: record length mismatch");
    }
    store.next_id_ = std::max(store.next_id_, set.id + 1);
    store.sets_.push_back(std::move(set));
  }
  if (!decoder.at_end()) {
    throw CorruptData("MdbStore::decode: trailing bytes after records");
  }
  return store;
}

void MdbStore::save(const std::filesystem::path& path) const {
  const auto bytes = encode();
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) {
    throw IoError("MdbStore::save: cannot open " + path.string());
  }
  stream.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
  if (!stream) {
    throw IoError("MdbStore::save: write failed for " + path.string());
  }
}

MdbStore MdbStore::load(const std::filesystem::path& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    throw IoError("MdbStore::load: cannot open " + path.string());
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(stream)),
                                  std::istreambuf_iterator<char>());
  return decode(bytes);
}

}  // namespace emap::mdb
