#include "emap/mdb/codec.hpp"

#include <bit>
#include <cstring>

#include "emap/common/crc32.hpp"
#include "emap/common/error.hpp"

namespace emap::mdb {

void Encoder::write_u8(std::uint8_t value) { bytes_.push_back(value); }

void Encoder::write_u16(std::uint16_t value) {
  bytes_.push_back(static_cast<std::uint8_t>(value & 0xff));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void Encoder::write_u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void Encoder::write_u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void Encoder::write_f32(float value) {
  std::uint32_t raw = 0;
  std::memcpy(&raw, &value, sizeof(raw));
  write_u32(raw);
}

void Encoder::write_f64(double value) {
  std::uint64_t raw = 0;
  std::memcpy(&raw, &value, sizeof(raw));
  write_u64(raw);
}

void Encoder::write_string(const std::string& value) {
  require(value.size() <= UINT16_MAX, "Encoder: string too long");
  write_u16(static_cast<std::uint16_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void Decoder::need(std::size_t bytes) const {
  if (cursor_ + bytes > bytes_.size()) {
    throw CorruptData("Decoder: truncated input");
  }
}

std::uint8_t Decoder::read_u8() {
  need(1);
  return bytes_[cursor_++];
}

std::uint16_t Decoder::read_u16() {
  need(2);
  std::uint16_t value = static_cast<std::uint16_t>(bytes_[cursor_]) |
                        (static_cast<std::uint16_t>(bytes_[cursor_ + 1]) << 8);
  cursor_ += 2;
  return value;
}

std::uint32_t Decoder::read_u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 4;
  return value;
}

std::uint64_t Decoder::read_u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 8;
  return value;
}

float Decoder::read_f32() {
  const std::uint32_t raw = read_u32();
  float value = 0.0f;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

double Decoder::read_f64() {
  const std::uint64_t raw = read_u64();
  double value = 0.0;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

std::string Decoder::read_string() {
  const std::uint16_t size = read_u16();
  need(size);
  std::string value(reinterpret_cast<const char*>(bytes_.data()) + cursor_,
                    size);
  cursor_ += size;
  return value;
}

std::vector<std::uint8_t> encode_record(const SignalSet& set) {
  Encoder payload;
  payload.write_u64(set.id);
  payload.write_u8(set.anomalous ? 1 : 0);
  payload.write_u8(set.class_tag);
  payload.write_string(set.source);
  payload.write_u32(set.source_recording);
  payload.write_f64(set.start_sec);
  require(set.samples.size() <= UINT32_MAX, "encode_record: too many samples");
  payload.write_u32(static_cast<std::uint32_t>(set.samples.size()));
  for (double sample : set.samples) {
    payload.write_f32(static_cast<float>(sample));
  }

  const auto& body = payload.bytes();
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 8);
  const auto size = static_cast<std::uint32_t>(body.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((size >> shift) & 0xff));
  }
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t crc = crc32(body.data(), body.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((crc >> shift) & 0xff));
  }
  return out;
}

SignalSet Decoder::read_record() {
  const std::uint32_t payload_size = read_u32();
  need(payload_size + 4);  // payload + trailing CRC
  const std::size_t payload_start = cursor_;
  const std::uint32_t expected_crc =
      crc32(bytes_.data() + payload_start, payload_size);

  SignalSet set;
  set.id = read_u64();
  set.anomalous = read_u8() != 0;
  set.class_tag = read_u8();
  set.source = read_string();
  set.source_recording = read_u32();
  set.start_sec = read_f64();
  const std::uint32_t count = read_u32();
  if (cursor_ + static_cast<std::size_t>(count) * 4 >
      payload_start + payload_size) {
    throw CorruptData("Decoder: record sample count exceeds payload");
  }
  set.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    set.samples.push_back(static_cast<double>(read_f32()));
  }
  if (cursor_ != payload_start + payload_size) {
    throw CorruptData("Decoder: record payload size mismatch");
  }
  const std::uint32_t stored_crc = read_u32();
  if (stored_crc != expected_crc) {
    throw CorruptData("Decoder: record CRC mismatch");
  }
  return set;
}

}  // namespace emap::mdb
