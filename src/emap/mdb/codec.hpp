// Binary serialization of signal-sets and stores.
//
// Little-endian, CRC-protected record framing:
//   store file  := magic "EMDB" | u32 version | StoreInfo | u64 count |
//                  record*
//   record      := u32 payload_size | payload | u32 crc32(payload)
//   payload     := u64 id | u8 anomalous | u8 class_tag | str source |
//                  u32 source_recording | f64 start_sec | u32 n | f32[n]
//   str         := u16 size | bytes
// Samples are stored as f32: the source data is 16-bit (paper Section V-A),
// so single precision is lossless in practice and halves the footprint.
#pragma once

#include <cstdint>
#include <vector>

#include "emap/mdb/signal_set.hpp"

namespace emap::mdb {

/// Store-level metadata persisted alongside the records.
struct StoreInfo {
  double base_fs_hz = 256.0;
  std::uint32_t slice_length = kSignalSetLength;
};

/// Serializes one signal-set record (size + payload + CRC).
std::vector<std::uint8_t> encode_record(const SignalSet& set);

/// Cursor-based reader used for both single records and whole files.
class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  /// Parses the next record; throws CorruptData on framing/CRC errors.
  SignalSet read_record();

  bool at_end() const { return cursor_ >= bytes_.size(); }
  std::size_t cursor() const { return cursor_; }
  void seek(std::size_t offset) { cursor_ = offset; }

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  float read_f32();
  double read_f64();
  std::string read_string();

 private:
  void need(std::size_t bytes) const;

  const std::vector<std::uint8_t>& bytes_;
  std::size_t cursor_ = 0;
};

/// Append-only writer mirror of Decoder.
class Encoder {
 public:
  void write_u8(std::uint8_t value);
  void write_u16(std::uint16_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_f32(float value);
  void write_f64(double value);
  void write_string(const std::string& value);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace emap::mdb
