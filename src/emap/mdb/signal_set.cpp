// SignalSet is a plain aggregate; see codec.cpp for its wire format.
#include "emap/mdb/signal_set.hpp"
