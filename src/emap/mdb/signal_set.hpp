// SignalSet: the unit of storage and search in the mega-database.
//
// Each source signal is "sliced into signal-sets of 1000 samples each, and
// allocated a label (normal or anomalous)" (paper Section V-B).  A
// SignalSet also carries provenance (corpus, recording, slice offset) and
// the anomaly class tag used by the evaluation harnesses; the search and
// tracking algorithms only ever read `samples` and `anomalous`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace emap::mdb {

/// Samples per signal-set (paper: 1000 at the 256 Hz base rate).
inline constexpr std::size_t kSignalSetLength = 1000;

/// One labeled slice of a pre-processed source signal.
struct SignalSet {
  std::uint64_t id = 0;            ///< unique within a store
  bool anomalous = false;          ///< A(S_P) of the paper (0/1)
  std::uint8_t class_tag = 0;      ///< synth::AnomalyClass value (evaluation
                                   ///< metadata; not used by the algorithms)
  std::string source;              ///< corpus name
  std::uint32_t source_recording = 0;  ///< recording index within the corpus
  double start_sec = 0.0;          ///< slice offset inside the recording
  std::vector<double> samples;     ///< filtered, 256 Hz base-rate samples
};

}  // namespace emap::mdb
