#include "emap/mdb/builder.hpp"

#include <algorithm>

#include "emap/common/error.hpp"
#include "emap/dsp/resample.hpp"
#include "emap/edf/edf.hpp"

namespace emap::mdb {

MdbBuilder::MdbBuilder(BuilderConfig config)
    : config_(std::move(config)),
      store_(StoreInfo{config_.base_fs_hz,
                       static_cast<std::uint32_t>(config_.slice_length)}) {
  require(config_.base_fs_hz > 0.0, "MdbBuilder: base rate must be > 0");
  require(config_.slice_length > 0, "MdbBuilder: slice length must be > 0");
  require(config_.slice_stride > 0, "MdbBuilder: slice stride must be > 0");
  require(config_.anomalous_fraction >= 0.0 &&
              config_.anomalous_fraction <= 1.0,
          "MdbBuilder: anomalous fraction must be in [0, 1]");
  config_.filter.sample_rate_hz = config_.base_fs_hz;
}

std::size_t MdbBuilder::add_signal(std::span<const double> samples,
                                   double native_fs_hz,
                                   const std::string& source,
                                   std::uint32_t source_recording,
                                   const LabelAt& label_at,
                                   std::uint8_t class_tag) {
  require(native_fs_hz > 0.0, "MdbBuilder::add_signal: bad native rate");
  if (samples.empty()) {
    return 0;
  }

  // 1) Up-/down-sample to the base rate.
  const auto resampled =
      dsp::resample(samples, native_fs_hz, config_.base_fs_hz);

  // 2) Bandpass filter (identical design to the edge acquisition filter).
  dsp::FirFilter filter(config_.filter);
  auto filtered = filter.apply(resampled);

  // 3) Optionally drop the filter warm-up (one filter length) so slices
  //    don't start with the zero-history transient.
  std::size_t head = 0;
  if (config_.drop_filter_transient) {
    head = std::min(filtered.size(), filter.taps());
  }

  // 4) Slice and label.
  std::size_t inserted = 0;
  for (std::size_t begin = head;
       begin + config_.slice_length <= filtered.size();
       begin += config_.slice_stride) {
    SignalSet set;
    set.samples.assign(
        filtered.begin() + static_cast<std::ptrdiff_t>(begin),
        filtered.begin() +
            static_cast<std::ptrdiff_t>(begin + config_.slice_length));
    set.source = source;
    set.source_recording = source_recording;
    set.start_sec = static_cast<double>(begin) / config_.base_fs_hz;
    set.class_tag = class_tag;

    // Label: fraction of slice samples whose time is annotated anomalous.
    std::size_t anomalous_samples = 0;
    if (label_at) {
      for (std::size_t k = 0; k < config_.slice_length; ++k) {
        const double t =
            static_cast<double>(begin + k) / config_.base_fs_hz;
        if (label_at(t)) {
          ++anomalous_samples;
        }
      }
    }
    set.anomalous =
        static_cast<double>(anomalous_samples) >=
        config_.anomalous_fraction * static_cast<double>(config_.slice_length);
    store_.insert(std::move(set));
    ++inserted;
  }
  return inserted;
}

std::size_t MdbBuilder::add_recording(const synth::Recording& recording,
                                      const std::string& source,
                                      std::uint32_t source_recording) {
  return add_signal(
      recording.samples, recording.fs(), source, source_recording,
      [&recording](double t) { return recording.anomalous_at(t); },
      static_cast<std::uint8_t>(recording.spec.cls));
}

std::size_t MdbBuilder::add_edf(const std::filesystem::path& path,
                                const std::string& source,
                                std::uint32_t source_recording,
                                const LabelAt& label_at,
                                std::uint8_t class_tag) {
  const auto file = edf::read_edf(path);
  require(!file.channels.empty(), "MdbBuilder::add_edf: no channels");
  return add_signal(file.channels.front().samples, file.sample_rate_hz,
                    source, source_recording, label_at, class_tag);
}

}  // namespace emap::mdb
