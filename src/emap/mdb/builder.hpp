// Mega-database construction pipeline (paper Fig. 3, left block).
//
// For every source signal: up-/down-sample to the 256 Hz base rate, pass
// through the 100-tap 11-40 Hz bandpass (the same filter the edge applies
// to the live input, "to ensure consistency, uniformity, and ease of
// search"), slice into 1000-sample signal-sets, label each slice, insert.
#pragma once

#include <filesystem>
#include <functional>
#include <string>

#include "emap/dsp/fir.hpp"
#include "emap/mdb/store.hpp"
#include "emap/synth/generator.hpp"

namespace emap::mdb {

/// Construction parameters.
struct BuilderConfig {
  double base_fs_hz = 256.0;
  std::size_t slice_length = kSignalSetLength;
  /// Stride between consecutive slices; slice_length = non-overlapping.
  std::size_t slice_stride = kSignalSetLength;
  /// A slice is labeled anomalous when at least this fraction of its span
  /// is annotated anomalous.
  double anomalous_fraction = 0.5;
  /// Discard the filter's warm-up transient at the head of each recording.
  bool drop_filter_transient = true;
  dsp::FirDesign filter;  // defaults are the paper's bandpass
};

/// Ground-truth callback: label of the source signal at time t (seconds).
using LabelAt = std::function<bool(double)>;

/// Builds an MdbStore by running source signals through the pipeline.
class MdbBuilder {
 public:
  explicit MdbBuilder(BuilderConfig config = {});

  /// Ingests raw samples at `native_fs_hz`.  `label_at` is queried at the
  /// base-rate time axis of each slice; `class_tag` is evaluation metadata.
  /// Returns the number of signal-sets inserted.
  std::size_t add_signal(std::span<const double> samples, double native_fs_hz,
                         const std::string& source,
                         std::uint32_t source_recording,
                         const LabelAt& label_at, std::uint8_t class_tag);

  /// Convenience: ingests a synthetic recording with its own annotations.
  std::size_t add_recording(const synth::Recording& recording,
                            const std::string& source,
                            std::uint32_t source_recording);

  /// Convenience: ingests channel 0 of an EDF file with an external label
  /// function (EDF carries no annotations in our subset).
  std::size_t add_edf(const std::filesystem::path& path,
                      const std::string& source,
                      std::uint32_t source_recording, const LabelAt& label_at,
                      std::uint8_t class_tag);

  const MdbStore& store() const { return store_; }
  MdbStore take_store() { return std::move(store_); }

 private:
  BuilderConfig config_;
  MdbStore store_;
};

}  // namespace emap::mdb
