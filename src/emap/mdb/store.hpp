// MdbStore: the mega-database of labeled signal-sets.
//
// Stands in for the paper's MongoDB instance: durable storage, label and
// provenance queries, and a sharded view for the parallel cloud search.
// The store is append-only; signal-sets are immutable once inserted.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string_view>
#include <vector>

#include "emap/mdb/codec.hpp"
#include "emap/mdb/signal_set.hpp"

namespace emap::mdb {

/// In-memory mega-database with binary persistence.
class MdbStore {
 public:
  MdbStore() = default;
  explicit MdbStore(StoreInfo info) : info_(info) {}

  const StoreInfo& info() const { return info_; }

  /// Inserts a signal-set; assigns the next id when set.id == 0.
  /// Returns the stored id.  Throws InvalidArgument when the sample count
  /// does not match info().slice_length.
  std::uint64_t insert(SignalSet set);

  std::size_t size() const { return sets_.size(); }
  bool empty() const { return sets_.empty(); }

  /// Record access by position (0 <= index < size()).
  const SignalSet& at(std::size_t index) const;

  /// All records, in insertion order.
  std::span<const SignalSet> all() const { return sets_; }

  /// Number of anomalous records.
  std::size_t count_anomalous() const;

  /// Positions of records with the given label.
  std::vector<std::size_t> query_label(bool anomalous) const;

  /// Positions of records from the given corpus.
  std::vector<std::size_t> query_source(std::string_view source) const;

  /// Splits [0, size()) into `shard_count` near-equal [begin, end) ranges
  /// for parallel scanning; empty shards are omitted.
  std::vector<std::pair<std::size_t, std::size_t>> shards(
      std::size_t shard_count) const;

  /// Serializes the whole store (file format in codec.hpp).
  std::vector<std::uint8_t> encode() const;

  /// Parses a serialized store; throws CorruptData on malformed input.
  static MdbStore decode(const std::vector<std::uint8_t>& bytes);

  /// Saves to / loads from disk.
  void save(const std::filesystem::path& path) const;
  static MdbStore load(const std::filesystem::path& path);

 private:
  StoreInfo info_;
  std::vector<SignalSet> sets_;
  std::uint64_t next_id_ = 1;
};

}  // namespace emap::mdb
