// EDF (European Data Format) subset reader/writer.
//
// The paper's toolchain ingests the source corpora from EDF files (via
// pyedflib); this module replaces that dependency with a from-scratch
// implementation of the EDF core: the 256-byte fixed header, per-signal
// header blocks, and 16-bit little-endian data records with linear
// physical/digital scaling.  Supported subset: continuous recordings
// ("EDF", not EDF+D), no annotation channels, uniform record duration.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace emap::edf {

/// One signal (channel) of an EDF file.
struct EdfChannel {
  std::string label = "EEG";
  std::string transducer = "AgAgCl electrode";
  std::string physical_dimension = "uV";
  /// Physical calibration range; samples outside are clamped on write.
  double physical_min = -500.0;
  double physical_max = 500.0;
  /// Digital range of the stored 16-bit integers.
  std::int32_t digital_min = -32768;
  std::int32_t digital_max = 32767;
  std::string prefiltering;
  std::vector<double> samples;  ///< physical units
};

/// An in-memory EDF recording.
struct EdfFile {
  std::string patient_id = "X X X X";
  std::string recording_id = "Startdate 01-JAN-2020 X X X";
  std::string start_date = "01.01.20";  ///< dd.mm.yy
  std::string start_time = "00.00.00";  ///< hh.mm.ss
  double record_duration_sec = 1.0;
  double sample_rate_hz = 256.0;  ///< uniform across channels (subset)
  std::vector<EdfChannel> channels;
};

/// Serializes `file` to EDF bytes.  Channels must be non-empty and equal
/// length; the final partial record is zero-padded (EDF stores whole
/// records only).  Throws InvalidArgument on precondition violations.
std::vector<std::uint8_t> encode_edf(const EdfFile& file);

/// Parses EDF bytes.  Throws CorruptData on malformed or truncated input.
EdfFile decode_edf(const std::vector<std::uint8_t>& bytes);

/// Writes `file` to `path` (throws IoError on filesystem failure).
void write_edf(const std::filesystem::path& path, const EdfFile& file);

/// Reads an EDF file from `path`.
EdfFile read_edf(const std::filesystem::path& path);

}  // namespace emap::edf
