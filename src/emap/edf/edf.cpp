#include "emap/edf/edf.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "emap/common/error.hpp"

namespace emap::edf {
namespace {

constexpr std::size_t kMainHeaderBytes = 256;
constexpr std::size_t kPerSignalHeaderBytes = 256;

// Appends `value` left-justified and space-padded to exactly `width` bytes.
void put_field(std::string& out, const std::string& value, std::size_t width) {
  require(value.size() <= width, "EDF: header field too long");
  out.append(value);
  out.append(width - value.size(), ' ');
}

void put_number(std::string& out, double value, std::size_t width) {
  std::ostringstream stream;
  stream << value;
  std::string text = stream.str();
  if (text.size() > width) {
    // Fall back to fixed-precision trimming for long fractions.
    stream.str("");
    stream.precision(static_cast<int>(width) - 2);
    stream << value;
    text = stream.str();
    if (text.size() > width) {
      text = text.substr(0, width);
    }
  }
  put_field(out, text, width);
}

void put_number(std::string& out, long long value, std::size_t width) {
  put_field(out, std::to_string(value), width);
}

std::string get_field(const std::vector<std::uint8_t>& bytes,
                      std::size_t offset, std::size_t width) {
  if (offset + width > bytes.size()) {
    throw CorruptData("EDF: truncated header");
  }
  std::string value(reinterpret_cast<const char*>(bytes.data()) + offset,
                    width);
  // Trim trailing spaces (EDF pads with spaces).
  const auto end = value.find_last_not_of(' ');
  return (end == std::string::npos) ? std::string() : value.substr(0, end + 1);
}

double get_number(const std::vector<std::uint8_t>& bytes, std::size_t offset,
                  std::size_t width, const char* what) {
  const std::string text = get_field(bytes, offset, width);
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed == 0) {
      throw CorruptData(std::string("EDF: empty numeric field: ") + what);
    }
    return value;
  } catch (const std::exception&) {
    throw CorruptData(std::string("EDF: bad numeric field: ") + what +
                      " = '" + text + "'");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_edf(const EdfFile& file) {
  require(!file.channels.empty(), "encode_edf: no channels");
  require(file.sample_rate_hz > 0.0, "encode_edf: bad sample rate");
  require(file.record_duration_sec > 0.0, "encode_edf: bad record duration");
  const double spr_exact = file.sample_rate_hz * file.record_duration_sec;
  const auto samples_per_record =
      static_cast<std::size_t>(std::llround(spr_exact));
  require(samples_per_record > 0 &&
              std::abs(spr_exact - static_cast<double>(samples_per_record)) <
                  1e-6,
          "encode_edf: record duration must hold a whole number of samples");
  const std::size_t sample_count = file.channels.front().samples.size();
  require(sample_count > 0, "encode_edf: empty channel");
  for (const auto& channel : file.channels) {
    require(channel.samples.size() == sample_count,
            "encode_edf: channels must have equal length");
    require(channel.physical_max > channel.physical_min,
            "encode_edf: physical range must be non-empty");
    require(channel.digital_max > channel.digital_min,
            "encode_edf: digital range must be non-empty");
  }
  const std::size_t record_count =
      (sample_count + samples_per_record - 1) / samples_per_record;
  const std::size_t signal_count = file.channels.size();
  const std::size_t header_bytes =
      kMainHeaderBytes + signal_count * kPerSignalHeaderBytes;

  std::string header;
  header.reserve(header_bytes);
  put_field(header, "0", 8);  // version
  put_field(header, file.patient_id, 80);
  put_field(header, file.recording_id, 80);
  put_field(header, file.start_date, 8);
  put_field(header, file.start_time, 8);
  put_number(header, static_cast<long long>(header_bytes), 8);
  put_field(header, "", 44);  // reserved
  put_number(header, static_cast<long long>(record_count), 8);
  put_number(header, file.record_duration_sec, 8);
  put_number(header, static_cast<long long>(signal_count), 4);

  // Per-signal headers are stored field-wise: all labels, then all
  // transducers, and so on.
  for (const auto& c : file.channels) put_field(header, c.label, 16);
  for (const auto& c : file.channels) put_field(header, c.transducer, 80);
  for (const auto& c : file.channels) put_field(header, c.physical_dimension, 8);
  for (const auto& c : file.channels) put_number(header, c.physical_min, 8);
  for (const auto& c : file.channels) put_number(header, c.physical_max, 8);
  for (const auto& c : file.channels)
    put_number(header, static_cast<long long>(c.digital_min), 8);
  for (const auto& c : file.channels)
    put_number(header, static_cast<long long>(c.digital_max), 8);
  for (const auto& c : file.channels) put_field(header, c.prefiltering, 80);
  for (std::size_t s = 0; s < signal_count; ++s)
    put_number(header, static_cast<long long>(samples_per_record), 8);
  for (std::size_t s = 0; s < signal_count; ++s) put_field(header, "", 32);
  require(header.size() == header_bytes, "encode_edf: header size bug");

  std::vector<std::uint8_t> bytes(header.begin(), header.end());
  bytes.reserve(header_bytes +
                record_count * signal_count * samples_per_record * 2);

  for (std::size_t record = 0; record < record_count; ++record) {
    for (const auto& channel : file.channels) {
      const double gain = (channel.physical_max - channel.physical_min) /
                          static_cast<double>(channel.digital_max -
                                              channel.digital_min);
      for (std::size_t k = 0; k < samples_per_record; ++k) {
        const std::size_t index = record * samples_per_record + k;
        double physical =
            (index < channel.samples.size()) ? channel.samples[index] : 0.0;
        physical = std::clamp(physical, channel.physical_min,
                              channel.physical_max);
        const double digital_exact =
            (physical - channel.physical_min) / gain +
            static_cast<double>(channel.digital_min);
        const auto digital = static_cast<std::int32_t>(
            std::clamp(std::llround(digital_exact),
                       static_cast<long long>(channel.digital_min),
                       static_cast<long long>(channel.digital_max)));
        const auto raw = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(digital));
        bytes.push_back(static_cast<std::uint8_t>(raw & 0xff));
        bytes.push_back(static_cast<std::uint8_t>(raw >> 8));
      }
    }
  }
  return bytes;
}

EdfFile decode_edf(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kMainHeaderBytes) {
    throw CorruptData("EDF: file shorter than main header");
  }
  EdfFile file;
  std::size_t offset = 0;
  const std::string version = get_field(bytes, offset, 8);
  offset += 8;
  if (version != "0") {
    throw CorruptData("EDF: unsupported version '" + version + "'");
  }
  file.patient_id = get_field(bytes, offset, 80);
  offset += 80;
  file.recording_id = get_field(bytes, offset, 80);
  offset += 80;
  file.start_date = get_field(bytes, offset, 8);
  offset += 8;
  file.start_time = get_field(bytes, offset, 8);
  offset += 8;
  const auto header_bytes =
      static_cast<std::size_t>(get_number(bytes, offset, 8, "header bytes"));
  offset += 8;
  offset += 44;  // reserved
  const auto record_count = static_cast<long long>(
      get_number(bytes, offset, 8, "record count"));
  offset += 8;
  file.record_duration_sec =
      get_number(bytes, offset, 8, "record duration");
  offset += 8;
  const auto signal_count =
      static_cast<std::size_t>(get_number(bytes, offset, 4, "signal count"));
  offset += 4;
  if (record_count < 0) {
    throw CorruptData("EDF: negative record count");
  }
  if (signal_count == 0) {
    throw CorruptData("EDF: zero signals");
  }
  if (file.record_duration_sec <= 0.0) {
    throw CorruptData("EDF: non-positive record duration");
  }
  const std::size_t expected_header =
      kMainHeaderBytes + signal_count * kPerSignalHeaderBytes;
  if (header_bytes != expected_header || bytes.size() < expected_header) {
    throw CorruptData("EDF: header size mismatch");
  }

  file.channels.assign(signal_count, EdfChannel{});
  for (auto& c : file.channels) {
    c.label = get_field(bytes, offset, 16);
    offset += 16;
  }
  for (auto& c : file.channels) {
    c.transducer = get_field(bytes, offset, 80);
    offset += 80;
  }
  for (auto& c : file.channels) {
    c.physical_dimension = get_field(bytes, offset, 8);
    offset += 8;
  }
  for (auto& c : file.channels) {
    c.physical_min = get_number(bytes, offset, 8, "physical min");
    offset += 8;
  }
  for (auto& c : file.channels) {
    c.physical_max = get_number(bytes, offset, 8, "physical max");
    offset += 8;
  }
  for (auto& c : file.channels) {
    c.digital_min =
        static_cast<std::int32_t>(get_number(bytes, offset, 8, "digital min"));
    offset += 8;
  }
  for (auto& c : file.channels) {
    c.digital_max =
        static_cast<std::int32_t>(get_number(bytes, offset, 8, "digital max"));
    offset += 8;
  }
  for (auto& c : file.channels) {
    c.prefiltering = get_field(bytes, offset, 80);
    offset += 80;
  }
  std::vector<std::size_t> samples_per_record(signal_count, 0);
  for (std::size_t s = 0; s < signal_count; ++s) {
    samples_per_record[s] = static_cast<std::size_t>(
        get_number(bytes, offset, 8, "samples per record"));
    offset += 8;
    if (samples_per_record[s] == 0) {
      throw CorruptData("EDF: zero samples per record");
    }
  }
  offset += signal_count * 32;  // reserved

  // Subset restriction: uniform rate across channels.
  for (std::size_t s = 1; s < signal_count; ++s) {
    if (samples_per_record[s] != samples_per_record[0]) {
      throw CorruptData("EDF: mixed per-channel rates not supported");
    }
  }
  file.sample_rate_hz =
      static_cast<double>(samples_per_record[0]) / file.record_duration_sec;

  std::size_t record_bytes = 0;
  for (std::size_t s = 0; s < signal_count; ++s) {
    record_bytes += samples_per_record[s] * 2;
  }
  const std::size_t payload = bytes.size() - expected_header;
  if (payload < static_cast<std::size_t>(record_count) * record_bytes) {
    throw CorruptData("EDF: truncated data records");
  }

  for (auto& c : file.channels) {
    if (c.physical_max <= c.physical_min || c.digital_max <= c.digital_min) {
      throw CorruptData("EDF: invalid calibration range");
    }
    c.samples.reserve(static_cast<std::size_t>(record_count) *
                      samples_per_record[0]);
  }

  std::size_t cursor = expected_header;
  for (long long record = 0; record < record_count; ++record) {
    for (std::size_t s = 0; s < signal_count; ++s) {
      auto& channel = file.channels[s];
      const double gain =
          (channel.physical_max - channel.physical_min) /
          static_cast<double>(channel.digital_max - channel.digital_min);
      for (std::size_t k = 0; k < samples_per_record[s]; ++k) {
        const auto raw = static_cast<std::uint16_t>(
            bytes[cursor] | (static_cast<std::uint16_t>(bytes[cursor + 1]) << 8));
        cursor += 2;
        const auto digital = static_cast<std::int16_t>(raw);
        channel.samples.push_back(
            channel.physical_min +
            gain * (static_cast<double>(digital) -
                    static_cast<double>(channel.digital_min)));
      }
    }
  }
  return file;
}

void write_edf(const std::filesystem::path& path, const EdfFile& file) {
  const auto bytes = encode_edf(file);
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) {
    throw IoError("write_edf: cannot open " + path.string());
  }
  stream.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
  if (!stream) {
    throw IoError("write_edf: write failed for " + path.string());
  }
}

EdfFile read_edf(const std::filesystem::path& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    throw IoError("read_edf: cannot open " + path.string());
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(stream)),
      std::istreambuf_iterator<char>());
  return decode_edf(bytes);
}

}  // namespace emap::edf
