#include "emap/baselines/fft_search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <complex>
#include <mutex>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/xcorr.hpp"

namespace emap::baselines {
namespace {

constexpr double kDegenerateNorm = 1e-12;

// NCC of a zero-mean unit-norm probe against every full-overlap window of
// `samples`, via one frequency-domain correlation plus prefix sums.
std::vector<double> ncc_series_fft(
    const std::vector<std::complex<double>>& probe_spectrum,
    std::size_t probe_len, std::size_t padded,
    std::span<const double> samples) {
  const std::size_t offsets = samples.size() - probe_len + 1;

  // Cross-correlation: IFFT(FFT(samples) * conj(FFT(probe))).
  std::vector<std::complex<double>> spectrum(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    spectrum[i] = {samples[i], 0.0};
  }
  dsp::fft_inplace(spectrum);
  for (std::size_t i = 0; i < padded; ++i) {
    spectrum[i] *= std::conj(probe_spectrum[i]);
  }
  dsp::ifft_inplace(spectrum);

  // Sliding mean and sum-of-squares from prefix sums.
  std::vector<double> prefix(samples.size() + 1, 0.0);
  std::vector<double> prefix_sq(samples.size() + 1, 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    prefix[i + 1] = prefix[i] + samples[i];
    prefix_sq[i + 1] = prefix_sq[i] + samples[i] * samples[i];
  }

  const double n = static_cast<double>(probe_len);
  std::vector<double> ncc(offsets, 0.0);
  for (std::size_t k = 0; k < offsets; ++k) {
    const double sum = prefix[k + probe_len] - prefix[k];
    const double sum_sq = prefix_sq[k + probe_len] - prefix_sq[k];
    // The probe is zero-mean, so dot(probe, window - mean) == dot(probe,
    // window); the correlation value at lag k is exactly that dot.
    const double dot = spectrum[k].real();
    const double norm_sq = sum_sq - sum * sum / n;
    if (norm_sq < kDegenerateNorm) {
      ncc[k] = 0.0;
      continue;
    }
    ncc[k] = std::clamp(dot / std::sqrt(norm_sq), -1.0, 1.0);
  }
  return ncc;
}

}  // namespace

FftSearch::FftSearch(const core::EmapConfig& config, ThreadPool* pool)
    : config_(config), pool_(pool) {
  config_.validate();
}

core::SearchResult FftSearch::search(std::span<const double> input_window,
                                     const mdb::MdbStore& store) const {
  const auto start_time = std::chrono::steady_clock::now();
  require(input_window.size() == config_.window_length,
          "FftSearch: input window length mismatch");

  // Zero-mean unit-norm probe, shared across sets.  Degenerate probes
  // (constant input) match nothing, like the time-domain searches.
  const dsp::NormalizedWindow probe(input_window);
  const std::size_t window = config_.window_length;

  // All signal-sets share the store's slice length; precompute the probe
  // spectrum at the padded size once per distinct set length.
  const std::size_t set_length = store.info().slice_length;
  const std::size_t padded = dsp::next_pow2(set_length + window);
  std::vector<std::complex<double>> probe_spectrum(padded, {0.0, 0.0});
  if (!probe.degenerate()) {
    const auto normalized = probe.samples();
    for (std::size_t i = 0; i < window; ++i) {
      probe_spectrum[i] = {normalized[i], 0.0};
    }
    dsp::fft_inplace(probe_spectrum);
  }

  std::mutex merge_mutex;
  std::vector<core::SearchMatch> candidates;
  std::atomic<std::uint64_t> total_mults{0};
  std::atomic<std::uint64_t> total_evals{0};
  std::atomic<std::uint64_t> total_hits{0};

  auto scan_range = [&](std::size_t begin, std::size_t end) {
    std::vector<core::SearchMatch> local;
    std::uint64_t mults = 0;
    std::uint64_t evals = 0;
    for (std::size_t index = begin; index < end; ++index) {
      const auto& set = store.at(index);
      if (probe.degenerate() || set.samples.size() < window ||
          set.samples.size() != set_length) {
        continue;
      }
      const auto ncc = ncc_series_fft(probe_spectrum, window, padded,
                                      set.samples);
      // Cost: two FFTs of `padded` points (~padded log2(padded) complex
      // multiplies) plus the pointwise product.
      const auto log2_padded = static_cast<std::uint64_t>(
          std::llround(std::log2(static_cast<double>(padded))));
      mults += 2 * padded * log2_padded + padded;
      evals += ncc.size();
      // Paper line 4 parity with the time-domain searches: β strictly
      // below len(S) - len(I).
      const std::size_t limit = set.samples.size() - window;
      for (std::size_t beta = 0; beta < limit; ++beta) {
        if (ncc[beta] > config_.delta) {
          local.push_back(core::SearchMatch{index, set.id, ncc[beta], beta,
                                            set.anomalous, set.class_tag});
        }
      }
    }
    total_mults.fetch_add(mults, std::memory_order_relaxed);
    total_evals.fetch_add(evals, std::memory_order_relaxed);
    total_hits.fetch_add(local.size(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(merge_mutex);
    candidates.insert(candidates.end(), local.begin(), local.end());
  };

  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(store.size(), scan_range);
  } else {
    scan_range(0, store.size());
  }

  core::SearchResult result;
  result.matches = core::select_top_k(std::move(candidates), config_.top_k);
  result.stats.correlation_evals = total_evals.load();
  result.stats.mac_ops = total_mults.load();
  result.stats.candidates = total_hits.load();
  result.stats.sets_scanned = store.size();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

}  // namespace emap::baselines
