#include "emap/baselines/xcorr_classifier.hpp"

#include <algorithm>

#include "emap/common/error.hpp"
#include "emap/dsp/xcorr.hpp"
#include "emap/ml/features.hpp"

namespace emap::baselines {
namespace {

// Maximum NCC of `window` against any template in [begin, end).
double bank_correlation(std::span<const double> window,
                        const std::vector<std::vector<double>>& bank,
                        std::size_t begin, std::size_t end) {
  double best = -1.0;
  const dsp::NormalizedWindow probe(window);
  for (std::size_t i = begin; i < end; ++i) {
    best = std::max(best, probe.correlate(bank[i]));
  }
  return best;
}

}  // namespace

XcorrClassifier::XcorrClassifier(XcorrClassifierConfig config)
    : config_(config), model_(config.logistic) {
  require(config_.window_length >= 8, "XcorrClassifier: window too short");
  require(config_.templates_per_class >= 1,
          "XcorrClassifier: need at least one template per class");
}

ml::FeatureVector XcorrClassifier::make_features(
    std::span<const double> window) const {
  // Feature layout: the first 8 standard window features, with the last
  // two slots carrying the template-bank correlations (max NCC against the
  // anomalous bank and against the normal bank) — the "cross-correlation"
  // part of [18].
  ml::FeatureVector features = ml::extract_features(window, config_.fs_hz);
  features[8] = bank_correlation(window, templates_, 0,
                                 anomalous_template_count_);
  features[9] = bank_correlation(window, templates_,
                                 anomalous_template_count_,
                                 templates_.size());
  return features;
}

void XcorrClassifier::train(const std::vector<synth::Recording>& recordings) {
  require(!recordings.empty(), "XcorrClassifier::train: no recordings");
  const std::size_t window = config_.window_length;

  // Pass 1: collect labeled windows.
  std::vector<std::vector<double>> anomalous_windows;
  std::vector<std::vector<double>> normal_windows;
  for (const auto& recording : recordings) {
    const std::size_t count = recording.samples.size() / window;
    for (std::size_t w = 0; w < count; ++w) {
      const double t =
          static_cast<double>(w * window) / recording.fs();
      std::vector<double> samples(
          recording.samples.begin() + static_cast<std::ptrdiff_t>(w * window),
          recording.samples.begin() +
              static_cast<std::ptrdiff_t>((w + 1) * window));
      if (recording.anomalous_at(t)) {
        anomalous_windows.push_back(std::move(samples));
      } else {
        normal_windows.push_back(std::move(samples));
      }
    }
  }
  require(!anomalous_windows.empty() && !normal_windows.empty(),
          "XcorrClassifier::train: need both classes in the training data");

  // Pass 2: template bank = evenly spaced exemplars of each class.
  templates_.clear();
  auto pick_templates = [this](const std::vector<std::vector<double>>& pool) {
    const std::size_t take = std::min(config_.templates_per_class,
                                      pool.size());
    for (std::size_t i = 0; i < take; ++i) {
      templates_.push_back(pool[i * pool.size() / take]);
    }
  };
  pick_templates(anomalous_windows);
  anomalous_template_count_ = templates_.size();
  pick_templates(normal_windows);

  // Pass 3: train the classifier on the combined features.
  std::vector<ml::FeatureVector> rows;
  std::vector<int> labels;
  for (const auto& samples : anomalous_windows) {
    rows.push_back(make_features(samples));
    labels.push_back(1);
  }
  for (const auto& samples : normal_windows) {
    rows.push_back(make_features(samples));
    labels.push_back(0);
  }
  standardizer_.fit(rows);
  model_.fit(standardizer_.transform(rows), labels);
}

double XcorrClassifier::predict_proba(std::span<const double> window) const {
  require(model_.trained(), "XcorrClassifier::predict_proba: not trained");
  return model_.predict_proba(standardizer_.transform(make_features(window)));
}

bool XcorrClassifier::predict(std::span<const double> window) const {
  return predict_proba(window) >= 0.5;
}

}  // namespace emap::baselines
