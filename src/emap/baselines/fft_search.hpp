// FFT-accelerated exhaustive search (extension beyond the paper).
//
// The cloud search evaluates NCC(probe, S[β : β+256]) for every offset β of
// every signal-set.  Instead of 744 independent 256-sample dot products per
// set, the cross-correlation of the whole set with the (zero-mean,
// unit-norm) probe can be computed with one FFT-based convolution, and the
// per-offset normalization ||S_β − mean_β|| from prefix sums — exact
// exhaustive results at a fraction of the multiply count.  This is the
// natural production upgrade of the paper's cloud stage: Algorithm 1 trades
// accuracy for speed, FftSearch removes the trade-off.
#pragma once

#include <span>

#include "emap/common/thread_pool.hpp"
#include "emap/core/config.hpp"
#include "emap/core/search.hpp"
#include "emap/mdb/store.hpp"

namespace emap::baselines {

/// Exhaustive-equivalent top-k search via frequency-domain correlation.
class FftSearch {
 public:
  explicit FftSearch(const core::EmapConfig& config,
                     ThreadPool* pool = nullptr);

  /// Returns the same matches as ExhaustiveSearch (ties and floating-point
  /// round-off aside); stats.mac_ops reports the FFT multiply count, which
  /// is what makes the method cheaper.
  core::SearchResult search(std::span<const double> input_window,
                            const mdb::MdbStore& store) const;

 private:
  core::EmapConfig config_;
  ThreadPool* pool_;
};

}  // namespace emap::baselines
