#include "emap/baselines/exhaustive.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

#include "emap/common/error.hpp"
#include "emap/dsp/xcorr.hpp"

namespace emap::baselines {

ExhaustiveSearch::ExhaustiveSearch(const core::EmapConfig& config,
                                   ThreadPool* pool)
    : config_(config), pool_(pool) {
  config_.validate();
}

core::SearchResult ExhaustiveSearch::search(
    std::span<const double> input_window, const mdb::MdbStore& store) const {
  const auto start_time = std::chrono::steady_clock::now();
  require(input_window.size() == config_.window_length,
          "ExhaustiveSearch: input window length mismatch");

  const dsp::NormalizedWindow probe(input_window);
  const std::size_t window = config_.window_length;

  std::mutex merge_mutex;
  std::vector<core::SearchMatch> candidates;
  std::atomic<std::uint64_t> total_evals{0};
  std::atomic<std::uint64_t> total_hits{0};

  auto scan_range = [&](std::size_t begin, std::size_t end) {
    std::vector<core::SearchMatch> local;
    std::uint64_t evals = 0;
    for (std::size_t index = begin; index < end; ++index) {
      const auto& set = store.at(index);
      if (set.samples.size() < window) {
        continue;
      }
      const std::span<const double> samples(set.samples);
      const std::size_t limit = set.samples.size() - window;
      for (std::size_t beta = 0; beta < limit; ++beta) {
        const double omega = probe.correlate(samples.subspan(beta, window));
        ++evals;
        if (omega > config_.delta) {
          local.push_back(core::SearchMatch{index, set.id, omega, beta,
                                            set.anomalous, set.class_tag});
        }
      }
    }
    total_evals.fetch_add(evals, std::memory_order_relaxed);
    total_hits.fetch_add(local.size(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(merge_mutex);
    candidates.insert(candidates.end(), local.begin(), local.end());
  };

  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(store.size(), scan_range);
  } else {
    scan_range(0, store.size());
  }

  core::SearchResult result;
  result.matches = core::select_top_k(std::move(candidates), config_.top_k);
  result.stats.correlation_evals = total_evals.load();
  result.stats.mac_ops = total_evals.load() * window;
  result.stats.candidates = total_hits.load();
  result.stats.sets_scanned = store.size();
  // Exhaustive coverage: every offset evaluated, so the skip ratio is 0.
  result.stats.offsets_total = total_evals.load();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

}  // namespace emap::baselines
