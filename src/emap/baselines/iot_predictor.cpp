#include "emap/baselines/iot_predictor.hpp"

#include <algorithm>

#include "emap/common/error.hpp"
#include "emap/ml/features.hpp"

namespace emap::baselines {

IotPredictor::IotPredictor(IotPredictorConfig config)
    : config_(config),
      model_(config.logistic),
      mlp_model_([&config] {
        ml::MlpConfig mlp = config.mlp;
        if (config.hidden_units > 0) {
          mlp.hidden_units = config.hidden_units;
        }
        return mlp;
      }()) {
  require(config_.window_length >= 8, "IotPredictor: window too short");
  require(config_.votes_needed <= config_.vote_window,
          "IotPredictor: votes_needed must be <= vote_window");
}

bool IotPredictor::trained() const {
  return config_.hidden_units > 0 ? mlp_model_.trained() : model_.trained();
}

double IotPredictor::model_proba(const ml::FeatureVector& row) const {
  return config_.hidden_units > 0 ? mlp_model_.predict_proba(row)
                                  : model_.predict_proba(row);
}

void IotPredictor::train(const std::vector<synth::Recording>& recordings) {
  require(!recordings.empty(), "IotPredictor::train: no recordings");
  std::vector<ml::FeatureVector> rows;
  std::vector<int> labels;
  for (const auto& recording : recordings) {
    const std::size_t window = config_.window_length;
    const std::size_t count = recording.samples.size() / window;
    const bool has_anomaly =
        recording.spec.cls != synth::AnomalyClass::kNormal;
    for (std::size_t w = 0; w < count; ++w) {
      const std::span<const double> samples(
          recording.samples.data() + w * window, window);
      rows.push_back(ml::extract_features(samples, config_.fs_hz));
      const double t = static_cast<double>(w * window) / config_.fs_hz;
      const bool positive =
          has_anomaly && t >= recording.spec.onset_sec -
                                  config_.preictal_horizon_sec;
      labels.push_back(positive ? 1 : 0);
    }
  }
  require(!rows.empty(), "IotPredictor::train: recordings too short");
  standardizer_.fit(rows);
  if (config_.hidden_units > 0) {
    mlp_model_.fit(standardizer_.transform(rows), labels);
  } else {
    model_.fit(standardizer_.transform(rows), labels);
  }
}

double IotPredictor::observe_window(std::span<const double> window) {
  require(trained(), "IotPredictor::observe_window: not trained");
  const auto features = ml::extract_features(window, config_.fs_hz);
  const double probability =
      model_proba(standardizer_.transform(features));
  recent_votes_.push_back(probability >= 0.5 ? 1 : 0);
  if (recent_votes_.size() > config_.vote_window) {
    recent_votes_.erase(recent_votes_.begin());
  }
  const auto positives = static_cast<std::size_t>(
      std::count(recent_votes_.begin(), recent_votes_.end(), 1));
  if (recent_votes_.size() == config_.vote_window &&
      positives >= config_.votes_needed) {
    alarmed_ = true;
  }
  return probability;
}

void IotPredictor::reset_stream() {
  recent_votes_.clear();
  alarmed_ = false;
}

}  // namespace emap::baselines
