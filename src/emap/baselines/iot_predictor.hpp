// Samie-style IoT seizure predictor (paper's SoA prediction baseline [13]).
//
// A faithful-in-spirit reimplementation of the comparison point of Fig. 10:
// a single-purpose, low-cost seizure predictor that runs entirely on the
// edge device — per-window features (band powers, line length, Hjorth,
// variance) feeding an L2-regularized logistic model, with a smoothed
// probability and a persistence rule (K of the last M windows positive)
// for the alarm.  Unlike EMAP it is trained per anomaly and cannot be
// repointed at other disorders without retraining.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "emap/ml/logistic.hpp"
#include "emap/ml/mlp.hpp"
#include "emap/ml/standardizer.hpp"
#include "emap/synth/generator.hpp"

namespace emap::baselines {

/// Training/operating parameters of the IoT predictor.
struct IotPredictorConfig {
  double fs_hz = 256.0;
  std::size_t window_length = 256;
  /// Windows within this many seconds before onset are positive examples.
  /// Published horizons are of this order; shorter than the full prodrome,
  /// which is what caps the baseline's accuracy at the long Fig. 10 leads.
  double preictal_horizon_sec = 100.0;
  /// Alarm when at least `votes_needed` of the last `vote_window` windows
  /// classify positive.
  std::size_t vote_window = 5;
  std::size_t votes_needed = 3;
  ml::LogisticConfig logistic{};
  /// 0 = the [13]-style logistic model (IoT-deployable); > 0 selects an
  /// MLP with this many hidden units — the "[11]-style" cloud-DL stand-in
  /// of Table I, same protocol.
  std::size_t hidden_units = 0;
  ml::MlpConfig mlp{};
};

/// Trainable edge-only seizure predictor.
class IotPredictor {
 public:
  explicit IotPredictor(IotPredictorConfig config = {});

  /// Trains on labeled recordings (positive windows = pre-ictal horizon of
  /// anomalous recordings; negative windows = everything else).
  void train(const std::vector<synth::Recording>& recordings);

  /// Streams one window; returns the smoothed positive probability.
  double observe_window(std::span<const double> window);

  /// True once the persistence rule has fired (latches).
  bool alarm() const { return alarmed_; }

  /// Clears the streaming state (votes + alarm), keeping the model.
  void reset_stream();

  bool trained() const;

 private:
  double model_proba(const ml::FeatureVector& row) const;

  IotPredictorConfig config_;
  ml::Standardizer standardizer_;
  ml::LogisticRegression model_;
  ml::Mlp mlp_model_;
  std::vector<int> recent_votes_;
  bool alarmed_ = false;
};

}  // namespace emap::baselines
