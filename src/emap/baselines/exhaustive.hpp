// Exhaustive cross-correlation search baseline.
//
// Evaluates every offset of every signal-set (β += 1, no threshold
// skipping) — the comparison point of Fig. 7(b) (~6.8x slower than
// Algorithm 1) and Fig. 11 (the correlation-quality reference).
#pragma once

#include <span>

#include "emap/common/thread_pool.hpp"
#include "emap/core/config.hpp"
#include "emap/core/search.hpp"
#include "emap/mdb/store.hpp"

namespace emap::baselines {

/// Exhaustive top-k search; result/stat types shared with Algorithm 1.
class ExhaustiveSearch {
 public:
  explicit ExhaustiveSearch(const core::EmapConfig& config,
                            ThreadPool* pool = nullptr);

  /// Correlates the input at every full-overlap offset of every set and
  /// returns the top-k by ω.  The candidate set of Algorithm 1 is a subset
  /// of this search's candidate set (property-tested).
  core::SearchResult search(std::span<const double> input_window,
                            const mdb::MdbStore& store) const;

 private:
  core::EmapConfig config_;
  ThreadPool* pool_;
};

}  // namespace emap::baselines
