// Zhang-style cross-correlation + classification baseline ([18]).
//
// "Seizure prediction using cross-correlation and classification": the
// input window is cross-correlated against a small bank of class templates
// (prototype windows drawn from labeled training recordings); the
// correlation profile, combined with the standard window features, feeds a
// logistic classifier.  This is the detection-flavoured SoA column of
// Table I, reimplemented at the fidelity the evaluation needs.
#pragma once

#include <span>
#include <vector>

#include "emap/ml/logistic.hpp"
#include "emap/ml/standardizer.hpp"
#include "emap/synth/generator.hpp"

namespace emap::baselines {

/// Parameters of the template-correlation classifier.
struct XcorrClassifierConfig {
  double fs_hz = 256.0;
  std::size_t window_length = 256;
  /// Number of anomalous and normal templates kept in the bank.
  std::size_t templates_per_class = 8;
  ml::LogisticConfig logistic{};
};

/// Template-bank cross-correlation classifier.
class XcorrClassifier {
 public:
  explicit XcorrClassifier(XcorrClassifierConfig config = {});

  /// Builds the template bank and trains the classifier on the labeled
  /// recordings (windows labeled by their recording annotations).
  void train(const std::vector<synth::Recording>& recordings);

  /// P(anomalous | window).
  double predict_proba(std::span<const double> window) const;

  /// Hard decision at 0.5.
  bool predict(std::span<const double> window) const;

  bool trained() const { return model_.trained(); }
  std::size_t template_count() const { return templates_.size(); }

 private:
  ml::FeatureVector make_features(std::span<const double> window) const;

  XcorrClassifierConfig config_;
  std::vector<std::vector<double>> templates_;  ///< anomalous then normal
  std::size_t anomalous_template_count_ = 0;
  ml::Standardizer standardizer_;
  ml::LogisticRegression model_;
};

}  // namespace emap::baselines
