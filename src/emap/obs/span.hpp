// Span tracing: hierarchical timed intervals with wall-clock and virtual
// SimTime stamps.
//
// A Tracer collects SpanRecords; RAII Tracer::Span scopes measure wall
// time and nest parent/child automatically, while record_sim() logs
// intervals on the pipeline's virtual clock (the Fig. 9 timeline).  The
// sim::TimelineTrace ASCII view and the Chrome trace_event exporter are
// both projections of the same span log (see export.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace emap::obs {

class Histogram;

/// One completed traced interval.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;      ///< 0 = root span
  std::uint64_t trace_id = 0;    ///< causal chain (obs::TraceContext); 0 = none
  std::string name;              ///< instance label, e.g. "delta_EC"
  std::string category;          ///< row/track, e.g. "upload"
  double wall_start_us = 0.0;    ///< microseconds since tracer epoch
  double wall_dur_us = 0.0;
  double sim_start_sec = -1.0;   ///< virtual-clock stamp; < 0 = none
  double sim_dur_sec = 0.0;
};

/// Thread-safe append-only span log.
class Tracer {
 public:
  Tracer();

  /// RAII wall-clock span; completes (and appends its record) at scope
  /// exit.  Nested scopes on the same thread chain parent ids.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    /// Attaches a virtual-clock interval to the span.
    void set_sim(double start_sec, double end_sec);
    /// Attaches the span to a causal trace.
    void set_trace(std::uint64_t trace_id) { record_.trace_id = trace_id; }
    std::uint64_t id() const { return record_.id; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string category);

    Tracer* tracer_;
    SpanRecord record_;
    std::chrono::steady_clock::time_point started_;
  };

  /// Opens a RAII span.
  Span scope(std::string name, std::string category);

  /// Appends a virtual-time interval immediately (no wall measurement).
  /// Returns the span id for use as a later `parent`.
  std::uint64_t record_sim(std::string name, std::string category,
                           double sim_start_sec, double sim_end_sec,
                           std::uint64_t parent = 0,
                           std::uint64_t trace_id = 0);

  /// Appends a fully formed record (id assigned when 0); returns its id.
  std::uint64_t append(SpanRecord record);

  /// Snapshot of the recorded spans in completion order.
  std::vector<SpanRecord> spans() const;
  std::size_t size() const;

  /// Total virtual-clock busy time of one category.
  double sim_total_seconds(const std::string& category) const;

  /// Microseconds of wall time since the tracer was constructed.
  double wall_now_us() const;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::atomic<std::uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII wall-clock stopwatch recording its lifetime into a Histogram (and
/// optionally adding to a duration-sum gauge-style counter elsewhere).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_seconds() const;

 private:
  Histogram& sink_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace emap::obs
