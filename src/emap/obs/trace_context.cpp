#include "emap/obs/trace_context.hpp"

#include <cstdio>

namespace emap::obs {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t mint_trace_id(std::uint64_t seed, std::uint64_t window_index) {
  std::uint64_t id = splitmix64(splitmix64(seed) ^ window_index);
  // 0 is reserved as the "untraced" sentinel; remint through a fixed
  // tweak so the function stays a pure mapping of (seed, window).
  if (id == 0) {
    id = splitmix64(seed ^ ~window_index);
  }
  return id != 0 ? id : 1;
}

std::string trace_id_hex(std::uint64_t trace_id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buffer, 16);
}

std::uint64_t parse_trace_id_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    return 0;
  }
  std::uint64_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return value;
}

}  // namespace emap::obs
