#include "emap/obs/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/tracecat.hpp"  // parse_flat_json

namespace emap::obs {

namespace {

double field_number(const std::map<std::string, std::string>& fields,
                    const char* key, double fallback = 0.0) {
  const auto found = fields.find(key);
  if (found == fields.end()) {
    return fallback;
  }
  try {
    return std::stod(found->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string field_text(const std::map<std::string, std::string>& fields,
                       const char* key) {
  const auto found = fields.find(key);
  return found == fields.end() ? std::string() : found->second;
}

std::string format_number(double value) {
  char buffer[32];
  if (value == 0.0) {
    return "0";
  }
  const double magnitude = std::fabs(value);
  if (magnitude >= 0.001 && magnitude < 100000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3e", value);
  }
  return buffer;
}

}  // namespace

SeriesLoadResult load_series_jsonl(const std::filesystem::path& path) {
  std::ifstream stream(path);
  require(static_cast<bool>(stream),
          ("load_series_jsonl: cannot open " + path.string()).c_str());
  SeriesLoadResult result;
  std::map<std::string, std::size_t> index;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::map<std::string, std::string> fields;
    if (!parse_flat_json(line, fields) || !fields.count("series") ||
        !fields.count("t0") || !fields.count("t1")) {
      ++result.skipped_lines;
      continue;
    }
    const std::string key = fields["series"];
    const auto found = index.find(key);
    LoadedSeries* series;
    if (found == index.end()) {
      index.emplace(key, result.series.size());
      result.series.push_back({key, field_text(fields, "kind"), {}});
      series = &result.series.back();
    } else {
      series = &result.series[found->second];
    }
    SeriesBucket bucket;
    bucket.t_start_sec = field_number(fields, "t0");
    bucket.t_end_sec = field_number(fields, "t1");
    bucket.min = field_number(fields, "min");
    bucket.max = field_number(fields, "max");
    bucket.sum = field_number(fields, "sum");
    bucket.first = field_number(fields, "first");
    bucket.last = field_number(fields, "last");
    bucket.count =
        static_cast<std::uint64_t>(field_number(fields, "count", 1.0));
    series->buckets.push_back(bucket);
  }
  return result;
}

AlertLoadResult load_alerts_jsonl(const std::filesystem::path& path) {
  std::ifstream stream(path);
  require(static_cast<bool>(stream),
          ("load_alerts_jsonl: cannot open " + path.string()).c_str());
  AlertLoadResult result;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::map<std::string, std::string> fields;
    if (!parse_flat_json(line, fields) || !fields.count("rule") ||
        !fields.count("t_sec") || !fields.count("state")) {
      ++result.skipped_lines;
      continue;
    }
    LoadedAlertTransition transition;
    transition.rule = fields["rule"];
    transition.series = field_text(fields, "series");
    transition.t_sec = field_number(fields, "t_sec");
    transition.firing = fields["state"] == "firing";
    transition.value = field_number(fields, "value");
    transition.threshold = field_number(fields, "threshold");
    result.transitions.push_back(std::move(transition));
  }
  return result;
}

Changepoint cusum_changepoint(const std::vector<SeriesBucket>& buckets,
                              double k, double h) {
  Changepoint result;
  const std::size_t n = buckets.size();
  if (n < 4) {
    return result;
  }
  double mean = 0.0;
  for (const SeriesBucket& bucket : buckets) {
    mean += bucket.mean();
  }
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (const SeriesBucket& bucket : buckets) {
    const double d = bucket.mean() - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(n);
  const double stddev = std::sqrt(variance);
  if (stddev <= 0.0 || !std::isfinite(stddev)) {
    return result;  // constant series: no changepoint by definition
  }
  // Offline CUSUM: prefix sums of the standardized series.  P_0 = P_n = 0
  // by construction, and a level shift at bucket m makes |P| a tent with
  // its peak at exactly m (the pre-shift buckets all sit on one side of
  // the global mean), so the changepoint estimate is argmax_j |P_j|.
  // The online S+/S- recursion would mislocate here: against the global
  // mean of a stepped series the *baseline* drifts too, and its excursion
  // starts at bucket 0.
  double prefix = 0.0;
  double peak = 0.0;
  std::size_t peak_index = 0;
  for (std::size_t j = 1; j < n; ++j) {
    prefix += (buckets[j - 1].mean() - mean) / stddev;
    if (std::abs(prefix) > peak) {
      peak = std::abs(prefix);
      peak_index = j;
    }
  }
  if (peak_index == 0) {
    return result;
  }
  double before_sum = 0.0, after_sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    (j < peak_index ? before_sum : after_sum) += buckets[j].mean();
  }
  const double before_mean =
      before_sum / static_cast<double>(peak_index);
  const double after_mean =
      after_sum / static_cast<double>(n - peak_index);
  // Two gates reject stationary wobble: the excursion must clear h
  // (stddev-bucket units — a bounded oscillation's prefix sums stay
  // small) and the implied level shift must clear k stddevs.
  if (peak <= h || std::abs(after_mean - before_mean) <= k * stddev) {
    return result;
  }
  result.found = true;
  result.bucket_index = peak_index;
  result.t_sec = buckets[peak_index].t_start_sec;
  result.shift = after_mean - before_mean;
  return result;
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kGlyphs[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty() || width == 0) {
    return {};
  }
  double lo = values[0], hi = values[0];
  for (const double value : values) {
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  const double span = hi - lo;
  std::string out;
  const std::size_t columns = std::min(width, values.size());
  for (std::size_t column = 0; column < columns; ++column) {
    // Resample by averaging each column's slice of the value range.
    const std::size_t begin = column * values.size() / columns;
    const std::size_t end =
        std::max(begin + 1, (column + 1) * values.size() / columns);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      sum += values[i];
    }
    const double value = sum / static_cast<double>(end - begin);
    std::size_t level = 0;
    if (span > 0.0) {
      level = static_cast<std::size_t>((value - lo) / span * 7.0 + 0.5);
      level = std::min<std::size_t>(level, 7);
    }
    out += kGlyphs[level];
  }
  return out;
}

namespace {

std::vector<double> bucket_means(const LoadedSeries& series) {
  std::vector<double> means;
  means.reserve(series.buckets.size());
  for (const SeriesBucket& bucket : series.buckets) {
    means.push_back(bucket.mean());
  }
  return means;
}

bool series_selected(const LoadedSeries& series, const ReportOptions& options) {
  return options.series_filter.empty() ||
         series.key.find(options.series_filter) != std::string::npos;
}

}  // namespace

std::string render_ascii_report(const SeriesLoadResult& series,
                                const AlertLoadResult& alerts,
                                const ReportOptions& options) {
  std::ostringstream out;
  out << "series report (" << series.series.size() << " series";
  if (series.skipped_lines > 0) {
    out << ", " << series.skipped_lines << " lines skipped";
  }
  out << ")\n\n";
  std::size_t key_width = 6;
  for (const LoadedSeries& one : series.series) {
    if (series_selected(one, options)) {
      key_width = std::max(key_width, one.key.size());
    }
  }
  key_width = std::min<std::size_t>(key_width, 56);
  for (const LoadedSeries& one : series.series) {
    if (!series_selected(one, options)) {
      continue;
    }
    const std::vector<double> means = bucket_means(one);
    double lo = means.empty() ? 0.0 : means[0];
    double hi = lo;
    for (const double value : means) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    std::string key = one.key;
    if (key.size() > key_width) {
      key = key.substr(0, key_width - 3) + "...";
    }
    out << "  " << key << std::string(key_width - key.size() + 2, ' ')
        << sparkline(means, options.spark_width) << "\n";
    out << "  " << std::string(key_width + 2, ' ') << "n=" << means.size()
        << " min=" << format_number(lo) << " max=" << format_number(hi);
    if (!one.buckets.empty()) {
      out << " last=" << format_number(one.buckets.back().last) << " span=["
          << format_number(one.buckets.front().t_start_sec) << "s, "
          << format_number(one.buckets.back().t_end_sec) << "s]";
    }
    const Changepoint change =
        cusum_changepoint(one.buckets, options.cusum_k, options.cusum_h);
    if (change.found) {
      out << "\n  " << std::string(key_width + 2, ' ')
          << "changepoint t=" << format_number(change.t_sec)
          << "s shift=" << format_number(change.shift);
    }
    out << "\n";
  }
  out << "\nalerts (" << alerts.transitions.size() << " transitions";
  if (alerts.skipped_lines > 0) {
    out << ", " << alerts.skipped_lines << " lines skipped";
  }
  out << ")\n";
  for (const LoadedAlertTransition& transition : alerts.transitions) {
    out << "  t=" << format_number(transition.t_sec) << "s  "
        << (transition.firing ? "FIRING  " : "resolved") << "  "
        << transition.rule << "  value=" << format_number(transition.value)
        << " threshold=" << format_number(transition.threshold) << "  ("
        << transition.series << ")\n";
  }
  if (alerts.transitions.empty()) {
    out << "  (none)\n";
  }
  return out.str();
}

namespace {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// One series as an inline SVG polyline with alert + changepoint markers.
std::string svg_chart(const LoadedSeries& series,
                      const std::vector<LoadedAlertTransition>& alerts,
                      const Changepoint& change) {
  constexpr double kWidth = 640.0, kHeight = 80.0, kPad = 4.0;
  const std::vector<SeriesBucket>& buckets = series.buckets;
  if (buckets.empty()) {
    return "<svg width=\"640\" height=\"80\"></svg>";
  }
  const double t0 = buckets.front().t_start_sec;
  const double t1 = std::max(buckets.back().t_end_sec, t0 + 1e-9);
  double lo = buckets[0].mean(), hi = lo;
  for (const SeriesBucket& bucket : buckets) {
    lo = std::min(lo, bucket.mean());
    hi = std::max(hi, bucket.mean());
  }
  const double span = std::max(hi - lo, 1e-12);
  auto x_of = [&](double t) {
    return kPad + (t - t0) / (t1 - t0) * (kWidth - 2 * kPad);
  };
  auto y_of = [&](double v) {
    return kHeight - kPad - (v - lo) / span * (kHeight - 2 * kPad);
  };
  std::ostringstream svg;
  svg << "<svg width=\"" << static_cast<int>(kWidth) << "\" height=\""
      << static_cast<int>(kHeight)
      << "\" style=\"background:#fafafa;border:1px solid #ddd\">";
  svg << "<polyline fill=\"none\" stroke=\"#2a6cc8\" stroke-width=\"1.5\" "
         "points=\"";
  for (const SeriesBucket& bucket : buckets) {
    const double t = 0.5 * (bucket.t_start_sec + bucket.t_end_sec);
    svg << format_number(x_of(t)) << "," << format_number(y_of(bucket.mean()))
        << " ";
  }
  svg << "\"/>";
  if (change.found) {
    const double x = x_of(change.t_sec);
    svg << "<line x1=\"" << format_number(x) << "\" y1=\"0\" x2=\""
        << format_number(x) << "\" y2=\"" << static_cast<int>(kHeight)
        << "\" stroke=\"#c87a2a\" stroke-dasharray=\"4 3\"/>";
  }
  for (const LoadedAlertTransition& alert : alerts) {
    if (alert.series != series.key) {
      continue;
    }
    const double x = x_of(alert.t_sec);
    svg << "<line x1=\"" << format_number(x) << "\" y1=\"0\" x2=\""
        << format_number(x) << "\" y2=\"" << static_cast<int>(kHeight)
        << "\" stroke=\"" << (alert.firing ? "#c82a2a" : "#2ac86c")
        << "\"/>";
  }
  svg << "</svg>";
  return svg.str();
}

}  // namespace

std::string render_html_report(const SeriesLoadResult& series,
                               const AlertLoadResult& alerts,
                               const ReportOptions& options) {
  std::ostringstream out;
  out << "<!doctype html><html><head><meta charset=\"utf-8\">"
         "<title>emap soak report</title><style>"
         "body{font-family:monospace;margin:24px;color:#222}"
         "h1{font-size:18px}h2{font-size:14px}"
         "table{border-collapse:collapse;margin:8px 0}"
         "td,th{border:1px solid #ccc;padding:2px 8px;font-size:12px;"
         "text-align:left}"
         ".firing{color:#c82a2a;font-weight:bold}"
         ".resolved{color:#2ac86c}"
         ".meta{color:#777;font-size:12px}"
         "</style></head><body><h1>emap soak report</h1>";
  out << "<p class=\"meta\">" << series.series.size() << " series, "
      << alerts.transitions.size() << " alert transitions";
  if (series.skipped_lines + alerts.skipped_lines > 0) {
    out << " (" << series.skipped_lines + alerts.skipped_lines
        << " malformed lines skipped)";
  }
  out << "</p><h2>Alerts</h2>";
  if (alerts.transitions.empty()) {
    out << "<p class=\"meta\">no transitions</p>";
  } else {
    out << "<table><tr><th>t (s)</th><th>state</th><th>rule</th>"
           "<th>value</th><th>threshold</th><th>series</th></tr>";
    for (const LoadedAlertTransition& transition : alerts.transitions) {
      out << "<tr><td>" << format_number(transition.t_sec) << "</td><td "
          << (transition.firing ? "class=\"firing\">firing"
                                : "class=\"resolved\">resolved")
          << "</td><td>" << html_escape(transition.rule) << "</td><td>"
          << format_number(transition.value) << "</td><td>"
          << format_number(transition.threshold) << "</td><td>"
          << html_escape(transition.series) << "</td></tr>";
    }
    out << "</table>";
  }
  out << "<h2>Series</h2>";
  for (const LoadedSeries& one : series.series) {
    if (!series_selected(one, options)) {
      continue;
    }
    const Changepoint change =
        cusum_changepoint(one.buckets, options.cusum_k, options.cusum_h);
    out << "<h3 style=\"font-size:13px;margin-bottom:2px\">"
        << html_escape(one.key) << " <span class=\"meta\">(" << one.kind
        << ", " << one.buckets.size() << " buckets)</span></h3>";
    if (change.found) {
      out << "<p class=\"meta\">changepoint at t="
          << format_number(change.t_sec)
          << "s, shift=" << format_number(change.shift) << "</p>";
    }
    out << svg_chart(one, alerts.transitions, change);
  }
  out << "</body></html>";
  return out.str();
}

}  // namespace emap::obs
