// Perf-regression diffing over bench headline records.
//
// Every bench appends one flat-JSON record of its headline numbers to
// BENCH_<name>.jsonl (bench/bench_util.hpp).  This module parses those
// records, pairs a current run against a committed baseline under
// bench/baselines/, classifies each metric's delta by an inferred
// direction (latencies regress upward, speedups/accuracies regress
// downward), and reports which metrics moved past a threshold.  The
// tools/perfdiff CLI is a thin shell around perf_diff(): the library keeps
// the logic unit-testable and the CLI's exit code honest.
//
// Comparisons are refused (per bench, with a note) when the two records
// carry different config fingerprints — a changed EmapConfig makes every
// latency apples-to-oranges, and a silent pass on mismatched configs is
// exactly the failure mode a perf gate exists to prevent.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace emap::obs {

/// One bench headline record: the flat JSON object split into numeric
/// metrics and string tags (git_sha, config, flags, bench).
struct BenchRecord {
  std::string bench;
  std::map<std::string, double> metrics;
  std::map<std::string, std::string> tags;
};

/// Parses one flat JSON object line (string / number / bool values; no
/// nesting).  Throws CorruptData on malformed input.
BenchRecord parse_bench_record(const std::string& line);

/// Loads every record of a BENCH_*.jsonl file (blank lines skipped).
/// Throws IoError when the file cannot be read, CorruptData on a bad line.
std::vector<BenchRecord> load_bench_records(const std::filesystem::path& path);

/// Lenient variant for the CLI gate: a malformed line is skipped and
/// described in `errors` instead of aborting the load, so one corrupt
/// record cannot hide the regressions of every bench behind it.  Still
/// throws IoError when the file itself cannot be opened.
std::vector<BenchRecord> load_bench_records_lenient(
    const std::filesystem::path& path, std::vector<std::string>& errors);

/// Direction inference by metric name: substrings speedup / accuracy /
/// ratio / corr / auc / recall / precision / score / throughput mark
/// higher-is-better; everything else (latencies, times, ops, misses)
/// regresses upward.
bool metric_higher_is_better(const std::string& name);

/// One metric compared across baseline and current.
struct PerfDelta {
  std::string bench;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed relative change (current - baseline) / |baseline|; 0 when the
  /// baseline is 0 and current matches, +/-inf otherwise.
  double change_frac = 0.0;
  bool higher_is_better = false;
  bool regressed = false;  ///< moved in the bad direction past threshold
};

/// One absolute-floor requirement on a current-side metric, e.g. "the
/// fig7a AVX2 scan speedup must be >= 2.0".  Floors complement the
/// relative diff: wall-clock metrics are stripped from committed
/// baselines (docs/performance.md), so the only way to gate on one is an
/// absolute bound against the current run.  A requirement whose bench or
/// metric is absent from the current side is skipped with a note rather
/// than failed — e.g. the AVX2 speedup metric never appears on a host
/// without AVX2.
struct PerfRequirement {
  std::string bench;
  std::string metric;
  double min_value = 0.0;
};

/// Parses a "bench:metric:min" spec (the --require CLI form).  Throws
/// InvalidArgument on a malformed spec.
PerfRequirement parse_perf_requirement(const std::string& spec);

/// One evaluated requirement.
struct RequirementOutcome {
  PerfRequirement requirement;
  double value = 0.0;    ///< current-side metric value (when present)
  bool missing = false;  ///< bench or metric absent; skipped, not failed
  bool satisfied = false;
};

struct PerfDiffOptions {
  /// Relative change in the bad direction that fails the gate.
  double threshold = 0.10;
  /// Refuse per-bench comparison when `config` fingerprints differ.
  bool check_fingerprint = true;
  /// Absolute floors evaluated against the current side.
  std::vector<PerfRequirement> requirements;
};

struct PerfDiffResult {
  std::vector<PerfDelta> deltas;
  /// Human-readable skips: benches only in one side, fingerprint
  /// mismatches, metrics missing from the current run.
  std::vector<std::string> notes;
  /// Evaluated absolute-floor requirements, in option order.
  std::vector<RequirementOutcome> requirements;
  std::size_t regressions = 0;
  std::size_t requirement_failures = 0;
  bool ok() const { return regressions == 0 && requirement_failures == 0; }
};

/// Compares current against baseline.  When a bench appears multiple times
/// on one side (appended JSONL runs), the last record wins.  Metrics
/// present only in the baseline are noted, not failed; metrics new in the
/// current run pass silently (they have no baseline yet).
PerfDiffResult perf_diff(const std::vector<BenchRecord>& baseline,
                         const std::vector<BenchRecord>& current,
                         const PerfDiffOptions& options = {});

/// Aligned per-metric delta table plus the notes and a verdict line.
std::string format_perf_diff(const PerfDiffResult& result,
                             const PerfDiffOptions& options = {});

}  // namespace emap::obs
