// Telemetry metrics: counters, gauges, and latency histograms behind a
// named registry.
//
// The paper's headline claims are timing claims (Eq. 4's Δ_initial ≈ 3 s,
// sub-second edge iterations, the 6.8× search speedup); this module gives
// every layer of the reproduction one uniform way to record them.  All
// instruments are lock-free on the hot path (atomics only), so the
// ThreadPool-parallel cloud search and CloudService workers can record
// without contention; the registry itself takes a mutex only on metric
// creation/lookup, and call sites cache the returned references.
//
// Dependency-free by design: standard library only.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace emap::obs {

/// Metric labels (Prometheus-style key/value pairs), kept sorted by key so
/// the same label set always maps to the same time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, set size, utilization).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with a streaming quantile estimator.
///
/// Observations land in atomic buckets below ascending upper bounds (plus
/// an overflow bucket), so recording is wait-free.  quantile() interpolates
/// within the covering bucket and clamps to the observed [min, max], which
/// makes constant streams exact and bounds the relative error of the
/// default log-spaced layout at roughly half a bucket width (~4%).
class Histogram {
 public:
  /// `bounds` are strictly ascending bucket upper bounds; values above the
  /// last bound land in the overflow bucket.
  explicit Histogram(std::vector<double> bounds = default_latency_bounds());

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Smallest/largest observed value; +inf/-inf when empty.
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q in [0, 1]); 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `index` (index == bounds().size() is overflow).
  std::uint64_t bucket_count(std::size_t index) const;

  /// Log-spaced bounds covering 1 µs .. ~1000 s at ~9% resolution — the
  /// default layout for latency observations.
  static std::vector<double> default_latency_bounds();
  /// `count` equal-width buckets spanning [lo, hi] (for bounded quantities
  /// such as ratios and probabilities).
  static std::vector<double> linear_bounds(double lo, double hi,
                                           std::size_t count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Kind tag of a registered metric (drives exporter formatting).
enum class MetricKind { kCounter, kGauge, kHistogram };

/// One registered time series: a name, a label set, and its instrument.
struct MetricEntry {
  std::string name;
  Labels labels;
  std::string help;
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// Thread-safe named metric registry.
///
/// Lookup-or-create is mutex-guarded; the returned references stay valid
/// for the registry's lifetime (entries are never removed), so hot paths
/// look up once and record lock-free thereafter.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds =
                           Histogram::default_latency_bounds(),
                       const std::string& help = {});

  /// Snapshot of the registered entries in registration order.  The
  /// pointers remain valid while the registry lives.
  std::vector<const MetricEntry*> entries() const;

  /// Number of distinct metric names (families), ignoring label sets.
  std::size_t family_count() const;

  /// Cardinality guard: at most this many distinct label-sets per metric
  /// family.  Defaults to 1000, overridable via EMAP_METRICS_MAX_SERIES
  /// (read once, at the first registration).  Registrations past the cap
  /// return an unregistered sink instrument (reference-stable, recorded
  /// into but never exported or scraped), bump
  /// `emap_metrics_dropped_series_total{metric="<family>"}`, and warn on
  /// stderr once per family — a labels-from-user-input bug degrades into
  /// one counter instead of unbounded registry growth.
  static constexpr std::size_t kDefaultMaxSeriesPerFamily = 1000;
  std::size_t max_series_per_family() const;
  /// Series registrations refused by the guard so far.
  std::uint64_t dropped_series() const {
    return dropped_series_.load(std::memory_order_relaxed);
  }

 private:
  MetricEntry& lookup(const std::string& name, const Labels& labels,
                      const std::string& help, MetricKind kind,
                      std::vector<double>* bounds);
  /// lookup with mutex_ already held (the drop path re-enters to register
  /// the dropped-series counter).
  MetricEntry& lookup_locked(const std::string& name, const Labels& labels,
                             const std::string& help, MetricKind kind,
                             std::vector<double>* bounds);
  MetricEntry& sink_for(MetricKind kind, std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<MetricEntry>> entries_;
  std::unordered_map<std::string, std::size_t> index_;  // name+labels -> slot
  std::unordered_map<std::string, std::size_t> family_series_;
  std::unordered_map<std::string, bool> family_warned_;
  std::unique_ptr<MetricEntry> sinks_[3];  // one per MetricKind
  std::atomic<std::uint64_t> dropped_series_{0};
  mutable std::size_t max_series_cache_ = 0;  // 0 = env not read yet
};

}  // namespace emap::obs
