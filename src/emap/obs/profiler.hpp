// Continuous profiling: low-overhead scoped stage profiler.
//
// The paper's headline claims are latency claims, and the spans/metrics of
// span.hpp answer "how long did this run take" — but not "where inside the
// hot path did the time go".  The Profiler answers that second question:
// RAII ProfileScope guards mark stages (FIR filtering, the Algorithm 1
// scan, area tracking, the wire codec, channel transfers), nest into
// per-thread call trees, and aggregate call-count / total / self time per
// stage path.  The result exports as a JSON profile and as collapsed-stack
// text (`a;b;c <self_us>`) that flamegraph.pl or speedscope render
// directly.
//
// Cost model: when profiling is disabled (the default) a ProfileScope is
// one relaxed atomic load and two null checks — cheap enough to leave the
// hooks compiled into the hot paths unconditionally.  When enabled, each
// scope takes one uncontended per-thread mutex and two steady_clock reads;
// hooks are placed at stage granularity (per window, per scan range, per
// message), never per sample, so the enabled overhead on the instrumented
// benches stays in the low single-digit percent (bench_fig7b measures and
// reports it as `profiler_overhead_pct`).
//
// Threading: every thread records into its own tree (keyed by string
// literal identity, so hook names must be literals or otherwise outlive
// the profiler).  report() merges the per-thread trees by stage path; a
// stage entered from a worker thread roots its own path there, which is
// exactly what a flamegraph wants (the pool's scan ranges show up as
// first-level frames of the worker threads).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace emap::obs {

/// Aggregated statistics of one stage path across all threads.
struct StageProfile {
  std::string path;        ///< "/"-joined nesting, e.g. "search/scan"
  std::uint64_t calls = 0;
  std::uint64_t work = 0;  ///< stage-defined unit count (ops, bytes, skips)
  double total_sec = 0.0;  ///< inclusive wall time
  double self_sec = 0.0;   ///< total minus direct children
  /// Heap allocations attributed to this stage (interposed global
  /// operator new; inclusive of children entered without their own scope,
  /// exclusive of nested profiled stages).
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
};

/// Process-wide stage profiler.  All hooks funnel into instance(); tests
/// may construct private instances.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler the EMAP_PROFILE_SCOPE hooks record into.
  static Profiler& instance();

  /// Global enable switch for the instance() hooks; disabled scopes cost
  /// one relaxed atomic load.  Off by default.
  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_flag_.store(on, std::memory_order_relaxed);
  }

  /// Merged per-stage table across every thread that recorded, sorted by
  /// path.  Safe to call while other threads keep recording (their trees
  /// are locked briefly, one thread at a time).
  std::vector<StageProfile> report() const;

  /// Collapsed-stack text: one `path;with;semicolons <self_us>` line per
  /// stage (flamegraph.pl / speedscope "collapsed" input).  Stages whose
  /// self time rounds to zero microseconds are kept at 1 so no frame
  /// silently vanishes from the graph.
  std::string to_collapsed_stacks() const;

  /// JSON profile: `{"build":{...},"stages":[{...}]}`, stamped with the
  /// build-info constants so profiles from different binaries stay
  /// distinguishable.
  std::string to_json() const;

  /// Drops all recorded data (thread registrations survive).
  void reset();

  // Internal node of one thread's call tree (public for ProfileScope).
  struct Node {
    const char* name = "";
    Node* parent = nullptr;
    std::uint64_t calls = 0;
    std::uint64_t work = 0;
    std::int64_t total_ns = 0;
    std::int64_t child_ns = 0;
    // Written by the operator-new interposer under no lock (allocation can
    // happen while this thread holds the tree mutex), hence atomics.
    std::atomic<std::uint64_t> alloc_count{0};
    std::atomic<std::uint64_t> alloc_bytes{0};
    std::map<const void*, std::unique_ptr<Node>> children;
  };

  struct ThreadState {
    std::mutex mutex;
    Node root;
    Node* current = &root;
  };

  /// This thread's recording state, registered on first use.
  ThreadState& local_state();

 private:
  static std::atomic<bool> enabled_flag_;

  mutable std::mutex states_mutex_;
  std::vector<std::shared_ptr<ThreadState>> states_;
};

/// RAII stage guard recording into Profiler::instance().  A scope
/// constructed while profiling is disabled stays inert for its whole
/// lifetime, even if profiling is enabled before it closes.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name);
  /// Records into `profiler` unconditionally (tests and private profilers;
  /// ignores the global enable switch).
  ProfileScope(const char* name, Profiler& profiler);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  /// Adds `count` stage-defined work units (e.g. offsets skipped by the
  /// exponential search, ABS ops spent by area tracking) to this stage.
  void add_work(std::uint64_t count);

 private:
  Profiler::ThreadState* state_ = nullptr;
  Profiler::Node* node_ = nullptr;
  /// Allocation-attribution node this scope displaced (restored on exit).
  Profiler::Node* prev_alloc_node_ = nullptr;
  std::chrono::steady_clock::time_point started_;
};

class MetricsRegistry;

/// Surfaces the per-stage allocation counters as gauges:
/// `emap_profiler_alloc_count{stage=...}` and
/// `emap_profiler_alloc_bytes{stage=...}` (cumulative totals at call time;
/// call right before exporting the registry).
void export_profiler_alloc_metrics(MetricsRegistry& registry,
                                   const Profiler& profiler);

/// Writes to_json() / to_collapsed_stacks() to `path`, creating parent
/// directories; throws IoError on failure.
void write_profile_json(const std::filesystem::path& path,
                        const Profiler& profiler);
void write_collapsed_stacks(const std::filesystem::path& path,
                            const Profiler& profiler);

}  // namespace emap::obs

// Hot-path hook: expands to a ProfileScope with a unique local name.  The
// stage name must be a string literal (node keys are pointer identities).
#define EMAP_PROFILE_CONCAT_INNER(a, b) a##b
#define EMAP_PROFILE_CONCAT(a, b) EMAP_PROFILE_CONCAT_INNER(a, b)
#define EMAP_PROFILE_SCOPE(name)                                     \
  ::emap::obs::ProfileScope EMAP_PROFILE_CONCAT(emap_profile_scope_, \
                                                __LINE__)(name)
