// Trace reconstruction: per-window critical paths from span + flight logs.
//
// The tracing layer (trace_context.hpp) stamps every span with the 64-bit
// trace id of the window that caused it, on both sides of the wire.  This
// module is the read side: it loads the span JSONL (obs::write_spans_jsonl)
// and flight-recorder dumps (obs::FlightRecorder::trigger_dump), groups
// records by trace id, and decomposes each window's initial-response
// latency into its Eq. 4 legs — uplink, cloud queue wait, scan, downlink —
// plus the edge-side compute and any retry/backoff tax.  The `tracecat`
// CLI and `emapctl trace` are thin wrappers over these functions.
//
// Loading is lenient: lines that are not valid flat JSON objects (or miss
// required fields) are skipped and counted, never fatal — a flight dump
// written on the way down may legitimately end mid-line.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace emap::obs {

/// One span record parsed back from the spans JSONL (obs::span_json).
struct ParsedSpan {
  std::uint64_t span_id = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace_id = 0;  ///< decoded from the 16-hex-char field
  std::string name;
  std::string category;
  double sim_start_sec = -1.0;
  double sim_dur_sec = 0.0;
};

/// One flight-recorder event parsed back from a dump (obs::flight_event_json).
struct ParsedFlightEvent {
  std::uint64_t seq = 0;
  std::string type;
  std::string label;
  double t_sec = -1.0;
  std::uint64_t trace_id = 0;
  double a = 0.0;
  double b = 0.0;
};

/// Parses one flat (non-nested) JSON object line into key -> raw value
/// (strings unescaped, numbers kept as text).  Returns false on anything
/// that is not a syntactically complete flat object.  Exposed for tests.
bool parse_flat_json(const std::string& line,
                     std::map<std::string, std::string>& fields);

/// Result of a lenient JSONL load: the parsed records plus how many lines
/// were skipped as malformed.
struct SpanLoadResult {
  std::vector<ParsedSpan> spans;
  std::size_t skipped_lines = 0;
};
struct FlightLoadResult {
  std::vector<ParsedFlightEvent> events;
  std::string dump_reason;  ///< from the dump's header line, if present
  std::size_t skipped_lines = 0;
};

/// Loads a span JSONL file (write_spans_jsonl output).  Throws IoError when
/// the file cannot be opened; malformed lines are skipped, not fatal.
SpanLoadResult load_spans_jsonl(const std::filesystem::path& path);

/// Loads a flight-recorder dump.  The header line (`{"flight_dump":...}`)
/// supplies dump_reason; event lines follow.  Same leniency as spans.
FlightLoadResult load_flight_jsonl(const std::filesystem::path& path);

/// One window's reconstructed critical path.
struct TraceCriticalPath {
  std::uint64_t trace_id = 0;
  std::int64_t window_index = -1;    ///< from the window_N root span; -1 unknown
  double window_start_sec = -1.0;
  // Eq. 4 legs (SimTime seconds summed over this trace's spans).
  double uplink_sec = 0.0;    ///< delta_EC (category "upload")
  double queue_sec = 0.0;     ///< cloud queue wait (name "queue_wait")
  double scan_sec = 0.0;      ///< cloud search (category "cloud-search" /
                              ///< CloudService "cloud_scan")
  double downlink_sec = 0.0;  ///< delta_CE (category "download")
  // Off-path decomposition.
  double edge_sec = 0.0;      ///< edge compute (categories "edge-track",
                              ///< "prediction", "filter")
  double retry_sec = 0.0;     ///< timeouts + backoffs (category "retry")
  std::size_t spans = 0;
  std::size_t flight_events = 0;
  bool has_edge = false;   ///< at least one edge-side span
  bool has_cloud = false;  ///< at least one cloud-side span

  /// Reconstructed initial-response latency (the Eq. 4 sum).
  double initial_response_sec() const {
    return uplink_sec + queue_sec + scan_sec + downlink_sec;
  }
  /// Edge and cloud both contributed spans under this one trace id — the
  /// cross-boundary propagation actually happened.
  bool complete() const { return has_edge && has_cloud; }
};

/// Groups spans (and optional flight events) by trace id and decomposes
/// each group, ordered by window index (unknown-window traces last).
/// Untraced records (trace id 0) are ignored.
std::vector<TraceCriticalPath> build_critical_paths(
    const std::vector<ParsedSpan>& spans,
    const std::vector<ParsedFlightEvent>& events = {});

/// Human-readable per-window table plus a totals row.
std::string critical_path_table(const std::vector<TraceCriticalPath>& paths);

/// One JSONL line per trace (machine-readable form of the table).
std::string critical_path_jsonl(const std::vector<TraceCriticalPath>& paths);

}  // namespace emap::obs
