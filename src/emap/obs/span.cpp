#include "emap/obs/span.hpp"

#include <utility>

#include "emap/common/error.hpp"
#include "emap/obs/metrics.hpp"

namespace emap::obs {
namespace {

/// Per-thread stack of open RAII spans, keyed by tracer so independent
/// tracers on one thread nest independently.
thread_local std::vector<std::pair<const Tracer*, std::uint64_t>>
    g_active_spans;

std::uint64_t current_parent(const Tracer* tracer) {
  for (auto it = g_active_spans.rbegin(); it != g_active_spans.rend(); ++it) {
    if (it->first == tracer) {
      return it->second;
    }
  }
  return 0;
}

void pop_active(const Tracer* tracer, std::uint64_t id) {
  for (auto it = g_active_spans.rbegin(); it != g_active_spans.rend(); ++it) {
    if (it->first == tracer && it->second == id) {
      g_active_spans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer), started_(std::chrono::steady_clock::now()) {
  record_.id = tracer_->next_id_.fetch_add(1, std::memory_order_relaxed);
  record_.parent = current_parent(tracer_);
  record_.name = std::move(name);
  record_.category = std::move(category);
  record_.wall_start_us = tracer_->wall_now_us();
  g_active_spans.emplace_back(tracer_, record_.id);
}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      record_(std::move(other.record_)),
      started_(other.started_) {}

Tracer::Span::~Span() {
  if (tracer_ == nullptr) {
    return;  // moved-from
  }
  record_.wall_dur_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - started_)
          .count();
  pop_active(tracer_, record_.id);
  tracer_->append(std::move(record_));
}

void Tracer::Span::set_sim(double start_sec, double end_sec) {
  require(end_sec >= start_sec, "Span::set_sim: end before start");
  record_.sim_start_sec = start_sec;
  record_.sim_dur_sec = end_sec - start_sec;
}

Tracer::Span Tracer::scope(std::string name, std::string category) {
  return Span(this, std::move(name), std::move(category));
}

std::uint64_t Tracer::record_sim(std::string name, std::string category,
                                 double sim_start_sec, double sim_end_sec,
                                 std::uint64_t parent,
                                 std::uint64_t trace_id) {
  require(sim_end_sec >= sim_start_sec, "Tracer::record_sim: end before start");
  SpanRecord record;
  record.parent = parent;
  record.trace_id = trace_id;
  record.name = std::move(name);
  record.category = std::move(category);
  record.wall_start_us = wall_now_us();
  record.sim_start_sec = sim_start_sec;
  record.sim_dur_sec = sim_end_sec - sim_start_sec;
  return append(std::move(record));
}

std::uint64_t Tracer::append(SpanRecord record) {
  if (record.id == 0) {
    record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t id = record.id;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
  return id;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

double Tracer::sim_total_seconds(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& span : spans_) {
    if (span.category == category && span.sim_start_sec >= 0.0) {
      total += span.sim_dur_sec;
    }
  }
  return total;
}

double Tracer::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

ScopedTimer::ScopedTimer(Histogram& sink)
    : sink_(sink), started_(std::chrono::steady_clock::now()) {}

double ScopedTimer::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

ScopedTimer::~ScopedTimer() { sink_.observe(elapsed_seconds()); }

}  // namespace emap::obs
