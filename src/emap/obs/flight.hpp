// Flight recorder: a lock-free bounded ring of recent structured events
// (span boundaries, SLO misses, robust state transitions, fault-injector
// verdicts, crash points) that can be dumped to JSONL at the moment
// something goes wrong — a crash-point trip, an SLO burn-rate page, or a
// breaker open.  The ring always holds the *most recent* events: writers
// never block and never allocate, so the recorder is safe to call from
// the hot path and from the crash-point trip itself.
//
// Writers claim a slot with one fetch_add and publish it through a
// per-slot sequence word (seqlock discipline): snapshot() re-checks the
// sequence after copying and drops slots that were overwritten mid-copy,
// so a torn read is discarded, never surfaced.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace emap::obs {

/// What kind of moment an event marks; rendered as a stable string in
/// the JSONL dump (see flight_event_type_name).
enum class FlightEventType : std::uint8_t {
  kSpan = 0,          ///< span boundary (window / cloud-call lifecycle)
  kSloMiss,           ///< one observation blew its SLO budget
  kSloBurnPage,       ///< rolling burn rate crossed 1.0 (paging condition)
  kRobustTransition,  ///< degradation state machine moved
  kBreakerOpen,       ///< circuit breaker opened
  kBreakerClose,      ///< circuit breaker closed again
  kFaultVerdict,      ///< fault injector hit a transfer
  kRetry,             ///< cloud-call attempt rejected, retry scheduled
  kShed,              ///< admission control shed a request
  kCheckpoint,        ///< session checkpoint written
  kResume,            ///< run resumed from a checkpoint
  kCrashPoint,        ///< crash point tripped (always the dump's last event)
  kAlert,             ///< alert rule fired or resolved (a=value, b=threshold)
  kStageStall,        ///< supervisor intervention: stall/crash/restart/giveup
};

const char* flight_event_type_name(FlightEventType type);

/// One recorded moment.  POD on purpose: events are copied in and out of
/// the ring without construction, and the label is a bounded char array
/// so logging never allocates.
struct FlightEvent {
  static constexpr std::size_t kLabelCapacity = 48;

  std::uint64_t seq = 0;       ///< global order of the event
  std::uint64_t trace_id = 0;  ///< owning causal chain; 0 = none
  double t_sec = -1.0;         ///< virtual-clock stamp; < 0 = none
  double a = 0.0;              ///< type-specific value (latency, state, ...)
  double b = 0.0;              ///< type-specific value (budget, hint, ...)
  FlightEventType type = FlightEventType::kSpan;
  char label[kLabelCapacity] = {};

  std::string label_view() const;
};

/// Lock-free bounded event ring with JSONL dump-on-trigger.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event; wait-free, never allocates, truncates the label
  /// to kLabelCapacity - 1 characters.  Safe from any thread.
  void log(FlightEventType type, const char* label, double t_sec,
           std::uint64_t trace_id = 0, double a = 0.0, double b = 0.0);

  /// Consistent copy of the surviving events in seq order.  Slots being
  /// overwritten during the copy are skipped (their data lives on in a
  /// newer slot anyway).
  std::vector<FlightEvent> snapshot() const;

  /// Where trigger_dump writes; empty disables dumping (events still
  /// accumulate and snapshot() still works).
  void set_dump_path(std::filesystem::path path);
  const std::filesystem::path& dump_path() const { return dump_path_; }

  /// Dumps the current snapshot as JSONL (one event per line, preceded
  /// by one header line naming the reason).  Returns false when no dump
  /// path is configured or the write failed.  Never throws: this runs
  /// on the crash path.
  bool trigger_dump(const char* reason) noexcept;

  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t total_logged() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dumps_written() const {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // Even = published (value is 2 * (seq + 1)); odd = write in progress.
    std::atomic<std::uint64_t> marker{0};
    FlightEvent event;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::filesystem::path dump_path_;
};

/// Renders one event as a flat JSON object line (the dump format).
std::string flight_event_json(const FlightEvent& event);

}  // namespace emap::obs
