#include "emap/obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"

namespace emap::obs {

void TimeSeriesOptions::validate() const {
  require(scrape_interval_sec > 0.0,
          "TimeSeriesOptions: scrape_interval_sec must be positive");
  require(tier_capacity >= 2,
          "TimeSeriesOptions: tier_capacity must be at least 2");
  require(downsample_factor >= 2,
          "TimeSeriesOptions: downsample_factor must be at least 2");
  require(tier_capacity >= downsample_factor,
          "TimeSeriesOptions: tier_capacity must cover one downsample batch");
}

const char* series_kind_name(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kSample:
      return "sample";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kTierCount = 3;  // raw, 10x, 100x

SeriesBucket merge_buckets(const SeriesBucket* begin,
                           const SeriesBucket* end) {
  SeriesBucket merged = *begin;
  for (const SeriesBucket* bucket = begin + 1; bucket != end; ++bucket) {
    merged.t_end_sec = bucket->t_end_sec;
    merged.min = std::min(merged.min, bucket->min);
    merged.max = std::max(merged.max, bucket->max);
    merged.sum += bucket->sum;
    merged.count += bucket->count;
    merged.last = bucket->last;
  }
  return merged;
}

}  // namespace

Series::Series(std::string key, SeriesKind kind, std::size_t tier_capacity,
               std::size_t downsample_factor)
    : key_(std::move(key)),
      kind_(kind),
      tier_capacity_(tier_capacity),
      downsample_factor_(downsample_factor),
      tiers_(kTierCount) {}

void Series::append(double t_sec, double value) {
  SeriesBucket bucket;
  bucket.t_start_sec = bucket.t_end_sec = t_sec;
  bucket.min = bucket.max = bucket.sum = value;
  bucket.first = bucket.last = value;
  bucket.count = 1;
  tiers_[0].push_back(bucket);
  if (tiers_[0].size() > tier_capacity_) {
    compact_tier(0);
  }
}

void Series::compact_tier(std::size_t tier) {
  // Merge the oldest `downsample_factor` buckets of `tier` into one bucket
  // of the next tier; the coarsest tier instead drops its oldest bucket —
  // that is the retention horizon, and the only place history is lost.
  std::deque<SeriesBucket>& fine = tiers_[tier];
  const std::size_t batch = std::min(downsample_factor_, fine.size());
  std::vector<SeriesBucket> oldest(fine.begin(),
                                   fine.begin() + static_cast<std::ptrdiff_t>(
                                                      batch));
  fine.erase(fine.begin(),
             fine.begin() + static_cast<std::ptrdiff_t>(batch));
  const SeriesBucket merged =
      merge_buckets(oldest.data(), oldest.data() + oldest.size());
  if (tier + 1 >= tiers_.size()) {
    ++dropped_buckets_;
    return;
  }
  tiers_[tier + 1].push_back(merged);
  if (tiers_[tier + 1].size() > tier_capacity_) {
    compact_tier(tier + 1);
  }
}

std::vector<SeriesBucket> Series::buckets() const {
  std::vector<SeriesBucket> all;
  all.reserve(total_buckets());
  for (std::size_t tier = tiers_.size(); tier-- > 0;) {
    all.insert(all.end(), tiers_[tier].begin(), tiers_[tier].end());
  }
  return all;
}

std::vector<SeriesBucket> Series::buckets(double from_sec,
                                          double to_sec) const {
  std::vector<SeriesBucket> selected;
  for (const SeriesBucket& bucket : buckets()) {
    if (bucket.t_end_sec >= from_sec && bucket.t_start_sec <= to_sec) {
      selected.push_back(bucket);
    }
  }
  return selected;
}

std::optional<double> Series::last_value() const {
  for (const std::deque<SeriesBucket>& tier : tiers_) {
    if (!tier.empty() && &tier == &tiers_[0]) {
      return tier.back().last;
    }
  }
  // Raw tier empty (possible only before the first scrape, or never: raw
  // always holds the newest point); fall back across tiers anyway.
  for (std::size_t tier = 0; tier < tiers_.size(); ++tier) {
    if (!tiers_[tier].empty()) {
      return tiers_[tier].back().last;
    }
  }
  return std::nullopt;
}

std::optional<double> Series::last_time_sec() const {
  for (std::size_t tier = 0; tier < tiers_.size(); ++tier) {
    if (!tiers_[tier].empty()) {
      return tiers_[tier].back().t_end_sec;
    }
  }
  return std::nullopt;
}

double Series::rate_over(double window_sec) const {
  const std::vector<SeriesBucket> all = buckets();
  if (all.size() < 2 && (all.empty() || all.front().count < 2)) {
    return 0.0;
  }
  const double now = all.back().t_end_sec;
  const double from = now - window_sec;
  // Walk back to the oldest bucket still inside the window; the increase is
  // newest.last - that bucket's first (counters are monotone, and bucket
  // first/last survive compaction exactly).
  const SeriesBucket* oldest = &all.back();
  for (const SeriesBucket& bucket : all) {
    if (bucket.t_end_sec >= from) {
      oldest = &bucket;
      break;
    }
  }
  // The oldest bucket's first sample sits at its t_start, so the elapsed
  // time matching the (last - first) increase is measured from there —
  // dividing by the nominal window would overstate the rate whenever the
  // window boundary falls inside a compacted bucket.
  const double dt = now - oldest->t_start_sec;
  if (dt <= 0.0) {
    return 0.0;
  }
  return (all.back().last - oldest->first) / dt;
}

double Series::max_over(double window_sec) const {
  const std::vector<SeriesBucket> all = buckets();
  if (all.empty()) {
    return 0.0;
  }
  const double from = all.back().t_end_sec - window_sec;
  double best = all.back().max;
  for (const SeriesBucket& bucket : all) {
    if (bucket.t_end_sec >= from) {
      best = std::max(best, bucket.max);
    }
  }
  return best;
}

double Series::mean_over(double window_sec) const {
  const std::vector<SeriesBucket> all = buckets();
  if (all.empty()) {
    return 0.0;
  }
  const double from = all.back().t_end_sec - window_sec;
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const SeriesBucket& bucket : all) {
    if (bucket.t_end_sec >= from) {
      sum += bucket.sum;
      count += bucket.count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t Series::total_buckets() const {
  std::size_t total = 0;
  for (const std::deque<SeriesBucket>& tier : tiers_) {
    total += tier.size();
  }
  return total;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(options) {
  options_.validate();
}

std::string series_key_for(const std::string& name, const Labels& labels) {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    bool first = true;
    for (const auto& [label, value] : labels) {
      if (!first) {
        key += ',';
      }
      first = false;
      key += label + "=\"" + value + '"';
    }
    key += '}';
  }
  return key;
}

Series& TimeSeriesStore::series_for(const std::string& key,
                                    SeriesKind kind) {
  const auto found = index_.find(key);
  if (found != index_.end()) {
    return series_[found->second];
  }
  index_.emplace(key, series_.size());
  series_.emplace_back(key, kind, options_.tier_capacity,
                       options_.downsample_factor);
  return series_.back();
}

void TimeSeriesStore::scrape(const MetricsRegistry& registry, double t_sec) {
  ++scrapes_;
  for (const MetricEntry* entry : registry.entries()) {
    if (std::find(options_.skip_families.begin(),
                  options_.skip_families.end(),
                  entry->name) != options_.skip_families.end()) {
      continue;
    }
    const std::string key = series_key_for(entry->name, entry->labels);
    switch (entry->kind) {
      case MetricKind::kCounter:
        series_for(key, SeriesKind::kCounter)
            .append(t_sec, static_cast<double>(entry->counter->value()));
        break;
      case MetricKind::kGauge:
        series_for(key, SeriesKind::kGauge)
            .append(t_sec, entry->gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& histogram = *entry->histogram;
        const double sum = histogram.sum();
        const auto count = histogram.count();
        series_for(key + ":count", SeriesKind::kCounter)
            .append(t_sec, static_cast<double>(count));
        series_for(key + ":sum", SeriesKind::kCounter).append(t_sec, sum);
        // Per-interval mean: Δsum/Δcount since the previous scrape; an
        // interval with no observations carries the last mean forward so
        // the series stays aligned with every other series' sample grid.
        HistCursor& cursor = hist_cursors_[key];
        const std::uint64_t delta_count = count - cursor.count;
        if (delta_count > 0) {
          cursor.last_mean =
              (sum - cursor.sum) / static_cast<double>(delta_count);
        }
        cursor.sum = sum;
        cursor.count = count;
        series_for(key + ":mean", SeriesKind::kSample)
            .append(t_sec, cursor.last_mean);
        if (options_.histogram_quantiles) {
          series_for(key + ":p95", SeriesKind::kSample)
              .append(t_sec, histogram.quantile(0.95));
        }
        break;
      }
    }
  }
}

const Series* TimeSeriesStore::find(const std::string& key) const {
  const auto found = index_.find(key);
  return found == index_.end() ? nullptr : &series_[found->second];
}

std::vector<std::string> TimeSeriesStore::keys() const {
  std::vector<std::string> keys;
  keys.reserve(series_.size());
  for (const Series& series : series_) {
    keys.push_back(series.key());
  }
  return keys;
}

std::size_t TimeSeriesStore::total_buckets() const {
  std::size_t total = 0;
  for (const Series& series : series_) {
    total += series.total_buckets();
  }
  return total;
}

std::size_t TimeSeriesStore::bucket_capacity() const {
  // Each tier holds at most tier_capacity buckets, briefly tier_capacity + 1
  // inside append before compaction runs — compaction restores the bound
  // before append returns, so the steady-state cap is exact.
  return series_.size() * kTierCount * options_.tier_capacity;
}

std::size_t TimeSeriesStore::approx_bytes() const {
  return total_buckets() * sizeof(SeriesBucket);
}

std::string TimeSeriesStore::to_jsonl() const {
  std::string out;
  for (const Series& series : series_) {
    const std::vector<SeriesBucket> merged = series.buckets();
    // Tier of a bucket is recoverable from its count, but the report tools
    // want it explicit; recompute by walking the tiers in emit order.
    std::size_t emitted = 0;
    std::vector<std::pair<std::size_t, std::size_t>> tier_runs;
    for (std::size_t tier = series.tier_count(); tier-- > 0;) {
      tier_runs.emplace_back(tier, series.tier_size(tier));
    }
    auto tier_of = [&tier_runs](std::size_t index) {
      for (const auto& [tier, size] : tier_runs) {
        if (index < size) {
          return tier;
        }
        index -= size;
      }
      return std::size_t{0};
    };
    for (const SeriesBucket& bucket : merged) {
      JsonWriter json;
      json.field("series", series.key())
          .field("kind", series_kind_name(series.kind()))
          .field("tier", static_cast<std::uint64_t>(tier_of(emitted)))
          .field("t0", bucket.t_start_sec)
          .field("t1", bucket.t_end_sec)
          .field("min", bucket.min)
          .field("max", bucket.max)
          .field("sum", bucket.sum)
          .field("count", bucket.count)
          .field("first", bucket.first)
          .field("last", bucket.last);
      out += json.str();
      out += '\n';
      ++emitted;
    }
  }
  return out;
}

void TimeSeriesStore::write_jsonl(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  require(static_cast<bool>(stream),
          ("TimeSeriesStore::write_jsonl: cannot open " + path.string())
              .c_str());
  stream << to_jsonl();
}

TimeSeriesScraper::TimeSeriesScraper(const MetricsRegistry* registry,
                                     TimeSeriesStore* store)
    : registry_(registry), store_(store) {
  require(registry_ != nullptr && store_ != nullptr,
          "TimeSeriesScraper: registry and store are required");
  next_due_sec_ = store_->options().scrape_interval_sec;
}

bool TimeSeriesScraper::maybe_scrape(double t_sec) {
  if (t_sec + 1e-12 < next_due_sec_) {
    return false;
  }
  store_->scrape(*registry_, t_sec);
  const double interval = store_->options().scrape_interval_sec;
  // Advance past t_sec by whole intervals: a caller that went quiet for a
  // while produces one catch-up scrape, not a burst of stale ones.
  next_due_sec_ += interval;
  if (next_due_sec_ <= t_sec) {
    next_due_sec_ =
        (std::floor(t_sec / interval) + 1.0) * interval;
  }
  return true;
}

void TimeSeriesScraper::scrape_now(double t_sec) {
  store_->scrape(*registry_, t_sec);
}

}  // namespace emap::obs
