#include "emap/obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>

#include "emap/common/build_info.hpp"
#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/metrics.hpp"

namespace {

// Allocation-attribution target of the current thread.  Plain-POD
// thread_local (no dynamic TLS constructor), so reading it from the global
// operator new is safe at any point of a thread's lifetime; null means "no
// profiled scope active" and costs the interposer one load + branch.
thread_local emap::obs::Profiler::Node* t_alloc_node = nullptr;

inline void count_alloc(std::size_t size) noexcept {
  if (emap::obs::Profiler::Node* node = t_alloc_node) {
    node->alloc_count.fetch_add(1, std::memory_order_relaxed);
    node->alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

// malloc with the standard new-handler retry loop; attribution happens on
// success so a throwing allocation never touches the profiler.
void* counted_alloc(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  for (;;) {
    if (void* p = std::malloc(size)) {
      count_alloc(size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      throw std::bad_alloc();
    }
    handler();
  }
}

}  // namespace

// Global operator new/delete replacement (the allocation interposer of
// satellite docs/telemetry.md "Allocation profiling").  Replacing the
// unaligned family is enough: the aligned overloads keep their defaults,
// which are internally consistent.  delete must pair with the malloc above.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace emap::obs {

std::atomic<bool> Profiler::enabled_flag_{false};

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::ThreadState& Profiler::local_state() {
  // One state per (thread, profiler): the global instance dominates, so the
  // map is almost always a single entry and the lookup stays cheap.
  thread_local std::map<const Profiler*, std::shared_ptr<ThreadState>> states;
  std::shared_ptr<ThreadState>& slot = states[this];
  if (slot == nullptr) {
    slot = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> lock(states_mutex_);
    states_.push_back(slot);
  }
  return *slot;
}

namespace {

void merge_tree(const Profiler::Node& node, const std::string& prefix,
                std::map<std::string, StageProfile>& merged) {
  for (const auto& [key, child] : node.children) {
    (void)key;
    const std::string path =
        prefix.empty() ? child->name : prefix + "/" + child->name;
    StageProfile& stage = merged[path];
    stage.path = path;
    stage.calls += child->calls;
    stage.work += child->work;
    stage.total_sec += static_cast<double>(child->total_ns) * 1e-9;
    stage.self_sec +=
        static_cast<double>(child->total_ns - child->child_ns) * 1e-9;
    stage.alloc_count +=
        child->alloc_count.load(std::memory_order_relaxed);
    stage.alloc_bytes +=
        child->alloc_bytes.load(std::memory_order_relaxed);
    merge_tree(*child, path, merged);
  }
}

}  // namespace

std::vector<StageProfile> Profiler::report() const {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard<std::mutex> lock(states_mutex_);
    states = states_;
  }
  std::map<std::string, StageProfile> merged;
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mutex);
    merge_tree(state->root, "", merged);
  }
  std::vector<StageProfile> stages;
  stages.reserve(merged.size());
  for (auto& [path, stage] : merged) {
    (void)path;
    stages.push_back(std::move(stage));
  }
  return stages;
}

std::string Profiler::to_collapsed_stacks() const {
  std::ostringstream out;
  for (const StageProfile& stage : report()) {
    std::string frames = stage.path;
    std::replace(frames.begin(), frames.end(), '/', ';');
    const auto self_us = static_cast<long long>(
        std::llround(std::max(stage.self_sec, 0.0) * 1e6));
    out << frames << ' ' << std::max(self_us, 1ll) << '\n';
  }
  return out.str();
}

std::string Profiler::to_json() const {
  std::ostringstream out;
  out << "{\"build\":{\"git_sha\":\"" << json_escape(build_info::kGitSha)
      << "\",\"build_type\":\"" << json_escape(build_info::kBuildType)
      << "\",\"compiler\":\"" << json_escape(build_info::kCompiler)
      << "\"},\"stages\":[";
  bool first = true;
  for (const StageProfile& stage : report()) {
    if (!first) {
      out << ',';
    }
    first = false;
    JsonWriter json;
    json.field("path", stage.path)
        .field("calls", stage.calls)
        .field("work", stage.work)
        .field("total_sec", stage.total_sec)
        .field("self_sec", stage.self_sec)
        .field("alloc_count", stage.alloc_count)
        .field("alloc_bytes", stage.alloc_bytes);
    out << json.str();
  }
  out << "]}";
  return out.str();
}

void Profiler::reset() {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard<std::mutex> lock(states_mutex_);
    states = states_;
  }
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mutex);
    // A thread may be inside open scopes during reset; drop the finished
    // numbers but keep the open chain intact so those scopes still close
    // into live nodes.
    struct Walker {
      static void clear(Profiler::Node& node) {
        node.calls = 0;
        node.work = 0;
        node.total_ns = 0;
        node.child_ns = 0;
        node.alloc_count.store(0, std::memory_order_relaxed);
        node.alloc_bytes.store(0, std::memory_order_relaxed);
        for (auto& [key, child] : node.children) {
          (void)key;
          clear(*child);
        }
      }
    };
    Walker::clear(state->root);
  }
}

namespace {

Profiler::Node* enter(Profiler::ThreadState& state, const char* name) {
  std::lock_guard<std::mutex> lock(state.mutex);
  std::unique_ptr<Profiler::Node>& slot =
      state.current->children[static_cast<const void*>(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Profiler::Node>();
    slot->name = name;
    slot->parent = state.current;
  }
  state.current = slot.get();
  return slot.get();
}

}  // namespace

ProfileScope::ProfileScope(const char* name) {
  if (!Profiler::enabled()) {
    return;
  }
  state_ = &Profiler::instance().local_state();
  node_ = enter(*state_, name);
  prev_alloc_node_ = t_alloc_node;
  t_alloc_node = node_;
  started_ = std::chrono::steady_clock::now();
}

ProfileScope::ProfileScope(const char* name, Profiler& profiler) {
  state_ = &profiler.local_state();
  node_ = enter(*state_, name);
  prev_alloc_node_ = t_alloc_node;
  t_alloc_node = node_;
  started_ = std::chrono::steady_clock::now();
}

ProfileScope::~ProfileScope() {
  if (node_ == nullptr) {
    return;
  }
  t_alloc_node = prev_alloc_node_;
  const auto elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started_)
          .count();
  std::lock_guard<std::mutex> lock(state_->mutex);
  node_->calls += 1;
  node_->total_ns += elapsed_ns;
  if (node_->parent != nullptr) {
    node_->parent->child_ns += elapsed_ns;
  }
  state_->current = node_->parent != nullptr ? node_->parent : node_;
}

void ProfileScope::add_work(std::uint64_t count) {
  if (node_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  node_->work += count;
}

namespace {

void write_text(const std::filesystem::path& path, const std::string& text,
                const char* who) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  if (!stream) {
    throw IoError(std::string(who) + ": cannot open " + path.string());
  }
  stream << text;
  if (!stream) {
    throw IoError(std::string(who) + ": write failed for " + path.string());
  }
}

}  // namespace

void write_profile_json(const std::filesystem::path& path,
                        const Profiler& profiler) {
  write_text(path, profiler.to_json() + "\n", "write_profile_json");
}

void write_collapsed_stacks(const std::filesystem::path& path,
                            const Profiler& profiler) {
  write_text(path, profiler.to_collapsed_stacks(), "write_collapsed_stacks");
}

void export_profiler_alloc_metrics(MetricsRegistry& registry,
                                   const Profiler& profiler) {
  for (const StageProfile& stage : profiler.report()) {
    registry
        .gauge("emap_profiler_alloc_count", {{"stage", stage.path}},
               "Heap allocations attributed to the stage (interposed "
               "operator new)")
        .set(static_cast<double>(stage.alloc_count));
    registry
        .gauge("emap_profiler_alloc_bytes", {{"stage", stage.path}},
               "Heap bytes requested by the stage (interposed operator new)")
        .set(static_cast<double>(stage.alloc_bytes));
  }
}

}  // namespace emap::obs
