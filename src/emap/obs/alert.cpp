#include "emap/obs/alert.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/span.hpp"

namespace emap::obs {

const char* alert_rule_kind_name(AlertRuleKind kind) {
  switch (kind) {
    case AlertRuleKind::kThreshold:
      return "threshold";
    case AlertRuleKind::kRate:
      return "rate";
    case AlertRuleKind::kEwma:
      return "ewma";
    case AlertRuleKind::kBurnRate:
      return "burn";
  }
  return "unknown";
}

const char* alert_op_name(AlertOp op) {
  switch (op) {
    case AlertOp::kGt:
      return "gt";
    case AlertOp::kGe:
      return "ge";
    case AlertOp::kLt:
      return "lt";
    case AlertOp::kLe:
      return "le";
  }
  return "unknown";
}

const char* alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "unknown";
}

void AlertRule::validate() const {
  require(!name.empty(), "AlertRule: name must not be empty");
  require(!series.empty(), "AlertRule: series must not be empty");
  require(for_sec >= 0.0, "AlertRule: for_sec must be non-negative");
  if (kind == AlertRuleKind::kRate) {
    require(window_sec > 0.0, "AlertRule: rate window must be positive");
  }
  if (kind == AlertRuleKind::kEwma) {
    require(alpha > 0.0 && alpha <= 1.0,
            "AlertRule: ewma alpha must be in (0, 1]");
    require(sigma > 0.0, "AlertRule: ewma sigma must be positive");
    require(min_delta >= 0.0,
            "AlertRule: ewma min_delta must be non-negative");
  }
}

namespace {

bool compare(AlertOp op, double value, double limit) {
  switch (op) {
    case AlertOp::kGt:
      return value > limit;
    case AlertOp::kGe:
      return value >= limit;
    case AlertOp::kLt:
      return value < limit;
    case AlertOp::kLe:
      return value <= limit;
  }
  return false;
}

}  // namespace

AlertEngine::AlertEngine(std::vector<AlertRule> rules, Hooks hooks)
    : rules_(std::move(rules)), status_(rules_.size()), hooks_(hooks) {
  for (const AlertRule& rule : rules_) {
    rule.validate();
  }
}

AlertEngine::RuleEval AlertEngine::evaluate_rule(std::size_t rule_index,
                                                 const TimeSeriesStore& store) {
  const AlertRule& rule = rules_[rule_index];
  AlertRuleStatus& status = status_[rule_index];
  RuleEval eval;
  const Series* series = store.find(rule.series);
  if (series == nullptr) {
    return eval;  // watched series not scraped yet: never a breach
  }
  const std::optional<double> last = series->last_value();
  if (!last.has_value()) {
    return eval;
  }
  eval.has_value = true;
  switch (rule.kind) {
    case AlertRuleKind::kThreshold:
    case AlertRuleKind::kBurnRate:
      eval.value = *last;
      eval.threshold = rule.value;
      eval.breached = compare(rule.op, eval.value, eval.threshold);
      break;
    case AlertRuleKind::kRate:
      eval.value = series->rate_over(rule.window_sec);
      eval.threshold = rule.value;
      eval.breached = compare(rule.op, eval.value, eval.threshold);
      break;
    case AlertRuleKind::kEwma: {
      eval.value = *last;
      if (status.ewma_samples == 0) {
        status.ewma_mean = eval.value;
        status.ewma_var = 0.0;
        status.ewma_samples = 1;
        eval.threshold = 0.0;
        break;
      }
      const double deviation = eval.value - status.ewma_mean;
      const double stddev = std::sqrt(status.ewma_var);
      eval.threshold =
          std::max(rule.sigma * stddev, rule.min_delta);
      const bool warmed = status.ewma_samples >= rule.warmup;
      const double magnitude = std::fabs(deviation);
      bool directional = true;
      if (rule.op == AlertOp::kGt || rule.op == AlertOp::kGe) {
        directional = deviation > 0.0;
      } else {
        directional = deviation < 0.0;
      }
      eval.breached =
          warmed && directional && magnitude > eval.threshold;
      // Mean adapts to every sample so a sustained level shift becomes
      // the new normal (and the alert resolves); variance learns only
      // from in-band samples so one outburst cannot widen the band and
      // mask itself.
      status.ewma_mean += rule.alpha * deviation;
      if (!eval.breached) {
        status.ewma_var =
            (1.0 - rule.alpha) *
            (status.ewma_var + rule.alpha * deviation * deviation);
      }
      ++status.ewma_samples;
      break;
    }
  }
  return eval;
}

void AlertEngine::transition(std::size_t rule_index, double t_sec,
                             bool firing, const RuleEval& eval,
                             std::uint64_t trace_id) {
  const AlertRule& rule = rules_[rule_index];
  AlertRuleStatus& status = status_[rule_index];
  AlertTransition record;
  record.rule = rule.name;
  record.series = rule.series;
  record.t_sec = t_sec;
  record.firing = firing;
  record.value = eval.value;
  record.threshold = eval.threshold;
  record.trace_id = trace_id;
  transitions_.push_back(record);
  if (firing) {
    ++status.fired;
  } else {
    ++status.resolved;
  }
  if (hooks_.registry != nullptr) {
    hooks_.registry
        ->counter(firing ? "emap_alerts_fired_total"
                         : "emap_alerts_resolved_total",
                  {{"rule", rule.name}},
                  firing ? "Alert firing transitions"
                         : "Alert resolved transitions")
        .increment();
    // emap_alerts_firing is set once per evaluate() pass, after every
    // rule's state has settled.
  }
  if (hooks_.tracer != nullptr) {
    hooks_.tracer->record_sim(
        std::string("alert:") + rule.name + (firing ? ":fired" : ":resolved"),
        "alert", t_sec, t_sec, 0, trace_id);
  }
  if (hooks_.flight != nullptr) {
    hooks_.flight->log(FlightEventType::kAlert,
                       (rule.name + (firing ? ":fired" : ":resolved")).c_str(),
                       t_sec, trace_id, eval.value, eval.threshold);
    if (firing) {
      hooks_.flight->trigger_dump("alert_firing");
    }
  }
}

std::size_t AlertEngine::evaluate(const TimeSeriesStore& store, double t_sec,
                                  std::uint64_t trace_id) {
  ++evaluations_;
  std::size_t changed = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    AlertRuleStatus& status = status_[i];
    const RuleEval eval = evaluate_rule(i, store);
    if (!eval.has_value) {
      continue;
    }
    status.ever_evaluated = true;
    status.last_value = eval.value;
    status.last_breached = eval.breached;
    if (eval.breached) {
      switch (status.state) {
        case AlertState::kInactive:
          status.pending_since_sec = t_sec;
          if (t_sec - status.pending_since_sec >= rule.for_sec) {
            status.state = AlertState::kFiring;
            transition(i, t_sec, true, eval, trace_id);
            ++changed;
          } else {
            status.state = AlertState::kPending;
          }
          break;
        case AlertState::kPending:
          if (t_sec - status.pending_since_sec >= rule.for_sec) {
            status.state = AlertState::kFiring;
            transition(i, t_sec, true, eval, trace_id);
            ++changed;
          }
          break;
        case AlertState::kFiring:
          break;
      }
    } else {
      if (status.state == AlertState::kFiring) {
        transition(i, t_sec, false, eval, trace_id);
        ++changed;
      }
      status.state = AlertState::kInactive;
    }
  }
  if (hooks_.registry != nullptr) {
    hooks_.registry
        ->counter("emap_alerts_evaluations_total", {},
                  "Alert rule-set evaluations")
        .increment();
    hooks_.registry->gauge("emap_alerts_firing", {}, "Rules currently firing")
        .set(static_cast<double>(firing_count()));
  }
  return changed;
}

std::size_t AlertEngine::firing_count() const {
  std::size_t firing = 0;
  for (const AlertRuleStatus& status : status_) {
    if (status.state == AlertState::kFiring) {
      ++firing;
    }
  }
  return firing;
}

bool AlertEngine::ever_fired(const std::string& rule_name) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].name == rule_name && status_[i].fired > 0) {
      return true;
    }
  }
  return false;
}

std::string AlertEngine::to_jsonl() const {
  std::string out;
  for (const AlertTransition& transition : transitions_) {
    JsonWriter json;
    json.field("rule", transition.rule)
        .field("series", transition.series)
        .field("t_sec", transition.t_sec)
        .field("state", transition.firing ? "firing" : "resolved")
        .field("value", transition.value)
        .field("threshold", transition.threshold)
        .field("trace_id", transition.trace_id);
    out += json.str();
    out += '\n';
  }
  return out;
}

void AlertEngine::write_jsonl(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  require(static_cast<bool>(stream),
          ("AlertEngine::write_jsonl: cannot open " + path.string()).c_str());
  stream << to_jsonl();
}

std::string burn_rate_series_key(const std::string& slo_name) {
  return series_key_for("emap_slo_burn_rate", {{"slo", slo_name}});
}

namespace {

bool parse_op(const std::string& text, AlertOp* op) {
  if (text == "gt") {
    *op = AlertOp::kGt;
  } else if (text == "ge") {
    *op = AlertOp::kGe;
  } else if (text == "lt") {
    *op = AlertOp::kLt;
  } else if (text == "le") {
    *op = AlertOp::kLe;
  } else {
    return false;
  }
  return true;
}

bool parse_kind(const std::string& text, AlertRuleKind* kind) {
  if (text == "threshold") {
    *kind = AlertRuleKind::kThreshold;
  } else if (text == "rate") {
    *kind = AlertRuleKind::kRate;
  } else if (text == "ewma") {
    *kind = AlertRuleKind::kEwma;
  } else if (text == "burn") {
    *kind = AlertRuleKind::kBurnRate;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::vector<AlertRule> parse_alert_rules(const std::string& text,
                                         std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<AlertRule> rules;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "alert rules line " + std::to_string(line_number) + ": " +
               message;
    }
    return rules;
  };
  while (std::getline(lines, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) {
      continue;  // blank / comment-only line
    }
    if (head != "rule") {
      return fail("expected 'rule', got '" + head + "'");
    }
    AlertRule rule;
    std::string kind_text;
    if (!(tokens >> rule.name >> kind_text)) {
      return fail("expected 'rule <name> <kind> ...'");
    }
    if (!parse_kind(kind_text, &rule.kind)) {
      return fail("unknown rule kind '" + kind_text + "'");
    }
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "series") {
          rule.series = value;
        } else if (key == "slo") {
          rule.series = burn_rate_series_key(value);
        } else if (key == "op") {
          if (!parse_op(value, &rule.op)) {
            return fail("unknown op '" + value + "'");
          }
        } else if (key == "value") {
          rule.value = std::stod(value);
        } else if (key == "window") {
          rule.window_sec = std::stod(value);
        } else if (key == "alpha") {
          rule.alpha = std::stod(value);
        } else if (key == "sigma") {
          rule.sigma = std::stod(value);
        } else if (key == "warmup") {
          rule.warmup = static_cast<std::size_t>(std::stoul(value));
        } else if (key == "min_delta") {
          rule.min_delta = std::stod(value);
        } else if (key == "for") {
          rule.for_sec = std::stod(value);
        } else {
          return fail("unknown key '" + key + "'");
        }
      } catch (const std::exception&) {
        return fail("bad number in '" + token + "'");
      }
    }
    if (rule.kind == AlertRuleKind::kBurnRate && rule.value == 0.0) {
      rule.value = 1.0;  // burn rate 1.0 = budget exactly consumed
    }
    if (rule.series.empty()) {
      return fail("rule '" + rule.name + "' names no series (series= or slo=)");
    }
    try {
      rule.validate();
    } catch (const std::exception& bad) {
      return fail(bad.what());
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<AlertRule> load_alert_rules(const std::filesystem::path& path,
                                        std::string* error) {
  std::ifstream stream(path);
  if (!stream) {
    if (error != nullptr) {
      *error = "cannot open alert rules file " + path.string();
    }
    return {};
  }
  std::ostringstream text;
  text << stream.rdbuf();
  return parse_alert_rules(text.str(), error);
}

std::vector<AlertRule> default_alert_rules() {
  const std::string text =
      "# Installed when alerting is enabled without a rule file.\n"
      "rule track_latency_step ewma series=emap_track_step_seconds:mean "
      "alpha=0.1 sigma=4 warmup=30 min_delta=1e-6 for=3\n"
      "rule edge_iteration_burn burn slo=edge_iteration value=1.0 for=5\n"
      "rule initial_response_burn burn slo=initial_response value=1.0 "
      "for=5\n";
  std::string error;
  std::vector<AlertRule> rules = parse_alert_rules(text, &error);
  require(error.empty(), "default_alert_rules: self-parse failed");
  return rules;
}

}  // namespace emap::obs
