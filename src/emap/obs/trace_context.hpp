// Causal trace identity carried across the edge <-> cloud boundary.
//
// A TraceContext names the causal chain a message or span belongs to: a
// 64-bit trace id (one per pipeline window) plus the span id of the
// parent on the originating side.  Trace ids are minted deterministically
// from a per-run seed and the window index, so two runs with the same
// seed produce the same ids and the bit-identity tests survive with
// tracing enabled.  trace_id == 0 means "no trace" — the wire codec
// falls back to the context-free V1 encoding for such messages.
#pragma once

#include <cstdint>
#include <string>

namespace emap::obs {

/// Seed used when the caller does not pick one ("EMAPtrc" + version).
inline constexpr std::uint64_t kDefaultTraceSeed = 0x454d41507472'6331ull;

/// Identity of one causal chain plus the parent span on the sender side.
struct TraceContext {
  std::uint64_t trace_id = 0;     ///< 0 = untraced
  std::uint64_t parent_span = 0;  ///< span id on the originating side

  bool valid() const { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Deterministic per-window trace id: a splitmix64-style mix of the run
/// seed and the window index.  Never returns 0 (0 is the "untraced"
/// sentinel), and distinct windows under one seed get distinct ids.
std::uint64_t mint_trace_id(std::uint64_t seed, std::uint64_t window_index);

/// Fixed-width lowercase hex rendering (16 chars), the form used in the
/// span/flight JSONL exports; 64-bit ids do not survive a double-typed
/// JSON number field.
std::string trace_id_hex(std::uint64_t trace_id);

/// Inverse of trace_id_hex; returns 0 on malformed input (fail closed —
/// 0 is the untraced sentinel, so bad ids simply group nowhere).
std::uint64_t parse_trace_id_hex(const std::string& hex);

}  // namespace emap::obs
