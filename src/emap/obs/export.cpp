#include "emap/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "emap/common/error.hpp"
#include "emap/obs/trace_context.hpp"

namespace emap::obs {
namespace {

/// Shortest round-trippable decimal form of a double (JSON-safe: non-finite
/// values become null at the JsonWriter layer, "+Inf" at Prometheus).
std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string prometheus_value(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  return format_double(value);
}

std::string prometheus_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    if (c == '\\' || c == '"') {
      escaped += '\\';
      escaped += c;
    } else if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped += c;
    }
  }
  return escaped;
}

std::string label_block(const Labels& labels) {
  std::string block;
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (key.empty()) {
      continue;  // a nameless label cannot be represented; drop it
    }
    block += first ? '{' : ',';
    first = false;
    block += prometheus_sanitize_name(key, /*is_label=*/true) + "=\"" +
             prometheus_escape(value) + "\"";
  }
  if (!block.empty()) {
    block += '}';
  }
  return block;
}

/// `labels` plus one extra pair (for histogram `le` bounds).
std::string label_block_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return label_block(extended);
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string prometheus_sanitize_name(const std::string& name,
                                     bool is_label) {
  if (name.empty()) {
    return "_";
  }
  std::string sanitized;
  sanitized.reserve(name.size() + 1);
  for (char c : name) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    const bool legal =
        alpha || digit || c == '_' || (c == ':' && !is_label);
    sanitized += legal ? c : '_';
  }
  if (sanitized.front() >= '0' && sanitized.front() <= '9') {
    sanitized.insert(sanitized.begin(), '_');
  }
  return sanitized;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  // Group label variants of one family together before emitting: entries
  // arrive in registration order, where variants of a family need not be
  // contiguous (e.g. a second label value created many metrics later), and
  // the exposition format allows exactly one # HELP/# TYPE per family.
  std::vector<std::vector<const MetricEntry*>> families;
  for (const MetricEntry* entry : registry.entries()) {
    auto match = std::find_if(families.begin(), families.end(),
                              [entry](const auto& family) {
                                return family.front()->name == entry->name;
                              });
    if (match == families.end()) {
      families.push_back({entry});
    } else {
      match->push_back(entry);
    }
  }

  std::ostringstream out;
  for (const auto& family : families) {
    const std::string name = prometheus_sanitize_name(family.front()->name);
    const std::string* help = nullptr;
    for (const MetricEntry* entry : family) {
      if (!entry->help.empty()) {
        help = &entry->help;
        break;
      }
    }
    if (help != nullptr) {
      out << "# HELP " << name << ' ' << prometheus_escape(*help) << '\n';
    }
    out << "# TYPE " << name << ' ' << kind_name(family.front()->kind)
        << '\n';
    for (const MetricEntry* entry : family) {
      const std::string labels = label_block(entry->labels);
      switch (entry->kind) {
        case MetricKind::kCounter:
          out << name << labels << ' ' << entry->counter->value() << '\n';
          break;
        case MetricKind::kGauge:
          out << name << labels << ' '
              << prometheus_value(entry->gauge->value()) << '\n';
          break;
        case MetricKind::kHistogram: {
          const Histogram& histogram = *entry->histogram;
          // Cumulative buckets; only populated bounds are emitted (a
          // sparse but valid exposition — `le` bounds stay cumulative).
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
            const std::uint64_t in_bucket = histogram.bucket_count(i);
            if (in_bucket == 0) {
              continue;
            }
            cumulative += in_bucket;
            out << name << "_bucket"
                << label_block_with(entry->labels, "le",
                                    format_double(histogram.bounds()[i]))
                << ' ' << cumulative << '\n';
          }
          out << name << "_bucket"
              << label_block_with(entry->labels, "le", "+Inf") << ' '
              << histogram.count() << '\n';
          out << name << "_sum" << labels << ' '
              << prometheus_value(histogram.sum()) << '\n';
          out << name << "_count" << labels << ' ' << histogram.count()
              << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

void write_prometheus(const std::filesystem::path& path,
                      const MetricsRegistry& registry) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  require(static_cast<bool>(stream),
          ("write_prometheus: cannot open " + path.string()).c_str());
  stream << to_prometheus(registry);
}

std::string metrics_table(const MetricsRegistry& registry) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-38s %-28s %-9s %12s %12s %12s %12s\n",
                "metric", "labels", "type", "count/value", "mean", "p50",
                "p95");
  out << line;
  out << std::string(129, '-') << '\n';
  for (const MetricEntry* entry : registry.entries()) {
    std::string labels;
    for (const auto& [key, value] : entry->labels) {
      if (!labels.empty()) {
        labels += ',';
      }
      labels += key + "=" + value;
    }
    switch (entry->kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line),
                      "%-38s %-28s %-9s %12llu %12s %12s %12s\n",
                      entry->name.c_str(), labels.c_str(), "counter",
                      static_cast<unsigned long long>(
                          entry->counter->value()),
                      "-", "-", "-");
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line),
                      "%-38s %-28s %-9s %12.6g %12s %12s %12s\n",
                      entry->name.c_str(), labels.c_str(), "gauge",
                      entry->gauge->value(), "-", "-", "-");
        break;
      case MetricKind::kHistogram: {
        const Histogram& histogram = *entry->histogram;
        std::snprintf(line, sizeof(line),
                      "%-38s %-28s %-9s %12llu %12.6g %12.6g %12.6g\n",
                      entry->name.c_str(), labels.c_str(), "histogram",
                      static_cast<unsigned long long>(histogram.count()),
                      histogram.mean(), histogram.quantile(0.5),
                      histogram.quantile(0.95));
        break;
      }
    }
    out << line;
  }
  return out.str();
}

namespace {

/// Stable track order: the Fig. 9 rows first, then first-seen categories.
std::vector<std::string> trace_tracks(const std::vector<SpanRecord>& spans) {
  std::vector<std::string> tracks = {
      "sample",   "filter",     "upload",     "cloud-search",
      "download", "edge-track", "prediction",
  };
  for (const auto& span : spans) {
    if (std::find(tracks.begin(), tracks.end(), span.category) ==
        tracks.end()) {
      tracks.push_back(span.category);
    }
  }
  return tracks;
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer) {
  const auto spans = tracer.spans();
  const auto tracks = trace_tracks(spans);
  auto tid_of = [&tracks](const std::string& category) {
    const auto it = std::find(tracks.begin(), tracks.end(), category);
    return static_cast<std::size_t>(it - tracks.begin()) + 1;
  };

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << (i + 1) << ",\"args\":{\"name\":\"" << json_escape(tracks[i])
        << "\"}}";
    out << ",{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":"
        << (i + 1) << ",\"args\":{\"sort_index\":" << (i + 1) << "}}";
  }
  for (const auto& span : spans) {
    const bool simulated = span.sim_start_sec >= 0.0;
    const double ts_us =
        simulated ? span.sim_start_sec * 1e6 : span.wall_start_us;
    const double dur_us =
        simulated ? span.sim_dur_sec * 1e6 : span.wall_dur_us;
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category) << "\",\"ph\":\"X\",\"pid\":1,"
        << "\"tid\":" << tid_of(span.category) << ",\"ts\":"
        << format_double(ts_us) << ",\"dur\":" << format_double(dur_us)
        << ",\"args\":{\"span_id\":" << span.id << ",\"parent\":"
        << span.parent << ",\"trace_id\":\"" << trace_id_hex(span.trace_id)
        << "\",\"clock\":\"" << (simulated ? "sim" : "wall") << "\"}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

void write_chrome_trace(const std::filesystem::path& path,
                        const Tracer& tracer) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  require(static_cast<bool>(stream),
          ("write_chrome_trace: cannot open " + path.string()).c_str());
  stream << to_chrome_trace(tracer) << '\n';
}

sim::TimelineTrace timeline_view(const Tracer& tracer) {
  sim::TimelineTrace trace;
  for (const auto& span : tracer.spans()) {
    if (span.sim_start_sec < 0.0) {
      continue;  // wall-only span: no place on the virtual timeline
    }
    for (sim::ActivityKind kind :
         {sim::ActivityKind::kSample, sim::ActivityKind::kFilter,
          sim::ActivityKind::kUpload, sim::ActivityKind::kCloudSearch,
          sim::ActivityKind::kDownload, sim::ActivityKind::kEdgeTrack,
          sim::ActivityKind::kPrediction}) {
      if (span.category == sim::activity_name(kind)) {
        trace.record(kind, span.sim_start_sec,
                     span.sim_start_sec + span.sim_dur_sec,
                     span.name == span.category ? std::string{} : span.name);
        break;
      }
    }
  }
  return trace;
}

std::string span_json(const SpanRecord& span) {
  JsonWriter writer;
  writer.field("span_id", span.id);
  writer.field("parent", span.parent);
  writer.field("trace_id", trace_id_hex(span.trace_id));
  writer.field("name", span.name);
  writer.field("category", span.category);
  writer.field("sim_start_sec", span.sim_start_sec);
  writer.field("sim_dur_sec", span.sim_dur_sec);
  writer.field("wall_start_us", span.wall_start_us);
  writer.field("wall_dur_us", span.wall_dur_us);
  return writer.str();
}

void write_spans_jsonl(const std::filesystem::path& path,
                       const Tracer& tracer) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  require(static_cast<bool>(stream),
          ("write_spans_jsonl: cannot open " + path.string()).c_str());
  for (const auto& span : tracer.spans()) {
    stream << span_json(span) << '\n';
  }
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += static_cast<char>(c);
        }
    }
  }
  return escaped;
}

void JsonWriter::begin_field(const std::string& key) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"' + json_escape(key) + "\":";
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  begin_field(key);
  body_ += std::isfinite(value) ? format_double(value) : "null";
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::uint64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key,
                              const std::string& value) {
  begin_field(key);
  body_ += '"' + json_escape(value) + '"';
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const char* value) {
  return field(key, std::string(value != nullptr ? value : ""));
}

JsonWriter& JsonWriter::field(const std::string& key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const { return '{' + body_ + '}'; }

void append_jsonl_line(const std::filesystem::path& path,
                       const std::string& line) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path, std::ios::app);
  require(static_cast<bool>(stream),
          ("append_jsonl_line: cannot open " + path.string()).c_str());
  stream << line << '\n';
}

}  // namespace emap::obs
