// Telemetry exporters.
//
// Three wire formats out of one span log + one metric registry:
//  - Chrome trace_event JSON (open in chrome://tracing or ui.perfetto.dev)
//    with one named track per span category, mirroring the Fig. 9 rows;
//  - Prometheus text exposition (counters, gauges, cumulative histogram
//    buckets with only the populated `le` bounds emitted);
//  - compact JSONL records for run-summary / bench-trajectory files.
// Plus an aligned human-readable end-of-run table and the
// sim::TimelineTrace view that makes the legacy ASCII Gantt a projection
// of the span log.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "emap/obs/metrics.hpp"
#include "emap/obs/span.hpp"
#include "emap/sim/trace.hpp"

namespace emap::obs {

/// Chrome trace_event JSON of the span log.  Spans with a virtual-clock
/// stamp are placed at their SimTime (µs scale); wall-only spans at their
/// wall offset.  Categories become named tracks via thread_name metadata.
std::string to_chrome_trace(const Tracer& tracer);
void write_chrome_trace(const std::filesystem::path& path,
                        const Tracer& tracer);

/// Coerces `name` into a legal Prometheus identifier: metric names match
/// [a-zA-Z_:][a-zA-Z0-9_:]*, label names the same minus the colons.
/// Illegal characters are replaced with '_', a leading digit gains a '_'
/// prefix, and an empty name collapses to "_".
std::string prometheus_sanitize_name(const std::string& name,
                                     bool is_label = false);

/// Prometheus text-exposition format (version 0.0.4) of the registry.
/// Metric and label names are sanitized via prometheus_sanitize_name;
/// labels whose key is empty are dropped rather than emitted.
std::string to_prometheus(const MetricsRegistry& registry);
void write_prometheus(const std::filesystem::path& path,
                      const MetricsRegistry& registry);

/// Aligned human-readable table of every registered metric (the
/// `--metrics-dump` end-of-run view).
std::string metrics_table(const MetricsRegistry& registry);

/// Legacy Fig. 9 timeline as a view over the span log: every span whose
/// category names a sim::ActivityKind row and carries a SimTime stamp
/// becomes one activity, in span order.
sim::TimelineTrace timeline_view(const Tracer& tracer);

/// One span as a flat JSON object line.  The machine-readable sibling of
/// the Chrome trace: `tools/tracecat` and `emapctl trace` reconstruct
/// per-window critical paths from these lines.  trace_id is emitted as a
/// 16-char hex string (64-bit ids do not survive a JSON double).
std::string span_json(const SpanRecord& span);

/// Writes the whole span log as JSONL, one span_json line per span.
void write_spans_jsonl(const std::filesystem::path& path,
                       const Tracer& tracer);

/// Minimal flat-object JSON writer for the JSONL run-summary format.
class JsonWriter {
 public:
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, std::uint64_t value);
  JsonWriter& field(const std::string& key, const std::string& value);
  /// Without this overload a string literal would silently pick the bool
  /// overload (pointer -> bool is a standard conversion; const char* ->
  /// std::string is user-defined and loses).
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, bool value);

  /// The accumulated object as one `{...}` line (no trailing newline).
  std::string str() const;

 private:
  void begin_field(const std::string& key);
  std::string body_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

/// Appends `line` + '\n' to `path`, creating parent directories as needed.
void append_jsonl_line(const std::filesystem::path& path,
                       const std::string& line);

}  // namespace emap::obs
