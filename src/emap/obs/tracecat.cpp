#include "emap/obs/tracecat.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/trace_context.hpp"

namespace emap::obs {

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
}

/// Parses a JSON string (cursor on the opening quote); false on truncation
/// or a bad escape.
bool parse_json_string(const std::string& s, std::size_t& i,
                       std::string& out) {
  if (i >= s.size() || s[i] != '"') {
    return false;
  }
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) {
        return false;
      }
      const char esc = s[++i];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (i + 4 >= s.size()) {
            return false;
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[++i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writers only ever escape control characters; anything
          // beyond ASCII degrades to '?' rather than growing a UTF-8
          // encoder here.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return false;
      }
      ++i;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return false;  // ran off the end inside the string
}

double to_double(const std::map<std::string, std::string>& fields,
                 const char* key, double fallback) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : std::atof(it->second.c_str());
}

std::uint64_t to_u64(const std::map<std::string, std::string>& fields,
                     const char* key) {
  const auto it = fields.find(key);
  return it == fields.end()
             ? 0
             : std::strtoull(it->second.c_str(), nullptr, 10);
}

std::string to_string(const std::map<std::string, std::string>& fields,
                      const char* key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

}  // namespace

bool parse_flat_json(const std::string& line,
                     std::map<std::string, std::string>& fields) {
  fields.clear();
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') {
    return false;
  }
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
    skip_ws(line, i);
    return i == line.size();
  }
  while (true) {
    skip_ws(line, i);
    std::string key;
    if (!parse_json_string(line, i, key)) {
      return false;
    }
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') {
      return false;
    }
    ++i;
    skip_ws(line, i);
    if (i >= line.size()) {
      return false;
    }
    std::string value;
    if (line[i] == '"') {
      if (!parse_json_string(line, i, value)) {
        return false;
      }
    } else if (line[i] == '{' || line[i] == '[') {
      return false;  // flat objects only
    } else {
      // Bare token: number / true / false / null, up to ',' or '}'.
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        ++i;
      }
      value = line.substr(start, i - start);
      while (!value.empty() &&
             (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) {
        return false;
      }
    }
    fields[key] = std::move(value);
    skip_ws(line, i);
    if (i >= line.size()) {
      return false;
    }
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      skip_ws(line, i);
      return i == line.size();
    }
    return false;
  }
}

SpanLoadResult load_spans_jsonl(const std::filesystem::path& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw IoError("tracecat: cannot open span log " + path.string());
  }
  SpanLoadResult result;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::map<std::string, std::string> fields;
    if (!parse_flat_json(line, fields) || !fields.count("span_id") ||
        !fields.count("name")) {
      ++result.skipped_lines;
      continue;
    }
    ParsedSpan span;
    span.span_id = to_u64(fields, "span_id");
    span.parent = to_u64(fields, "parent");
    span.trace_id = parse_trace_id_hex(to_string(fields, "trace_id"));
    span.name = to_string(fields, "name");
    span.category = to_string(fields, "category");
    span.sim_start_sec = to_double(fields, "sim_start_sec", -1.0);
    span.sim_dur_sec = to_double(fields, "sim_dur_sec", 0.0);
    result.spans.push_back(std::move(span));
  }
  return result;
}

FlightLoadResult load_flight_jsonl(const std::filesystem::path& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw IoError("tracecat: cannot open flight dump " + path.string());
  }
  FlightLoadResult result;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::map<std::string, std::string> fields;
    if (!parse_flat_json(line, fields)) {
      ++result.skipped_lines;
      continue;
    }
    if (fields.count("flight_dump")) {
      result.dump_reason = to_string(fields, "flight_dump");
      continue;
    }
    if (!fields.count("seq") || !fields.count("type")) {
      ++result.skipped_lines;
      continue;
    }
    ParsedFlightEvent event;
    event.seq = to_u64(fields, "seq");
    event.type = to_string(fields, "type");
    event.label = to_string(fields, "label");
    event.t_sec = to_double(fields, "t_sec", -1.0);
    event.trace_id = parse_trace_id_hex(to_string(fields, "trace_id"));
    event.a = to_double(fields, "a", 0.0);
    event.b = to_double(fields, "b", 0.0);
    result.events.push_back(std::move(event));
  }
  return result;
}

std::vector<TraceCriticalPath> build_critical_paths(
    const std::vector<ParsedSpan>& spans,
    const std::vector<ParsedFlightEvent>& events) {
  std::map<std::uint64_t, TraceCriticalPath> by_trace;
  for (const ParsedSpan& span : spans) {
    if (span.trace_id == 0) {
      continue;
    }
    TraceCriticalPath& path = by_trace[span.trace_id];
    path.trace_id = span.trace_id;
    ++path.spans;
    if (span.category == "window") {
      // Root span: window_<index>, covering [index, index + 1).
      path.window_start_sec = span.sim_start_sec;
      if (span.name.rfind("window_", 0) == 0) {
        path.window_index = std::atoll(span.name.c_str() + 7);
      }
      path.has_edge = true;
    } else if (span.category == "upload") {
      path.uplink_sec += span.sim_dur_sec;
      path.has_edge = true;
    } else if (span.category == "download") {
      path.downlink_sec += span.sim_dur_sec;
      path.has_edge = true;
    } else if (span.category == "cloud-search" ||
               (span.category == "cloud" && span.name == "cloud_scan")) {
      path.scan_sec += span.sim_dur_sec;
      path.has_cloud = true;
    } else if (span.category == "cloud" && span.name == "queue_wait") {
      path.queue_sec += span.sim_dur_sec;
      path.has_cloud = true;
    } else if (span.category == "retry") {
      path.retry_sec += span.sim_dur_sec;
      path.has_edge = true;
    } else if (span.category == "edge-track" ||
               span.category == "prediction" ||
               span.category == "filter") {
      path.edge_sec += span.sim_dur_sec;
      path.has_edge = true;
    } else if (span.category == "sample" || span.category == "cloud-call" ||
               span.category == "robust" || span.category == "recovery") {
      path.has_edge = true;  // edge-side bookkeeping; no latency leg
    }
  }
  for (const ParsedFlightEvent& event : events) {
    if (event.trace_id == 0) {
      continue;
    }
    const auto it = by_trace.find(event.trace_id);
    if (it != by_trace.end()) {
      ++it->second.flight_events;
    }
  }
  std::vector<TraceCriticalPath> paths;
  paths.reserve(by_trace.size());
  for (auto& [trace_id, path] : by_trace) {
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end(),
            [](const TraceCriticalPath& a, const TraceCriticalPath& b) {
              const bool a_known = a.window_index >= 0;
              const bool b_known = b.window_index >= 0;
              if (a_known != b_known) {
                return a_known;  // unknown windows sort last
              }
              if (a.window_index != b.window_index) {
                return a.window_index < b.window_index;
              }
              return a.trace_id < b.trace_id;
            });
  return paths;
}

std::string critical_path_table(
    const std::vector<TraceCriticalPath>& paths) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-8s %-16s %9s %9s %9s %9s %9s %9s %9s %6s %6s\n", "window",
                "trace_id", "uplink", "queue", "scan", "downlink", "initial",
                "edge", "retry", "spans", "events");
  out << line;
  TraceCriticalPath total;
  std::size_t complete = 0;
  for (const TraceCriticalPath& path : paths) {
    char window[24];
    if (path.window_index >= 0) {
      std::snprintf(window, sizeof(window), "%lld",
                    static_cast<long long>(path.window_index));
    } else {
      std::snprintf(window, sizeof(window), "?");
    }
    std::snprintf(line, sizeof(line),
                  "%-8s %-16s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f "
                  "%6zu %6zu\n",
                  window, trace_id_hex(path.trace_id).c_str(),
                  path.uplink_sec, path.queue_sec, path.scan_sec,
                  path.downlink_sec, path.initial_response_sec(),
                  path.edge_sec, path.retry_sec, path.spans,
                  path.flight_events);
    out << line;
    total.uplink_sec += path.uplink_sec;
    total.queue_sec += path.queue_sec;
    total.scan_sec += path.scan_sec;
    total.downlink_sec += path.downlink_sec;
    total.edge_sec += path.edge_sec;
    total.retry_sec += path.retry_sec;
    total.spans += path.spans;
    total.flight_events += path.flight_events;
    if (path.complete()) {
      ++complete;
    }
  }
  std::snprintf(line, sizeof(line),
                "%-8s %-16s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f "
                "%6zu %6zu\n",
                "total", "-", total.uplink_sec, total.queue_sec,
                total.scan_sec, total.downlink_sec,
                total.initial_response_sec(), total.edge_sec,
                total.retry_sec, total.spans, total.flight_events);
  out << line;
  std::snprintf(line, sizeof(line),
                "%zu traces (%zu complete edge+cloud)\n", paths.size(),
                complete);
  out << line;
  return out.str();
}

std::string critical_path_jsonl(
    const std::vector<TraceCriticalPath>& paths) {
  std::ostringstream out;
  for (const TraceCriticalPath& path : paths) {
    JsonWriter json;
    json.field("trace_id", trace_id_hex(path.trace_id))
        .field("window",
               static_cast<double>(path.window_index))
        .field("uplink_sec", path.uplink_sec)
        .field("queue_sec", path.queue_sec)
        .field("scan_sec", path.scan_sec)
        .field("downlink_sec", path.downlink_sec)
        .field("initial_response_sec", path.initial_response_sec())
        .field("edge_sec", path.edge_sec)
        .field("retry_sec", path.retry_sec)
        .field("spans", static_cast<std::uint64_t>(path.spans))
        .field("flight_events",
               static_cast<std::uint64_t>(path.flight_events))
        .field("complete", path.complete());
    out << json.str() << '\n';
  }
  return out.str();
}

}  // namespace emap::obs
