#include "emap/obs/slo.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "emap/common/build_info.hpp"
#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"

namespace emap::obs {

SloSpec edge_iteration_slo() {
  SloSpec spec;
  spec.name = "edge_iteration";
  spec.budget_sec = 1.0;  // one 256-sample window at 256 Hz
  return spec;
}

SloSpec initial_response_slo() {
  SloSpec spec;
  spec.name = "initial_response";
  spec.budget_sec = 3.0;  // Eq. 4: Delta_EC + Delta_CS + Delta_CE
  return spec;
}

SloMonitor::SloMonitor(SloSpec spec, MetricsRegistry* registry)
    : spec_(std::move(spec)),
      latency_(Histogram::default_latency_bounds()),
      recent_miss_(spec_.burn_window > 0 ? spec_.burn_window : 1, false) {
  if (registry != nullptr) {
    const Labels labels = {{"slo", spec_.name}};
    observations_metric_ =
        &registry->counter("emap_slo_observations_total", labels,
                           "Latency observations classified against the SLO");
    miss_metric_ =
        &registry->counter("emap_slo_deadline_miss_total", labels,
                           "Observations that exceeded the SLO budget");
    near_miss_metric_ = &registry->counter(
        "emap_slo_near_miss_total", labels,
        "Observations within budget but above the near-miss band");
    burn_metric_ =
        &registry->gauge("emap_slo_burn_rate", labels,
                         "Rolling miss rate over the error budget (1=at "
                         "target, >1=violating)");
    budget_metric_ = &registry->gauge("emap_slo_budget_seconds", labels,
                                      "SLO latency budget");
    budget_metric_->set(spec_.budget_sec);
    latency_metric_ = &registry->histogram(
        "emap_slo_latency_seconds", labels,
        Histogram::default_latency_bounds(),
        "Latency observations measured against the SLO");
  }
}

void SloMonitor::observe(double latency_sec) {
  observations_ += 1;
  latency_.observe(latency_sec);
  if (latency_sec > max_latency_sec_) {
    max_latency_sec_ = latency_sec;
  }
  const bool miss = latency_sec > spec_.budget_sec;
  const bool near =
      !miss && latency_sec > spec_.near_miss_fraction * spec_.budget_sec;
  if (miss) {
    deadline_misses_ += 1;
  }
  if (near) {
    near_misses_ += 1;
  }

  // Rolling window: replace the oldest flag with this one.
  if (recent_count_ == recent_miss_.size()) {
    recent_misses_ -= recent_miss_[recent_next_] ? 1u : 0u;
  } else {
    recent_count_ += 1;
  }
  recent_miss_[recent_next_] = miss;
  recent_misses_ += miss ? 1u : 0u;
  recent_next_ = (recent_next_ + 1) % recent_miss_.size();

  if (observations_metric_ != nullptr) {
    observations_metric_->increment();
    if (miss) {
      miss_metric_->increment();
    }
    if (near) {
      near_miss_metric_->increment();
    }
    latency_metric_->observe(latency_sec);
    burn_metric_->set(burn_rate());
  }
}

double SloMonitor::burn_rate() const {
  if (recent_count_ == 0) {
    return 0.0;
  }
  const double error_budget = 1.0 - spec_.target;
  const double rolling_miss_rate =
      static_cast<double>(recent_misses_) / static_cast<double>(recent_count_);
  if (error_budget <= 0.0) {
    // target == 1: any miss is an infinite burn; report misses directly
    // scaled so healthy() still reads "no miss in the window".
    return rolling_miss_rate > 0.0 ? std::numeric_limits<double>::infinity()
                                   : 0.0;
  }
  return rolling_miss_rate / error_budget;
}

SloMonitorState SloMonitor::save_state() const {
  SloMonitorState state;
  state.observations = observations_;
  state.deadline_misses = deadline_misses_;
  state.near_misses = near_misses_;
  state.max_latency_sec = max_latency_sec_;
  state.recent_miss.reserve(recent_miss_.size());
  for (const bool miss : recent_miss_) {
    state.recent_miss.push_back(miss ? 1u : 0u);
  }
  state.recent_next = recent_next_;
  state.recent_count = recent_count_;
  state.recent_misses = recent_misses_;
  return state;
}

void SloMonitor::restore_state(const SloMonitorState& state) {
  require(state.recent_miss.size() == recent_miss_.size() &&
              state.recent_next < recent_miss_.size() &&
              state.recent_count <= recent_miss_.size() &&
              state.recent_misses <= state.recent_count,
          "SloMonitor::restore_state: state does not match this monitor");
  observations_ = state.observations;
  deadline_misses_ = state.deadline_misses;
  near_misses_ = state.near_misses;
  max_latency_sec_ = state.max_latency_sec;
  for (std::size_t i = 0; i < recent_miss_.size(); ++i) {
    recent_miss_[i] = state.recent_miss[i] != 0;
  }
  recent_next_ = static_cast<std::size_t>(state.recent_next);
  recent_count_ = static_cast<std::size_t>(state.recent_count);
  recent_misses_ = static_cast<std::size_t>(state.recent_misses);
  if (burn_metric_ != nullptr) {
    burn_metric_->set(burn_rate());
  }
}

SloSummary SloMonitor::summary() const {
  SloSummary out;
  out.name = spec_.name;
  out.budget_sec = spec_.budget_sec;
  out.target = spec_.target;
  out.observations = observations_;
  out.deadline_misses = deadline_misses_;
  out.near_misses = near_misses_;
  out.miss_rate = observations_ > 0 ? static_cast<double>(deadline_misses_) /
                                          static_cast<double>(observations_)
                                    : 0.0;
  out.burn_rate = burn_rate();
  out.max_latency_sec = max_latency_sec_;
  out.p50_latency_sec = latency_.quantile(0.50);
  out.p99_latency_sec = latency_.quantile(0.99);
  return out;
}

std::string slo_report_json(const std::vector<SloSummary>& summaries) {
  std::ostringstream out;
  out << "{\"build\":{\"git_sha\":\"" << json_escape(build_info::kGitSha)
      << "\",\"build_type\":\"" << json_escape(build_info::kBuildType)
      << "\",\"compiler\":\"" << json_escape(build_info::kCompiler)
      << "\"},\"slos\":[";
  bool first = true;
  for (const SloSummary& slo : summaries) {
    if (!first) {
      out << ',';
    }
    first = false;
    JsonWriter json;
    json.field("slo", slo.name)
        .field("budget_sec", slo.budget_sec)
        .field("target", slo.target)
        .field("observations", slo.observations)
        .field("deadline_misses", slo.deadline_misses)
        .field("near_misses", slo.near_misses)
        .field("miss_rate", slo.miss_rate)
        .field("burn_rate", slo.burn_rate)
        .field("max_latency_sec", slo.max_latency_sec)
        .field("p50_latency_sec", slo.p50_latency_sec)
        .field("p99_latency_sec", slo.p99_latency_sec);
    out << json.str();
  }
  out << "]}";
  return out.str();
}

std::string slo_report_csv(const std::vector<SloSummary>& summaries) {
  std::ostringstream out;
  out << "slo,budget_sec,target,observations,deadline_misses,near_misses,"
         "miss_rate,burn_rate,max_latency_sec,p50_latency_sec,"
         "p99_latency_sec\n";
  for (const SloSummary& slo : summaries) {
    char row[512];
    std::snprintf(row, sizeof(row),
                  "%s,%.9g,%.9g,%llu,%llu,%llu,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                  slo.name.c_str(), slo.budget_sec, slo.target,
                  static_cast<unsigned long long>(slo.observations),
                  static_cast<unsigned long long>(slo.deadline_misses),
                  static_cast<unsigned long long>(slo.near_misses),
                  slo.miss_rate, slo.burn_rate, slo.max_latency_sec,
                  slo.p50_latency_sec, slo.p99_latency_sec);
    out << row;
  }
  return out.str();
}

void write_slo_report(const std::filesystem::path& path,
                      const std::vector<SloSummary>& summaries) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream stream(path);
  if (!stream) {
    throw IoError("write_slo_report: cannot open " + path.string());
  }
  if (path.extension() == ".csv") {
    stream << slo_report_csv(summaries);
  } else {
    stream << slo_report_json(summaries) << "\n";
  }
  if (!stream) {
    throw IoError("write_slo_report: write failed for " + path.string());
  }
}

}  // namespace emap::obs
