#include "emap/obs/perfdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "emap/common/error.hpp"

namespace emap::obs {

namespace {

[[noreturn]] void bad_record(const std::string& line, const char* what) {
  throw CorruptData("parse_bench_record: " + std::string(what) + " in: " +
                    (line.size() > 120 ? line.substr(0, 120) + "..." : line));
}

void skip_spaces(const std::string& line, std::size_t& pos) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
    ++pos;
  }
}

std::string parse_string(const std::string& line, std::size_t& pos) {
  // pos is at the opening quote.
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos];
    if (c == '\\') {
      ++pos;
      if (pos >= line.size()) {
        bad_record(line, "truncated escape");
      }
      switch (line[pos]) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        case 'u': {
          // Flat bench records never emit non-ASCII; decode the escape's
          // low byte so parsing at least stays lossless for ASCII.
          if (pos + 4 >= line.size()) {
            bad_record(line, "truncated \\u escape");
          }
          const std::string hex = line.substr(pos + 1, 4);
          c = static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16) & 0xff);
          pos += 4;
          break;
        }
        default: bad_record(line, "unknown escape");
      }
    }
    out.push_back(c);
    ++pos;
  }
  if (pos >= line.size()) {
    bad_record(line, "unterminated string");
  }
  ++pos;  // closing quote
  return out;
}

}  // namespace

BenchRecord parse_bench_record(const std::string& line) {
  BenchRecord record;
  std::size_t pos = 0;
  skip_spaces(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    bad_record(line, "expected '{'");
  }
  ++pos;
  skip_spaces(line, pos);
  bool first = true;
  while (pos < line.size() && line[pos] != '}') {
    if (!first) {
      if (line[pos] != ',') {
        bad_record(line, "expected ','");
      }
      ++pos;
      skip_spaces(line, pos);
    }
    first = false;
    if (pos >= line.size() || line[pos] != '"') {
      bad_record(line, "expected key");
    }
    const std::string key = parse_string(line, pos);
    skip_spaces(line, pos);
    if (pos >= line.size() || line[pos] != ':') {
      bad_record(line, "expected ':'");
    }
    ++pos;
    skip_spaces(line, pos);
    if (pos >= line.size()) {
      bad_record(line, "truncated value");
    }
    if (line[pos] == '"') {
      const std::string value = parse_string(line, pos);
      if (key == "bench") {
        record.bench = value;
      } else {
        record.tags[key] = value;
      }
    } else if (line.compare(pos, 4, "true") == 0) {
      record.metrics[key] = 1.0;
      pos += 4;
    } else if (line.compare(pos, 5, "false") == 0) {
      record.metrics[key] = 0.0;
      pos += 5;
    } else if (line.compare(pos, 4, "null") == 0) {
      pos += 4;
    } else {
      char* end = nullptr;
      const double value = std::strtod(line.c_str() + pos, &end);
      if (end == line.c_str() + pos) {
        bad_record(line, "expected value");
      }
      record.metrics[key] = value;
      pos = static_cast<std::size_t>(end - line.c_str());
    }
    skip_spaces(line, pos);
  }
  if (pos >= line.size() || line[pos] != '}') {
    bad_record(line, "expected '}'");
  }
  return record;
}

std::vector<BenchRecord> load_bench_records(
    const std::filesystem::path& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw IoError("load_bench_records: cannot open " + path.string());
  }
  std::vector<BenchRecord> records;
  std::string line;
  while (std::getline(stream, line)) {
    std::size_t pos = 0;
    skip_spaces(line, pos);
    if (pos >= line.size()) {
      continue;
    }
    records.push_back(parse_bench_record(line));
  }
  return records;
}

std::vector<BenchRecord> load_bench_records_lenient(
    const std::filesystem::path& path, std::vector<std::string>& errors) {
  std::ifstream stream(path);
  if (!stream) {
    throw IoError("load_bench_records_lenient: cannot open " + path.string());
  }
  std::vector<BenchRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::size_t pos = 0;
    skip_spaces(line, pos);
    if (pos >= line.size()) {
      continue;
    }
    try {
      records.push_back(parse_bench_record(line));
    } catch (const CorruptData& error) {
      errors.push_back(path.filename().string() + ":" +
                       std::to_string(line_no) + ": " + error.what());
    }
  }
  return records;
}

bool metric_higher_is_better(const std::string& name) {
  static const char* const kHigherBetter[] = {
      "speedup", "accuracy", "ratio",     "corr", "auc",
      "recall",  "precision", "score",    "throughput"};
  for (const char* marker : kHigherBetter) {
    if (name.find(marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

namespace {

/// Last record per bench name (appended JSONL: newest wins).
std::map<std::string, const BenchRecord*> latest_by_bench(
    const std::vector<BenchRecord>& records) {
  std::map<std::string, const BenchRecord*> out;
  for (const BenchRecord& record : records) {
    out[record.bench] = &record;
  }
  return out;
}

}  // namespace

PerfDiffResult perf_diff(const std::vector<BenchRecord>& baseline,
                         const std::vector<BenchRecord>& current,
                         const PerfDiffOptions& options) {
  PerfDiffResult result;
  const auto base_map = latest_by_bench(baseline);
  const auto cur_map = latest_by_bench(current);

  for (const auto& [bench, base] : base_map) {
    const auto found = cur_map.find(bench);
    if (found == cur_map.end()) {
      result.notes.push_back("bench '" + bench +
                             "' present only in baseline; skipped");
      continue;
    }
    const BenchRecord& cur = *found->second;
    if (options.check_fingerprint) {
      const auto base_fp = base->tags.find("config");
      const auto cur_fp = cur.tags.find("config");
      if (base_fp != base->tags.end() && cur_fp != cur.tags.end() &&
          base_fp->second != cur_fp->second) {
        result.notes.push_back(
            "bench '" + bench + "' config fingerprint mismatch (baseline " +
            base_fp->second + ", current " + cur_fp->second +
            "); not comparable, skipped");
        continue;
      }
    }
    for (const auto& [metric, base_value] : base->metrics) {
      const auto cur_metric = cur.metrics.find(metric);
      if (cur_metric == cur.metrics.end()) {
        result.notes.push_back("bench '" + bench + "' metric '" + metric +
                               "' missing from current run");
        continue;
      }
      PerfDelta delta;
      delta.bench = bench;
      delta.metric = metric;
      delta.baseline = base_value;
      delta.current = cur_metric->second;
      delta.higher_is_better = metric_higher_is_better(metric);
      if (base_value != 0.0) {
        delta.change_frac =
            (delta.current - delta.baseline) / std::fabs(delta.baseline);
      } else if (delta.current != 0.0) {
        delta.change_frac = delta.current > 0.0
                                ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity();
      }
      const double bad_move =
          delta.higher_is_better ? -delta.change_frac : delta.change_frac;
      delta.regressed = bad_move > options.threshold;
      if (delta.regressed) {
        result.regressions += 1;
      }
      result.deltas.push_back(std::move(delta));
    }
  }
  for (const auto& [bench, record] : cur_map) {
    (void)record;
    if (base_map.find(bench) == base_map.end()) {
      result.notes.push_back("bench '" + bench +
                             "' has no baseline yet; passes by default");
    }
  }
  for (const PerfRequirement& requirement : options.requirements) {
    RequirementOutcome outcome;
    outcome.requirement = requirement;
    const auto found = cur_map.find(requirement.bench);
    const auto metric =
        found != cur_map.end()
            ? found->second->metrics.find(requirement.metric)
            : std::map<std::string, double>::const_iterator{};
    if (found == cur_map.end() ||
        metric == found->second->metrics.end()) {
      outcome.missing = true;
      result.notes.push_back(
          "requirement " + requirement.bench + ":" + requirement.metric +
          " skipped: " +
          (found == cur_map.end() ? "bench absent from current run"
                                  : "metric absent from current run (e.g. "
                                    "arm unavailable on this host)"));
    } else {
      outcome.value = metric->second;
      outcome.satisfied = outcome.value >= requirement.min_value;
      if (!outcome.satisfied) {
        result.requirement_failures += 1;
      }
    }
    result.requirements.push_back(std::move(outcome));
  }
  return result;
}

PerfRequirement parse_perf_requirement(const std::string& spec) {
  const std::size_t first = spec.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos
                                 : spec.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos ||
      first == 0 || second == first + 1 || second + 1 >= spec.size()) {
    throw InvalidArgument(
        "parse_perf_requirement: expected bench:metric:min, got '" + spec +
        "'");
  }
  PerfRequirement requirement;
  requirement.bench = spec.substr(0, first);
  requirement.metric = spec.substr(first + 1, second - first - 1);
  char* end = nullptr;
  const std::string min_text = spec.substr(second + 1);
  requirement.min_value = std::strtod(min_text.c_str(), &end);
  if (end == min_text.c_str() || *end != '\0') {
    throw InvalidArgument(
        "parse_perf_requirement: bad minimum '" + min_text + "' in '" +
        spec + "'");
  }
  return requirement;
}

std::string format_perf_diff(const PerfDiffResult& result,
                             const PerfDiffOptions& options) {
  std::ostringstream out;
  std::size_t bench_width = 5;
  std::size_t metric_width = 6;
  for (const PerfDelta& delta : result.deltas) {
    bench_width = std::max(bench_width, delta.bench.size());
    metric_width = std::max(metric_width, delta.metric.size());
  }
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s %-*s %14s %14s %9s %4s %s\n",
                static_cast<int>(bench_width), "bench",
                static_cast<int>(metric_width), "metric", "baseline",
                "current", "change", "dir", "verdict");
  out << line;
  for (const PerfDelta& delta : result.deltas) {
    std::snprintf(line, sizeof(line),
                  "%-*s %-*s %14.6g %14.6g %+8.2f%% %4s %s\n",
                  static_cast<int>(bench_width), delta.bench.c_str(),
                  static_cast<int>(metric_width), delta.metric.c_str(),
                  delta.baseline, delta.current, delta.change_frac * 100.0,
                  delta.higher_is_better ? "up" : "down",
                  delta.regressed ? "REGRESSED" : "ok");
    out << line;
  }
  for (const RequirementOutcome& outcome : result.requirements) {
    if (outcome.missing) {
      continue;  // already covered by a note
    }
    std::snprintf(line, sizeof(line),
                  "require %s:%s >= %g: current %g -> %s\n",
                  outcome.requirement.bench.c_str(),
                  outcome.requirement.metric.c_str(),
                  outcome.requirement.min_value, outcome.value,
                  outcome.satisfied ? "ok" : "UNMET");
    out << line;
  }
  for (const std::string& note : result.notes) {
    out << "note: " << note << "\n";
  }
  std::snprintf(line, sizeof(line),
                "%zu metric(s) compared, %zu regression(s) past %.0f%% "
                "threshold, %zu unmet requirement(s) -> %s\n",
                result.deltas.size(), result.regressions,
                options.threshold * 100.0, result.requirement_failures,
                result.ok() ? "PASS" : "FAIL");
  out << line;
  return out.str();
}

}  // namespace emap::obs
