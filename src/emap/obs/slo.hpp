// Real-time SLO monitoring for the paper's latency budgets.
//
// The EMAP deployment story stands on two budgets: the edge iteration must
// finish inside its 1 s window (Section V's "lightweight" tracking), and
// the initial cloud response Δ_initial must land within ≈ 3 s (Eq. 4) or
// the monitor is blind during exactly the prodrome it exists to catch.
// SloMonitor turns each budget into an explicit objective: every
// observation lands in a latency histogram and is classified as ok /
// near-miss / deadline-miss, and a rolling window of recent observations
// yields a burn rate — how fast the error budget (1 - target) is being
// consumed, where burn > 1 means "at this rate the SLO will be violated".
//
// All latencies here are SimTime (device-model + channel-model seconds),
// not wall clock, so the verdicts are deterministic and comparable across
// machines.  When a MetricsRegistry is attached the monitor also surfaces
// `emap_slo_*` families for the Prometheus/JSONL exporters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "emap/obs/metrics.hpp"

namespace emap::obs {

/// One service-level objective over a latency stream.
struct SloSpec {
  std::string name;        ///< label value, e.g. "edge_iteration"
  double budget_sec = 1.0; ///< deadline: observations above this miss
  /// Observations above near_miss_fraction * budget_sec (but within
  /// budget) count as near misses — the early-warning band.
  double near_miss_fraction = 0.8;
  /// Fraction of observations that must meet the deadline.  The error
  /// budget is 1 - target; the burn rate is measured against it.
  double target = 0.999;
  /// Observations in the rolling burn-rate window.
  std::size_t burn_window = 60;
};

/// The paper's two budgets (Section V / Eq. 4).
SloSpec edge_iteration_slo();   ///< track step < 1 s SimTime
SloSpec initial_response_slo(); ///< Δ_initial ≤ 3 s SimTime

/// Snapshot of one monitor, embeddable in RunResult and reports.
struct SloSummary {
  std::string name;
  double budget_sec = 0.0;
  double target = 0.0;
  std::uint64_t observations = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t near_misses = 0;
  double miss_rate = 0.0;    ///< deadline_misses / observations
  double burn_rate = 0.0;    ///< rolling miss rate / error budget
  double max_latency_sec = 0.0;
  double p50_latency_sec = 0.0;
  double p99_latency_sec = 0.0;
};

/// Serializable monitor state (checkpoint support).  Carries the verdict
/// counters and the rolling miss ring — everything burn_rate() and the
/// degradation controller read — but NOT the latency histogram: a resumed
/// monitor's p50/p99 cover post-resume observations only (documented in
/// docs/robustness.md, "Crash recovery").
struct SloMonitorState {
  std::uint64_t observations = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t near_misses = 0;
  double max_latency_sec = 0.0;
  std::vector<std::uint8_t> recent_miss;  ///< ring, 1 = miss
  std::uint64_t recent_next = 0;
  std::uint64_t recent_count = 0;
  std::uint64_t recent_misses = 0;
};

/// Tracks one SLO over a latency stream.
///
/// Not internally synchronized: observations come from the single-threaded
/// pipeline loop.  The registry-surfaced metrics are the usual lock-free
/// instruments and may be scraped concurrently.
class SloMonitor {
 public:
  /// `registry` is borrowed and may be null (summary-only monitoring).
  explicit SloMonitor(SloSpec spec, MetricsRegistry* registry = nullptr);

  /// Classifies and records one latency observation (seconds).
  void observe(double latency_sec);

  const SloSpec& spec() const { return spec_; }
  std::uint64_t observations() const { return observations_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  std::uint64_t near_misses() const { return near_misses_; }

  /// Miss rate over the rolling window divided by the error budget
  /// (1 - target); 0 before any observation.  Burn 1.0 = consuming the
  /// budget exactly as fast as the target allows.
  double burn_rate() const;

  /// Burn rate <= 1 (no observations counts as healthy).
  bool healthy() const { return burn_rate() <= 1.0; }

  SloSummary summary() const;

  /// Captures the restorable state (counters + miss ring; no histogram).
  SloMonitorState save_state() const;

  /// Restores a saved state.  Throws InvalidArgument when the saved ring
  /// does not match this monitor's burn window.
  void restore_state(const SloMonitorState& state);

 private:
  SloSpec spec_;
  std::uint64_t observations_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t near_misses_ = 0;
  double max_latency_sec_ = 0.0;
  Histogram latency_;

  // Rolling window of miss flags (ring buffer of the last burn_window
  // observations).
  std::vector<bool> recent_miss_;
  std::size_t recent_next_ = 0;
  std::size_t recent_count_ = 0;
  std::size_t recent_misses_ = 0;

  // Registry handles (null when detached).
  Counter* observations_metric_ = nullptr;
  Counter* miss_metric_ = nullptr;
  Counter* near_miss_metric_ = nullptr;
  Gauge* burn_metric_ = nullptr;
  Gauge* budget_metric_ = nullptr;
  Histogram* latency_metric_ = nullptr;
};

/// JSON report `{"build":{...},"slos":[{...}]}` (build-info stamped).
std::string slo_report_json(const std::vector<SloSummary>& summaries);

/// CSV report with header
///   slo,budget_sec,target,observations,deadline_misses,near_misses,
///   miss_rate,burn_rate,max_latency_sec,p50_latency_sec,p99_latency_sec
std::string slo_report_csv(const std::vector<SloSummary>& summaries);

/// Writes slo_report_json / slo_report_csv to `path` (extension ".csv"
/// selects CSV, anything else JSON), creating parent directories; throws
/// IoError on failure.
void write_slo_report(const std::filesystem::path& path,
                      const std::vector<SloSummary>& summaries);

}  // namespace emap::obs
