#include "emap/obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "emap/obs/export.hpp"
#include "emap/obs/trace_context.hpp"

namespace emap::obs {

const char* flight_event_type_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kSpan:
      return "span";
    case FlightEventType::kSloMiss:
      return "slo_miss";
    case FlightEventType::kSloBurnPage:
      return "slo_burn_page";
    case FlightEventType::kRobustTransition:
      return "robust_transition";
    case FlightEventType::kBreakerOpen:
      return "breaker_open";
    case FlightEventType::kBreakerClose:
      return "breaker_close";
    case FlightEventType::kFaultVerdict:
      return "fault_verdict";
    case FlightEventType::kRetry:
      return "retry";
    case FlightEventType::kShed:
      return "shed";
    case FlightEventType::kCheckpoint:
      return "checkpoint";
    case FlightEventType::kResume:
      return "resume";
    case FlightEventType::kCrashPoint:
      return "crash_point";
    case FlightEventType::kAlert:
      return "alert";
    case FlightEventType::kStageStall:
      return "stage_stall";
  }
  return "?";
}

std::string FlightEvent::label_view() const {
  return std::string(label,
                     strnlen(label, kLabelCapacity));
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 8)) {}

void FlightRecorder::log(FlightEventType type, const char* label,
                         double t_sec, std::uint64_t trace_id, double a,
                         double b) {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  // Odd marker = write in progress; readers skip the slot.
  slot.marker.store(2 * seq + 1, std::memory_order_release);
  slot.event.seq = seq;
  slot.event.trace_id = trace_id;
  slot.event.t_sec = t_sec;
  slot.event.a = a;
  slot.event.b = b;
  slot.event.type = type;
  std::memset(slot.event.label, 0, FlightEvent::kLabelCapacity);
  if (label != nullptr) {
    std::strncpy(slot.event.label, label, FlightEvent::kLabelCapacity - 1);
  }
  // Even marker = published for exactly this seq.
  slot.marker.store(2 * seq + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before == 0 || before % 2 == 1) {
      continue;  // never written, or mid-write
    }
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t after = slot.marker.load(std::memory_order_relaxed);
    if (after != before) {
      continue;  // overwritten while copying — torn, discard
    }
    events.push_back(copy);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

void FlightRecorder::set_dump_path(std::filesystem::path path) {
  dump_path_ = std::move(path);
}

bool FlightRecorder::trigger_dump(const char* reason) noexcept {
  try {
    if (dump_path_.empty()) {
      return false;
    }
    const auto events = snapshot();
    if (dump_path_.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(dump_path_.parent_path(), ec);
    }
    std::FILE* file = std::fopen(dump_path_.string().c_str(), "w");
    if (file == nullptr) {
      return false;
    }
    JsonWriter header;
    header.field("flight_dump", reason != nullptr ? reason : "");
    header.field("events", static_cast<std::uint64_t>(events.size()));
    header.field("dropped",
                 total_logged() - static_cast<std::uint64_t>(events.size()));
    bool ok = std::fprintf(file, "%s\n", header.str().c_str()) >= 0;
    for (const FlightEvent& event : events) {
      if (std::fprintf(file, "%s\n", flight_event_json(event).c_str()) < 0) {
        ok = false;
        break;
      }
    }
    if (std::fclose(file) != 0) {
      ok = false;
    }
    if (ok) {
      dumps_.fetch_add(1, std::memory_order_relaxed);
    }
    return ok;
  } catch (...) {
    return false;  // the dump runs on the crash path; never rethrow
  }
}

std::string flight_event_json(const FlightEvent& event) {
  JsonWriter writer;
  writer.field("seq", event.seq);
  writer.field("type", flight_event_type_name(event.type));
  writer.field("label", event.label_view());
  writer.field("t_sec", event.t_sec);
  writer.field("trace_id", trace_id_hex(event.trace_id));
  writer.field("a", event.a);
  writer.field("b", event.b);
  return writer.str();
}

}  // namespace emap::obs
