// Time-series telemetry store: periodic sim-time scrapes of a
// MetricsRegistry into per-series ring buffers with multi-resolution
// downsampling.
//
// Every other telemetry surface in the repo (MetricsRegistry, SloMonitor,
// the flight recorder) reports *cumulative* state at exit; the soak tests
// and any "when did latency start climbing?" question need *history*.
// TimeSeriesStore keeps that history with bounded memory regardless of run
// length: each series is three fixed-capacity tiers — raw scrapes, 10×
// downsampled, 100× downsampled — where a full tier compacts its oldest
// points into the next tier and the coarsest tier drops its oldest bucket.
// Buckets carry min/max/sum/count plus the first/last values, so counter
// rate() and windowed min/max/mean queries stay exact after compaction
// (only intra-bucket timing is lost, never mass).
//
// Determinism: scrapes are driven by the pipeline's virtual clock and the
// registry's registration order, so two identical seeded runs export
// bit-identical JSONL.  Nothing here touches a wall clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "emap/obs/metrics.hpp"

namespace emap::obs {

/// Retention/downsampling policy of one store.
struct TimeSeriesOptions {
  /// Master switch: with false the pipeline installs no scrape hook at all
  /// (runs stay bit-identical to pre-time-series output).
  bool enabled = false;
  /// Seconds of virtual time between scrapes.
  double scrape_interval_sec = 1.0;
  /// Points kept per tier.  Tier 0 holds raw scrapes; a full tier compacts
  /// `downsample_factor` oldest points into one coarser bucket.  With the
  /// defaults (256/256/256, factor 10) one series remembers ~256 s at full
  /// resolution, ~42 min at 10 s and ~7 h at 100 s resolution, then drops
  /// its oldest history — memory is bounded for arbitrarily long runs.
  std::size_t tier_capacity = 256;
  std::size_t downsample_factor = 10;
  /// Histograms additionally expose a p95-over-run series when true.
  bool histogram_quantiles = true;
  /// Metric families the scraper ignores entirely.  The pipeline enrolls
  /// its wall-clock-valued families (host-time measurements that differ
  /// between identical seeded runs) so the exported JSONL stays
  /// bit-identical run to run; everything else it records is driven by
  /// the virtual clock and seeded RNGs.
  std::vector<std::string> skip_families{};

  void validate() const;
};

/// One downsampled bucket: the closed interval [t_start, t_end] and the
/// aggregates of every scrape that landed in it.
struct SeriesBucket {
  double t_start_sec = 0.0;
  double t_end_sec = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;     ///< sum of scraped values (NOT histogram _sum)
  double first = 0.0;   ///< chronologically first scraped value
  double last = 0.0;    ///< chronologically last scraped value
  std::uint64_t count = 0;  ///< scrapes merged into this bucket

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// What the scraped value means (drives rate() semantics and rendering).
enum class SeriesKind { kCounter, kGauge, kSample };

const char* series_kind_name(SeriesKind kind);

/// One named series: identity plus the three retention tiers (index 0 =
/// raw, higher = coarser).
class Series {
 public:
  Series(std::string key, SeriesKind kind, std::size_t tier_capacity,
         std::size_t downsample_factor);

  void append(double t_sec, double value);

  const std::string& key() const { return key_; }
  SeriesKind kind() const { return kind_; }

  /// All retained buckets, oldest first, coarsest tier first — i.e. in
  /// chronological order across tiers (tier 2 history precedes tier 1
  /// precedes raw).
  std::vector<SeriesBucket> buckets() const;
  /// Buckets overlapping [from_sec, to_sec], chronological.
  std::vector<SeriesBucket> buckets(double from_sec, double to_sec) const;

  /// Last scraped value / its timestamp; nullopt before the first scrape.
  std::optional<double> last_value() const;
  std::optional<double> last_time_sec() const;

  /// For counter series: increase over the trailing `window_sec` ending at
  /// the newest sample, per second.  Exact across compaction (bucket
  /// first/last survive merging).  0 before two samples.
  double rate_over(double window_sec) const;
  /// Max / mean of the scraped values over the trailing window.
  double max_over(double window_sec) const;
  double mean_over(double window_sec) const;

  std::size_t total_buckets() const;
  std::size_t tier_count() const { return tiers_.size(); }
  std::size_t tier_size(std::size_t tier) const { return tiers_[tier].size(); }

 private:
  void compact_tier(std::size_t tier);

  std::string key_;
  SeriesKind kind_;
  std::size_t tier_capacity_;
  std::size_t downsample_factor_;
  std::vector<std::deque<SeriesBucket>> tiers_;  ///< [0] raw, [1] 10x, [2] 100x
  std::uint64_t dropped_buckets_ = 0;            ///< fell off the coarsest tier

 public:
  std::uint64_t dropped_buckets() const { return dropped_buckets_; }
};

/// Bounded-memory store of every scraped series.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  /// Samples every registered instrument at virtual time `t_sec`:
  /// counters and gauges as one series each; histograms as
  /// `<name>:count`, `<name>:sum` (both cumulative), `<name>:mean`
  /// (per-interval mean = Δsum/Δcount since the previous scrape, carrying
  /// the last mean through empty intervals) and, when
  /// options.histogram_quantiles, `<name>:p95` (quantile estimate over the
  /// whole run so far).  New registry entries get series on first sight.
  void scrape(const MetricsRegistry& registry, double t_sec);

  /// Series lookup by key (`name{label="value",...}` plus the histogram
  /// suffixes above); nullptr when never scraped.
  const Series* find(const std::string& key) const;

  /// Keys in first-scrape order (deterministic: registry registration
  /// order drives it).
  std::vector<std::string> keys() const;
  const std::vector<Series>& all() const { return series_; }

  std::uint64_t scrapes() const { return scrapes_; }
  std::size_t total_buckets() const;
  /// Upper bound on retained buckets given the retention policy — the
  /// soak test asserts total_buckets() never exceeds this.
  std::size_t bucket_capacity() const;
  /// Rough retained-memory footprint (buckets only).
  std::size_t approx_bytes() const;

  const TimeSeriesOptions& options() const { return options_; }

  /// One JSONL line per retained bucket:
  ///   {"series":...,"kind":...,"tier":N,"t0":...,"t1":...,
  ///    "min":...,"max":...,"sum":...,"count":...,"first":...,"last":...}
  /// Chronological within each series, series in first-scrape order.
  std::string to_jsonl() const;
  void write_jsonl(const std::filesystem::path& path) const;

 private:
  Series& series_for(const std::string& key, SeriesKind kind);

  TimeSeriesOptions options_;
  std::vector<Series> series_;
  std::unordered_map<std::string, std::size_t> index_;
  /// Previous cumulative sum/count per histogram series (for the
  /// per-interval mean series), keyed by the `:mean` series key.
  struct HistCursor {
    double sum = 0.0;
    std::uint64_t count = 0;
    double last_mean = 0.0;
  };
  std::unordered_map<std::string, HistCursor> hist_cursors_;
  std::uint64_t scrapes_ = 0;
};

/// Canonical series key of a registry entry: `name{k="v",...}` with the
/// labels in registry (sorted) order, `name` alone when label-free.
std::string series_key_for(const std::string& name, const Labels& labels);

/// Interval-driven scrape helper: call maybe_scrape at any virtual-time
/// checkpoint (the pipeline does so at every window boundary, CloudService
/// at every completed request); it scrapes at most once per
/// scrape_interval_sec and always in forward time order.
class TimeSeriesScraper {
 public:
  /// Both pointers are borrowed and must outlive the scraper.
  TimeSeriesScraper(const MetricsRegistry* registry, TimeSeriesStore* store);

  /// Scrapes when `t_sec` has reached the next due instant (then advances
  /// the due time by whole intervals so a stalled caller catches up with
  /// ONE scrape, not a backlog).  Returns true when a scrape happened.
  bool maybe_scrape(double t_sec);

  /// Unconditional scrape (end-of-run flush).
  void scrape_now(double t_sec);

  double next_due_sec() const { return next_due_sec_; }

 private:
  const MetricsRegistry* registry_;
  TimeSeriesStore* store_;
  double next_due_sec_ = 0.0;
};

}  // namespace emap::obs
