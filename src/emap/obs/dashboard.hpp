// Post-run dashboard: renders a time-series JSONL export (and optional
// alert transitions) into an ASCII sparkline table and a self-contained
// HTML page, with a CUSUM changepoint pass per series.
//
// This is the read side of timeseries.hpp/alert.hpp, consumed by the
// `emapreport` CLI and `emapctl report`.  Loading follows the tracecat
// convention: malformed lines are skipped and counted, never fatal, so a
// report still renders from a truncated file.
//
// The CUSUM pass answers "when did this series change level?" after the
// fact: per-bucket means are standardized against the series' own
// mean/stddev, and the changepoint is the peak of the cumulative-sum
// curve of those deviations (the offline CUSUM estimator — a level shift
// makes |ΣZ| a tent whose apex is the shift bucket).  `h` gates the peak
// height and `k` the implied shift, which in the soak test lands the
// estimate within a couple of scrape intervals of the injected step.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "emap/obs/timeseries.hpp"

namespace emap::obs {

/// One series parsed back from TimeSeriesStore::to_jsonl output.
struct LoadedSeries {
  std::string key;
  std::string kind;  ///< "counter" | "gauge" | "sample"
  std::vector<SeriesBucket> buckets;  ///< chronological, as exported
};

struct SeriesLoadResult {
  std::vector<LoadedSeries> series;  ///< in file order (first-scrape order)
  std::size_t skipped_lines = 0;
};

/// Loads a series JSONL file; throws on open failure, skips bad lines.
SeriesLoadResult load_series_jsonl(const std::filesystem::path& path);

/// One alert transition parsed back from AlertEngine::to_jsonl output.
struct LoadedAlertTransition {
  std::string rule;
  std::string series;
  double t_sec = 0.0;
  bool firing = false;
  double value = 0.0;
  double threshold = 0.0;
};

struct AlertLoadResult {
  std::vector<LoadedAlertTransition> transitions;
  std::size_t skipped_lines = 0;
};

AlertLoadResult load_alerts_jsonl(const std::filesystem::path& path);

/// Result of the CUSUM pass over one series.
struct Changepoint {
  bool found = false;
  std::size_t bucket_index = 0;  ///< first bucket of the new level
  double t_sec = 0.0;            ///< that bucket's start time
  double shift = 0.0;            ///< mean after - mean before, in raw units
};

/// Offline CUSUM over the per-bucket means.  `h` is the minimum peak of
/// the standardized cumulative-sum curve (stddev-bucket units) and `k`
/// the minimum level shift in stddevs; both must clear for found=true.
/// Returns found=false for constant or short (< 4 bucket) series.
Changepoint cusum_changepoint(const std::vector<SeriesBucket>& buckets,
                              double k = 0.5, double h = 5.0);

/// `width`-character sparkline of `values` (min..max mapped onto eight
/// block glyphs); values are resampled onto the width by bucketing.
std::string sparkline(const std::vector<double>& values, std::size_t width);

struct ReportOptions {
  std::size_t spark_width = 48;
  double cusum_k = 0.5;
  double cusum_h = 5.0;
  /// Render only series whose key contains this substring (empty = all).
  std::string series_filter;
};

/// Plain-text dashboard: one row per series (count span min/mean/max,
/// sparkline, changepoint), then an alert-transition table.
std::string render_ascii_report(const SeriesLoadResult& series,
                                const AlertLoadResult& alerts,
                                const ReportOptions& options = {});

/// Self-contained HTML page (inline SVG charts, alert markers, no
/// external assets).
std::string render_html_report(const SeriesLoadResult& series,
                               const AlertLoadResult& alerts,
                               const ReportOptions& options = {});

}  // namespace emap::obs
