#include "emap/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "emap/common/error.hpp"

namespace emap::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  require(!bounds_.empty(), "Histogram: need at least one bucket bound");
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: bounds must be strictly ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);

  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  double low = min_.load(std::memory_order_relaxed);
  while (value < low && !min_.compare_exchange_weak(
                            low, value, std::memory_order_relaxed)) {
  }
  double high = max_.load(std::memory_order_relaxed);
  while (value > high && !max_.compare_exchange_weak(
                             high, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_count(std::size_t index) const {
  require(index <= bounds_.size(), "Histogram::bucket_count: index range");
  return counts_[index].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0, 1]");
  const std::uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  // Rank of the requested quantile within a snapshot of the buckets.
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const auto in_bucket = static_cast<double>(
        counts_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) {
      continue;
    }
    if (cumulative + in_bucket >= target) {
      // Interpolate linearly inside the covering bucket, then clamp to the
      // observed range so degenerate streams (all-equal values) are exact.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i == bounds_.size() ? max() : bounds_[i];
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return std::clamp(lo + fraction * (hi - lo), min(), max());
    }
    cumulative += in_bucket;
  }
  return max();
}

std::vector<double> Histogram::default_latency_bounds() {
  // 1 µs .. ~1073 s, eight buckets per octave (factor 2^(1/8) ≈ 1.09).
  std::vector<double> bounds;
  const double factor = std::pow(2.0, 1.0 / 8.0);
  for (double bound = 1e-6; bound <= 1100.0; bound *= factor) {
    bounds.push_back(bound);
  }
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double lo, double hi,
                                             std::size_t count) {
  require(hi > lo, "Histogram::linear_bounds: hi must exceed lo");
  require(count >= 1, "Histogram::linear_bounds: need at least one bucket");
  std::vector<double> bounds(count);
  const double width = (hi - lo) / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = lo + width * static_cast<double>(i + 1);
  }
  bounds.back() = hi;  // exact upper edge despite accumulation error
  return bounds;
}

namespace {

std::string series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [label, value] : labels) {
    key += '\x1f';
    key += label;
    key += '\x1e';
    key += value;
  }
  return key;
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::size_t MetricsRegistry::max_series_per_family() const {
  if (max_series_cache_ == 0) {
    max_series_cache_ = kDefaultMaxSeriesPerFamily;
    if (const char* env = std::getenv("EMAP_METRICS_MAX_SERIES")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) {
        max_series_cache_ = static_cast<std::size_t>(parsed);
      }
    }
  }
  return max_series_cache_;
}

MetricEntry& MetricsRegistry::sink_for(MetricKind kind,
                                       std::vector<double>* bounds) {
  auto& sink = sinks_[static_cast<std::size_t>(kind)];
  if (!sink) {
    sink = std::make_unique<MetricEntry>();
    sink->name = "emap_dropped_series_sink";
    sink->kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        sink->counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        sink->gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        sink->histogram = std::make_unique<Histogram>(
            bounds != nullptr && !bounds->empty()
                ? *bounds
                : Histogram::default_latency_bounds());
        break;
    }
  }
  return *sink;
}

MetricEntry& MetricsRegistry::lookup(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help, MetricKind kind,
                                     std::vector<double>* bounds) {
  require(!name.empty(), "MetricsRegistry: metric name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  return lookup_locked(name, labels, help, kind, bounds);
}

MetricEntry& MetricsRegistry::lookup_locked(const std::string& name,
                                            const Labels& labels,
                                            const std::string& help,
                                            MetricKind kind,
                                            std::vector<double>* bounds) {
  const Labels sorted = sorted_labels(labels);
  const std::string key = series_key(name, sorted);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    MetricEntry& entry = *entries_[found->second];
    require(entry.kind == kind,
            "MetricsRegistry: metric already registered with another kind");
    return entry;
  }
  // Cardinality guard: refuse the cap-breaking label-set, account for it,
  // and hand back a sink so the (cached) call site still has a live
  // instrument to record into.
  if (family_series_[name] >= max_series_per_family()) {
    dropped_series_.fetch_add(1, std::memory_order_relaxed);
    if (name != "emap_metrics_dropped_series_total") {
      // The recursion is bounded: the inner name differs from the outer,
      // and the drop counter never re-enters for itself.
      lookup_locked("emap_metrics_dropped_series_total", {{"metric", name}},
                    "Series registrations refused by the cardinality guard",
                    MetricKind::kCounter, nullptr)
          .counter->increment();
    }
    if (!family_warned_[name]) {
      family_warned_[name] = true;
      std::fprintf(stderr,
                   "emap: metric family '%s' hit the %zu-series cardinality "
                   "cap (EMAP_METRICS_MAX_SERIES); further label-sets are "
                   "dropped\n",
                   name.c_str(), max_series_per_family());
    }
    return sink_for(kind, bounds);
  }
  auto entry = std::make_unique<MetricEntry>();
  entry->name = name;
  entry->labels = sorted;
  entry->help = help;
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(std::move(*bounds));
      break;
  }
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(entry));
  ++family_series_[name];
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  return *lookup(name, labels, help, MetricKind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return *lookup(name, labels, help, MetricKind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  return *lookup(name, labels, help, MetricKind::kHistogram, &bounds)
              .histogram;
}

std::vector<const MetricEntry*> MetricsRegistry::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const MetricEntry*> view;
  view.reserve(entries_.size());
  for (const auto& entry : entries_) {
    view.push_back(entry.get());
  }
  return view;
}

std::size_t MetricsRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) {
    names.push_back(entry->name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names.size();
}

}  // namespace emap::obs
