// Declarative alert rules evaluated over the time-series store.
//
// The time-series store (timeseries.hpp) gives a run history; this module
// closes the loop by watching that history as it accumulates.  Four rule
// kinds cover the monitoring idioms the ROADMAP's soak tests need:
//
//   threshold — latest value of a series compared against a constant
//   rate      — counter increase per second over a trailing window
//   ewma      — deviation of the latest value from an exponentially
//               weighted running mean, in units of the running stddev
//               (a step change in a latency series trips this)
//   burn      — threshold on an SLO's burn-rate gauge series
//               (`emap_slo_burn_rate{slo="..."}`)
//
// Rules carry a for-duration debounce: a breach must hold continuously
// for `for_sec` of virtual time before the rule transitions to firing,
// and one clean evaluation resolves it.  Transitions — never steady
// states — stamp a span, bump `emap_alerts_*` metrics, log a flight
// event, and (on firing) trigger a flight-recorder dump, so a latency
// regression mid-soak leaves a correlated trace.
//
// Everything is driven by the virtual clock through evaluate(); with the
// same seeded run the same transitions happen at the same instants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "emap/obs/timeseries.hpp"

namespace emap::obs {

class FlightRecorder;
class Tracer;

enum class AlertRuleKind { kThreshold, kRate, kEwma, kBurnRate };
enum class AlertOp { kGt, kGe, kLt, kLe };

const char* alert_rule_kind_name(AlertRuleKind kind);
const char* alert_op_name(AlertOp op);

/// One declarative rule.  Text form (see parse_alert_rules):
///   rule <name> threshold series=<key> op=gt value=1.0 for=5
///   rule <name> rate      series=<key> window=60 op=gt value=0.5 for=10
///   rule <name> ewma      series=<key> alpha=0.1 sigma=4 warmup=30
///                         min_delta=0 for=3   (one line in the file)
///   rule <name> burn      slo=edge_iteration value=1.0 for=5
struct AlertRule {
  std::string name;
  AlertRuleKind kind = AlertRuleKind::kThreshold;
  /// Series key the rule watches (burn rules fill this from `slo=`).
  std::string series;
  AlertOp op = AlertOp::kGt;
  double value = 0.0;       ///< threshold / burn-rate limit
  double window_sec = 60.0; ///< rate: trailing window
  double alpha = 0.1;       ///< ewma: smoothing factor in (0, 1]
  double sigma = 4.0;       ///< ewma: deviation limit in stddevs
  std::size_t warmup = 30;  ///< ewma: samples before deviations count
  double min_delta = 0.0;   ///< ewma: absolute deviation floor
  double for_sec = 0.0;     ///< debounce: breach must hold this long

  void validate() const;
};

enum class AlertState { kInactive, kPending, kFiring };

const char* alert_state_name(AlertState state);

/// One firing or resolved transition (steady states are not recorded).
struct AlertTransition {
  std::string rule;
  std::string series;
  double t_sec = 0.0;
  bool firing = false;   ///< true = fired, false = resolved
  double value = 0.0;    ///< observed value at the transition
  double threshold = 0.0;///< effective limit at the transition
  std::uint64_t trace_id = 0;
};

/// Live per-rule evaluation state (exposed for tests and the report tool).
struct AlertRuleStatus {
  AlertState state = AlertState::kInactive;
  double pending_since_sec = 0.0;
  double last_value = 0.0;
  bool last_breached = false;
  bool ever_evaluated = false;
  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
  // EWMA runtime (ewma rules only).
  double ewma_mean = 0.0;
  double ewma_var = 0.0;
  std::size_t ewma_samples = 0;
};

/// Evaluates a fixed rule set at every scrape instant.
class AlertEngine {
 public:
  /// Optional side-effect sinks; any may be null.  All borrowed.
  struct Hooks {
    MetricsRegistry* registry = nullptr;  ///< emap_alerts_* metrics
    Tracer* tracer = nullptr;             ///< alert spans
    FlightRecorder* flight = nullptr;     ///< kAlert events + firing dumps
  };

  explicit AlertEngine(std::vector<AlertRule> rules)
      : AlertEngine(std::move(rules), Hooks()) {}
  AlertEngine(std::vector<AlertRule> rules, Hooks hooks);

  /// Evaluates every rule against the store at virtual time `t_sec`
  /// (call right after each scrape).  `trace_id` attributes any
  /// transitions to the causal chain being processed.  Returns the
  /// number of transitions this evaluation produced.
  std::size_t evaluate(const TimeSeriesStore& store, double t_sec,
                       std::uint64_t trace_id = 0);

  const std::vector<AlertRule>& rules() const { return rules_; }
  const AlertRuleStatus& status(std::size_t rule_index) const {
    return status_[rule_index];
  }
  const std::vector<AlertTransition>& transitions() const {
    return transitions_;
  }
  /// Rules currently in the firing state.
  std::size_t firing_count() const;
  /// Whether the named rule ever fired.
  bool ever_fired(const std::string& rule_name) const;
  std::uint64_t evaluations() const { return evaluations_; }

  /// One JSONL line per transition:
  ///   {"rule":...,"series":...,"t_sec":...,"state":"firing"|"resolved",
  ///    "value":...,"threshold":...,"trace_id":...}
  std::string to_jsonl() const;
  void write_jsonl(const std::filesystem::path& path) const;

 private:
  struct RuleEval {
    bool has_value = false;
    double value = 0.0;
    double threshold = 0.0;
    bool breached = false;
  };
  RuleEval evaluate_rule(std::size_t rule_index, const TimeSeriesStore& store);
  void transition(std::size_t rule_index, double t_sec, bool firing,
                  const RuleEval& eval, std::uint64_t trace_id);

  std::vector<AlertRule> rules_;
  std::vector<AlertRuleStatus> status_;
  std::vector<AlertTransition> transitions_;
  Hooks hooks_;
  std::uint64_t evaluations_ = 0;
};

/// The burn-rate gauge series key of one SLO (matches SloMonitor's
/// registration: `emap_slo_burn_rate{slo="<name>"}`).
std::string burn_rate_series_key(const std::string& slo_name);

/// Parses the rule text format (one `rule ...` statement per line, `#`
/// comments and blank lines ignored; see AlertRule).  On malformed input
/// returns the rules parsed so far and sets *error to a one-line
/// diagnostic naming the line; *error is cleared on success.
std::vector<AlertRule> parse_alert_rules(const std::string& text,
                                         std::string* error = nullptr);

/// parse_alert_rules over a file's contents; missing file is an error.
std::vector<AlertRule> load_alert_rules(const std::filesystem::path& path,
                                        std::string* error = nullptr);

/// The rules the pipeline installs when alerting is enabled and no rule
/// file is given: EWMA-deviation on the edge window-latency mean and
/// burn-rate watches on both paper SLOs.
std::vector<AlertRule> default_alert_rules();

}  // namespace emap::obs
