// Device timing model.
//
// The paper's absolute numbers come from a specific testbed: an Intel
// i7-7700HQ "cloud" and a Raspberry Pi B+ "edge", both running the authors'
// Python implementation (Section VI-A).  We model each device as throughput
// constants for the two elementary operations the algorithms execute:
//   * MAC  — one multiply-accumulate of a cross-correlation,
//   * ABS  — one |a - b| accumulate of an area-between-curves evaluation.
// The constants are calibrated to the paper's observations (edge tracks 100
// signals in ~900 ms, Fig. 8b; area is ~4.3x faster than correlation on the
// edge; exhaustive search of 8000 signal-sets takes ~12 s on the cloud,
// Fig. 7b), i.e. they encode *interpreted-Python-on-that-hardware* speed,
// not the native speed of this C++ implementation — which is exactly what a
// faithful timing reproduction needs.
#pragma once

#include <cstdint>
#include <string>

namespace emap::sim {

/// Throughput profile of one device.
struct DeviceProfile {
  std::string name;
  double mac_ops_per_sec;   ///< multiply-accumulate throughput
  double abs_ops_per_sec;   ///< absolute-difference-accumulate throughput
  double per_signal_overhead_sec;  ///< bookkeeping per candidate signal

  /// Seconds for `count` multiply-accumulates.
  double seconds_for_macs(double count) const;

  /// Seconds for `count` absolute-difference accumulates.
  double seconds_for_abs(double count) const;
};

/// Raspberry Pi B+ running the Python edge node (paper testbed).
DeviceProfile edge_raspberry_pi();

/// i7-7700HQ running the Python cloud search (paper testbed).
DeviceProfile cloud_i7();

}  // namespace emap::sim
