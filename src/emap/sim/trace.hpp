// Timeline trace of pipeline activity (reproduces paper Fig. 9).
#pragma once

#include <string>
#include <vector>

#include "emap/sim/event_queue.hpp"

namespace emap::sim {

/// Activity categories of the EMAP timing diagram.
enum class ActivityKind {
  kSample,        ///< edge: sampling one 1 s window
  kFilter,        ///< edge: bandpass filtering
  kUpload,        ///< edge -> cloud transmission (Δ_EC)
  kCloudSearch,   ///< cloud: MDB cross-correlation search (Δ_CS)
  kDownload,      ///< cloud -> edge correlation set transfer (Δ_CE)
  kEdgeTrack,     ///< edge: Algorithm 2 iteration
  kPrediction,    ///< edge: anomaly probability output
};

/// Display name of an activity kind.
const char* activity_name(ActivityKind kind);

/// One traced interval.
struct Activity {
  ActivityKind kind;
  SimTime start;
  SimTime end;
  std::string label;
};

/// Ordered activity log with an ASCII renderer for the Fig. 9 bench.
class TimelineTrace {
 public:
  void record(ActivityKind kind, SimTime start, SimTime end,
              std::string label = {});

  const std::vector<Activity>& activities() const { return activities_; }

  /// Total busy time of one activity kind.
  double total_seconds(ActivityKind kind) const;

  /// First activity of a kind, or nullptr.
  const Activity* first(ActivityKind kind) const;

  /// Renders an ASCII Gantt chart (one row per activity kind) covering
  /// [0, horizon] seconds with `columns` time buckets.
  std::string render_ascii(double horizon_sec, std::size_t columns = 100) const;

 private:
  std::vector<Activity> activities_;
};

}  // namespace emap::sim
