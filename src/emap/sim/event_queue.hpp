// Discrete-event simulation core.
//
// The EMAP pipeline's timing analysis (paper Fig. 9) is a schedule of
// overlapping edge and cloud activities; EventQueue provides the virtual
// clock and ordered dispatch that the pipeline's timing mode runs on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace emap::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Ordered event dispatcher with a virtual clock.
///
/// Events scheduled for the same instant fire in scheduling order (stable
/// FIFO tie-break), which keeps pipeline traces deterministic.
class EventQueue {
 public:
  /// Current virtual time; starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, std::function<void()> action);

  /// Schedules `action` `delay` seconds from now (delay >= 0).
  void schedule_in(SimTime delay, std::function<void()> action);

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the clock passes `deadline`.
  void run_until(SimTime deadline);

  /// Runs until the queue drains.
  void run();

  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t sequence;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace emap::sim
