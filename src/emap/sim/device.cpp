#include "emap/sim/device.hpp"

#include "emap/common/error.hpp"

namespace emap::sim {

double DeviceProfile::seconds_for_macs(double count) const {
  require(count >= 0.0, "seconds_for_macs: negative count");
  return count / mac_ops_per_sec;
}

double DeviceProfile::seconds_for_abs(double count) const {
  require(count >= 0.0, "seconds_for_abs: negative count");
  return count / abs_ops_per_sec;
}

DeviceProfile edge_raspberry_pi() {
  // Calibration (paper Fig. 8b): tracking 100 signals by area takes
  // ~900 ms on the Pi's Python runtime.  One tracker iteration spends a
  // few thousand early-exit ABS ops per tracked signal (measured by the
  // Fig. 8b bench), which pins the ABS rate near 4.1e5/s.  The MAC rate is
  // set so the *end-to-end* cross-correlation tracking variant comes out
  // ~4.3x slower (paper Fig. 8b): NCC evaluations have no early exit, so
  // they already execute ~2x the elementary ops; the remaining ~2.15x is
  // the per-op multiply/normalize penalty.
  return DeviceProfile{"raspberry-pi-b+ (python)", 1.9e5, 4.1e5, 5e-4};
}

DeviceProfile cloud_i7() {
  // Calibration (paper Fig. 7b): exhaustive search of 8000 signal-sets
  // (8000 x 744 x 256 ~= 1.52e9 MAC) takes ~12 s -> ~1.27e8 MAC/s for the
  // vectorized correlations, plus ~0.25 ms of per-signal-set overhead
  // (record fetch + array setup in the Python/MongoDB stack).  The
  // overhead term is what makes Algorithm 1's measured speedup ~6.8x
  // rather than the raw evaluation-count ratio.
  return DeviceProfile{"i7-7700hq (python/numpy)", 1.27e8, 3.8e8, 2.5e-4};
}

}  // namespace emap::sim
