#include "emap/sim/event_queue.hpp"

#include "emap/common/error.hpp"

namespace emap::sim {

void EventQueue::schedule_at(SimTime at, std::function<void()> action) {
  require(at >= now_, "EventQueue::schedule_at: cannot schedule in the past");
  events_.push(Event{at, next_sequence_++, std::move(action)});
}

void EventQueue::schedule_in(SimTime delay, std::function<void()> action) {
  require(delay >= 0.0, "EventQueue::schedule_in: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (events_.empty()) {
    return false;
  }
  // Copy out before pop: the action may schedule further events.
  Event event = events_.top();
  events_.pop();
  now_ = event.at;
  event.action();
  return true;
}

void EventQueue::run_until(SimTime deadline) {
  while (!events_.empty() && events_.top().at <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace emap::sim
