#include "emap/sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "emap/common/error.hpp"

namespace emap::sim {

const char* activity_name(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kSample:
      return "sample";
    case ActivityKind::kFilter:
      return "filter";
    case ActivityKind::kUpload:
      return "upload";
    case ActivityKind::kCloudSearch:
      return "cloud-search";
    case ActivityKind::kDownload:
      return "download";
    case ActivityKind::kEdgeTrack:
      return "edge-track";
    case ActivityKind::kPrediction:
      return "prediction";
  }
  return "unknown";
}

void TimelineTrace::record(ActivityKind kind, SimTime start, SimTime end,
                           std::string label) {
  require(end >= start, "TimelineTrace::record: end before start");
  activities_.push_back(Activity{kind, start, end, std::move(label)});
}

double TimelineTrace::total_seconds(ActivityKind kind) const {
  double total = 0.0;
  for (const auto& activity : activities_) {
    if (activity.kind == kind) {
      total += activity.end - activity.start;
    }
  }
  return total;
}

const Activity* TimelineTrace::first(ActivityKind kind) const {
  for (const auto& activity : activities_) {
    if (activity.kind == kind) {
      return &activity;
    }
  }
  return nullptr;
}

std::string TimelineTrace::render_ascii(double horizon_sec,
                                        std::size_t columns) const {
  require(horizon_sec > 0.0, "render_ascii: horizon must be > 0");
  require(columns >= 10, "render_ascii: need at least 10 columns");
  constexpr ActivityKind kRows[] = {
      ActivityKind::kSample,      ActivityKind::kFilter,
      ActivityKind::kUpload,      ActivityKind::kCloudSearch,
      ActivityKind::kDownload,    ActivityKind::kEdgeTrack,
      ActivityKind::kPrediction,
  };
  const double bucket = horizon_sec / static_cast<double>(columns);
  std::ostringstream out;
  for (ActivityKind kind : kRows) {
    std::string row(columns, '.');
    for (const auto& activity : activities_) {
      if (activity.kind != kind || activity.start >= horizon_sec ||
          activity.end <= 0.0) {
        continue;  // entirely outside [0, horizon): nothing to draw
      }
      // Clamp the visible part to [0, horizon] before bucketing, so an
      // activity straddling the horizon fills up to the last bucket
      // instead of being dropped or indexing past the row.
      const double visible_start = std::max(0.0, activity.start);
      const double visible_end = std::min(horizon_sec, activity.end);
      auto first_col = static_cast<std::size_t>(visible_start / bucket);
      auto last_col = static_cast<std::size_t>(visible_end / bucket);
      first_col = std::min(first_col, columns - 1);
      last_col = std::min(last_col, columns - 1);
      for (std::size_t c = first_col; c <= last_col; ++c) {
        row[c] = '#';
      }
    }
    out << activity_name(kind);
    out << std::string(14 - std::min<std::size_t>(
                                13, std::string(activity_name(kind)).size()),
                       ' ');
    out << '|' << row << "|\n";
  }
  out << "time axis: 0 .. " << horizon_sec << " s (" << bucket
      << " s per column)\n";
  return out.str();
}

}  // namespace emap::sim
