// Recording generation: composes background + anomaly morphology + noise
// into labeled single-channel EEG recordings at an arbitrary native rate.
#pragma once

#include <cstdint>
#include <vector>

#include "emap/synth/anomaly.hpp"

namespace emap::synth {

/// A labeled time interval inside a recording.
struct Annotation {
  double start_sec = 0.0;
  double end_sec = 0.0;
  bool anomalous = false;
};

/// Parameters of one synthetic recording.
struct RecordingSpec {
  AnomalyClass cls = AnomalyClass::kNormal;
  std::uint32_t archetype = 0;     ///< archetype within the class
  double fs = 256.0;               ///< native sampling rate [Hz]
  double duration_sec = 60.0;
  double onset_sec = 45.0;         ///< anomaly onset (ignored for normal)
  double amplitude_scale = 10.0;   ///< peak units before bandpass filtering
  double noise_scale = 1.0;        ///< multiplier on the pink-noise floor
  double time_dilation_jitter = 0.003;  ///< per-instance relative clock error
  std::uint64_t seed = 1;          ///< instance seed (noise, jitters)
  bool whole_signal_label = false; ///< corpora without fine annotations label
                                   ///< the complete signal anomalous (paper
                                   ///< Section VI-B)
  /// With precise annotations, the anomalous label starts this many seconds
  /// before onset (the annotated pre-ictal window; the seizure corpora the
  /// paper uses annotate the full progression, so the default covers the
  /// whole prodrome).
  double preictal_label_sec = 180.0;
};

/// A generated recording: samples plus ground-truth annotations.
struct Recording {
  RecordingSpec spec;
  std::vector<double> samples;
  std::vector<Annotation> annotations;

  double fs() const { return spec.fs; }
  double duration_sec() const {
    return spec.fs > 0.0 ? static_cast<double>(samples.size()) / spec.fs : 0.0;
  }
  /// Ground-truth label at time t (true = anomalous).
  bool anomalous_at(double t_sec) const;
};

/// Deterministic recording factory.
class RecordingGenerator {
 public:
  /// Generates the recording described by `spec`.  Identical specs produce
  /// identical recordings.
  Recording generate(const RecordingSpec& spec) const;
};

}  // namespace emap::synth
