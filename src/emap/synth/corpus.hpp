// Synthetic stand-ins for the paper's five source EEG corpora.
//
// The MDB combines five open-access datasets ([21]-[25]: PhysioNet, TUH EEG,
// UCI, BNCI Horizon 2020, Warsaw epilepsy DB).  None is redistributable
// inside this repo, so each is replaced by a synthetic corpus with the same
// *structural* properties: native sampling rate, class mix, amplitude
// scale, and — crucially for Table I — annotation quality (the seizure
// corpora carry precise pre-ictal annotations; the encephalopathy/stroke
// material is whole-signal labeled, as Section VI-B of the paper explains).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emap/synth/generator.hpp"

namespace emap::synth {

/// One synthetic corpus description.
struct CorpusSpec {
  std::string name;
  double native_fs_hz = 256.0;
  std::size_t recording_count = 20;
  /// Long enough for a clean background stretch plus the full prodrome.
  double recording_duration_sec = 250.0;
  /// Class mix (fractions of recordings; remainder is normal).
  double seizure_fraction = 0.0;
  double encephalopathy_fraction = 0.0;
  double stroke_fraction = 0.0;
  /// Precise annotations mark the pre-ictal window; otherwise the whole
  /// signal is labeled anomalous.
  bool precise_annotations = true;
  double amplitude_scale = 10.0;
  double noise_scale = 1.0;
  std::uint64_t seed = 1;
};

/// Per-class instance-variability knobs: the encephalopathy/stroke material
/// the paper draws on is scarcer and more heterogeneous than the seizure
/// corpora, which (together with the whole-signal labels) is what drives
/// their lower Table I accuracy.  Multipliers applied on top of the
/// RecordingSpec defaults.
struct ClassVariability {
  double dilation_jitter_multiplier = 1.0;
  double noise_multiplier = 1.0;
  /// How many of the kArchetypesPerClass phenotypes the public corpora
  /// actually cover.  Evaluation inputs draw from all archetypes, so a
  /// partial covering caps the achievable sensitivity — the paper's
  /// "unavailability of a substantially-labeled dataset" for
  /// encephalopathy and stroke.
  std::uint32_t covered_archetypes = kArchetypesPerClass;
};

/// Variability profile for a class.
ClassVariability class_variability(AnomalyClass cls);

/// The five standard corpora mirroring the paper's sources, with
/// `recordings_per_corpus` recordings each.
std::vector<CorpusSpec> standard_corpora(std::size_t recordings_per_corpus);

/// Generates every recording of a corpus (deterministic in spec.seed).
std::vector<Recording> generate_corpus(const CorpusSpec& spec);

/// Parameters of an evaluation input stream (a "patient" being monitored).
struct EvalInputSpec {
  AnomalyClass cls = AnomalyClass::kSeizure;
  std::uint64_t seed = 1;
  double duration_sec = 300.0;
  /// Onset of the anomaly within the recording; normal inputs ignore it.
  /// Defaults leave room for the Fig. 10 lead-time sweep (up to 120 s
  /// before onset) after a clean background stretch.
  double onset_sec = 240.0;
  double fs = 256.0;
};

/// Generates a monitoring input at the framework's base rate.  Evaluation
/// inputs draw from the same archetype families as the corpora (the
/// "patients" share physiology with the database) but use disjoint seeds.
Recording make_eval_input(const EvalInputSpec& spec);

}  // namespace emap::synth
