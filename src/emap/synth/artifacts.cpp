#include "emap/synth/artifacts.hpp"

#include <cmath>

#include "emap/common/error.hpp"

namespace emap::synth {
namespace {

// Adds a raised-cosine pulse centered at `center` (seconds).
void add_blink(std::vector<double>& signal, double fs, double center,
               double width_s, double amp) {
  const auto begin = static_cast<std::ptrdiff_t>((center - width_s) * fs);
  const auto end = static_cast<std::ptrdiff_t>((center + width_s) * fs);
  for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(0, begin);
       i < std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(signal.size()),
                                    end);
       ++i) {
    const double t = static_cast<double>(i) / fs - center;
    const double u = t / width_s;  // [-1, 1]
    signal[static_cast<std::size_t>(i)] +=
        amp * 0.5 * (1.0 + std::cos(std::numbers::pi * u));
  }
}

}  // namespace

ArtifactInjector::ArtifactInjector(ArtifactConfig config) : config_(config) {
  require(config_.blink_rate_per_min >= 0.0 &&
              config_.emg_rate_per_min >= 0.0 &&
              config_.pop_rate_per_min >= 0.0,
          "ArtifactInjector: rates must be >= 0");
}

std::vector<double> ArtifactInjector::render(std::size_t count,
                                             double fs_hz) const {
  require(fs_hz > 0.0, "ArtifactInjector: fs must be > 0");
  std::vector<double> artifact(count, 0.0);
  const double duration = static_cast<double>(count) / fs_hz;
  Rng rng(config_.seed);

  // Blinks: Poisson-ish arrivals via exponential gaps.
  auto schedule = [&rng, duration](double rate_per_min,
                                   std::vector<double>& times) {
    if (rate_per_min <= 0.0) {
      return;
    }
    const double mean_gap = 60.0 / rate_per_min;
    double t = mean_gap * rng.uniform(0.0, 1.0);
    while (t < duration) {
      times.push_back(t);
      t += -mean_gap * std::log(1.0 - rng.uniform());
    }
  };

  std::vector<double> blink_times;
  schedule(config_.blink_rate_per_min, blink_times);
  for (double t : blink_times) {
    add_blink(artifact, fs_hz, t,
              config_.blink_width_s * rng.uniform(0.8, 1.3),
              config_.blink_amp * rng.uniform(0.7, 1.2));
  }

  std::vector<double> emg_times;
  schedule(config_.emg_rate_per_min, emg_times);
  for (double t0 : emg_times) {
    const auto begin = static_cast<std::size_t>(t0 * fs_hz);
    const auto length =
        static_cast<std::size_t>(config_.emg_duration_s * fs_hz *
                                 rng.uniform(0.6, 1.5));
    for (std::size_t i = begin; i < std::min(count, begin + length); ++i) {
      // Broadband muscle noise with a tapered envelope.
      const double u = static_cast<double>(i - begin) /
                       static_cast<double>(std::max<std::size_t>(1, length));
      const double envelope = std::sin(std::numbers::pi * u);
      artifact[i] += config_.emg_amp * envelope * rng.normal();
    }
  }

  std::vector<double> pop_times;
  schedule(config_.pop_rate_per_min, pop_times);
  for (double t0 : pop_times) {
    const auto begin = static_cast<std::size_t>(t0 * fs_hz);
    const double amp = config_.pop_amp * rng.uniform(0.5, 1.0) *
                       (rng.bernoulli(0.5) ? 1.0 : -1.0);
    for (std::size_t i = begin; i < count; ++i) {
      const double dt = static_cast<double>(i - begin) / fs_hz;
      const double value = amp * std::exp(-dt / config_.pop_decay_s);
      if (std::abs(value) < 0.01) {
        break;
      }
      artifact[i] += value;
    }
  }
  return artifact;
}

Recording ArtifactInjector::apply(const Recording& recording) const {
  Recording contaminated = recording;
  const auto artifact = render(recording.samples.size(), recording.fs());
  for (std::size_t i = 0; i < contaminated.samples.size(); ++i) {
    contaminated.samples[i] += artifact[i];
  }
  return contaminated;
}

}  // namespace emap::synth
