#include "emap/synth/noise.hpp"

#include <bit>
#include <cmath>

#include "emap/common/error.hpp"

namespace emap::synth {

std::vector<double> white_noise(Rng& rng, std::size_t count, double stddev) {
  require(stddev >= 0.0, "white_noise: stddev must be >= 0");
  std::vector<double> noise(count, 0.0);
  for (double& sample : noise) {
    sample = rng.normal(0.0, stddev);
  }
  return noise;
}

PinkNoise::PinkNoise(double stddev) {
  require(stddev >= 0.0, "PinkNoise: stddev must be >= 0");
  // The sum of kRows independent unit-variance rows has variance kRows;
  // scale so the output is ~N(0, stddev^2).
  scale_ = stddev / std::sqrt(static_cast<double>(kRows));
}

double PinkNoise::next(Rng& rng) {
  // Voss-McCartney: row k updates every 2^k samples; tracking the running
  // sum keeps the update O(1) amortized.
  const std::uint64_t previous = counter_;
  ++counter_;
  const std::uint64_t changed = previous ^ counter_;
  for (std::size_t row = 0; row < kRows; ++row) {
    if (changed & (1ULL << row)) {
      running_sum_ -= rows_[row];
      rows_[row] = rng.normal();
      running_sum_ += rows_[row];
    }
  }
  return scale_ * running_sum_;
}

std::vector<double> pink_noise(Rng& rng, std::size_t count, double stddev) {
  PinkNoise generator(stddev);
  std::vector<double> noise(count, 0.0);
  for (double& sample : noise) {
    sample = generator.next(rng);
  }
  return noise;
}

std::vector<double> brown_noise(Rng& rng, std::size_t count, double stddev,
                                double leak) {
  require(leak > 0.0 && leak <= 1.0, "brown_noise: leak must be in (0, 1]");
  require(stddev >= 0.0, "brown_noise: stddev must be >= 0");
  // Steady-state variance of x[n] = leak * x[n-1] + w[n] is
  // sigma_w^2 / (1 - leak^2); solve for the driving noise.
  const double denom = (leak < 1.0) ? std::sqrt(1.0 - leak * leak) : 1.0;
  const double drive = stddev * denom;
  std::vector<double> noise(count, 0.0);
  double state = 0.0;
  for (double& sample : noise) {
    state = leak * state + rng.normal(0.0, drive);
    sample = state;
  }
  return noise;
}

}  // namespace emap::synth
