// EEG artifact injection.
//
// Scalp EEG is "highly susceptible to noise because of the location of
// [the electrodes'] placement" (paper Section III) — this is the stated
// motivation for the 11-40 Hz bandpass.  ArtifactInjector adds the three
// classic contaminations to a clean recording so that robustness can be
// tested end to end:
//   * eye blinks — large slow (~0.5-4 Hz) frontal deflections,
//   * EMG bursts — broadband muscle noise packets (20-100+ Hz),
//   * electrode pops — step/exponential baseline jumps.
#pragma once

#include <cstdint>
#include <vector>

#include "emap/common/rng.hpp"
#include "emap/synth/generator.hpp"

namespace emap::synth {

/// Rates and amplitudes of the injected artifacts.
struct ArtifactConfig {
  double blink_rate_per_min = 12.0;   ///< awake adult blink rate
  double blink_amp = 40.0;            ///< large vs ~10-unit EEG
  double blink_width_s = 0.2;

  double emg_rate_per_min = 2.0;
  double emg_amp = 8.0;
  double emg_duration_s = 0.5;

  double pop_rate_per_min = 0.3;
  double pop_amp = 60.0;
  double pop_decay_s = 1.5;

  std::uint64_t seed = 99;
};

/// Deterministic artifact generator.
class ArtifactInjector {
 public:
  explicit ArtifactInjector(ArtifactConfig config = {});

  /// Returns `recording` with artifacts added (annotations unchanged: the
  /// artifacts are contamination, not anomalies).
  Recording apply(const Recording& recording) const;

  /// The artifact waveform alone (same length as the recording), useful
  /// for spectral assertions.
  std::vector<double> render(std::size_t count, double fs_hz) const;

 private:
  ArtifactConfig config_;
};

}  // namespace emap::synth
