#include "emap/synth/corpus.hpp"

#include "emap/common/rng.hpp"

namespace emap::synth {

std::vector<CorpusSpec> standard_corpora(std::size_t recordings_per_corpus) {
  std::vector<CorpusSpec> corpora;

  // [21] PhysioNet (CHB-MIT style): 256 Hz, seizure-rich, finely annotated.
  CorpusSpec physionet;
  physionet.name = "physionet-chbmit";
  physionet.native_fs_hz = 256.0;
  physionet.recording_count = recordings_per_corpus;
  physionet.seizure_fraction = 0.50;
  physionet.precise_annotations = true;
  physionet.seed = 101;
  corpora.push_back(physionet);

  // [22] TUH EEG corpus: 250 Hz, mixed pathology; encephalopathy material
  // is only session-level ("whole signal") labeled.
  CorpusSpec tuh;
  tuh.name = "tuh-eeg";
  tuh.native_fs_hz = 250.0;
  tuh.recording_count = recordings_per_corpus;
  tuh.seizure_fraction = 0.25;
  tuh.encephalopathy_fraction = 0.30;
  tuh.precise_annotations = false;
  tuh.seed = 202;
  corpora.push_back(tuh);

  // [23] UCI epileptic seizure recognition set: 173.61 Hz (Bonn lineage).
  CorpusSpec uci;
  uci.name = "uci-epilepsy";
  uci.native_fs_hz = 173.61;
  uci.recording_count = recordings_per_corpus;
  uci.seizure_fraction = 0.50;
  uci.precise_annotations = true;
  uci.amplitude_scale = 9.0;
  uci.seed = 303;
  corpora.push_back(uci);

  // [24] BNCI Horizon 2020: 512 Hz, includes stroke rehabilitation
  // recordings labeled per subject, not per segment.
  CorpusSpec bnci;
  bnci.name = "bnci-horizon";
  bnci.native_fs_hz = 512.0;
  bnci.recording_count = recordings_per_corpus;
  bnci.stroke_fraction = 0.40;
  bnci.precise_annotations = false;
  bnci.amplitude_scale = 11.0;
  bnci.seed = 404;
  corpora.push_back(bnci);

  // [25] Warsaw open epilepsy DB: 100 Hz clinical recordings; mixed
  // encephalopathy/stroke with coarse labels.
  CorpusSpec warsaw;
  warsaw.name = "warsaw-epilepsy";
  warsaw.native_fs_hz = 100.0;
  warsaw.recording_count = recordings_per_corpus;
  warsaw.encephalopathy_fraction = 0.25;
  warsaw.stroke_fraction = 0.25;
  warsaw.precise_annotations = false;
  warsaw.noise_scale = 1.2;
  warsaw.seed = 505;
  corpora.push_back(warsaw);

  return corpora;
}

ClassVariability class_variability(AnomalyClass cls) {
  switch (cls) {
    case AnomalyClass::kEncephalopathy:
      return ClassVariability{3.5, 1.35, 3};
    case AnomalyClass::kStroke:
      return ClassVariability{3.5, 1.3, 3};
    case AnomalyClass::kSeizure:
    case AnomalyClass::kNormal:
      break;
  }
  return ClassVariability{};
}

std::vector<Recording> generate_corpus(const CorpusSpec& spec) {
  RecordingGenerator generator;
  Rng rng(spec.seed);
  std::vector<Recording> recordings;
  recordings.reserve(spec.recording_count);

  const auto seizure_count = static_cast<std::size_t>(
      spec.seizure_fraction * static_cast<double>(spec.recording_count));
  const auto enceph_count = static_cast<std::size_t>(
      spec.encephalopathy_fraction * static_cast<double>(spec.recording_count));
  const auto stroke_count = static_cast<std::size_t>(
      spec.stroke_fraction * static_cast<double>(spec.recording_count));

  for (std::size_t i = 0; i < spec.recording_count; ++i) {
    RecordingSpec recording_spec;
    if (i < seizure_count) {
      recording_spec.cls = AnomalyClass::kSeizure;
    } else if (i < seizure_count + enceph_count) {
      recording_spec.cls = AnomalyClass::kEncephalopathy;
    } else if (i < seizure_count + enceph_count + stroke_count) {
      recording_spec.cls = AnomalyClass::kStroke;
    } else {
      recording_spec.cls = AnomalyClass::kNormal;
    }
    const std::uint32_t covered =
        class_variability(recording_spec.cls).covered_archetypes;
    recording_spec.archetype =
        static_cast<std::uint32_t>(rng.uniform_index(covered));
    recording_spec.fs = spec.native_fs_hz;
    recording_spec.duration_sec = spec.recording_duration_sec;
    // The onset sits late in the recording: a clean background stretch,
    // then the full prodrome, then onset.  The clean stretch of anomalous
    // recordings matters: under whole-signal labels it becomes
    // anomalous-labeled normal-looking material — the source of the
    // framework's ~15% false-positive rate (paper Section VI-B).
    recording_spec.onset_sec =
        spec.recording_duration_sec * rng.uniform(0.8, 0.92);
    const ClassVariability variability =
        class_variability(recording_spec.cls);
    recording_spec.amplitude_scale = spec.amplitude_scale;
    recording_spec.noise_scale =
        spec.noise_scale * variability.noise_multiplier;
    recording_spec.time_dilation_jitter *=
        variability.dilation_jitter_multiplier;
    recording_spec.seed = spec.seed * 1000003ULL + i;
    recording_spec.whole_signal_label =
        !spec.precise_annotations &&
        recording_spec.cls != AnomalyClass::kNormal;
    recordings.push_back(generator.generate(recording_spec));
  }
  return recordings;
}

Recording make_eval_input(const EvalInputSpec& spec) {
  RecordingGenerator generator;
  Rng rng(0xEE77AA11ULL ^ spec.seed);
  RecordingSpec recording_spec;
  recording_spec.cls = spec.cls;
  recording_spec.archetype =
      static_cast<std::uint32_t>(rng.uniform_index(kArchetypesPerClass));
  recording_spec.fs = spec.fs;
  recording_spec.duration_sec = spec.duration_sec;
  recording_spec.onset_sec = spec.onset_sec;
  const ClassVariability variability = class_variability(spec.cls);
  recording_spec.noise_scale *= variability.noise_multiplier;
  recording_spec.time_dilation_jitter *=
      variability.dilation_jitter_multiplier;
  recording_spec.seed = 0x5EEDBA5EULL + spec.seed * 7919ULL;
  recording_spec.whole_signal_label = false;
  return generator.generate(recording_spec);
}

}  // namespace emap::synth
