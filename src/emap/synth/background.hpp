// Normal (inter-ictal) EEG background model.
//
// A band-mixture model: one or two rhythmic tones per classic EEG band plus
// a pink-noise floor.  The rhythmic tones are deterministic archetype
// functions of time (see oscillator.hpp) so that same-archetype recordings
// correlate; the pink noise is per-instance.
#pragma once

#include <cstdint>
#include <vector>

#include "emap/common/rng.hpp"
#include "emap/synth/oscillator.hpp"

namespace emap::synth {

/// Per-band peak amplitudes of the background mixture, in scaled EEG units
/// (the repo-wide calibration targets ~7 units RMS after the 11-40 Hz
/// bandpass; see DESIGN.md Section 5).
struct BandMix {
  double delta_amp = 6.0;  ///< 1-4 Hz (mostly removed by the paper filter)
  double theta_amp = 3.5;  ///< 4-8 Hz
  double alpha_amp = 4.5;  ///< 8-13 Hz (upper alpha passes the filter)
  double beta_amp = 12.0;  ///< 13-30 Hz (the band the filter keeps)
  double noise_stddev = 1.4;
};

/// Deterministic rhythm bank of a background archetype.
///
/// Construction derives tone frequencies/phases from the archetype id alone,
/// so every BackgroundModel with the same id produces the same underlying
/// rhythms; instance-level variation comes from the noise stream and from
/// the amplitude scale supplied at render time.
class BackgroundModel {
 public:
  BackgroundModel(std::uint32_t archetype_id, const BandMix& mix);

  /// Deterministic rhythmic part at absolute time t (no noise).
  double rhythm_value(double t) const;

  /// Renders `count` samples at `fs` starting at absolute time `t0`:
  /// amplitude_scale * rhythm + pink noise drawn from `noise_rng`.
  std::vector<double> render(double t0, double fs, std::size_t count,
                             double amplitude_scale, Rng& noise_rng) const;

  const std::vector<ToneSpec>& tones() const { return tones_; }

 private:
  std::vector<ToneSpec> tones_;
  double noise_stddev_ = 0.0;
};

}  // namespace emap::synth
