#include "emap/synth/anomaly.hpp"

#include <cmath>
#include <numbers>
#include <string>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::synth {
namespace {

double smoothstep01(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x * x * (3.0 - 2.0 * x);
}

double sigmoid(double x) {
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

const char* anomaly_name(AnomalyClass cls) {
  switch (cls) {
    case AnomalyClass::kNormal:
      return "normal";
    case AnomalyClass::kSeizure:
      return "seizure";
    case AnomalyClass::kEncephalopathy:
      return "encephalopathy";
    case AnomalyClass::kStroke:
      return "stroke";
  }
  return "unknown";
}

AnomalyClass anomaly_from_name(std::string_view name) {
  for (AnomalyClass cls :
       {AnomalyClass::kNormal, AnomalyClass::kSeizure,
        AnomalyClass::kEncephalopathy, AnomalyClass::kStroke}) {
    if (name == anomaly_name(cls)) {
      return cls;
    }
  }
  throw InvalidArgument("anomaly_from_name: unknown class '" +
                        std::string(name) + "'");
}

Morphology::Morphology(AnomalyClass cls, std::uint32_t archetype_id)
    : cls_(cls), archetype_(archetype_id % kArchetypesPerClass) {
  require(cls != AnomalyClass::kNormal,
          "Morphology: normal background has no anomaly morphology");
  // Archetype constants are a pure function of (class, archetype id).
  Rng rng(0xC1A551F1EDULL ^ (static_cast<std::uint64_t>(cls) << 32) ^
          archetype_);
  constexpr double two_pi = 2.0 * std::numbers::pi;
  switch (cls_) {
    case AnomalyClass::kSeizure: {
      // Recruiting rhythm: fast rhythmic activity whose frequency drifts
      // slowly downward through the prodrome.
      ToneSpec main;
      main.freq_hz = rng.uniform(13.5, 17.0);
      main.amp = 1.0;
      main.phase = rng.uniform(0.0, two_pi);
      main.drift_hz_per_s = -rng.uniform(0.008, 0.015);
      tones_.push_back(main);
      ToneSpec harmonic;
      harmonic.freq_hz = 1.9 * main.freq_hz;
      harmonic.amp = 0.35;
      harmonic.phase = rng.uniform(0.0, two_pi);
      harmonic.drift_hz_per_s = 1.9 * main.drift_hz_per_s;
      tones_.push_back(harmonic);
      spike_wave_.rate_hz = rng.uniform(2.6, 3.4);
      spike_wave_.spike_amp = 3.0;
      spike_wave_.spike_width_s = 0.018;
      spike_wave_.wave_amp = 1.4;
      spike_wave_.phase_s = rng.uniform(0.0, 0.3);
      break;
    }
    case AnomalyClass::kEncephalopathy: {
      // Burst-suppression packets of mid-beta activity.
      ToneSpec burst;
      burst.freq_hz = rng.uniform(13.0, 16.0);
      burst.amp = 1.0;
      burst.phase = rng.uniform(0.0, two_pi);
      tones_.push_back(burst);
      ToneSpec companion;
      companion.freq_hz = burst.freq_hz + rng.uniform(3.0, 5.0);
      companion.amp = 0.4;
      companion.phase = rng.uniform(0.0, two_pi);
      tones_.push_back(companion);
      spike_wave_.rate_hz = rng.uniform(1.6, 2.1);  // triphasic-like
      spike_wave_.spike_amp = 1.2;
      spike_wave_.spike_width_s = 0.035;
      spike_wave_.wave_amp = 0.6;
      spike_wave_.phase_s = rng.uniform(0.0, 0.4);
      gate_period_s_ = rng.uniform(2.0, 3.0);
      gate_duty_ = rng.uniform(0.6, 0.75);
      break;
    }
    case AnomalyClass::kStroke: {
      // Focal attenuation with heavy slow AM and periodic sharp waves.
      ToneSpec slow_beta;
      slow_beta.freq_hz = rng.uniform(11.0, 13.5);
      slow_beta.amp = 1.0;
      slow_beta.phase = rng.uniform(0.0, two_pi);
      slow_beta.am_freq_hz = rng.uniform(0.3, 0.6);
      slow_beta.am_depth = 0.7;
      tones_.push_back(slow_beta);
      spike_wave_.rate_hz = rng.uniform(0.8, 1.2);  // periodic sharp waves
      spike_wave_.spike_amp = 1.8;
      spike_wave_.spike_width_s = 0.03;
      spike_wave_.wave_amp = 0.5;
      spike_wave_.phase_s = rng.uniform(0.0, 0.5);
      break;
    }
    case AnomalyClass::kNormal:
      break;  // unreachable (precondition above)
  }
}

double Morphology::intensity(double t_rel) const {
  // Two-phase prodrome: a fast early shift (the electrographic signature
  // becomes visible within ~20% of the prodrome, which is what makes the
  // 120 s lead of Fig. 10 predictable) followed by a slow drift to full
  // involvement at onset.
  if (t_rel >= 0.0) {
    return 1.0;
  }
  const double u = (t_rel + kProdromeSeconds) / kProdromeSeconds;
  if (u <= 0.0) {
    return 0.0;
  }
  const double fast = smoothstep01(u / 0.1);
  return 0.55 * fast + 0.45 * u;
}

double Morphology::background_gain(double t_rel) const {
  // The anomaly progressively displaces normal rhythms; stroke attenuates
  // the background hardest (that *is* the anomaly).
  const double occupied = intensity(t_rel);
  const double floor = (cls_ == AnomalyClass::kStroke) ? 0.15 : 0.35;
  return 1.0 - (1.0 - floor) * occupied;
}

double Morphology::value(double t_rel) const {
  switch (cls_) {
    case AnomalyClass::kSeizure:
      return seizure_value(t_rel);
    case AnomalyClass::kEncephalopathy:
      return encephalopathy_value(t_rel);
    case AnomalyClass::kStroke:
      return stroke_value(t_rel);
    case AnomalyClass::kNormal:
      break;
  }
  return 0.0;
}

double Morphology::seizure_value(double t_rel) const {
  // Pre-ictal: growing rhythmic activity; ictal (t_rel >= 0): spike-wave
  // complexes dominate, rhythm persists underneath.
  const double rhythm = tone_bank_value(tones_, t_rel);
  if (t_rel < 0.0) {
    return rhythm;
  }
  const double ictal_blend = smoothstep01(t_rel / 2.0);  // 2 s transition
  return rhythm * (1.0 - 0.4 * ictal_blend) +
         ictal_blend * spike_wave_value(spike_wave_, t_rel);
}

double Morphology::encephalopathy_value(double t_rel) const {
  // Smooth burst-suppression gate in [0, 1].
  const double phase =
      std::fmod(t_rel / gate_period_s_ + 10000.0, 1.0);  // keep positive
  const double edge = 0.15;  // transition fraction of the period
  double gate;
  if (phase < gate_duty_) {
    gate = smoothstep01(phase / edge);
  } else {
    gate = 1.0 - smoothstep01((phase - gate_duty_) / edge);
  }
  return gate * tone_bank_value(tones_, t_rel) +
         0.6 * spike_wave_value(spike_wave_, t_rel);
}

double Morphology::stroke_value(double t_rel) const {
  // Amplitude decays after onset (focal attenuation) while periodic sharp
  // transients persist.
  const double attenuation = 1.0 - 0.5 * sigmoid(t_rel / 15.0);
  return attenuation * tone_bank_value(tones_, t_rel) +
         spike_wave_value(spike_wave_, t_rel);
}

}  // namespace emap::synth
