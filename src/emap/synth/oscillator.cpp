#include "emap/synth/oscillator.hpp"

#include <cmath>
#include <numbers>

#include "emap/common/error.hpp"

namespace emap::synth {

double tone_value(const ToneSpec& tone, double t) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  // Instantaneous phase of a linear chirp: 2*pi*(f0*t + 0.5*k*t^2) + phi.
  const double phase =
      two_pi * (tone.freq_hz * t + 0.5 * tone.drift_hz_per_s * t * t) +
      tone.phase;
  double amplitude = tone.amp;
  if (tone.am_freq_hz > 0.0 && tone.am_depth > 0.0) {
    amplitude *= 1.0 - tone.am_depth * 0.5 *
                           (1.0 + std::sin(two_pi * tone.am_freq_hz * t));
  }
  return amplitude * std::sin(phase);
}

double tone_bank_value(std::span<const ToneSpec> tones, double t) {
  double acc = 0.0;
  for (const auto& tone : tones) {
    acc += tone_value(tone, t);
  }
  return acc;
}

std::vector<double> render_tone_bank(std::span<const ToneSpec> tones,
                                     double t0, double fs, std::size_t count) {
  require(fs > 0.0, "render_tone_bank: fs must be > 0");
  std::vector<double> samples(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    samples[i] = tone_bank_value(tones, t0 + static_cast<double>(i) / fs);
  }
  return samples;
}

double spike_wave_value(const SpikeWaveSpec& spec, double t) {
  require(spec.rate_hz > 0.0, "spike_wave_value: rate must be > 0");
  const double period = 1.0 / spec.rate_hz;
  // Position within the current complex, in [0, period).
  double local = std::fmod(t - spec.phase_s, period);
  if (local < 0.0) {
    local += period;
  }
  // Spike centered at 15% of the period.
  const double spike_center = 0.15 * period;
  const double dt = local - spike_center;
  const double spike =
      spec.spike_amp *
      std::exp(-0.5 * (dt * dt) / (spec.spike_width_s * spec.spike_width_s));
  // Slow wave occupies the remaining 70% of the period after the spike.
  double wave = 0.0;
  const double wave_start = 0.25 * period;
  const double wave_len = 0.70 * period;
  if (local >= wave_start && local < wave_start + wave_len) {
    const double u = (local - wave_start) / wave_len;  // [0, 1)
    wave = -spec.wave_amp * std::sin(std::numbers::pi * u);
  }
  return spike + wave;
}

std::vector<double> render_spike_wave(const SpikeWaveSpec& spec, double t0,
                                      double fs, std::size_t count) {
  require(fs > 0.0, "render_spike_wave: fs must be > 0");
  std::vector<double> samples(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    samples[i] = spike_wave_value(spec, t0 + static_cast<double>(i) / fs);
  }
  return samples;
}

}  // namespace emap::synth
