// Deterministic oscillator primitives for EEG morphologies.
//
// EMAP's search works because real EEG is oscillatory and stereotyped:
// signals of the same physiological state phase-align somewhere in a
// 1000-sample signal-set.  These primitives are *deterministic functions of
// continuous time* so that two recordings of the same archetype correlate
// highly once Algorithm 1 finds the right alignment.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emap::synth {

/// One rhythmic component: a sinusoid with optional linear frequency drift
/// and sinusoidal amplitude modulation.
struct ToneSpec {
  double freq_hz = 10.0;        ///< base frequency
  double amp = 1.0;             ///< peak amplitude
  double phase = 0.0;           ///< phase at t = 0 (radians)
  double drift_hz_per_s = 0.0;  ///< df/dt (chirp rate)
  double am_freq_hz = 0.0;      ///< amplitude-modulation rate (0 = none)
  double am_depth = 0.0;        ///< AM depth in [0, 1]
};

/// Value of a single tone at absolute time t (seconds).
double tone_value(const ToneSpec& tone, double t);

/// Sum of `tones` evaluated at absolute time t.
double tone_bank_value(std::span<const ToneSpec> tones, double t);

/// Renders `count` samples of the tone bank starting at `t0`, spaced 1/fs.
std::vector<double> render_tone_bank(std::span<const ToneSpec> tones,
                                     double t0, double fs, std::size_t count);

/// Spike-and-wave complex train, the classic 3 Hz generalized
/// seizure morphology: each period contains a sharp Gaussian spike followed
/// by a half-sine slow wave.  Deterministic in absolute time.
struct SpikeWaveSpec {
  double rate_hz = 3.0;       ///< complexes per second
  double spike_amp = 1.0;     ///< spike peak amplitude
  double spike_width_s = 0.02;///< Gaussian sigma of the spike
  double wave_amp = 0.5;      ///< slow-wave amplitude
  double phase_s = 0.0;       ///< time offset of the first complex
};

/// Value of the spike-wave train at absolute time t (seconds).
double spike_wave_value(const SpikeWaveSpec& spec, double t);

/// Renders `count` samples of the spike-wave train starting at `t0`.
std::vector<double> render_spike_wave(const SpikeWaveSpec& spec, double t0,
                                      double fs, std::size_t count);

}  // namespace emap::synth
