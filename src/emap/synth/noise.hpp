// Noise generators for the synthetic EEG model.
//
// Scalp EEG background is well approximated by 1/f ("pink") noise plus
// rhythmic band activity; the generators here provide the stochastic floor
// under the deterministic morphologies in anomaly.hpp.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "emap/common/rng.hpp"

namespace emap::synth {

/// White Gaussian noise, N(0, stddev^2).
std::vector<double> white_noise(Rng& rng, std::size_t count, double stddev);

/// Streaming pink (1/f) noise via the Voss-McCartney algorithm with 16 rows.
/// Output standard deviation is approximately `stddev`.
class PinkNoise {
 public:
  explicit PinkNoise(double stddev = 1.0);

  /// Next pink-noise sample using entropy from `rng`.
  double next(Rng& rng);

 private:
  static constexpr std::size_t kRows = 16;
  std::array<double, kRows> rows_{};
  double running_sum_ = 0.0;
  std::uint64_t counter_ = 0;
  double scale_ = 1.0;
};

/// Block of pink noise with standard deviation approximately `stddev`.
std::vector<double> pink_noise(Rng& rng, std::size_t count, double stddev);

/// Brownian (integrated white) noise with a leak factor that bounds the
/// variance; used for slow baseline wander.  leak in (0, 1].
std::vector<double> brown_noise(Rng& rng, std::size_t count, double stddev,
                                double leak = 0.99);

}  // namespace emap::synth
