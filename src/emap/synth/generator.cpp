#include "emap/synth/generator.hpp"

#include <cmath>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/synth/background.hpp"
#include "emap/synth/noise.hpp"

namespace emap::synth {

bool Recording::anomalous_at(double t_sec) const {
  for (const auto& annotation : annotations) {
    if (t_sec >= annotation.start_sec && t_sec < annotation.end_sec) {
      return annotation.anomalous;
    }
  }
  return false;
}

Recording RecordingGenerator::generate(const RecordingSpec& spec) const {
  require(spec.fs > 0.0, "RecordingGenerator: fs must be > 0");
  require(spec.duration_sec > 0.0,
          "RecordingGenerator: duration must be > 0");
  const auto count =
      static_cast<std::size_t>(std::llround(spec.duration_sec * spec.fs));
  require(count > 0, "RecordingGenerator: empty recording");

  Rng instance_rng(spec.seed);
  // Instance-level variation: a small clock-rate error (slowly decorrelates
  // same-archetype instances over seconds, which is what gives the edge
  // tracker its elimination dynamics), an amplitude scale, and a random
  // phase offset of the background rhythm bank.
  const double dilation =
      1.0 + instance_rng.normal(0.0, spec.time_dilation_jitter);
  const double amp_jitter = instance_rng.uniform(0.9, 1.1);
  const double background_phase_shift = instance_rng.uniform(0.0, 100.0);

  const BandMix mix;  // calibrated defaults (DESIGN.md Section 5)
  const BackgroundModel background(spec.archetype, mix);

  Recording recording;
  recording.spec = spec;
  recording.samples.assign(count, 0.0);

  Rng noise_rng = instance_rng.fork(1);
  PinkNoise noise(mix.noise_stddev * spec.noise_scale);

  // BandMix amplitudes are calibrated for the default amplitude_scale;
  // morphology
  // waveforms are unit amplitude and get the full scale.
  const double bg_scale = spec.amplitude_scale * amp_jitter / 10.0;
  const double anomaly_amp = spec.amplitude_scale * amp_jitter;
  if (spec.cls == AnomalyClass::kNormal) {
    for (std::size_t i = 0; i < count; ++i) {
      const double t = static_cast<double>(i) / spec.fs * dilation;
      recording.samples[i] =
          bg_scale * background.rhythm_value(t + background_phase_shift) +
          noise.next(noise_rng);
    }
    recording.annotations.push_back(
        Annotation{0.0, spec.duration_sec, false});
    return recording;
  }

  const Morphology morphology(spec.cls, spec.archetype);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / spec.fs;
    // Time relative to onset, with the instance clock error applied to the
    // *relative* axis so same-archetype recordings align on progression.
    const double t_rel = (t - spec.onset_sec) * dilation;
    const double weight = morphology.intensity(t_rel);
    const double bg_gain = morphology.background_gain(t_rel);
    recording.samples[i] =
        bg_scale * bg_gain *
            background.rhythm_value(t * dilation + background_phase_shift) +
        anomaly_amp * weight * morphology.value(t_rel) +
        noise.next(noise_rng);
  }

  if (spec.whole_signal_label) {
    recording.annotations.push_back(Annotation{0.0, spec.duration_sec, true});
  } else {
    const double anomalous_from =
        std::max(0.0, spec.onset_sec - spec.preictal_label_sec);
    if (anomalous_from > 0.0) {
      recording.annotations.push_back(Annotation{0.0, anomalous_from, false});
    }
    recording.annotations.push_back(
        Annotation{anomalous_from, spec.duration_sec, true});
  }
  return recording;
}

}  // namespace emap::synth
