#include "emap/synth/background.hpp"

#include "emap/synth/noise.hpp"

namespace emap::synth {

BackgroundModel::BackgroundModel(std::uint32_t archetype_id,
                                 const BandMix& mix)
    : noise_stddev_(mix.noise_stddev) {
  // Archetype-seeded generator: frequencies and phases are pure functions of
  // the archetype id, giving each archetype a stable spectral fingerprint.
  Rng archetype_rng(0xBADC0FFEE0DDF00DULL ^ archetype_id);
  auto add_tone = [&](double lo_hz, double hi_hz, double amp,
                      double am_lo = 0.0, double am_hi = 0.0) {
    ToneSpec tone;
    tone.freq_hz = archetype_rng.uniform(lo_hz, hi_hz);
    tone.amp = amp;
    tone.phase = archetype_rng.uniform(0.0, 6.283185307179586);
    if (am_hi > 0.0) {
      tone.am_freq_hz = archetype_rng.uniform(am_lo, am_hi);
      tone.am_depth = archetype_rng.uniform(0.45, 0.75);
    }
    tones_.push_back(tone);
  };
  add_tone(1.0, 3.5, mix.delta_amp);
  add_tone(4.5, 7.5, mix.theta_amp);
  add_tone(9.0, 12.5, mix.alpha_amp, 0.08, 0.2);
  // Two beta tones dominate what survives the 11-40 Hz bandpass; the
  // waxing-waning AM envelope is what decorrelates two instances of the
  // same archetype over a few seconds — the elimination clock of the edge
  // tracker.
  add_tone(14.0, 19.0, mix.beta_amp, 0.1, 0.3);
  add_tone(20.0, 26.0, 0.45 * mix.beta_amp, 0.1, 0.3);
}

double BackgroundModel::rhythm_value(double t) const {
  return tone_bank_value(tones_, t);
}

std::vector<double> BackgroundModel::render(double t0, double fs,
                                            std::size_t count,
                                            double amplitude_scale,
                                            Rng& noise_rng) const {
  std::vector<double> samples(count, 0.0);
  PinkNoise noise(noise_stddev_);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = t0 + static_cast<double>(i) / fs;
    samples[i] = amplitude_scale * rhythm_value(t) + noise.next(noise_rng);
  }
  return samples;
}

}  // namespace emap::synth
