// Anomaly classes and deterministic anomaly morphologies.
//
// The paper evaluates three neurological disorders: seizure,
// encephalopathy, and stroke (Table I).  Each class is modelled as a small
// family of *archetypes* — deterministic waveforms, functions of time
// relative to the anomaly onset — so that two recordings of the same
// archetype correlate strongly once aligned, mirroring the redundancy of
// the paper's mega-database.  Clinical inspiration (synthetic proxies, not
// diagnostic models):
//   * seizure: pre-ictal rhythmic build-up with a slow downward frequency
//     drift ("recruiting rhythm"), then 3 Hz spike-and-wave ictal activity;
//   * encephalopathy: burst-suppression — packets of 13-16 Hz activity
//     gated by a slow on/off envelope, plus low-rate triphasic discharges;
//   * stroke: focal attenuation — declining amplitude, strong slow
//     amplitude modulation, periodic sharp transients.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "emap/synth/oscillator.hpp"

namespace emap::synth {

/// The classes EMAP distinguishes: normal background and three anomalies.
enum class AnomalyClass : std::uint8_t {
  kNormal = 0,
  kSeizure = 1,
  kEncephalopathy = 2,
  kStroke = 3,
};

/// Stable display name ("normal", "seizure", ...).
const char* anomaly_name(AnomalyClass cls);

/// Parses a display name back to the class; throws InvalidArgument on
/// unknown names.
AnomalyClass anomaly_from_name(std::string_view name);

/// All three anomalous classes, in paper order.
inline constexpr AnomalyClass kAnomalyClasses[] = {
    AnomalyClass::kSeizure,
    AnomalyClass::kEncephalopathy,
    AnomalyClass::kStroke,
};

/// Number of distinct archetypes ("patient phenotypes") per class.
inline constexpr std::uint32_t kArchetypesPerClass = 4;

/// Deterministic anomaly waveform for one (class, archetype) pair.
///
/// All quantities are functions of t_rel, the time in seconds relative to
/// the anomaly onset (negative during the prodrome).  Two recordings of the
/// same archetype whose t_rel axes are aligned produce identical morphology
/// values; instance-level differences (noise, small time dilation) are
/// added by the RecordingGenerator.
class Morphology {
 public:
  /// Seconds before onset at which the prodrome (pre-anomaly progression)
  /// begins; intensity ramps from 0 to ~1 over this interval.
  static constexpr double kProdromeSeconds = 180.0;

  Morphology(AnomalyClass cls, std::uint32_t archetype_id);

  AnomalyClass anomaly_class() const { return cls_; }
  std::uint32_t archetype() const { return archetype_; }

  /// Raw anomaly waveform value at t_rel (unit amplitude scale).
  double value(double t_rel) const;

  /// Blend weight of the anomaly process vs the normal background in
  /// [0, 1]: 0 well before the prodrome, ramping to 1 at onset.
  double intensity(double t_rel) const;

  /// How much the normal background is suppressed as the anomaly takes
  /// over, in [0, 1] (1 = background untouched).
  double background_gain(double t_rel) const;

 private:
  double seizure_value(double t_rel) const;
  double encephalopathy_value(double t_rel) const;
  double stroke_value(double t_rel) const;

  AnomalyClass cls_;
  std::uint32_t archetype_ = 0;
  std::vector<ToneSpec> tones_;   // class-specific rhythm bank
  SpikeWaveSpec spike_wave_;      // ictal / discharge component
  double gate_period_s_ = 2.5;    // encephalopathy burst-suppression period
  double gate_duty_ = 0.5;
};

}  // namespace emap::synth
