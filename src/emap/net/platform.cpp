#include "emap/net/platform.hpp"

#include "emap/common/error.hpp"

namespace emap::net {
namespace {

// Representative sustained per-user figures (Steer [19], Parkvall [20]).
constexpr PlatformParams kTable[] = {
    {"HSPA", 2.0, 7.2, 35.0},
    {"HSPA+", 11.5, 42.0, 25.0},
    {"LTE", 50.0, 100.0, 10.0},
    {"LTE-A", 500.0, 1000.0, 5.0},
    {"WiMax R1", 14.0, 46.0, 30.0},
    {"WiMax R2", 140.0, 340.0, 12.0},
};

}  // namespace

const PlatformParams& platform_params(CommPlatform platform) {
  const auto index = static_cast<std::size_t>(platform);
  require(index < std::size(kTable), "platform_params: unknown platform");
  return kTable[index];
}

const char* platform_name(CommPlatform platform) {
  return platform_params(platform).name;
}

}  // namespace emap::net
