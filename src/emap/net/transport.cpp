#include "emap/net/transport.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "emap/common/crc32.hpp"
#include "emap/common/error.hpp"
#include "emap/obs/profiler.hpp"

namespace emap::net {
namespace {

constexpr std::uint32_t kUploadMagic = 0x55504d45u;     // "EMPU" (V1)
constexpr std::uint32_t kDownloadMagic = 0x44504d45u;   // "EMPD" (V1)
constexpr std::uint32_t kUploadMagicV2 = 0x32554d45u;   // "EMU2"
constexpr std::uint32_t kDownloadMagicV2 = 0x32444d45u; // "EMD2"
constexpr std::size_t kCrcBytes = 4;
/// V2 inserts trace_id(8) + parent_span(8) right after the magic.
constexpr std::size_t kTraceHeaderBytes = 16;
/// Fixed bytes per correlation entry before its samples:
/// id(8) + omega(4) + beta(4) + anomalous(1) + class(1) + scale(4) +
/// count(4).
constexpr std::size_t kEntryHeaderBytes = 26;

void write_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void write_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void write_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void write_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t raw = 0;
  std::memcpy(&raw, &v, sizeof(raw));
  write_u32(out, raw);
}

/// Appends the CRC-32 of everything encoded so far.
void seal(std::vector<std::uint8_t>& out) {
  write_u32(out, crc32(out.data(), out.size()));
}

/// Verifies the CRC-32 trailer and returns the protected payload view.
std::span<const std::uint8_t> check_seal(std::span<const std::uint8_t> bytes,
                                         const char* what) {
  if (bytes.size() < kCrcBytes) {
    throw CorruptData(std::string(what) + ": message shorter than its CRC");
  }
  const std::size_t payload_size = bytes.size() - kCrcBytes;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[payload_size + i]) << (8 * i);
  }
  if (stored != crc32(bytes.data(), payload_size)) {
    throw CorruptData(std::string(what) + ": CRC mismatch");
  }
  return bytes.first(payload_size);
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[cursor_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[cursor_] | (static_cast<std::uint16_t>(bytes_[cursor_ + 1]) << 8));
    cursor_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += 8;
    return v;
  }
  float f32() {
    const std::uint32_t raw = u32();
    float v = 0.0f;
    std::memcpy(&v, &raw, sizeof(v));
    return v;
  }
  bool at_end() const { return cursor_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  void need(std::size_t n) const {
    if (cursor_ + n > bytes_.size()) {
      throw CorruptData("transport: truncated message");
    }
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

// Quantizes samples to int16 with a shared scale.  Returns the scale.
float quantize(const std::vector<double>& samples,
               std::vector<std::uint8_t>& out) {
  double peak = 1e-9;
  for (double s : samples) {
    peak = std::max(peak, std::abs(s));
  }
  const float scale = static_cast<float>(peak / 32767.0);
  write_f32(out, scale);
  write_u32(out, static_cast<std::uint32_t>(samples.size()));
  for (double s : samples) {
    const auto q = static_cast<std::int16_t>(
        std::clamp(std::lround(s / scale), -32767L, 32767L));
    write_u16(out, static_cast<std::uint16_t>(q));
  }
  return scale;
}

std::vector<double> dequantize(Reader& reader) {
  const float scale = reader.f32();
  if (!(scale > 0.0f) || !std::isfinite(scale)) {
    throw CorruptData("transport: bad quantization scale");
  }
  const std::uint32_t count = reader.u32();
  // Validate the declared count against the bytes actually present before
  // allocating: a corrupted count field must throw, not request gigabytes.
  if (count > reader.remaining() / 2) {
    throw CorruptData("transport: sample count exceeds message size");
  }
  std::vector<double> samples(count, 0.0);
  for (std::uint32_t i = 0; i < count; ++i) {
    samples[i] =
        static_cast<double>(static_cast<std::int16_t>(reader.u16())) * scale;
  }
  return samples;
}

}  // namespace

std::size_t wire_size(const SignalUploadMessage& message) {
  // magic + [trace header] + sequence + scale + count + int16 samples + crc
  return 4 + (message.trace.valid() ? kTraceHeaderBytes : 0) + 4 + 4 + 4 +
         2 * message.samples.size() + kCrcBytes;
}

std::size_t wire_size(const CorrelationSetMessage& message) {
  // magic + [trace header] + sequence + count + crc
  std::size_t size = 4 + (message.trace.valid() ? kTraceHeaderBytes : 0) +
                     4 + 4 + kCrcBytes;
  for (const auto& entry : message.entries) {
    size += kEntryHeaderBytes + 2 * entry.samples.size();
  }
  return size;
}

std::vector<std::uint8_t> encode_upload(const SignalUploadMessage& message) {
  EMAP_PROFILE_SCOPE("codec_encode");
  std::vector<std::uint8_t> out;
  out.reserve(wire_size(message));
  if (message.trace.valid()) {
    write_u32(out, kUploadMagicV2);
    write_u64(out, message.trace.trace_id);
    write_u64(out, message.trace.parent_span);
  } else {
    write_u32(out, kUploadMagic);
  }
  write_u32(out, message.sequence);
  quantize(message.samples, out);
  seal(out);
  return out;
}

SignalUploadMessage decode_upload(std::span<const std::uint8_t> bytes) {
  EMAP_PROFILE_SCOPE("codec_decode");
  Reader reader(check_seal(bytes, "decode_upload"));
  const std::uint32_t magic = reader.u32();
  SignalUploadMessage message;
  if (magic == kUploadMagicV2) {
    message.trace.trace_id = reader.u64();
    message.trace.parent_span = reader.u64();
    if (!message.trace.valid()) {
      // A V2 header must name a trace; id 0 is the V1 encoder's domain.
      throw CorruptData("decode_upload: V2 header with null trace id");
    }
  } else if (magic != kUploadMagic) {
    throw CorruptData("decode_upload: bad magic");
  }
  message.sequence = reader.u32();
  message.samples = dequantize(reader);
  if (!reader.at_end()) {
    throw CorruptData("decode_upload: trailing bytes");
  }
  return message;
}

std::vector<std::uint8_t> encode_correlation_set(
    const CorrelationSetMessage& message) {
  EMAP_PROFILE_SCOPE("codec_encode");
  std::vector<std::uint8_t> out;
  out.reserve(wire_size(message));
  if (message.trace.valid()) {
    write_u32(out, kDownloadMagicV2);
    write_u64(out, message.trace.trace_id);
    write_u64(out, message.trace.parent_span);
  } else {
    write_u32(out, kDownloadMagic);
  }
  write_u32(out, message.request_sequence);
  write_u32(out, static_cast<std::uint32_t>(message.entries.size()));
  for (const auto& entry : message.entries) {
    write_u64(out, entry.set_id);
    write_f32(out, entry.omega);
    write_u32(out, entry.beta);
    out.push_back(entry.anomalous);
    out.push_back(entry.class_tag);
    quantize(entry.samples, out);
  }
  seal(out);
  return out;
}

CorrelationSetMessage decode_correlation_set(
    std::span<const std::uint8_t> bytes) {
  EMAP_PROFILE_SCOPE("codec_decode");
  Reader reader(check_seal(bytes, "decode_correlation_set"));
  const std::uint32_t magic = reader.u32();
  CorrelationSetMessage message;
  if (magic == kDownloadMagicV2) {
    message.trace.trace_id = reader.u64();
    message.trace.parent_span = reader.u64();
    if (!message.trace.valid()) {
      throw CorruptData("decode_correlation_set: V2 header with null trace id");
    }
  } else if (magic != kDownloadMagic) {
    throw CorruptData("decode_correlation_set: bad magic");
  }
  message.request_sequence = reader.u32();
  const std::uint32_t count = reader.u32();
  if (count > reader.remaining() / kEntryHeaderBytes) {
    throw CorruptData("decode_correlation_set: entry count exceeds message");
  }
  message.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CorrelationEntry entry;
    entry.set_id = reader.u64();
    entry.omega = reader.f32();
    entry.beta = reader.u32();
    entry.anomalous = reader.u8();
    entry.class_tag = reader.u8();
    entry.samples = dequantize(reader);
    message.entries.push_back(std::move(entry));
  }
  if (!reader.at_end()) {
    throw CorruptData("decode_correlation_set: trailing bytes");
  }
  return message;
}

obs::TraceContext peek_trace(std::span<const std::uint8_t> bytes) {
  obs::TraceContext context;
  try {
    Reader reader(check_seal(bytes, "peek_trace"));
    const std::uint32_t magic = reader.u32();
    if (magic == kUploadMagicV2 || magic == kDownloadMagicV2) {
      context.trace_id = reader.u64();
      context.parent_span = reader.u64();
    }
  } catch (const CorruptData&) {
    // Fail closed: a mutated message belongs to no trace.
    context = obs::TraceContext{};
  }
  return context;
}

}  // namespace emap::net
