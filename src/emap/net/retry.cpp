#include "emap/net/retry.hpp"

#include <algorithm>
#include <cmath>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::net {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kTimeout:
      return "timeout";
    case RejectReason::kCorrupt:
      return "corrupt";
    case RejectReason::kShed:
      return "shed";
  }
  return "?";
}

void RetryOptions::validate() const {
  require(max_attempts >= 1, "RetryOptions: max_attempts must be >= 1");
  require(timeout_multiplier > 0.0,
          "RetryOptions: timeout_multiplier must be > 0");
  require(min_timeout_sec > 0.0 && min_timeout_sec <= max_timeout_sec,
          "RetryOptions: need 0 < min_timeout_sec <= max_timeout_sec");
  require(base_backoff_sec >= 0.0,
          "RetryOptions: base_backoff_sec must be >= 0");
  require(backoff_cap_sec >= base_backoff_sec,
          "RetryOptions: backoff_cap_sec must be >= base_backoff_sec");
  require(jitter_fraction >= 0.0 && jitter_fraction < 1.0,
          "RetryOptions: jitter_fraction must be in [0, 1)");
  require(deadline_sec >= max_timeout_sec,
          "RetryOptions: deadline_sec must fit at least one attempt");
}

RetryPolicy::RetryPolicy(RetryOptions options) : options_(options) {
  options_.validate();
}

double RetryPolicy::timeout_for(double expected_transfer_sec) const {
  const double scaled =
      options_.timeout_multiplier * std::max(expected_transfer_sec, 0.0);
  return std::clamp(scaled, options_.min_timeout_sec,
                    options_.max_timeout_sec);
}

double RetryPolicy::backoff_before(std::size_t attempt) const {
  if (attempt == 0 || options_.base_backoff_sec == 0.0) {
    return 0.0;
  }
  const double raw =
      options_.base_backoff_sec *
      std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(attempt, 60)) -
                          1);
  // Jitter is a pure function of (seed, attempt): forked streams make the
  // k-th backoff identical across replays regardless of what happened on
  // earlier attempts.  The factor lives in [1, 1 + f) with f < 1, so the
  // sequence stays non-decreasing (each uncapped step doubles).
  const double u = Rng(options_.seed).fork(attempt).uniform();
  const double jittered = raw * (1.0 + options_.jitter_fraction * u);
  return std::min(options_.backoff_cap_sec, jittered);
}

double RetryPolicy::backoff_for(std::size_t attempt, RejectReason reason,
                                double retry_after_hint_sec) const {
  if (attempt == 0) {
    return 0.0;
  }
  double backoff = backoff_before(attempt);
  if (reason == RejectReason::kCorrupt) {
    // The link delivered — fast, flat retry instead of exponential
    // penance.  Same deterministic jitter stream as backoff_before, so
    // replays stay exact.
    if (options_.base_backoff_sec == 0.0) {
      backoff = 0.0;
    } else {
      const double u = Rng(options_.seed).fork(attempt).uniform();
      backoff = std::min(options_.backoff_cap_sec,
                         options_.base_backoff_sec *
                             (1.0 + options_.jitter_fraction * u));
    }
  }
  // A positive RetryAfter hint floors the backoff regardless of reason:
  // the cloud's admission controller attaches one to a shed, and the
  // edge's own circuit breaker advertises its remaining OPEN cooldown the
  // same way — either authority said when to come back; never come back
  // sooner.
  return std::max(backoff, std::max(retry_after_hint_sec, 0.0));
}

bool RetryPolicy::allow_attempt(std::size_t attempt, double elapsed_sec,
                                double timeout_sec) const {
  return allow_attempt_after(attempt, elapsed_sec, backoff_before(attempt),
                             timeout_sec);
}

bool RetryPolicy::allow_attempt_after(std::size_t attempt, double elapsed_sec,
                                      double backoff_sec,
                                      double timeout_sec) const {
  if (attempt >= options_.max_attempts) {
    return false;
  }
  if (attempt == 0) {
    return true;
  }
  // A retry must be able to run to its timeout without blowing the
  // per-call deadline; otherwise the edge gives up and degrades instead.
  return elapsed_sec + backoff_sec + timeout_sec <= options_.deadline_sec;
}

double RetryPolicy::worst_case_wait(double expected_transfer_sec) const {
  const double timeout = timeout_for(expected_transfer_sec);
  // Upper-bound the jitter at its supremum and assume every attempt runs
  // to its timeout; the deadline check in allow_attempt() additionally
  // guarantees the real cumulative wait never exceeds deadline_sec, so the
  // bound is the smaller of the two.
  double total = 0.0;
  for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const double backoff_ub =
        attempt == 0
            ? 0.0
            : std::min(options_.backoff_cap_sec,
                       options_.base_backoff_sec *
                           std::ldexp(1.0, static_cast<int>(std::min<
                                               std::size_t>(attempt, 60)) -
                                               1) *
                           (1.0 + options_.jitter_fraction));
    total += backoff_ub + timeout;
  }
  return std::min(total, options_.deadline_sec);
}

}  // namespace emap::net
