#include "emap/net/compression.hpp"

#include <algorithm>
#include <cmath>

#include "emap/common/error.hpp"

namespace emap::net {
namespace {

// Zigzag maps signed deltas to unsigned so small magnitudes stay small.
std::uint32_t zigzag(std::int32_t value) {
  return (static_cast<std::uint32_t>(value) << 1) ^
         static_cast<std::uint32_t>(value >> 31);
}

std::int32_t unzigzag(std::uint32_t value) {
  return static_cast<std::int32_t>(value >> 1) ^
         -static_cast<std::int32_t>(value & 1u);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& cursor) {
  std::uint32_t value = 0;
  int shift = 0;
  for (;;) {
    if (cursor >= bytes.size()) {
      throw CorruptData("decompress_samples: truncated varint");
    }
    if (shift > 28) {
      throw CorruptData("decompress_samples: overlong varint");
    }
    const std::uint8_t byte = bytes[cursor++];
    value |= static_cast<std::uint32_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      return value;
    }
    shift += 7;
  }
}

}  // namespace

std::vector<std::uint8_t> compress_samples(
    std::span<const std::int16_t> samples) {
  std::vector<std::uint8_t> out;
  if (samples.empty()) {
    return out;
  }
  out.reserve(samples.size());
  std::int32_t previous = 0;
  for (std::int16_t sample : samples) {
    const std::int32_t delta = static_cast<std::int32_t>(sample) - previous;
    put_varint(out, zigzag(delta));
    previous = sample;
  }
  return out;
}

std::vector<std::int16_t> decompress_samples(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::int16_t> samples;
  std::size_t cursor = 0;
  std::int32_t previous = 0;
  while (cursor < bytes.size()) {
    const std::int32_t delta = unzigzag(get_varint(bytes, cursor));
    const std::int32_t value = previous + delta;
    if (value < INT16_MIN || value > INT16_MAX) {
      throw CorruptData("decompress_samples: delta overflows int16");
    }
    samples.push_back(static_cast<std::int16_t>(value));
    previous = value;
  }
  return samples;
}

std::size_t compressed_wire_size(std::span<const double> samples) {
  if (samples.empty()) {
    return 0;
  }
  // Mirror the transport's quantization: shared scale to int16 full range.
  double peak = 1e-9;
  for (double s : samples) {
    peak = std::max(peak, std::abs(s));
  }
  const double scale = peak / 32767.0;
  std::vector<std::int16_t> quantized;
  quantized.reserve(samples.size());
  for (double s : samples) {
    quantized.push_back(static_cast<std::int16_t>(
        std::clamp(std::lround(s / scale), -32767L, 32767L)));
  }
  // scale (4 bytes) + count (4) + format flag (1) + the smaller payload.
  const std::size_t raw_payload = 2 * quantized.size();
  const std::size_t compressed_payload = compress_samples(quantized).size();
  return 9 + std::min(raw_payload, compressed_payload);
}

}  // namespace emap::net
