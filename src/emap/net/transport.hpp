// Wire messages exchanged between edge and cloud.
//
// The paper transmits 16-bit samples (Section V-A), so both messages
// quantize doubles to int16 with a per-message scale factor.  wire_size()
// of these encodings is what the Channel converts to transfer time; the
// encode/decode pair is also exercised end-to-end by the pipeline so the
// quantization loss is part of the reproduced system.
//
// Every encoding carries a CRC-32 trailer over the preceding bytes.  The
// link model can flip bits in flight (net::FaultInjector's corrupt fault);
// without end-to-end integrity a flipped sample byte would silently load a
// damaged correlation set.  decode_* verifies the checksum before parsing,
// so any in-flight mutation — truncation, bit-flips, garbage — surfaces as
// CorruptData for the retry layer to handle.
//
// decode_* takes std::span so the injector can corrupt an encoded buffer
// in place and the decoder can reject it without an intermediate copy.
//
// Versioning: a message carrying a valid obs::TraceContext is encoded
// under the V2 magic with trace_id + parent_span inserted right after the
// magic (inside the CRC seal); an untraced message keeps the original V1
// layout byte for byte, so runs with tracing disabled stay bit-identical
// to pre-trace builds.  decode_* accepts both versions — V1 input simply
// yields an invalid (all-zero) context.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "emap/obs/trace_context.hpp"

namespace emap::net {

/// Edge -> cloud: one second of filtered input (256 samples at 16 bits).
struct SignalUploadMessage {
  std::uint32_t sequence = 0;       ///< time-step index N
  obs::TraceContext trace;          ///< causal chain; invalid = V1 wire form
  std::vector<double> samples;      ///< filtered input window
};

/// One tracked candidate inside the correlation-set download.
struct CorrelationEntry {
  std::uint64_t set_id = 0;
  float omega = 0.0f;               ///< cross-correlation at the match
  std::uint32_t beta = 0;           ///< matching offset within the set
  std::uint8_t anomalous = 0;       ///< A(S_P)
  std::uint8_t class_tag = 0;
  std::vector<double> samples;      ///< the full 1000-sample signal-set
};

/// Cloud -> edge: the signal correlation set T (top-100 matches).
struct CorrelationSetMessage {
  std::uint32_t request_sequence = 0;
  obs::TraceContext trace;          ///< echoed from the request upload
  std::vector<CorrelationEntry> entries;
};

/// Serialized sizes in bytes (pre-framing, including the CRC trailer).
std::size_t wire_size(const SignalUploadMessage& message);
std::size_t wire_size(const CorrelationSetMessage& message);

/// Encode/decode with 16-bit sample quantization and a CRC-32 trailer.
/// decode_* throws CorruptData on malformed or mutated input; declared
/// counts are validated against the bytes actually present before any
/// allocation, so corrupt length fields cannot trigger OOM.
std::vector<std::uint8_t> encode_upload(const SignalUploadMessage& message);
SignalUploadMessage decode_upload(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_correlation_set(
    const CorrelationSetMessage& message);
CorrelationSetMessage decode_correlation_set(
    std::span<const std::uint8_t> bytes);

/// Extracts the TraceContext from an encoded message without decoding the
/// payload.  Verifies the CRC seal first (fail closed: corrupt or V1
/// input yields an invalid context, never a garbage id).  Used by
/// observers on the byte path — e.g. the channel's flight-recorder hook —
/// that must attribute a transfer to its causal chain.
obs::TraceContext peek_trace(std::span<const std::uint8_t> bytes);

}  // namespace emap::net
