// Wire messages exchanged between edge and cloud.
//
// The paper transmits 16-bit samples (Section V-A), so both messages
// quantize doubles to int16 with a per-message scale factor.  wire_size()
// of these encodings is what the Channel converts to transfer time; the
// encode/decode pair is also exercised end-to-end by the pipeline so the
// quantization loss is part of the reproduced system.
#pragma once

#include <cstdint>
#include <vector>

namespace emap::net {

/// Edge -> cloud: one second of filtered input (256 samples at 16 bits).
struct SignalUploadMessage {
  std::uint32_t sequence = 0;       ///< time-step index N
  std::vector<double> samples;      ///< filtered input window
};

/// One tracked candidate inside the correlation-set download.
struct CorrelationEntry {
  std::uint64_t set_id = 0;
  float omega = 0.0f;               ///< cross-correlation at the match
  std::uint32_t beta = 0;           ///< matching offset within the set
  std::uint8_t anomalous = 0;       ///< A(S_P)
  std::uint8_t class_tag = 0;
  std::vector<double> samples;      ///< the full 1000-sample signal-set
};

/// Cloud -> edge: the signal correlation set T (top-100 matches).
struct CorrelationSetMessage {
  std::uint32_t request_sequence = 0;
  std::vector<CorrelationEntry> entries;
};

/// Serialized sizes in bytes (pre-framing).
std::size_t wire_size(const SignalUploadMessage& message);
std::size_t wire_size(const CorrelationSetMessage& message);

/// Encode/decode with 16-bit sample quantization.  decode_* throws
/// CorruptData on malformed input.
std::vector<std::uint8_t> encode_upload(const SignalUploadMessage& message);
SignalUploadMessage decode_upload(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_correlation_set(
    const CorrelationSetMessage& message);
CorrelationSetMessage decode_correlation_set(
    const std::vector<std::uint8_t>& bytes);

}  // namespace emap::net
