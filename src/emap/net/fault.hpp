// Deterministic fault injection for the edge-cloud link.
//
// EMAP's real-time loop runs over an unreliable wireless link, yet the
// Channel alone models only rate + latency + jitter.  FaultInjector is the
// adversary: consulted once per message, it decides — from a seeded stream,
// so every failure is bit-for-bit reproducible — whether that message is
// dropped, corrupted (bit-flips applied in place before decode), duplicated,
// reordered, or delayed, with independent probabilities per direction.
// The pipeline's RetryPolicy (retry.hpp) is the matching recovery side.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "emap/common/rng.hpp"

namespace emap::obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace emap::obs

namespace emap::net {

/// Which way a message is travelling over the link.
enum class Direction { kUpload, kDownload };

/// Human-readable direction label ("up" / "down"), matching the channel's
/// metric labels.
const char* direction_name(Direction direction);

/// Per-direction fault probabilities and shaping parameters.  All
/// probabilities default to zero: a default-constructed spec injects
/// nothing and the pipeline behaves bit-identically to a fault-free run.
struct FaultSpec {
  double drop = 0.0;       ///< message lost entirely
  double corrupt = 0.0;    ///< bit-flips applied to the encoded bytes
  double duplicate = 0.0;  ///< delivered twice (receiver must dedup)
  double reorder = 0.0;    ///< overtaken in flight (modelled as extra delay)
  double delay = 0.0;      ///< held back by a uniform extra delay
  double delay_min_sec = 0.05;   ///< lower bound of the extra delay
  double delay_max_sec = 0.50;   ///< upper bound of the extra delay
  std::size_t corrupt_bits = 3;  ///< bit-flips per corruption event

  /// True when any fault can fire.
  bool any() const {
    return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           delay > 0.0;
  }
};

/// Full injector configuration: one spec per direction plus the seed that
/// makes the fault sequence reproducible.
struct FaultOptions {
  FaultSpec up;
  FaultSpec down;
  std::uint64_t seed = 0x600dcafeULL;

  bool any() const { return up.any() || down.any(); }
  /// Throws InvalidArgument when a probability or delay range is invalid.
  void validate() const;
};

/// What the injector decided for one message.
struct FaultPlan {
  bool dropped = false;
  bool corrupted = false;
  bool duplicated = false;
  bool reordered = false;
  double extra_delay_sec = 0.0;  ///< from delay and/or reorder faults

  /// Message never reaches (or is unreadable at) the receiver.  A corrupt
  /// plan is still delivered: the receiver's decoder must reject it.
  bool lost() const { return dropped; }
  bool any() const {
    return dropped || corrupted || duplicated || reordered ||
           extra_delay_sec > 0.0;
  }
};

/// Running totals per direction (mirrors the `emap_net_faults_total`
/// counters so tests can assert injected == counted).
struct FaultCounts {
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;

  std::uint64_t total_faults() const {
    return dropped + corrupted + duplicated + reordered + delayed;
  }
};

/// Serializable snapshot of an injector's stream position (both direction
/// RNGs plus the running counts).  The crash-recovery checkpoint persists
/// one of these so a resumed run draws the same fault schedule the
/// uninterrupted run would have — corruption consumes a data-dependent
/// number of extra draws, so the raw RNG state (not a draw counter) is the
/// only exact resume point.  The draw cursors ride along as an auditable
/// position label: restore() rewinds both the RNG and the cursor, so a
/// checkpoint can assert how far into the fault schedule it was taken and
/// a resumed injector reports the same cursor the saved one would have.
struct FaultInjectorState {
  RngState up_rng;
  RngState down_rng;
  FaultCounts up_counts;
  FaultCounts down_counts;
  std::uint64_t up_draws = 0;    ///< raw RNG draws consumed upstream
  std::uint64_t down_draws = 0;  ///< raw RNG draws consumed downstream
};

/// Seeded, deterministic per-message fault source.
///
/// Each direction draws from its own forked stream, and every message
/// consumes a fixed number of draws regardless of outcome, so the decision
/// for message N depends only on (seed, direction, N) — replaying a run
/// with the same options reproduces the same fault schedule even when the
/// surrounding code changes how many messages it sends in between.
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options = {});

  const FaultOptions& options() const { return options_; }

  /// Decides the fate of one message.  Corruption flips bits of `bytes` in
  /// place (pass an empty span when there is no encoded payload; corrupt
  /// then degrades to a drop, since an unreadable message is a lost one).
  FaultPlan apply(Direction direction, std::span<std::uint8_t> bytes);

  /// Totals per direction since construction.
  const FaultCounts& counts(Direction direction) const;

  /// Raw RNG draws consumed for `direction` so far — the injector's draw
  /// cursor.  Every message consumes the fixed six-draw schedule plus two
  /// extra draws per corruption bit-flip, so the cursor advances by a
  /// data-dependent amount; it identifies the exact stream position a
  /// save()/restore() pair rewinds to.
  std::uint64_t draws(Direction direction) const;

  /// Attaches a telemetry registry (borrowed; nullptr disables):
  /// `emap_net_faults_total{direction,kind}` counters and
  /// `emap_net_fault_delay_seconds{direction}` histograms.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Captures the stream position and counts (checkpoint support).
  FaultInjectorState save() const;

  /// Resumes from a saved state; subsequent apply() calls draw exactly the
  /// schedule the saved injector would have drawn next.
  void restore(const FaultInjectorState& state);

 private:
  struct DirectionState {
    FaultSpec spec;
    Rng rng;
    FaultCounts counts;
    std::uint64_t draws = 0;  ///< raw RNG draws consumed (the cursor)
    struct {
      obs::Counter* dropped = nullptr;
      obs::Counter* corrupted = nullptr;
      obs::Counter* duplicated = nullptr;
      obs::Counter* reordered = nullptr;
      obs::Counter* delayed = nullptr;
      obs::Histogram* delay_seconds = nullptr;
    } metrics;

    DirectionState(const FaultSpec& s, Rng r) : spec(s), rng(r) {}
  };

  DirectionState& state(Direction direction);

  FaultOptions options_;
  DirectionState up_;
  DirectionState down_;
};

}  // namespace emap::net
