// Edge-side retry policy for cloud calls over a lossy link.
//
// The recovery half of the fault model (fault.hpp): when a cloud round
// trip times out — upload lost, response lost, or either copy corrupted —
// the edge retries with capped exponential backoff and deterministic
// jitter, up to a max attempt count and a hard per-call deadline.  The
// timeout is derived from the channel's expected transfer time rather than
// hard-coded, so the same policy is sane on HSPA and on LTE-Advanced.
//
// Everything here is a pure function of (options, seed, attempt index):
// replaying a run reproduces the identical retry schedule, which is what
// lets the fault-matrix harness assert exact outcomes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace emap::net {

/// Why a cloud-call attempt failed, as seen from the edge.  The retry
/// schedule differentiates: silence (loss) earns the full exponential
/// backoff, a CRC-detected corrupt delivery retries after a flat base
/// backoff (the link works, the payload was garbled), and a cloud-side
/// shed honors the RetryAfter hint the admission controller attached.
enum class RejectReason : std::uint8_t {
  kNone = 0,  ///< the attempt succeeded
  kTimeout,   ///< silence: message lost (or unreadable at the receiver)
  kCorrupt,   ///< garbage detected at decode on the edge (fails fast)
  kShed,      ///< cloud admission rejected with a RetryAfter hint
};

/// Lowercase reason label ("none", "timeout", "corrupt", "shed").
const char* reject_reason_name(RejectReason reason);

/// Retry knobs.  Defaults keep the worst-case stall of one logical cloud
/// call within the paper's ~3 s initial-latency budget order of magnitude.
struct RetryOptions {
  std::size_t max_attempts = 3;     ///< total tries per logical call (>= 1)
  double timeout_multiplier = 4.0;  ///< timeout = mult x expected transfer
  double min_timeout_sec = 0.25;    ///< floor (covers the cloud search leg)
  double max_timeout_sec = 5.0;     ///< ceiling per attempt
  double base_backoff_sec = 0.10;   ///< backoff before attempt 1
  double backoff_cap_sec = 2.00;    ///< exponential growth stops here
  double jitter_fraction = 0.10;    ///< deterministic jitter in [0, 1)
  double deadline_sec = 20.0;       ///< hard cap on cumulative wait per call
  std::uint64_t seed = 0x5eedULL;   ///< jitter stream seed

  /// Throws InvalidArgument when the knobs are inconsistent (e.g. zero
  /// attempts, min > max timeout, or a deadline no attempt can fit in).
  void validate() const;
};

/// Deterministic timeout/backoff schedule.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = {});

  const RetryOptions& options() const { return options_; }

  /// Per-attempt timeout for a call whose fault-free transfer is expected
  /// to take `expected_transfer_sec`: clamp(mult x expected, min, max).
  double timeout_for(double expected_transfer_sec) const;

  /// Backoff observed before `attempt` (0-based).  Attempt 0 starts
  /// immediately; attempt k >= 1 waits min(cap, base x 2^(k-1)) stretched
  /// by a deterministic jitter factor in [1, 1 + jitter_fraction).  The
  /// sequence is non-decreasing in k and a pure function of (seed, k).
  double backoff_before(std::size_t attempt) const;

  /// Backoff before `attempt` given why the previous attempt failed.
  /// kTimeout follows backoff_before's exponential schedule; kCorrupt
  /// waits only the flat base backoff (jittered, capped) since the link
  /// itself is alive.  A positive `retry_after_hint_sec` floors the result
  /// for every reason: the cloud's admission controller attaches one to a
  /// shed (kShed) and the edge's circuit breaker advertises its remaining
  /// OPEN cooldown the same way — whoever issued the hint said when to
  /// come back, and the edge never comes back sooner.  Attempt 0 never
  /// waits.
  double backoff_for(std::size_t attempt, RejectReason reason,
                     double retry_after_hint_sec = 0.0) const;

  /// Whether `attempt` (0-based) may start, given the wait already spent
  /// on this logical call.  Attempt 0 is always allowed; later attempts
  /// must fit backoff + timeout inside the deadline.
  bool allow_attempt(std::size_t attempt, double elapsed_sec,
                     double timeout_sec) const;

  /// allow_attempt with an explicit backoff — needed when backoff_for
  /// exceeds the default schedule (a RetryAfter hint can be arbitrarily
  /// long and must still respect the per-call deadline).
  bool allow_attempt_after(std::size_t attempt, double elapsed_sec,
                           double backoff_sec, double timeout_sec) const;

  /// Upper bound on the cumulative wait of one logical call (all attempts
  /// failing at their timeout, maximal jitter).  validate() guarantees
  /// this never exceeds options().deadline_sec.
  double worst_case_wait(double expected_transfer_sec) const;

 private:
  RetryOptions options_;
};

}  // namespace emap::net
