#include "emap/net/fault.hpp"

#include "emap/common/error.hpp"
#include "emap/obs/metrics.hpp"

namespace emap::net {
namespace {

void validate_spec(const FaultSpec& spec, const char* which) {
  const double probs[] = {spec.drop, spec.corrupt, spec.duplicate,
                          spec.reorder, spec.delay};
  for (double p : probs) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw InvalidArgument(std::string("FaultSpec(") + which +
                            "): probabilities must be in [0, 1]");
    }
  }
  if (!(spec.delay_min_sec >= 0.0 &&
        spec.delay_max_sec >= spec.delay_min_sec)) {
    throw InvalidArgument(std::string("FaultSpec(") + which +
                          "): need 0 <= delay_min_sec <= delay_max_sec");
  }
  if (spec.corrupt > 0.0 && spec.corrupt_bits == 0) {
    throw InvalidArgument(std::string("FaultSpec(") + which +
                          "): corrupt_bits must be > 0 when corrupt > 0");
  }
}

}  // namespace

const char* direction_name(Direction direction) {
  return direction == Direction::kUpload ? "up" : "down";
}

void FaultOptions::validate() const {
  validate_spec(up, "up");
  validate_spec(down, "down");
}

FaultInjector::FaultInjector(FaultOptions options)
    : options_(options),
      up_(options.up, Rng(options.seed).fork(1)),
      down_(options.down, Rng(options.seed).fork(2)) {
  options_.validate();
}

FaultInjector::DirectionState& FaultInjector::state(Direction direction) {
  return direction == Direction::kUpload ? up_ : down_;
}

const FaultCounts& FaultInjector::counts(Direction direction) const {
  return direction == Direction::kUpload ? up_.counts : down_.counts;
}

FaultPlan FaultInjector::apply(Direction direction,
                               std::span<std::uint8_t> bytes) {
  DirectionState& s = state(direction);
  ++s.counts.messages;

  // Fixed draw schedule: five Bernoulli trials plus one uniform per
  // message, consumed whether or not each fault fires, so the decision for
  // message N is a pure function of (seed, direction, N).
  FaultPlan plan;
  plan.dropped = s.rng.bernoulli(s.spec.drop);
  plan.corrupted = s.rng.bernoulli(s.spec.corrupt);
  plan.duplicated = s.rng.bernoulli(s.spec.duplicate);
  plan.reordered = s.rng.bernoulli(s.spec.reorder);
  const bool delayed = s.rng.bernoulli(s.spec.delay);
  const double delay_draw =
      s.spec.delay_min_sec +
      (s.spec.delay_max_sec - s.spec.delay_min_sec) * s.rng.uniform();
  s.draws += 6;

  if (plan.dropped) {
    // A dropped message can't also be corrupted/duplicated/delayed in any
    // observable way.
    plan.corrupted = false;
    plan.duplicated = false;
    plan.reordered = false;
  } else {
    if (delayed) {
      plan.extra_delay_sec += delay_draw;
    }
    if (plan.reordered) {
      // Reordering in a one-outstanding-call protocol is observable as the
      // message being overtaken, i.e. arriving late.
      plan.extra_delay_sec += delay_draw + s.spec.delay_max_sec;
    }
    if (plan.corrupted) {
      if (bytes.empty()) {
        // No encoded payload to damage (direct-path runs): an unreadable
        // message is indistinguishable from a lost one.
        plan.corrupted = false;
        plan.dropped = true;
      } else {
        for (std::size_t i = 0; i < s.spec.corrupt_bits; ++i) {
          const std::uint64_t at = s.rng.uniform_index(bytes.size());
          const std::uint64_t bit = s.rng.uniform_index(8);
          bytes[at] ^= static_cast<std::uint8_t>(1u << bit);
          s.draws += 2;
        }
      }
    }
  }

  if (plan.dropped) {
    ++s.counts.dropped;
    if (s.metrics.dropped != nullptr) s.metrics.dropped->increment();
  }
  if (plan.corrupted) {
    ++s.counts.corrupted;
    if (s.metrics.corrupted != nullptr) s.metrics.corrupted->increment();
  }
  if (plan.duplicated) {
    ++s.counts.duplicated;
    if (s.metrics.duplicated != nullptr) s.metrics.duplicated->increment();
  }
  if (plan.reordered) {
    ++s.counts.reordered;
    if (s.metrics.reordered != nullptr) s.metrics.reordered->increment();
  }
  if (!plan.dropped && (delayed || plan.reordered)) {
    ++s.counts.delayed;
    if (s.metrics.delayed != nullptr) s.metrics.delayed->increment();
    if (s.metrics.delay_seconds != nullptr) {
      s.metrics.delay_seconds->observe(plan.extra_delay_sec);
    }
  }
  return plan;
}

std::uint64_t FaultInjector::draws(Direction direction) const {
  return direction == Direction::kUpload ? up_.draws : down_.draws;
}

FaultInjectorState FaultInjector::save() const {
  FaultInjectorState state;
  state.up_rng = up_.rng.save();
  state.down_rng = down_.rng.save();
  state.up_counts = up_.counts;
  state.down_counts = down_.counts;
  state.up_draws = up_.draws;
  state.down_draws = down_.draws;
  return state;
}

void FaultInjector::restore(const FaultInjectorState& state) {
  up_.rng.restore(state.up_rng);
  down_.rng.restore(state.down_rng);
  up_.counts = state.up_counts;
  down_.counts = state.down_counts;
  up_.draws = state.up_draws;
  down_.draws = state.down_draws;
}

void FaultInjector::set_metrics(obs::MetricsRegistry* registry) {
  for (DirectionState* s : {&up_, &down_}) {
    if (registry == nullptr) {
      s->metrics = {};
      continue;
    }
    const char* dir =
        s == &up_ ? direction_name(Direction::kUpload)
                  : direction_name(Direction::kDownload);
    auto fault_counter = [registry, dir](const char* kind) {
      return &registry->counter(
          "emap_net_faults_total", {{"direction", dir}, {"kind", kind}},
          "Faults injected into the edge-cloud link per direction and kind");
    };
    s->metrics.dropped = fault_counter("drop");
    s->metrics.corrupted = fault_counter("corrupt");
    s->metrics.duplicated = fault_counter("duplicate");
    s->metrics.reordered = fault_counter("reorder");
    s->metrics.delayed = fault_counter("delay");
    s->metrics.delay_seconds = &registry->histogram(
        "emap_net_fault_delay_seconds", {{"direction", dir}},
        obs::Histogram::default_latency_bounds(),
        "Extra in-flight delay added by delay/reorder faults");
  }
}

}  // namespace emap::net
