// Lossless compression of 16-bit EEG sample streams.
//
// The paper's second research question is minimizing the data transmitted
// to the cloud, so an obvious question is whether the 1 s upload payloads
// compress.  The measured answer is mostly *no*: after the transport's
// peak normalization, 11-40 Hz content at fs = 256 has sample deltas of
// about half the full scale, leaving ~1 bit of redundancy per sample — the
// delta + zigzag + varint coder here wins big only on oversampled or quiet
// content (raw unfiltered streams, suppression segments).  The codec is
// still provided (a) for those cases, (b) because compressed_wire_size()
// picks the smaller of raw/compressed framing and therefore never hurts,
// and (c) as the documented negative result: EMAP's transmission savings
// come from the 1-second-every-few-seconds duty cycle, not from entropy
// coding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace emap::net {

/// Compresses a 16-bit sample stream (delta + zigzag + varint).
/// Empty input yields an empty buffer.
std::vector<std::uint8_t> compress_samples(
    std::span<const std::int16_t> samples);

/// Inverse of compress_samples.  Throws CorruptData on malformed input
/// (truncated varint, overlong encoding, or delta overflow).
std::vector<std::int16_t> decompress_samples(
    std::span<const std::uint8_t> bytes);

/// Wire size of a double-valued window after the standard 16-bit
/// quantization, with content-adaptive framing: scale (4) + count (4) +
/// format flag (1) + min(raw 2N, varint-compressed) payload bytes.  Never
/// larger than the raw framing plus the flag byte.
std::size_t compressed_wire_size(std::span<const double> samples);

}  // namespace emap::net
