// Edge-cloud channel model.
//
// Converts message sizes into transfer times for a given platform.  The
// Fig. 4 serialization analysis uses pure line-rate time; the end-to-end
// pipeline (Eq. 4's Δ_EC and Δ_CE) additionally includes the access
// latency and an optional jitter term.
#pragma once

#include <cstddef>

#include "emap/common/rng.hpp"
#include "emap/net/platform.hpp"

namespace emap::obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace emap::obs

namespace emap::net {

/// Channel behaviour switches.
struct ChannelOptions {
  bool include_latency = true;   ///< add one-way access latency per message
  double jitter_fraction = 0.0;  ///< uniform +/- fraction on the line time
  std::size_t framing_overhead_bytes = 60;  ///< L2/L3/L4 headers per message
};

/// A point-to-point edge<->cloud link over one platform.
class Channel {
 public:
  explicit Channel(CommPlatform platform, ChannelOptions options = {},
                   std::uint64_t jitter_seed = 42);

  CommPlatform platform() const { return platform_; }
  const ChannelOptions& options() const { return options_; }

  /// Seconds to move `payload_bytes` up (edge -> cloud).
  double upload_seconds(std::size_t payload_bytes);

  /// Seconds to move `payload_bytes` down (cloud -> edge).
  double download_seconds(std::size_t payload_bytes);

  /// Pure serialization time (no latency, no jitter, no framing) — the
  /// quantity Fig. 4 plots.
  static double line_seconds(std::size_t payload_bytes, double rate_mbps);

  /// Attaches a telemetry registry (borrowed; nullptr disables): per
  /// direction message/byte counters and transfer-time histograms under
  /// `emap_net_*`.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  double transfer_seconds(std::size_t payload_bytes, double rate_mbps);

  struct DirectionMetrics {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* seconds = nullptr;
  };
  void record(DirectionMetrics& metrics, std::size_t payload_bytes,
              double seconds) const;

  CommPlatform platform_;
  ChannelOptions options_;
  Rng rng_;
  DirectionMetrics up_metrics_{};
  DirectionMetrics down_metrics_{};
};

}  // namespace emap::net
