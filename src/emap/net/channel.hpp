// Edge-cloud channel model.
//
// Converts message sizes into transfer times for a given platform.  The
// Fig. 4 serialization analysis uses pure line-rate time; the end-to-end
// pipeline (Eq. 4's Δ_EC and Δ_CE) additionally includes the access
// latency and an optional jitter term.
//
// An optional FaultInjector (fault.hpp) can be attached; the transfer()
// path then consults it once per message, so drops, in-place corruption,
// duplication, reordering, and extra delay ride the same calibrated link
// model the fault-free path uses.
#pragma once

#include <cstddef>
#include <span>

#include "emap/common/rng.hpp"
#include "emap/net/fault.hpp"
#include "emap/net/platform.hpp"
#include "emap/net/retry.hpp"

namespace emap::obs {
class MetricsRegistry;
class Counter;
class FlightRecorder;
class Histogram;
}  // namespace emap::obs

namespace emap::net {

/// Channel behaviour switches.
struct ChannelOptions {
  bool include_latency = true;   ///< add one-way access latency per message
  double jitter_fraction = 0.0;  ///< uniform +/- fraction on the line time
  std::size_t framing_overhead_bytes = 60;  ///< L2/L3/L4 headers per message
};

/// One message's trip over the link: the modelled wire time plus whatever
/// the attached fault injector decided (nothing, when none is attached).
struct TransferOutcome {
  double seconds = 0.0;  ///< wire time including any injected extra delay
  FaultPlan fault;       ///< what the injector did to this message

  /// The receiver gets a (possibly corrupted) copy of the message.
  bool delivered() const { return !fault.dropped; }

  /// Typed reject reason for the retry layer: a dropped message is pure
  /// silence (the sender can only time out), a corrupted one is
  /// CRC-detectable at decode and can fail fast.  What the *edge*
  /// ultimately observes depends on the leg — an upload corrupted in
  /// flight is still silence from the edge's side, because the receiver
  /// that detects it is the cloud.
  RejectReason reject_reason() const {
    if (fault.dropped) {
      return RejectReason::kTimeout;
    }
    if (fault.corrupted) {
      return RejectReason::kCorrupt;
    }
    return RejectReason::kNone;
  }
};

/// A point-to-point edge<->cloud link over one platform.
class Channel {
 public:
  explicit Channel(CommPlatform platform, ChannelOptions options = {},
                   std::uint64_t jitter_seed = 42);

  CommPlatform platform() const { return platform_; }
  const ChannelOptions& options() const { return options_; }

  /// Seconds to move `payload_bytes` up (edge -> cloud).
  double upload_seconds(std::size_t payload_bytes);

  /// Seconds to move `payload_bytes` down (cloud -> edge).
  double download_seconds(std::size_t payload_bytes);

  /// Moves one encoded message across the link, consulting the attached
  /// fault injector (corruption mutates `bytes` in place).  The time and
  /// byte metrics are recorded whether or not the message survives — a
  /// dropped message still occupied the link.
  TransferOutcome transfer(Direction direction,
                           std::span<std::uint8_t> bytes);

  /// Expected (jitter-free, fault-free) transfer time for a payload —
  /// what the RetryPolicy derives its timeout from.  Consumes no
  /// randomness and records no metrics.
  double expected_seconds(Direction direction,
                          std::size_t payload_bytes) const;

  /// Pure serialization time (no latency, no jitter, no framing) — the
  /// quantity Fig. 4 plots.
  static double line_seconds(std::size_t payload_bytes, double rate_mbps);

  /// Attaches a telemetry registry (borrowed; nullptr disables): per
  /// direction message/byte counters and transfer-time histograms under
  /// `emap_net_*`.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a fault injector (borrowed; nullptr restores the perfect
  /// link).  Only the transfer() path consults it.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Attaches a flight recorder (borrowed; nullptr disables).  Each
  /// transfer the injector actually touched logs one kFaultVerdict event,
  /// attributed to the in-flight message's trace context (peeked from the
  /// encoded bytes before any corruption is applied).
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  /// Jitter-stream position (checkpoint support): a resumed run restores
  /// this so transfer times replay bit-for-bit even with jitter enabled.
  RngState save_rng() const { return rng_.save(); }
  void restore_rng(const RngState& state) { rng_.restore(state); }

 private:
  double transfer_seconds(std::size_t payload_bytes, double rate_mbps);
  double direction_rate_mbps(Direction direction) const;

  struct DirectionMetrics {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* seconds = nullptr;
  };
  void record(DirectionMetrics& metrics, std::size_t payload_bytes,
              double seconds) const;

  CommPlatform platform_;
  ChannelOptions options_;
  Rng rng_;
  FaultInjector* injector_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  DirectionMetrics up_metrics_{};
  DirectionMetrics down_metrics_{};
};

}  // namespace emap::net
