#include "emap/net/channel.hpp"

#include <cstdio>

#include "emap/common/error.hpp"
#include "emap/net/transport.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/profiler.hpp"

namespace emap::net {

Channel::Channel(CommPlatform platform, ChannelOptions options,
                 std::uint64_t jitter_seed)
    : platform_(platform), options_(options), rng_(jitter_seed) {
  require(options_.jitter_fraction >= 0.0 && options_.jitter_fraction < 1.0,
          "Channel: jitter fraction must be in [0, 1)");
}

double Channel::line_seconds(std::size_t payload_bytes, double rate_mbps) {
  require(rate_mbps > 0.0, "Channel::line_seconds: rate must be > 0");
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  return bits / (rate_mbps * 1e6);
}

double Channel::transfer_seconds(std::size_t payload_bytes,
                                 double rate_mbps) {
  const std::size_t total_bytes =
      payload_bytes + options_.framing_overhead_bytes;
  double seconds = line_seconds(total_bytes, rate_mbps);
  if (options_.jitter_fraction > 0.0) {
    seconds *= 1.0 + rng_.uniform(-options_.jitter_fraction,
                                  options_.jitter_fraction);
  }
  if (options_.include_latency) {
    seconds += platform_params(platform_).latency_ms * 1e-3;
  }
  return seconds;
}

double Channel::direction_rate_mbps(Direction direction) const {
  return direction == Direction::kUpload
             ? platform_params(platform_).uplink_mbps
             : platform_params(platform_).downlink_mbps;
}

double Channel::expected_seconds(Direction direction,
                                 std::size_t payload_bytes) const {
  double seconds =
      line_seconds(payload_bytes + options_.framing_overhead_bytes,
                   direction_rate_mbps(direction));
  if (options_.include_latency) {
    seconds += platform_params(platform_).latency_ms * 1e-3;
  }
  return seconds;
}

void Channel::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    up_metrics_ = DirectionMetrics{};
    down_metrics_ = DirectionMetrics{};
    return;
  }
  auto direction = [registry](const char* name) {
    DirectionMetrics metrics;
    metrics.messages = &registry->counter(
        "emap_net_messages_total", {{"direction", name}},
        "Messages moved over the edge-cloud channel");
    metrics.bytes = &registry->counter(
        "emap_net_bytes_total", {{"direction", name}},
        "Payload plus framing bytes moved over the channel");
    metrics.seconds = &registry->histogram(
        "emap_net_transfer_seconds", {{"direction", name}},
        obs::Histogram::default_latency_bounds(),
        "Modelled transfer time per message");
    return metrics;
  };
  up_metrics_ = direction("up");
  down_metrics_ = direction("down");
}

void Channel::record(DirectionMetrics& metrics, std::size_t payload_bytes,
                     double seconds) const {
  if (metrics.messages == nullptr) {
    return;
  }
  metrics.messages->increment();
  metrics.bytes->increment(payload_bytes + options_.framing_overhead_bytes);
  metrics.seconds->observe(seconds);
}

double Channel::upload_seconds(std::size_t payload_bytes) {
  const double seconds = transfer_seconds(
      payload_bytes, platform_params(platform_).uplink_mbps);
  record(up_metrics_, payload_bytes, seconds);
  return seconds;
}

double Channel::download_seconds(std::size_t payload_bytes) {
  const double seconds = transfer_seconds(
      payload_bytes, platform_params(platform_).downlink_mbps);
  record(down_metrics_, payload_bytes, seconds);
  return seconds;
}

TransferOutcome Channel::transfer(Direction direction,
                                  std::span<std::uint8_t> bytes) {
  // Work = payload bytes moved through the channel model.
  obs::ProfileScope profile_scope("channel_transfer");
  profile_scope.add_work(bytes.size());
  TransferOutcome outcome;
  outcome.seconds =
      transfer_seconds(bytes.size(), direction_rate_mbps(direction));
  if (injector_ != nullptr) {
    // Peek the trace context before the injector runs: corruption mutates
    // `bytes` in place and would take the trace id with it.
    obs::TraceContext trace;
    if (flight_ != nullptr) {
      trace = peek_trace(bytes);
    }
    outcome.fault = injector_->apply(direction, bytes);
    outcome.seconds += outcome.fault.extra_delay_sec;
    if (flight_ != nullptr && outcome.fault.any()) {
      const char* kind = outcome.fault.dropped      ? "drop"
                         : outcome.fault.corrupted  ? "corrupt"
                         : outcome.fault.duplicated ? "duplicate"
                         : outcome.fault.reordered  ? "reorder"
                                                    : "delay";
      char label[obs::FlightEvent::kLabelCapacity];
      std::snprintf(label, sizeof(label), "%s_%s",
                    direction == Direction::kUpload ? "up" : "down", kind);
      flight_->log(obs::FlightEventType::kFaultVerdict, label, /*t_sec=*/-1.0,
                   trace.trace_id, outcome.fault.extra_delay_sec,
                   static_cast<double>(bytes.size()));
    }
  }
  record(direction == Direction::kUpload ? up_metrics_ : down_metrics_,
         bytes.size(), outcome.seconds);
  return outcome;
}

}  // namespace emap::net
