// Communication platform parameters (paper Fig. 4, data from [19][20]).
//
// The paper evaluates upload/download feasibility across six mobile
// broadband platforms.  Each platform is reduced to its sustained uplink /
// downlink rate plus a one-way access latency; rates are representative
// per-user figures of the respective standards, chosen so the Fig. 4
// crossings (256 samples ≲ 1 ms, 100 signals ≲ 200 ms on 4G-era links)
// reproduce.
#pragma once

#include <cstddef>

namespace emap::net {

/// The six platforms of Fig. 4, in the paper's legend order.
enum class CommPlatform {
  kHspa = 0,
  kHspaPlus = 1,
  kLte = 2,
  kLteAdvanced = 3,
  kWimaxR1 = 4,
  kWimaxR2 = 5,
};

inline constexpr CommPlatform kAllPlatforms[] = {
    CommPlatform::kHspa,       CommPlatform::kHspaPlus,
    CommPlatform::kLte,        CommPlatform::kLteAdvanced,
    CommPlatform::kWimaxR1,    CommPlatform::kWimaxR2,
};

/// Static link parameters of one platform.
struct PlatformParams {
  const char* name;
  double uplink_mbps;    ///< sustained per-user uplink
  double downlink_mbps;  ///< sustained per-user downlink
  double latency_ms;     ///< one-way access latency
};

/// Parameter table lookup.
const PlatformParams& platform_params(CommPlatform platform);

/// Display name ("HSPA", "LTE-A", ...).
const char* platform_name(CommPlatform platform);

}  // namespace emap::net
