#include "emap/dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "emap/common/error.hpp"

namespace emap::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t length) {
  require(length > 0, "make_window: length must be > 0");
  std::vector<double> window(length, 1.0);
  if (length == 1) {
    return window;
  }
  const double denom = static_cast<double>(length - 1);
  constexpr double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t n = 0; n < length; ++n) {
    const double phase = two_pi * static_cast<double>(n) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        window[n] = 1.0;
        break;
      case WindowKind::kHamming:
        window[n] = 0.54 - 0.46 * std::cos(phase);
        break;
      case WindowKind::kHann:
        window[n] = 0.5 - 0.5 * std::cos(phase);
        break;
      case WindowKind::kBlackman:
        window[n] = 0.42 - 0.5 * std::cos(phase) + 0.08 * std::cos(2.0 * phase);
        break;
    }
  }
  return window;
}

const char* window_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular:
      return "rectangular";
    case WindowKind::kHamming:
      return "hamming";
    case WindowKind::kHann:
      return "hann";
    case WindowKind::kBlackman:
      return "blackman";
  }
  return "unknown";
}

}  // namespace emap::dsp
