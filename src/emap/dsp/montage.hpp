// Multi-channel montage utilities.
//
// The paper's sensor head is a 10-20 electrode cap (Section II), but the
// framework itself consumes one channel.  These helpers provide the
// standard front-end reductions: common-average re-referencing, bipolar
// derivations, and data-driven selection of the channel to monitor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emap::dsp {

/// A multi-channel recording block: channels[i] is one electrode's samples.
/// All channels must have equal length for the operations below.
using ChannelBlock = std::vector<std::vector<double>>;

/// Common average reference: subtracts the instantaneous mean across
/// channels from every channel.  Requires a non-empty block of equal-length
/// channels.
ChannelBlock common_average_reference(const ChannelBlock& channels);

/// Bipolar derivation a - b (equal non-zero lengths).
std::vector<double> bipolar(std::span<const double> a,
                            std::span<const double> b);

/// Criteria for picking the channel the edge node monitors.
enum class ChannelPick {
  kMaxVariance,    ///< most active electrode
  kMaxLineLength,  ///< most rhythmic/spiky electrode (seizure-sensitive)
  kMaxBandPower,   ///< strongest 11-40 Hz content (the EMAP passband)
};

/// Index of the channel maximizing the criterion.  Requires a non-empty
/// block; `fs_hz` is only used by kMaxBandPower.
std::size_t pick_channel(const ChannelBlock& channels, ChannelPick criterion,
                         double fs_hz = 256.0);

}  // namespace emap::dsp
