#include "emap/dsp/stats.hpp"

#include <cmath>
#include <vector>

namespace emap::dsp {
namespace {

constexpr double kTinyVariance = 1e-24;

std::vector<double> diff(std::span<const double> signal) {
  if (signal.size() < 2) {
    return {};
  }
  std::vector<double> d(signal.size() - 1, 0.0);
  for (std::size_t i = 0; i + 1 < signal.size(); ++i) {
    d[i] = signal[i + 1] - signal[i];
  }
  return d;
}

}  // namespace

double mean(std::span<const double> signal) {
  if (signal.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double v : signal) {
    acc += v;
  }
  return acc / static_cast<double>(signal.size());
}

double variance(std::span<const double> signal) {
  if (signal.empty()) {
    return 0.0;
  }
  const double m = mean(signal);
  double acc = 0.0;
  for (double v : signal) {
    const double centered = v - m;
    acc += centered * centered;
  }
  return acc / static_cast<double>(signal.size());
}

double stddev(std::span<const double> signal) {
  return std::sqrt(variance(signal));
}

double rms(std::span<const double> signal) {
  if (signal.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double v : signal) {
    acc += v * v;
  }
  return std::sqrt(acc / static_cast<double>(signal.size()));
}

double line_length(std::span<const double> signal) {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < signal.size(); ++i) {
    acc += std::abs(signal[i + 1] - signal[i]);
  }
  return acc;
}

std::size_t zero_crossings(std::span<const double> signal) {
  if (signal.size() < 2) {
    return 0;
  }
  const double m = mean(signal);
  std::size_t crossings = 0;
  bool has_prev = false;
  bool prev_positive = false;
  for (double v : signal) {
    const double centered = v - m;
    if (centered == 0.0) {
      continue;  // on-axis samples don't define a side
    }
    const bool positive = centered > 0.0;
    if (has_prev && positive != prev_positive) {
      ++crossings;
    }
    prev_positive = positive;
    has_prev = true;
  }
  return crossings;
}

double hjorth_mobility(std::span<const double> signal) {
  const double var_x = variance(signal);
  if (var_x < kTinyVariance) {
    return 0.0;
  }
  const auto dx = diff(signal);
  return std::sqrt(variance(dx) / var_x);
}

double hjorth_complexity(std::span<const double> signal) {
  const double mob_x = hjorth_mobility(signal);
  if (mob_x == 0.0) {
    return 0.0;
  }
  const auto dx = diff(signal);
  const double mob_dx = hjorth_mobility(dx);
  return mob_dx / mob_x;
}

double peak_abs(std::span<const double> signal) {
  double peak = 0.0;
  for (double v : signal) {
    peak = std::max(peak, std::abs(v));
  }
  return peak;
}

double skewness(std::span<const double> signal) {
  if (signal.size() < 2) {
    return 0.0;
  }
  const double m = mean(signal);
  const double sd = stddev(signal);
  if (sd * sd < kTinyVariance) {
    return 0.0;
  }
  double acc = 0.0;
  for (double v : signal) {
    const double z = (v - m) / sd;
    acc += z * z * z;
  }
  return acc / static_cast<double>(signal.size());
}

double kurtosis_excess(std::span<const double> signal) {
  if (signal.size() < 2) {
    return 0.0;
  }
  const double m = mean(signal);
  const double sd = stddev(signal);
  if (sd * sd < kTinyVariance) {
    return 0.0;
  }
  double acc = 0.0;
  for (double v : signal) {
    const double z = (v - m) / sd;
    acc += z * z * z * z;
  }
  return acc / static_cast<double>(signal.size()) - 3.0;
}

}  // namespace emap::dsp
