#include "emap/dsp/biquad.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "emap/common/error.hpp"

namespace emap::dsp {
namespace {

struct RbjParams {
  double omega;
  double sin_w;
  double cos_w;
  double alpha;
};

RbjParams rbj(double freq_hz, double fs_hz, double q) {
  require(fs_hz > 0.0, "Biquad: fs must be > 0");
  require(freq_hz > 0.0 && freq_hz < fs_hz / 2.0,
          "Biquad: frequency must lie in (0, fs/2)");
  require(q > 0.0, "Biquad: q must be > 0");
  RbjParams params{};
  params.omega = 2.0 * std::numbers::pi * freq_hz / fs_hz;
  params.sin_w = std::sin(params.omega);
  params.cos_w = std::cos(params.omega);
  params.alpha = params.sin_w / (2.0 * q);
  return params;
}

}  // namespace

Biquad::Biquad(double b0, double b1, double b2, double a0, double a1,
               double a2) {
  require(std::abs(a0) > 1e-300, "Biquad: a0 must be non-zero");
  b0_ = b0 / a0;
  b1_ = b1 / a0;
  b2_ = b2 / a0;
  a1_ = a1 / a0;
  a2_ = a2 / a0;
}

Biquad Biquad::lowpass(double freq_hz, double fs_hz, double q) {
  const auto p = rbj(freq_hz, fs_hz, q);
  const double b1 = 1.0 - p.cos_w;
  return Biquad(b1 / 2.0, b1, b1 / 2.0, 1.0 + p.alpha, -2.0 * p.cos_w,
                1.0 - p.alpha);
}

Biquad Biquad::highpass(double freq_hz, double fs_hz, double q) {
  const auto p = rbj(freq_hz, fs_hz, q);
  const double b1 = 1.0 + p.cos_w;
  return Biquad(b1 / 2.0, -b1, b1 / 2.0, 1.0 + p.alpha, -2.0 * p.cos_w,
                1.0 - p.alpha);
}

Biquad Biquad::notch(double freq_hz, double fs_hz, double q) {
  const auto p = rbj(freq_hz, fs_hz, q);
  return Biquad(1.0, -2.0 * p.cos_w, 1.0, 1.0 + p.alpha, -2.0 * p.cos_w,
                1.0 - p.alpha);
}

Biquad Biquad::peaking(double freq_hz, double fs_hz, double gain_db,
                       double q) {
  const auto p = rbj(freq_hz, fs_hz, q);
  const double amp = std::pow(10.0, gain_db / 40.0);
  return Biquad(1.0 + p.alpha * amp, -2.0 * p.cos_w, 1.0 - p.alpha * amp,
                1.0 + p.alpha / amp, -2.0 * p.cos_w, 1.0 - p.alpha / amp);
}

double Biquad::process_sample(double x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

std::vector<double> Biquad::process_block(std::span<const double> input) {
  std::vector<double> output;
  output.reserve(input.size());
  for (double x : input) {
    output.push_back(process_sample(x));
  }
  return output;
}

void Biquad::reset() {
  x1_ = x2_ = y1_ = y2_ = 0.0;
}

double Biquad::magnitude_response(double freq_hz, double fs_hz) const {
  require(fs_hz > 0.0, "Biquad: fs must be > 0");
  const double omega = 2.0 * std::numbers::pi * freq_hz / fs_hz;
  const std::complex<double> z = std::exp(std::complex<double>(0.0, omega));
  const std::complex<double> z1 = 1.0 / z;
  const std::complex<double> z2 = z1 * z1;
  const std::complex<double> numerator = b0_ + b1_ * z1 + b2_ * z2;
  const std::complex<double> denominator = 1.0 + a1_ * z1 + a2_ * z2;
  return std::abs(numerator / denominator);
}

BiquadCascade::BiquadCascade(std::vector<Biquad> sections)
    : sections_(std::move(sections)) {}

double BiquadCascade::process_sample(double x) {
  for (auto& section : sections_) {
    x = section.process_sample(x);
  }
  return x;
}

std::vector<double> BiquadCascade::process_block(
    std::span<const double> input) {
  std::vector<double> output;
  output.reserve(input.size());
  for (double x : input) {
    output.push_back(process_sample(x));
  }
  return output;
}

void BiquadCascade::reset() {
  for (auto& section : sections_) {
    section.reset();
  }
}

double BiquadCascade::magnitude_response(double freq_hz, double fs_hz) const {
  double magnitude = 1.0;
  for (const auto& section : sections_) {
    magnitude *= section.magnitude_response(freq_hz, fs_hz);
  }
  return magnitude;
}

BiquadCascade make_acquisition_frontend(double fs_hz, double mains_hz) {
  require(mains_hz > 0.0 && mains_hz < fs_hz / 2.0,
          "make_acquisition_frontend: mains frequency out of range");
  BiquadCascade cascade;
  cascade.push_back(Biquad::highpass(0.5, fs_hz));
  cascade.push_back(Biquad::notch(mains_hz, fs_hz));
  const double harmonic = 2.0 * mains_hz;
  if (harmonic < fs_hz / 2.0) {
    cascade.push_back(Biquad::notch(harmonic, fs_hz));
  }
  return cascade;
}

}  // namespace emap::dsp
