// Area between curves (paper Eq. 3).
//
// The edge tracker replaces the O(n) multiply-accumulate of
// cross-correlation with the cheaper sum of absolute differences
// A(A, B) = sum_i |A_i - B_i| — "roughly 4.3x faster" on the edge device
// (paper Fig. 8b) because it needs no multiplies and no normalization.
//
// Inner loops run through the simd.hpp dispatch (scalar or AVX2;
// EMAP_SIMD overrides).  Scalar mode is bit-identical to the pre-SIMD
// code; the AVX2 arm agrees within the pinned ULP bound enforced by
// tests/support/kernel_diff.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emap::dsp {

/// Area between two equal-length curves: sum of |a[i] - b[i]| (Eq. 3).
/// Requires equal, non-zero lengths.  Units: sample-units x samples
/// ("sq. units" in the paper, ~900 at the δ = 0.8 operating point).
double area_between(std::span<const double> a, std::span<const double> b);

/// Early-exit variant: stops accumulating once the running area exceeds
/// `threshold` and returns a value > threshold.  Exact when the true area is
/// <= threshold.  This is the inner loop of Algorithm 2, where most tracked
/// signals are rejected and full evaluation is wasted work.
double area_between_capped(std::span<const double> a,
                           std::span<const double> b, double threshold);

/// Early-exit variant that also reports the number of samples consumed
/// before exit — the edge device's cost accounting (sim::DeviceProfile)
/// charges one ABS op per consumed sample.  The count's granularity is
/// implementation-defined: exact under scalar dispatch, rounded up to the
/// 4-sample SIMD block under AVX2 (the cap is checked per block).  Within
/// one dispatch mode the count is deterministic.
double area_between_capped_counted(std::span<const double> a,
                                   std::span<const double> b,
                                   double threshold, std::size_t& ops);

/// Sliding area: result[k] = area_between(probe, haystack[k : k+|probe|])
/// for every full-overlap offset.  Empty when probe doesn't fit.
std::vector<double> sliding_area(std::span<const double> probe,
                                 std::span<const double> haystack);

}  // namespace emap::dsp
