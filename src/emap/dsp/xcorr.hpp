// Signal cross-correlation (paper Eq. 2).
//
// The paper's ω(A, B) is the sliding dot product of two 256-sample windows;
// the search threshold δ = 0.8 only has scale-free meaning for normalized
// windows, so the primary similarity used by EMAP is the normalized
// cross-correlation (NCC): mean-removed, unit-norm dot product in [-1, 1].
// The raw dot product is also exposed for the exhaustive baseline and the
// cost model (one "correlation op" = window-length multiply-accumulates).
//
// Inner loops run through the simd.hpp dispatch (scalar or AVX2+FMA;
// EMAP_SIMD overrides).  Scalar mode reproduces the pre-SIMD results
// bit-for-bit; the AVX2 arm agrees within the pinned ULP bound enforced
// by tests/support/kernel_diff.hpp.  Probe normalization
// (NormalizedWindow's constructor) is deliberately always scalar — it
// runs once per probe, and keeping it arm-independent confines every
// scalar/AVX2 divergence to the per-candidate pass.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emap::dsp {

/// Raw sliding dot product at a single alignment (Eq. 2 verbatim).
/// Requires equal non-zero lengths.
double dot_correlation(std::span<const double> a, std::span<const double> b);

/// Normalized cross-correlation of two equal-length windows:
/// NCC = <a - mean(a), b - mean(b)> / (||a - mean(a)|| * ||b - mean(b)||).
/// Degenerate windows (zero variance) correlate as 0 against anything,
/// except two degenerate windows which correlate as 1 (both "flat").
/// Result is clamped to [-1, 1] against floating-point drift.
double normalized_correlation(std::span<const double> a,
                              std::span<const double> b);

/// Precomputed zero-mean/unit-norm view of a window, so one input can be
/// correlated against many candidates without re-normalizing.
class NormalizedWindow {
 public:
  /// Normalizes `window`; degenerate (zero variance) windows are flagged.
  explicit NormalizedWindow(std::span<const double> window);

  /// NCC between this window and raw candidate samples of the same length.
  /// Requires candidate.size() == size().
  double correlate(std::span<const double> candidate) const;

  /// NCC between two pre-normalized windows (plain dot product).
  double correlate(const NormalizedWindow& other) const;

  std::size_t size() const { return normalized_.size(); }
  bool degenerate() const { return degenerate_; }
  std::span<const double> samples() const { return normalized_; }

 private:
  std::vector<double> normalized_;
  bool degenerate_ = false;
};

/// Full cross-correlation sequence of `probe` slid across `haystack`:
/// result[k] = NCC(probe, haystack[k : k+probe.size()]) for every full
/// overlap offset k in [0, haystack.size() - probe.size()].
/// Returns empty when probe is longer than haystack or either is empty.
std::vector<double> sliding_ncc(std::span<const double> probe,
                                std::span<const double> haystack);

}  // namespace emap::dsp
