// Signal statistics shared by the synthesizer (amplitude calibration), the
// ML baselines (feature extraction) and the test suite (invariants).
#pragma once

#include <cstddef>
#include <span>

namespace emap::dsp {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> signal);

/// Population variance (divide by N); 0 for empty input.
double variance(std::span<const double> signal);

/// Standard deviation.
double stddev(std::span<const double> signal);

/// Root mean square amplitude.
double rms(std::span<const double> signal);

/// Line length: sum of |x[i+1] - x[i]|.  A classic, cheap EEG seizure
/// feature (rises sharply during rhythmic ictal activity).
double line_length(std::span<const double> signal);

/// Number of sign changes of the mean-removed signal.
std::size_t zero_crossings(std::span<const double> signal);

/// Hjorth mobility: stddev(dx) / stddev(x); 0 when x is constant.
double hjorth_mobility(std::span<const double> signal);

/// Hjorth complexity: mobility(dx) / mobility(x); 0 when undefined.
double hjorth_complexity(std::span<const double> signal);

/// Peak absolute amplitude; 0 for empty input.
double peak_abs(std::span<const double> signal);

/// Skewness (Fisher); 0 when variance is ~0 or input shorter than 2.
double skewness(std::span<const double> signal);

/// Excess kurtosis; 0 when variance is ~0 or input shorter than 2.
double kurtosis_excess(std::span<const double> signal);

}  // namespace emap::dsp
