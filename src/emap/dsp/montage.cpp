#include "emap/dsp/montage.hpp"

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::dsp {
namespace {

void check_block(const ChannelBlock& channels) {
  require(!channels.empty(), "montage: empty channel block");
  const std::size_t length = channels.front().size();
  require(length > 0, "montage: empty channels");
  for (const auto& channel : channels) {
    require(channel.size() == length,
            "montage: channels must have equal length");
  }
}

}  // namespace

ChannelBlock common_average_reference(const ChannelBlock& channels) {
  check_block(channels);
  const std::size_t length = channels.front().size();
  const double inv_count = 1.0 / static_cast<double>(channels.size());
  ChannelBlock referenced = channels;
  for (std::size_t k = 0; k < length; ++k) {
    double mean = 0.0;
    for (const auto& channel : channels) {
      mean += channel[k];
    }
    mean *= inv_count;
    for (auto& channel : referenced) {
      channel[k] -= mean;
    }
  }
  return referenced;
}

std::vector<double> bipolar(std::span<const double> a,
                            std::span<const double> b) {
  require(!a.empty() && a.size() == b.size(),
          "bipolar: channels must have equal non-zero length");
  std::vector<double> derivation(a.size(), 0.0);
  for (std::size_t k = 0; k < a.size(); ++k) {
    derivation[k] = a[k] - b[k];
  }
  return derivation;
}

std::size_t pick_channel(const ChannelBlock& channels, ChannelPick criterion,
                         double fs_hz) {
  check_block(channels);
  std::size_t best = 0;
  double best_score = -1.0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    double score = 0.0;
    switch (criterion) {
      case ChannelPick::kMaxVariance:
        score = variance(channels[i]);
        break;
      case ChannelPick::kMaxLineLength:
        score = line_length(channels[i]);
        break;
      case ChannelPick::kMaxBandPower:
        score = band_power(channels[i], fs_hz, 11.0, 40.0);
        break;
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace emap::dsp
