#include "emap/dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "emap/common/error.hpp"

namespace emap::dsp {
namespace {

bool is_pow2(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

void fft_core(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  require(is_pow2(n), "fft: size must be a non-zero power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : data) {
      value *= scale;
    }
  }
}

}  // namespace

void fft_inplace(std::vector<std::complex<double>>& data) {
  fft_core(data, /*inverse=*/false);
}

void ifft_inplace(std::vector<std::complex<double>>& data) {
  fft_core(data, /*inverse=*/true);
}

std::size_t next_pow2(std::size_t n) {
  require(n >= 1, "next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

std::vector<std::complex<double>> fft_real(std::span<const double> signal) {
  require(!signal.empty(), "fft_real: empty signal");
  const std::size_t padded = next_pow2(signal.size());
  std::vector<std::complex<double>> data(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) {
    data[i] = {signal[i], 0.0};
  }
  fft_inplace(data);
  return data;
}

std::vector<double> power_spectrum(std::span<const double> signal) {
  const auto spectrum = fft_real(signal);
  const std::size_t n = spectrum.size();
  std::vector<double> power(n / 2 + 1, 0.0);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    power[k] = std::norm(spectrum[k]) / static_cast<double>(n);
  }
  return power;
}

double band_power(std::span<const double> signal, double sample_rate_hz,
                  double low_hz, double high_hz) {
  if (signal.empty()) {
    return 0.0;
  }
  require(sample_rate_hz > 0.0, "band_power: sample rate must be > 0");
  require(low_hz <= high_hz, "band_power: low_hz must be <= high_hz");
  const auto power = power_spectrum(signal);
  const std::size_t padded = next_pow2(signal.size());
  const double bin_hz = sample_rate_hz / static_cast<double>(padded);
  double total = 0.0;
  for (std::size_t k = 0; k < power.size(); ++k) {
    const double freq = static_cast<double>(k) * bin_hz;
    if (freq >= low_hz && freq <= high_hz) {
      total += power[k];
    }
  }
  return total;
}

}  // namespace emap::dsp
