#include "emap/dsp/resample.hpp"

#include <algorithm>
#include <cmath>

#include "emap/common/error.hpp"
#include "emap/dsp/fir.hpp"

namespace emap::dsp {
namespace {

// Anti-alias filter with compensation for its group delay: the output is the
// filtered signal shifted left by (taps-1)/2 so resampled output stays time
// aligned with the input.
std::vector<double> antialias(std::span<const double> input,
                              double input_rate_hz, double cutoff_hz) {
  FirDesign design;
  design.response = FirResponse::kLowpass;
  design.taps = 101;  // odd => integer group delay of 50 samples
  design.sample_rate_hz = input_rate_hz;
  design.high_cut_hz = cutoff_hz;
  design.window = WindowKind::kHamming;
  FirFilter filter{design};

  const std::size_t delay = (design.taps - 1) / 2;
  std::vector<double> padded(input.begin(), input.end());
  padded.insert(padded.end(), delay, input.empty() ? 0.0 : input.back());
  const auto filtered = filter.apply(padded);
  return {filtered.begin() + static_cast<std::ptrdiff_t>(delay),
          filtered.end()};
}

double sample_at(std::span<const double> signal, double position) {
  if (signal.empty()) {
    return 0.0;
  }
  if (position <= 0.0) {
    return signal.front();
  }
  const double last = static_cast<double>(signal.size() - 1);
  if (position >= last) {
    return signal.back();
  }
  const auto base = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(base);
  return signal[base] * (1.0 - frac) + signal[base + 1] * frac;
}

}  // namespace

std::vector<double> resample(std::span<const double> input,
                             double input_rate_hz, double output_rate_hz) {
  require(input_rate_hz > 0.0 && output_rate_hz > 0.0,
          "resample: rates must be positive");
  if (input.empty()) {
    return {};
  }
  if (std::abs(input_rate_hz - output_rate_hz) < 1e-9) {
    return {input.begin(), input.end()};
  }

  std::vector<double> source;
  if (output_rate_hz < input_rate_hz) {
    // Downsampling: remove content above the new Nyquist first.
    source = antialias(input, input_rate_hz, 0.45 * output_rate_hz);
  } else {
    source.assign(input.begin(), input.end());
  }

  const double duration = static_cast<double>(input.size()) / input_rate_hz;
  const auto out_count = static_cast<std::size_t>(
      std::max(1.0, std::round(duration * output_rate_hz)));
  const double step = input_rate_hz / output_rate_hz;
  std::vector<double> output(out_count, 0.0);
  for (std::size_t i = 0; i < out_count; ++i) {
    output[i] = sample_at(source, static_cast<double>(i) * step);
  }
  return output;
}

std::vector<double> upsample_linear(std::span<const double> input,
                                    std::size_t factor) {
  require(factor >= 1, "upsample_linear: factor must be >= 1");
  if (input.empty() || factor == 1) {
    return {input.begin(), input.end()};
  }
  std::vector<double> output;
  output.reserve(input.size() * factor);
  for (std::size_t i = 0; i + 1 < input.size(); ++i) {
    for (std::size_t k = 0; k < factor; ++k) {
      const double frac = static_cast<double>(k) / static_cast<double>(factor);
      output.push_back(input[i] * (1.0 - frac) + input[i + 1] * frac);
    }
  }
  output.push_back(input.back());
  return output;
}

std::vector<double> decimate(std::span<const double> input,
                             std::size_t factor) {
  require(factor >= 1, "decimate: factor must be >= 1");
  if (input.empty() || factor == 1) {
    return {input.begin(), input.end()};
  }
  const double input_rate = 1.0;  // rate cancels; cutoff relative to output
  const auto filtered =
      antialias(input, input_rate, 0.45 * input_rate / static_cast<double>(factor));
  std::vector<double> output;
  output.reserve(input.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) {
    output.push_back(filtered[i]);
  }
  return output;
}

}  // namespace emap::dsp
