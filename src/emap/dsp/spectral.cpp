#include "emap/dsp/spectral.hpp"

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"

namespace emap::dsp {

double spectral_edge_frequency(std::span<const double> signal,
                               double sample_rate_hz, double fraction) {
  require(sample_rate_hz > 0.0,
          "spectral_edge_frequency: sample rate must be > 0");
  require(fraction > 0.0 && fraction <= 1.0,
          "spectral_edge_frequency: fraction must be in (0, 1]");
  if (signal.empty()) {
    return 0.0;
  }
  const auto power = power_spectrum(signal);
  double total = 0.0;
  for (double p : power) {
    total += p;
  }
  if (total <= 0.0) {
    return 0.0;
  }
  const double padded = static_cast<double>(next_pow2(signal.size()));
  const double bin_hz = sample_rate_hz / padded;
  double cumulative = 0.0;
  for (std::size_t k = 0; k < power.size(); ++k) {
    cumulative += power[k];
    if (cumulative >= fraction * total) {
      return static_cast<double>(k) * bin_hz;
    }
  }
  return static_cast<double>(power.size() - 1) * bin_hz;
}

double median_frequency(std::span<const double> signal,
                        double sample_rate_hz) {
  return spectral_edge_frequency(signal, sample_rate_hz, 0.5);
}

double band_ratio(std::span<const double> signal, double sample_rate_hz,
                  double numer_lo_hz, double numer_hi_hz,
                  double denom_lo_hz, double denom_hi_hz) {
  const double denominator =
      band_power(signal, sample_rate_hz, denom_lo_hz, denom_hi_hz);
  if (denominator <= 0.0) {
    return 0.0;
  }
  return band_power(signal, sample_rate_hz, numer_lo_hz, numer_hi_hz) /
         denominator;
}

}  // namespace emap::dsp
