// IIR biquad filters (RBJ audio-EQ-cookbook designs).
//
// The FIR bandpass of Eq. 1 is EMAP's published pre-processing, but a real
// electrode-cap front end also carries a powerline notch (50/60 Hz) and a
// DC-blocking highpass before digitization.  This module provides those as
// standard biquad sections with a cascade container; the acquisition
// examples and the artifact-robustness tests use them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emap::dsp {

/// Second-order IIR section, direct form I:
///   y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]) / a0
class Biquad {
 public:
  /// Raw coefficients (a0 must be non-zero; it is divided out).
  Biquad(double b0, double b1, double b2, double a0, double a1, double a2);

  /// RBJ designs.  `q` controls bandwidth (notch sharpness); frequencies
  /// must lie in (0, fs/2).
  static Biquad lowpass(double freq_hz, double fs_hz, double q = 0.7071);
  static Biquad highpass(double freq_hz, double fs_hz, double q = 0.7071);
  static Biquad notch(double freq_hz, double fs_hz, double q = 30.0);
  static Biquad peaking(double freq_hz, double fs_hz, double gain_db,
                        double q = 1.0);

  /// Processes one sample (stateful).
  double process_sample(double x);

  /// Processes a block (equivalent to repeated process_sample).
  std::vector<double> process_block(std::span<const double> input);

  /// Clears the delay line.
  void reset();

  /// Magnitude response at `freq_hz` for sampling rate `fs_hz`.
  double magnitude_response(double freq_hz, double fs_hz) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// A chain of biquad sections applied in sequence.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections);

  void push_back(Biquad section) { sections_.push_back(section); }
  std::size_t size() const { return sections_.size(); }

  double process_sample(double x);
  std::vector<double> process_block(std::span<const double> input);
  void reset();
  double magnitude_response(double freq_hz, double fs_hz) const;

 private:
  std::vector<Biquad> sections_;
};

/// The standard EEG acquisition front end: DC-blocking highpass (0.5 Hz) +
/// powerline notch at `mains_hz` (50 or 60) and its first harmonic.
BiquadCascade make_acquisition_frontend(double fs_hz, double mains_hz = 50.0);

}  // namespace emap::dsp
