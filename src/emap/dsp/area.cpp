#include "emap/dsp/area.hpp"

#include <cmath>

#include "emap/common/error.hpp"
#include "emap/dsp/kernels.hpp"

namespace emap::dsp {

double area_between(std::span<const double> a, std::span<const double> b) {
  require(!a.empty() && a.size() == b.size(),
          "area_between: curves must have equal non-zero length");
  return kernels::active().abs_sum(a.data(), b.data(), a.size());
}

double area_between_capped(std::span<const double> a,
                           std::span<const double> b, double threshold) {
  require(!a.empty() && a.size() == b.size(),
          "area_between_capped: curves must have equal non-zero length");
  return kernels::active().abs_sum_capped(a.data(), b.data(), a.size(),
                                          threshold, nullptr);
}

double area_between_capped_counted(std::span<const double> a,
                                   std::span<const double> b,
                                   double threshold, std::size_t& ops) {
  require(!a.empty() && a.size() == b.size(),
          "area_between_capped_counted: curves must have equal non-zero length");
  return kernels::active().abs_sum_capped(a.data(), b.data(), a.size(),
                                          threshold, &ops);
}

std::vector<double> sliding_area(std::span<const double> probe,
                                 std::span<const double> haystack) {
  if (probe.empty() || haystack.size() < probe.size()) {
    return {};
  }
  const std::size_t offsets = haystack.size() - probe.size() + 1;
  std::vector<double> result(offsets, 0.0);
  for (std::size_t k = 0; k < offsets; ++k) {
    result[k] = area_between(probe, haystack.subspan(k, probe.size()));
  }
  return result;
}

}  // namespace emap::dsp
