// AVX2+FMA arm of the DSP hot-path kernels.
//
// This translation unit is the only one compiled with -mavx2 -mfma (see
// src/CMakeLists.txt); nothing here may be called before a
// simd::cpu_supports_avx2() check upstream, and nothing here is inlined
// across TU boundaries (no LTO), so the baseline binary stays runnable on
// non-AVX2 hosts.
//
// Numerics: every reduction uses 4-lane (or 2x4-lane) partial sums folded
// at the end, and the multiply-add kernels use FMA — both change the
// rounding sequence relative to the scalar arm's strict left-to-right
// loops.  The divergence is pinned by the kernel-equivalence harness
// (tests/support/kernel_diff.hpp) to a small ULP bound; keep any change
// here inside that bound or update the pinned bound in the same PR.
//
// Tails (n not a multiple of the lane width) finish scalar, accumulating
// onto the folded vector total.
#include <immintrin.h>

#include <cmath>

#include "emap/dsp/kernels.hpp"

namespace emap::dsp::kernels {
namespace {

/// Horizontal sum of one 4-lane accumulator.
inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

}  // namespace

double sum_avx2(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    i += 4;
  }
  double total = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    total += x[i];
  }
  return total;
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  double total = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    total += a[i] * b[i];
  }
  return total;
}

DotNormSq centered_dot_norm_avx2(const double* probe, const double* cand,
                                 std::size_t n, double mean) {
  const __m256d vmean = _mm256_set1_pd(mean);
  __m256d dot0 = _mm256_setzero_pd();
  __m256d dot1 = _mm256_setzero_pd();
  __m256d nsq0 = _mm256_setzero_pd();
  __m256d nsq1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d c0 = _mm256_sub_pd(_mm256_loadu_pd(cand + i), vmean);
    const __m256d c1 = _mm256_sub_pd(_mm256_loadu_pd(cand + i + 4), vmean);
    dot0 = _mm256_fmadd_pd(_mm256_loadu_pd(probe + i), c0, dot0);
    dot1 = _mm256_fmadd_pd(_mm256_loadu_pd(probe + i + 4), c1, dot1);
    nsq0 = _mm256_fmadd_pd(c0, c0, nsq0);
    nsq1 = _mm256_fmadd_pd(c1, c1, nsq1);
  }
  if (i + 4 <= n) {
    const __m256d c0 = _mm256_sub_pd(_mm256_loadu_pd(cand + i), vmean);
    dot0 = _mm256_fmadd_pd(_mm256_loadu_pd(probe + i), c0, dot0);
    nsq0 = _mm256_fmadd_pd(c0, c0, nsq0);
    i += 4;
  }
  DotNormSq out;
  out.dot = hsum(_mm256_add_pd(dot0, dot1));
  out.norm_sq = hsum(_mm256_add_pd(nsq0, nsq1));
  for (; i < n; ++i) {
    const double centered = cand[i] - mean;
    out.dot += probe[i] * centered;
    out.norm_sq += centered * centered;
  }
  return out;
}

double abs_sum_avx2(const double* a, const double* b, std::size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign_mask, d1));
  }
  if (i + 4 <= n) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d0));
    i += 4;
  }
  double total = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    total += std::abs(a[i] - b[i]);
  }
  return total;
}

double abs_sum_capped_avx2(const double* a, const double* b, std::size_t n,
                           double threshold, std::size_t* consumed) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  double acc = 0.0;
  std::size_t i = 0;
  // Cap check once per 4-lane block.  The predicate is written as
  // (acc > threshold) so a NaN accumulator never exits early — matching
  // the scalar arm, which also keeps consuming on NaN.
  while (i + 4 <= n) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc += hsum(_mm256_andnot_pd(sign_mask, d));
    i += 4;
    if (acc > threshold) {
      if (consumed != nullptr) {
        *consumed += i;
      }
      return acc;
    }
  }
  while (i < n) {
    acc += std::abs(a[i] - b[i]);
    ++i;
    if (acc > threshold) {
      break;
    }
  }
  if (consumed != nullptr) {
    *consumed += i;
  }
  return acc;
}

}  // namespace emap::dsp::kernels
