// FIR filter design and application.
//
// EMAP's acquisition stage passes every signal through a 100-tap bandpass
// filter H(z) = sum_{n=0}^{99} h(n) z^-n attenuating everything outside
// 11-40 Hz (paper Eq. 1 and Section V-A).  FirFilter implements both the
// batch form used when building the mega-database and the streaming form
// the edge sensor node would run ("a simple hard-coded accelerator").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "emap/dsp/window.hpp"

namespace emap::dsp {

/// Serializable streaming-filter history (checkpoint support): the delay
/// line carries across window boundaries, so a resumed pipeline must
/// restore it or the first post-resume window filters differently.
struct FirStreamState {
  std::vector<double> history;
  std::size_t history_pos = 0;
};

/// Filter response types supported by the windowed-sinc designer.
enum class FirResponse {
  kLowpass,
  kHighpass,
  kBandpass,
  kBandstop,
};

/// Design parameters for a windowed-sinc FIR filter.
struct FirDesign {
  FirResponse response = FirResponse::kBandpass;
  std::size_t taps = 100;          ///< number of coefficients (paper: 100)
  double sample_rate_hz = 256.0;   ///< sampling frequency
  double low_cut_hz = 11.0;        ///< lower edge (bandpass/bandstop/highpass)
  double high_cut_hz = 40.0;       ///< upper edge (bandpass/bandstop/lowpass)
  WindowKind window = WindowKind::kHamming;
};

/// Designs windowed-sinc coefficients for `design`.
///
/// Preconditions: taps >= 2; cut frequencies inside (0, fs/2); for band
/// responses low_cut < high_cut.  Even-length designs (like the paper's 100
/// taps) are supported; the ideal response is sampled on the half-sample
/// symmetric grid so the filter stays linear-phase (type II).
std::vector<double> design_fir(const FirDesign& design);

/// A causal FIR filter: batch convolution plus stateful streaming.
class FirFilter {
 public:
  /// Builds a filter from explicit coefficients.  Requires at least one tap.
  explicit FirFilter(std::vector<double> coefficients);

  /// Designs and builds in one step.
  explicit FirFilter(const FirDesign& design);

  /// The paper's filter: 100-tap Hamming bandpass, 11-40 Hz at 256 Hz.
  static FirFilter paper_bandpass();

  /// Number of taps.
  std::size_t taps() const { return coefficients_.size(); }

  /// Filter coefficients h(0..taps-1).
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Group delay in samples ((taps-1)/2 for linear-phase designs).
  double group_delay() const {
    return (static_cast<double>(coefficients_.size()) - 1.0) / 2.0;
  }

  /// Batch form: y[k] = sum_i h[i] * x[k-i] with zero history before x[0].
  /// Output has the same length as the input (paper Section V-A's
  /// B(N,k) = sum_i H_i * I(N,k-i)).
  std::vector<double> apply(std::span<const double> input) const;

  /// Streaming form: consumes one sample, returns one filtered sample.
  /// History persists across calls until reset().
  double process_sample(double sample);

  /// Streaming form over a block, equivalent to repeated process_sample.
  std::vector<double> process_block(std::span<const double> input);

  /// Clears streaming history.
  void reset();

  /// Captures the streaming delay line (checkpoint support).
  FirStreamState save_stream() const { return {history_, history_pos_}; }

  /// Restores a saved delay line.  Throws InvalidArgument when the state's
  /// history length does not match this filter's tap count.
  void restore_stream(const FirStreamState& state);

  /// Complex magnitude of the frequency response at `frequency_hz` for a
  /// sampling rate of `sample_rate_hz`.
  double magnitude_response(double frequency_hz, double sample_rate_hz) const;

 private:
  std::vector<double> coefficients_;
  std::vector<double> history_;  // circular delay line
  std::size_t history_pos_ = 0;
};

}  // namespace emap::dsp
