#include "emap/dsp/kernels.hpp"

#include <cmath>

#include "emap/common/error.hpp"

namespace emap::dsp::kernels {

double sum_scalar(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i];
  }
  return acc;
}

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

DotNormSq centered_dot_norm_scalar(const double* probe, const double* cand,
                                   std::size_t n, double mean) {
  DotNormSq out;
  for (std::size_t i = 0; i < n; ++i) {
    const double centered = cand[i] - mean;
    out.dot += probe[i] * centered;
    out.norm_sq += centered * centered;
  }
  return out;
}

double abs_sum_scalar(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::abs(a[i] - b[i]);
  }
  return acc;
}

double abs_sum_capped_scalar(const double* a, const double* b, std::size_t n,
                             double threshold, std::size_t* consumed) {
  double acc = 0.0;
  std::size_t i = 0;
  while (i < n) {
    acc += std::abs(a[i] - b[i]);
    ++i;
    if (acc > threshold) {
      break;
    }
  }
  if (consumed != nullptr) {
    *consumed += i;
  }
  return acc;
}

namespace {

constexpr KernelTable kScalarTable{
    simd::Level::kScalar, &sum_scalar,     &dot_scalar,
    &centered_dot_norm_scalar, &abs_sum_scalar, &abs_sum_capped_scalar,
};

#ifdef EMAP_HAVE_AVX2
constexpr KernelTable kAvx2Table{
    simd::Level::kAvx2, &sum_avx2,     &dot_avx2,
    &centered_dot_norm_avx2, &abs_sum_avx2, &abs_sum_capped_avx2,
};
#endif

}  // namespace

const KernelTable& table(simd::Level level) {
  if (level == simd::Level::kAvx2) {
#ifdef EMAP_HAVE_AVX2
    return kAvx2Table;
#else
    throw InvalidArgument(
        "kernels::table: AVX2 arm not compiled into this binary");
#endif
  }
  return kScalarTable;
}

const KernelTable& active() {
  const simd::Level level = simd::active_level();
  simd::count_kernel_invocation(level);
  return table(level);
}

}  // namespace emap::dsp::kernels
