#include "emap/dsp/xcorr.hpp"

#include <algorithm>
#include <cmath>

#include "emap/common/error.hpp"
#include "emap/dsp/kernels.hpp"

namespace emap::dsp {
namespace {

constexpr double kDegenerateNorm = 1e-12;

}  // namespace

double dot_correlation(std::span<const double> a, std::span<const double> b) {
  require(!a.empty() && a.size() == b.size(),
          "dot_correlation: windows must have equal non-zero length");
  return kernels::active().dot(a.data(), b.data(), a.size());
}

double normalized_correlation(std::span<const double> a,
                              std::span<const double> b) {
  NormalizedWindow na(a);
  require(a.size() == b.size(),
          "normalized_correlation: windows must have equal length");
  if (na.degenerate()) {
    NormalizedWindow nb(b);
    return nb.degenerate() ? 1.0 : 0.0;
  }
  return na.correlate(b);
}

NormalizedWindow::NormalizedWindow(std::span<const double> window) {
  require(!window.empty(), "NormalizedWindow: empty window");
  normalized_.assign(window.begin(), window.end());
  double mean = 0.0;
  for (double v : normalized_) {
    mean += v;
  }
  mean /= static_cast<double>(normalized_.size());
  double norm_sq = 0.0;
  for (double& v : normalized_) {
    v -= mean;
    norm_sq += v * v;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm < kDegenerateNorm) {
    degenerate_ = true;
    std::fill(normalized_.begin(), normalized_.end(), 0.0);
    return;
  }
  for (double& v : normalized_) {
    v /= norm;
  }
}

double NormalizedWindow::correlate(std::span<const double> candidate) const {
  require(candidate.size() == normalized_.size(),
          "NormalizedWindow::correlate: length mismatch");
  if (degenerate_) {
    return 0.0;
  }
  // Normalize the candidate on the fly: NCC = <a_hat, (b - mean_b)> / ||b - mean_b||.
  // Two passes through the dispatched kernels; the candidate is L1-resident
  // on the second.  A fused one-pass rewrite (norm_sq = sumsq - n*mean^2)
  // was rejected: it cancels catastrophically on offset-dominated windows,
  // which the ULP-equivalence harness would (rightly) flag.
  const auto& kernel = kernels::active();
  const double mean = kernel.sum(candidate.data(), candidate.size()) /
                      static_cast<double>(candidate.size());
  const kernels::DotNormSq cd = kernel.centered_dot_norm(
      normalized_.data(), candidate.data(), candidate.size(), mean);
  const double norm = std::sqrt(cd.norm_sq);
  if (norm < kDegenerateNorm) {
    return 0.0;
  }
  return std::clamp(cd.dot / norm, -1.0, 1.0);
}

double NormalizedWindow::correlate(const NormalizedWindow& other) const {
  require(other.size() == size(),
          "NormalizedWindow::correlate: length mismatch");
  if (degenerate_ || other.degenerate_) {
    return (degenerate_ && other.degenerate_) ? 1.0 : 0.0;
  }
  const double dot = kernels::active().dot(
      normalized_.data(), other.normalized_.data(), normalized_.size());
  return std::clamp(dot, -1.0, 1.0);
}

std::vector<double> sliding_ncc(std::span<const double> probe,
                                std::span<const double> haystack) {
  if (probe.empty() || haystack.size() < probe.size()) {
    return {};
  }
  const NormalizedWindow normalized_probe(probe);
  const std::size_t offsets = haystack.size() - probe.size() + 1;
  std::vector<double> result(offsets, 0.0);
  for (std::size_t k = 0; k < offsets; ++k) {
    result[k] = normalized_probe.correlate(haystack.subspan(k, probe.size()));
  }
  return result;
}

}  // namespace emap::dsp
