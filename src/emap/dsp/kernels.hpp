// Per-implementation DSP kernels behind the simd.hpp dispatch.
//
// Each hot inner loop exists once per arm with identical signatures over
// raw pointers; the public xcorr/area APIs pick an arm through table() /
// active().  Exposing both arms directly (not just the dispatched blend)
// is what makes the differential kernel-equivalence harness possible:
// tests drive every (kernel, implementation) pair over the same inputs
// and pin the divergence to a ULP bound.
//
// Contracts shared by every arm:
//   - n == 0 is well-defined (sums are 0.0, consumed counts 0) — the
//     public APIs reject empty windows before reaching a kernel, but the
//     harness exercises the kernels' own edge behavior;
//   - non-finite inputs propagate IEEE semantics: any NaN term makes the
//     affected sum NaN in every arm (the AVX2 capped kernel's early-exit
//     predicate is written NaN-safe for exactly this);
//   - the scalar arm accumulates strictly left-to-right and is bit-
//     identical to the pre-SIMD code; the AVX2 arm uses 4-lane partial
//     sums + FMA, so it matches scalar only within the pinned ULP bound
//     (see docs/performance.md, "SIMD dispatch and ULP equivalence").
#pragma once

#include <cstddef>
#include <cstdint>

#include "emap/dsp/simd.hpp"

namespace emap::dsp::kernels {

/// Fused outputs of the NCC candidate pass: centered dot product against a
/// pre-normalized probe, plus the candidate's centered squared norm.
struct DotNormSq {
  double dot = 0.0;
  double norm_sq = 0.0;
};

// --- scalar arm: the original sequential loops, bit-for-bit -------------

double sum_scalar(const double* x, std::size_t n);
double dot_scalar(const double* a, const double* b, std::size_t n);
DotNormSq centered_dot_norm_scalar(const double* probe, const double* cand,
                                   std::size_t n, double mean);
double abs_sum_scalar(const double* a, const double* b, std::size_t n);
/// Early-exit sum of |a[i]-b[i]|: stops once the running sum exceeds
/// `threshold`.  `*consumed` (when non-null) is incremented by the number
/// of samples read — exact for this arm.
double abs_sum_capped_scalar(const double* a, const double* b, std::size_t n,
                             double threshold, std::size_t* consumed);

// --- AVX2+FMA arm: defined in kernels_avx2.cpp (EMAP_HAVE_AVX2 builds);
// --- never call without a cpu_supports_avx2() check upstream ------------

#ifdef EMAP_HAVE_AVX2
double sum_avx2(const double* x, std::size_t n);
double dot_avx2(const double* a, const double* b, std::size_t n);
DotNormSq centered_dot_norm_avx2(const double* probe, const double* cand,
                                 std::size_t n, double mean);
double abs_sum_avx2(const double* a, const double* b, std::size_t n);
/// AVX2 early-exit checks the cap once per 4-lane block, so `*consumed`
/// is rounded up to block granularity (still <= n, and exact when no
/// early exit happens).  The returned value keeps the scalar contract:
/// exact (within ULP) when the true sum is <= threshold, otherwise merely
/// > threshold.
double abs_sum_capped_avx2(const double* a, const double* b, std::size_t n,
                           double threshold, std::size_t* consumed);
#endif

/// One arm's kernel set.  Function pointers, so benches and the harness
/// can iterate arms uniformly.
struct KernelTable {
  simd::Level level = simd::Level::kScalar;
  double (*sum)(const double*, std::size_t) = nullptr;
  double (*dot)(const double*, const double*, std::size_t) = nullptr;
  DotNormSq (*centered_dot_norm)(const double*, const double*, std::size_t,
                                 double) = nullptr;
  double (*abs_sum)(const double*, const double*, std::size_t) = nullptr;
  double (*abs_sum_capped)(const double*, const double*, std::size_t, double,
                           std::size_t*) = nullptr;
};

/// The requested arm's table.  Requesting kAvx2 when the binary lacks the
/// arm throws InvalidArgument (callers gate on simd::compiled_with_avx2();
/// running it additionally needs simd::cpu_supports_avx2()).
const KernelTable& table(simd::Level level);

/// The dispatched table for simd::active_level(); bumps that arm's
/// invocation counter (one count per kernel-group use, not per sample).
const KernelTable& active();

}  // namespace emap::dsp::kernels
