// Runtime SIMD dispatch for the DSP hot-path kernels.
//
// The Algorithm 1 correlation scan and the Algorithm 2 area kernel are the
// two compute paths the paper's ~3 s initial-response guarantee rides on.
// Both now carry an AVX2+FMA arm next to the original scalar loops; this
// header is the one place that decides which arm runs.
//
// Selection is explicit and testable, because the deterministic tests and
// the checkpoint bit-identity guarantees depend on exact reproducibility:
//
//   - the scalar arm is the original code, bit-for-bit — `EMAP_SIMD=off`
//     reproduces pre-SIMD behavior exactly;
//   - the AVX2 arm changes reduction order (4-lane partial sums, FMA), so
//     its results agree with scalar only within a pinned ULP bound (see
//     tests/support/kernel_diff.hpp and docs/performance.md) — never mix
//     arms within one comparison that expects bit-identity;
//   - resolution order: force_level() (tests/benches) > $EMAP_SIMD
//     (off|scalar|avx2) > best arm this binary + CPU supports.
//
// `EMAP_SIMD=avx2` on a host or binary without AVX2 falls back to scalar
// (recorded by active_level(); tests that need the AVX2 arm skip instead
// of failing).  Per-arm invocation counters let CI assert the AVX2 arm
// actually executed on capable hosts instead of silently testing scalar
// twice.
#pragma once

#include <cstdint>
#include <optional>

namespace emap::dsp::simd {

/// Kernel implementation arms, in preference order.
enum class Level : int {
  kScalar = 0,  ///< original sequential loops; always available
  kAvx2 = 1,    ///< AVX2+FMA, 4-lane doubles; needs compile + CPU support
};

/// Stable lowercase name ("scalar" / "avx2") for logs, stage paths, and
/// bench headline keys.
const char* level_name(Level level);

/// True when this binary contains the AVX2 arm (the toolchain accepted
/// -mavx2 -mfma at configure time).
bool compiled_with_avx2();

/// True when the running CPU (and OS) support AVX2 — cached cpuid probe.
bool cpu_supports_avx2();

/// Parses an EMAP_SIMD value: "off"/"scalar" -> kScalar, "avx2" -> kAvx2.
/// Throws InvalidArgument on anything else.  Pure function (testable).
Level parse_level(const char* value);

/// The arm the next kernel call will take: forced level if set, else the
/// $EMAP_SIMD request (read once per process), else the best supported
/// arm.  A request for an unavailable arm resolves to kScalar.
Level active_level();

/// Test/bench hook: overrides dispatch until reset with std::nullopt.
/// A forced kAvx2 on a host without AVX2 still resolves to kScalar.
void force_level(std::optional<Level> level);

/// Number of dispatched kernel-group invocations that took `level`'s arm
/// since the last reset.  One increment per public DSP kernel entry
/// (a correlate, an area sum), not per sample.
std::uint64_t kernel_invocations(Level level);

/// Zeroes both invocation counters (tests).
void reset_kernel_invocations();

/// Internal: bumps the counter for `level` (relaxed; called by dispatch).
void count_kernel_invocation(Level level);

}  // namespace emap::dsp::simd
