// Radix-2 FFT and spectral helpers.
//
// Used by the synthetic EEG generator (spectral shaping checks), the ML
// baseline feature extractor (band powers), and the test suite (verifying
// the paper's 11-40 Hz bandpass).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace emap::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// Requires data.size() to be a power of two (and non-zero).
void fft_inplace(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/N scaling).
void ifft_inplace(std::vector<std::complex<double>>& data);

/// FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length = padded size).
std::vector<std::complex<double>> fft_real(std::span<const double> signal);

/// One-sided power spectral estimate |X[k]|^2 / N for k in [0, N/2].
/// Bin k corresponds to frequency k * sample_rate / N where N is the padded
/// FFT length.
std::vector<double> power_spectrum(std::span<const double> signal);

/// Integrated power in [low_hz, high_hz] from the one-sided spectrum of
/// `signal` sampled at `sample_rate_hz`.  Returns 0 for empty signals.
double band_power(std::span<const double> signal, double sample_rate_hz,
                  double low_hz, double high_hz);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace emap::dsp
