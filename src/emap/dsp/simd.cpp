#include "emap/dsp/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "emap/common/error.hpp"

namespace emap::dsp::simd {
namespace {

std::atomic<std::uint64_t> invocations_scalar{0};
std::atomic<std::uint64_t> invocations_avx2{0};

// -1 = no override; otherwise static_cast<int>(Level).
std::atomic<int> forced_level{-1};

Level best_supported_level() {
  if (compiled_with_avx2() && cpu_supports_avx2()) {
    return Level::kAvx2;
  }
  return Level::kScalar;
}

/// $EMAP_SIMD resolved against this binary + CPU, computed once: the env
/// contract is a process-wide mode, not something to re-read per call.
Level env_resolved_level() {
  static const Level resolved = [] {
    const char* env = std::getenv("EMAP_SIMD");
    if (env == nullptr || *env == '\0') {
      return best_supported_level();
    }
    const Level requested = parse_level(env);
    if (requested == Level::kAvx2 && best_supported_level() != Level::kAvx2) {
      return Level::kScalar;  // requested arm unavailable: safe fallback
    }
    return requested;
  }();
  return resolved;
}

}  // namespace

const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

bool compiled_with_avx2() {
#ifdef EMAP_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports consults libgcc's cpuid model, which includes
  // the OSXSAVE/XCR0 check — AVX2 reported only when the OS saves ymm.
  static const bool supported = __builtin_cpu_supports("avx2") != 0 &&
                                __builtin_cpu_supports("fma") != 0;
  return supported;
#else
  return false;
#endif
}

Level parse_level(const char* value) {
  require(value != nullptr, "parse_level: null EMAP_SIMD value");
  const std::string text(value);
  if (text == "off" || text == "scalar") {
    return Level::kScalar;
  }
  if (text == "avx2") {
    return Level::kAvx2;
  }
  throw InvalidArgument("EMAP_SIMD must be off|scalar|avx2, got '" + text +
                        "'");
}

Level active_level() {
  const int forced = forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto level = static_cast<Level>(forced);
    if (level == Level::kAvx2 && best_supported_level() != Level::kAvx2) {
      return Level::kScalar;
    }
    return level;
  }
  return env_resolved_level();
}

void force_level(std::optional<Level> level) {
  forced_level.store(level.has_value() ? static_cast<int>(*level) : -1,
                     std::memory_order_relaxed);
}

std::uint64_t kernel_invocations(Level level) {
  return (level == Level::kAvx2 ? invocations_avx2 : invocations_scalar)
      .load(std::memory_order_relaxed);
}

void reset_kernel_invocations() {
  invocations_scalar.store(0, std::memory_order_relaxed);
  invocations_avx2.store(0, std::memory_order_relaxed);
}

void count_kernel_invocation(Level level) {
  (level == Level::kAvx2 ? invocations_avx2 : invocations_scalar)
      .fetch_add(1, std::memory_order_relaxed);
}

}  // namespace emap::dsp::simd
