// Window functions for FIR design and spectral estimation.
#pragma once

#include <cstddef>
#include <vector>

namespace emap::dsp {

/// Supported window shapes.
enum class WindowKind {
  kRectangular,  ///< all-ones; no sidelobe suppression
  kHamming,      ///< 0.54 - 0.46 cos; the paper-era default for FIR design
  kHann,         ///< raised cosine
  kBlackman,     ///< three-term, strong sidelobe suppression
};

/// Returns an N-point symmetric window of the given kind.
///
/// Symmetric ("filter design") convention: w[n] = w[N-1-n], endpoints
/// included.  Throws InvalidArgument when length == 0.
std::vector<double> make_window(WindowKind kind, std::size_t length);

/// Human-readable name of a window kind (for reports and traces).
const char* window_name(WindowKind kind);

}  // namespace emap::dsp
