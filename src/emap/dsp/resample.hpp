// Sampling-rate conversion.
//
// The MDB construction stage "collects, up-/down-samples the signals to the
// base frequency of 256 Hz" (paper Section V-B).  The synthetic corpora use
// five distinct native rates, so resampling is on the hot ingest path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emap::dsp {

/// Resamples `input` from `input_rate_hz` to `output_rate_hz`.
///
/// Implementation: anti-alias lowpass (windowed-sinc, cutoff at 0.45x the
/// lower of the two rates) when downsampling, followed by band-limited
/// linear-phase polyphase interpolation on the continuous-time
/// reconstruction grid.  Output duration matches input duration to within
/// one output sample.  Rates must be positive; an empty input yields an
/// empty output.
std::vector<double> resample(std::span<const double> input,
                             double input_rate_hz, double output_rate_hz);

/// Exact integer upsampling by repetition-free interpolation used in tests:
/// inserts `factor - 1` linearly interpolated samples between neighbours.
std::vector<double> upsample_linear(std::span<const double> input,
                                    std::size_t factor);

/// Integer decimation keeping every `factor`-th sample after anti-alias
/// filtering.  factor must be >= 1.
std::vector<double> decimate(std::span<const double> input, std::size_t factor);

}  // namespace emap::dsp
