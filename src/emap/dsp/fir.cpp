#include "emap/dsp/fir.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "emap/common/error.hpp"
#include "emap/obs/profiler.hpp"

namespace emap::dsp {
namespace {

// Normalized sinc: sin(pi x) / (pi x), sinc(0) = 1.
double sinc(double x) {
  if (std::abs(x) < 1e-12) {
    return 1.0;
  }
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

// Ideal lowpass impulse response sampled at offset m from the center,
// cutoff expressed as a fraction of the sampling rate (0, 0.5).
double ideal_lowpass(double m, double cutoff_fraction) {
  return 2.0 * cutoff_fraction * sinc(2.0 * cutoff_fraction * m);
}

}  // namespace

std::vector<double> design_fir(const FirDesign& design) {
  require(design.taps >= 2, "design_fir: need at least 2 taps");
  require(design.sample_rate_hz > 0.0, "design_fir: sample rate must be > 0");
  const double nyquist = design.sample_rate_hz / 2.0;
  const double fl = design.low_cut_hz / design.sample_rate_hz;
  const double fh = design.high_cut_hz / design.sample_rate_hz;
  const bool needs_low = design.response != FirResponse::kLowpass;
  const bool needs_high = design.response != FirResponse::kHighpass;
  if (needs_low) {
    require(design.low_cut_hz > 0.0 && design.low_cut_hz < nyquist,
            "design_fir: low cut must lie in (0, fs/2)");
  }
  if (needs_high) {
    require(design.high_cut_hz > 0.0 && design.high_cut_hz < nyquist,
            "design_fir: high cut must lie in (0, fs/2)");
  }
  if (design.response == FirResponse::kBandpass ||
      design.response == FirResponse::kBandstop) {
    require(design.low_cut_hz < design.high_cut_hz,
            "design_fir: band filters need low cut < high cut");
  }

  const std::size_t taps = design.taps;
  const double center = (static_cast<double>(taps) - 1.0) / 2.0;
  std::vector<double> h(taps, 0.0);
  for (std::size_t n = 0; n < taps; ++n) {
    const double m = static_cast<double>(n) - center;
    switch (design.response) {
      case FirResponse::kLowpass:
        h[n] = ideal_lowpass(m, fh);
        break;
      case FirResponse::kHighpass:
        h[n] = sinc(m) - ideal_lowpass(m, fl);
        break;
      case FirResponse::kBandpass:
        h[n] = ideal_lowpass(m, fh) - ideal_lowpass(m, fl);
        break;
      case FirResponse::kBandstop:
        h[n] = sinc(m) - (ideal_lowpass(m, fh) - ideal_lowpass(m, fl));
        break;
    }
  }

  const auto window = make_window(design.window, taps);
  for (std::size_t n = 0; n < taps; ++n) {
    h[n] *= window[n];
  }

  // Normalize to unit gain at the most selective reference frequency so the
  // passband amplitude of filtered EEG is rate-independent.
  double ref_hz = 0.0;
  switch (design.response) {
    case FirResponse::kLowpass:
      ref_hz = 0.0;
      break;
    case FirResponse::kHighpass:
      ref_hz = nyquist * 0.999;
      break;
    case FirResponse::kBandpass:
      ref_hz = 0.5 * (design.low_cut_hz + design.high_cut_hz);
      break;
    case FirResponse::kBandstop:
      ref_hz = 0.0;
      break;
  }
  FirFilter probe{std::vector<double>(h)};
  const double gain = probe.magnitude_response(ref_hz, design.sample_rate_hz);
  require(gain > 1e-9, "design_fir: degenerate design (zero reference gain)");
  for (double& coeff : h) {
    coeff /= gain;
  }
  return h;
}

FirFilter::FirFilter(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  require(!coefficients_.empty(), "FirFilter: need at least one coefficient");
  history_.assign(coefficients_.size(), 0.0);
}

FirFilter::FirFilter(const FirDesign& design) : FirFilter(design_fir(design)) {}

FirFilter FirFilter::paper_bandpass() {
  return FirFilter(FirDesign{});
}

std::vector<double> FirFilter::apply(std::span<const double> input) const {
  // Work = samples filtered (the convolution is taps * samples MACs).
  obs::ProfileScope profile_scope("fir_apply");
  profile_scope.add_work(input.size());
  std::vector<double> output(input.size(), 0.0);
  const std::size_t taps = coefficients_.size();
  for (std::size_t k = 0; k < input.size(); ++k) {
    double acc = 0.0;
    const std::size_t reach = std::min(taps - 1, k);
    for (std::size_t i = 0; i <= reach; ++i) {
      acc += coefficients_[i] * input[k - i];
    }
    output[k] = acc;
  }
  return output;
}

double FirFilter::process_sample(double sample) {
  history_[history_pos_] = sample;
  double acc = 0.0;
  std::size_t idx = history_pos_;
  for (double coeff : coefficients_) {
    acc += coeff * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  history_pos_ = (history_pos_ + 1) % history_.size();
  return acc;
}

std::vector<double> FirFilter::process_block(std::span<const double> input) {
  std::vector<double> output;
  output.reserve(input.size());
  for (double sample : input) {
    output.push_back(process_sample(sample));
  }
  return output;
}

void FirFilter::reset() {
  history_.assign(coefficients_.size(), 0.0);
  history_pos_ = 0;
}

void FirFilter::restore_stream(const FirStreamState& state) {
  require(state.history.size() == coefficients_.size() &&
              state.history_pos < std::max<std::size_t>(1,
                                                        state.history.size()),
          "FirFilter::restore_stream: state does not match this filter");
  history_ = state.history;
  history_pos_ = state.history_pos;
}

double FirFilter::magnitude_response(double frequency_hz,
                                     double sample_rate_hz) const {
  require(sample_rate_hz > 0.0, "magnitude_response: sample rate must be > 0");
  const double omega =
      2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t n = 0; n < coefficients_.size(); ++n) {
    acc += coefficients_[n] *
           std::exp(std::complex<double>(0.0, -omega * static_cast<double>(n)));
  }
  return std::abs(acc);
}

}  // namespace emap::dsp
