// Spectral summary measures standard in quantitative EEG.
//
// Complements stats.hpp with frequency-domain descriptors used by EEG
// monitoring systems (and by our evaluation tooling): spectral edge
// frequency, median frequency, and band-ratio indices.
#pragma once

#include <span>

namespace emap::dsp {

/// Frequency below which `fraction` of the one-sided spectral power lies
/// (SEF; fraction = 0.95 gives the classic SEF95).  Returns 0 for empty or
/// all-zero signals.  fraction must be in (0, 1].
double spectral_edge_frequency(std::span<const double> signal,
                               double sample_rate_hz, double fraction = 0.95);

/// Median power frequency (SEF with fraction = 0.5).
double median_frequency(std::span<const double> signal,
                        double sample_rate_hz);

/// Ratio of power in [numer_lo, numer_hi] to power in [denom_lo, denom_hi];
/// 0 when the denominator band is empty of power.  Classic uses: theta/beta
/// slowing index, alpha/delta ratio.
double band_ratio(std::span<const double> signal, double sample_rate_hz,
                  double numer_lo_hz, double numer_hi_hz,
                  double denom_lo_hz, double denom_hi_hz);

}  // namespace emap::dsp
