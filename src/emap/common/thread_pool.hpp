// Minimal fixed-size thread pool used by the cloud-side parallel MDB scan.
//
// The paper slices the mega-database "to enable the search algorithm to
// quickly search through the complete database in parallel" (Section V-B);
// ThreadPool provides the parallel-for primitive the search shards map onto.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace emap {

/// Fixed-size worker pool with a parallel_for convenience wrapper.
///
/// Tasks must not throw; exceptions escaping a task terminate the process by
/// design (a crashed search shard has no meaningful partial result).  Tasks
/// that can fail should capture their error state and report it to the
/// caller through their own channel.
class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Splits [0, count) into contiguous chunks, runs
  /// `body(begin, end)` for each chunk on the pool, and blocks until all
  /// chunks complete.  Runs inline when count is small or the pool has a
  /// single worker.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t active_tasks_ = 0;
  bool stopping_ = false;
};

}  // namespace emap
