#include "emap/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "emap/common/error.hpp"

namespace emap {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "Rng::uniform_index: n must be > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t value = next_u64();
  while (value >= limit) {
    value = next_u64();
  }
  return value % n;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

RngState Rng::save() const {
  RngState snapshot;
  snapshot.state = state_;
  snapshot.seed = seed_;
  snapshot.spare_normal = spare_normal_;
  snapshot.has_spare_normal = has_spare_normal_;
  return snapshot;
}

void Rng::restore(const RngState& state) {
  state_ = state.state;
  seed_ = state.seed;
  spare_normal_ = state.spare_normal;
  has_spare_normal_ = state.has_spare_normal;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the original seed with the stream id through SplitMix64 so children
  // with adjacent ids are decorrelated.
  std::uint64_t mix = seed_ ^ (0xd1342543de82ef95ULL * (stream_id + 1));
  return Rng(splitmix64(mix));
}

}  // namespace emap
