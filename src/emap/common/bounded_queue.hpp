// Bounded lock-free queue connecting pipeline stages (streaming mode).
//
// A Vyukov-style bounded ring with per-slot sequence numbers: producers and
// consumers each claim a position with one CAS and publish it through the
// slot's sequence word, so push and pop are lock-free and a single
// producer/consumer pair (the SPSC stage-graph case) never contends at all.
// The same algorithm is safely MPMC, which two streaming features rely on:
// multiple uplink workers popping one job queue, and the shed-oldest policy,
// where the *producer* pops (and discards) the oldest item to make room —
// backpressure that sacrifices the stalest window instead of the newest.
//
// Close semantics: close() is sticky.  Pushes after close fail; pops drain
// the remaining items and then return nullopt, so a stage shutdown cascades
// naturally down the graph (each stage closes its output queue when its
// input queue drains dry).  Producers must finish their last push before
// calling close() for the drain guarantee to hold.
//
// Blocking push()/pop() spin with a yield backoff rather than parking on a
// condition variable: stage queues are short and the stall window is
// microseconds, so a futex round trip would dominate.  The supervisor's
// stall detection is wall-clock driven and does not depend on the queue
// waking anyone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

namespace emap {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2) so the
  /// ring index is a mask; capacity() reports the actual bound.
  explicit BoundedQueue(std::size_t capacity) {
    std::size_t actual = 2;
    while (actual < capacity) {
      actual <<= 1;
    }
    cells_ = std::make_unique<Cell[]>(actual);
    mask_ = actual - 1;
    for (std::size_t i = 0; i < actual; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Non-blocking push; false when the queue is full or closed.  The value
  /// is moved from only on success.
  bool try_push(T& value) {
    if (closed_.load(std::memory_order_acquire)) {
      return false;
    }
    Cell* cell = nullptr;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full: the slot still holds an unconsumed item
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    note_depth();
    return true;
  }

  bool try_push(T&& value) { return try_push(value); }

  /// Blocking push: spins (with yield backoff) until space frees up.
  /// Returns false — value untouched — once the queue is closed.
  bool push(T value) {
    std::size_t spins = 0;
    while (!try_push(value)) {
      if (closed_.load(std::memory_order_acquire)) {
        return false;
      }
      backoff(spins);
    }
    return true;
  }

  /// Push that never blocks on a full queue: it pops and discards the
  /// oldest item(s) until the new one fits (each discard counts in shed()).
  /// Returns false only when the queue is closed.
  bool push_shed_oldest(T value) {
    for (;;) {
      if (try_push(value)) {
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) {
        return false;
      }
      if (try_pop().has_value()) {
        shed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Non-blocking pop; nullopt when the queue is momentarily empty.
  std::optional<T> try_pop() {
    Cell* cell = nullptr;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(cell->value));
    cell->value = T{};
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  /// Blocking pop: waits for an item; nullopt once the queue is closed
  /// *and* drained (the shutdown signal for a consumer stage).
  std::optional<T> pop() {
    std::size_t spins = 0;
    for (;;) {
      if (std::optional<T> value = try_pop()) {
        return value;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check once: an item published just before close() must not
        // be stranded.
        return try_pop();
      }
      backoff(spins);
    }
  }

  /// Sticky: pushes fail from here on, pops drain what remains.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Instantaneous item count (racy by nature; exact when quiescent).
  std::size_t depth() const {
    const std::size_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const std::size_t head = enqueue_pos_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  std::uint64_t pushed() const {
    return enqueue_pos_.load(std::memory_order_relaxed);
  }
  std::uint64_t popped() const {
    return dequeue_pos_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  std::size_t max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  void note_depth() {
    const std::size_t d = depth();
    std::size_t seen = max_depth_.load(std::memory_order_relaxed);
    while (d > seen && !max_depth_.compare_exchange_weak(
                           seen, d, std::memory_order_relaxed)) {
    }
  }

  static void backoff(std::size_t& spins) {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::size_t> max_depth_{0};
};

}  // namespace emap
