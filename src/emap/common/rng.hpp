// Deterministic random number generation for EMAP.
//
// Every stochastic component (synthetic EEG, channel jitter, batch
// construction) is seeded explicitly so that experiments are reproducible
// bit-for-bit across runs and platforms.  The generator is xoshiro256**,
// which is small, fast, and has no observable statistical defects for this
// workload; it also avoids the libstdc++/libc++ divergence of
// std::normal_distribution by shipping its own distributions.
#pragma once

#include <array>
#include <cstdint>

namespace emap {

/// Serializable snapshot of an Rng's full internal state.  Restoring it
/// resumes the stream exactly where it left off — the crash-recovery
/// checkpoint (robust/checkpoint.hpp) persists these so post-restore draw
/// sequences (fault schedules, channel jitter) stay deterministic.
struct RngState {
  std::array<std::uint64_t, 4> state{};
  std::uint64_t seed = 0;
  double spare_normal = 0.0;
  bool has_spare_normal = false;
};

/// xoshiro256** pseudo-random generator with explicit seeding and
/// deterministic, implementation-independent distributions.
class Rng {
 public:
  /// Seeds the generator from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box-Muller with cached spare).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Forks a statistically independent child stream; the child is a pure
  /// function of (parent seed sequence, stream id) so forked experiments
  /// remain reproducible regardless of call ordering elsewhere.
  Rng fork(std::uint64_t stream_id) const;

  /// Captures the full generator state (checkpoint support).
  RngState save() const;

  /// Resumes from a saved state; subsequent draws continue the original
  /// stream bit-for-bit.
  void restore(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
  std::uint64_t seed_ = 0;
};

}  // namespace emap
