// CRC-32 (IEEE 802.3 polynomial) used to validate persisted MDB records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace emap {

/// Incremental CRC-32 accumulator.
///
/// Usage: Crc32 crc; crc.update(bytes); auto digest = crc.value();
/// The empty-message digest is 0x00000000 and "123456789" hashes to
/// 0xCBF43926 (the standard check value).
class Crc32 {
 public:
  /// Folds `bytes` into the running checksum.
  void update(std::span<const std::byte> bytes);

  /// Convenience overload for raw buffers.
  void update(const void* data, std::size_t size);

  /// Final digest for everything fed so far.
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot CRC-32 of a byte buffer.
std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace emap
