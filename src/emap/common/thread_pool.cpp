#include "emap/common/thread_pool.hpp"

#include <algorithm>

namespace emap {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_tasks_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t threads = workers_.size();
  if (threads <= 1 || count < 2) {
    body(0, count);
    return;
  }
  const std::size_t chunks = std::min(count, threads * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    submit([&body, begin, end] { body(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_tasks_;
      if (tasks_.empty() && active_tasks_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace emap
