#include "emap/common/error.hpp"

namespace emap::detail {

void require(bool condition, const char* message) {
  if (!condition) {
    throw InvalidArgument(message);
  }
}

}  // namespace emap::detail
