#include "emap/common/crc32.hpp"

#include <array>

namespace emap {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

void Crc32::update(std::span<const std::byte> bytes) {
  const auto& t = table();
  for (std::byte b : bytes) {
    state_ = t[(state_ ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (state_ >> 8);
  }
}

void Crc32::update(const void* data, std::size_t size) {
  update(std::span<const std::byte>(static_cast<const std::byte*>(data), size));
}

std::uint32_t crc32(const void* data, std::size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace emap
