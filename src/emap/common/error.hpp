// EMAP error hierarchy.
//
// All throwing EMAP APIs throw a subclass of emap::Error.  The categories
// mirror the subsystems: configuration misuse, I/O failures (EDF files and
// MDB persistence), and data-integrity violations (corrupt codecs, label
// inconsistencies).  Non-throwing variants return std::optional or a status
// where documented.
#pragma once

#include <stdexcept>
#include <string>

namespace emap {

/// Base class of every exception thrown by an EMAP library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad parameter, wrong size).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operating-system level I/O operation failed (open/read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Stored data failed validation (bad magic, CRC mismatch, truncated file).
class CorruptData : public Error {
 public:
  explicit CorruptData(const std::string& what) : Error(what) {}
};

namespace detail {
/// Throws InvalidArgument with `message` when `condition` is false.
void require(bool condition, const char* message);
}  // namespace detail

/// Precondition check used across EMAP public APIs.
///
/// Unlike assert() this is active in release builds: EMAP is a data-driven
/// pipeline and silently accepting malformed signals would corrupt the MDB.
inline void require(bool condition, const char* message) {
  detail::require(condition, message);
}

}  // namespace emap
