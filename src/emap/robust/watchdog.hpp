// Sim-time stage watchdog.
//
// The degradation controller reacts to *gradual* pressure (burn rate,
// near misses); the watchdog catches the pathological case — a stage so
// slow the window simply never completes on schedule.  A track step whose
// device-model time exceeds N x the iteration budget means the edge fell
// more than N windows behind in one step; shedding half the set will not
// save that, so the watchdog trips and the pipeline forces the controller
// straight into CRITICAL (suspend tracking, serve the last-known P_A).
//
// Stateless beyond a trip counter: the verdict is a pure function of the
// observed duration, so chaos runs replay bit-for-bit.
#pragma once

#include <cstddef>
#include <mutex>

#include "emap/obs/metrics.hpp"

namespace emap::robust {

/// Watchdog knobs.
struct WatchdogOptions {
  /// The stage budget (the paper's 1 s edge iteration).
  double budget_sec = 1.0;
  /// A stage taking longer than stuck_multiplier x budget is stuck.
  double stuck_multiplier = 5.0;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// Detects a stuck stage from its SimTime duration.
class StageWatchdog {
 public:
  /// `registry` is borrowed and may be null (summary-only operation).
  explicit StageWatchdog(WatchdogOptions options = {},
                         obs::MetricsRegistry* registry = nullptr);

  /// Records one stage completion; returns true (and counts a trip) when
  /// the duration crossed the stuck threshold.
  bool check_stage(double duration_sec);

  /// Duration above which a stage counts as stuck.
  double threshold_sec() const {
    return options_.budget_sec * options_.stuck_multiplier;
  }

  std::size_t trips() const;
  const WatchdogOptions& options() const { return options_; }

 private:
  WatchdogOptions options_;
  mutable std::mutex mutex_;
  std::size_t trips_ = 0;
  obs::Counter* trips_metric_ = nullptr;
};

}  // namespace emap::robust
