#include "emap/robust/supervisor.hpp"

#include <chrono>
#include <exception>

#include "emap/common/error.hpp"
#include "emap/obs/flight.hpp"

namespace emap::robust {

void SupervisorOptions::validate() const {
  require(poll_interval_sec > 0.0,
          "SupervisorOptions: poll_interval_sec must be > 0");
  require(stall_timeout_sec > poll_interval_sec,
          "SupervisorOptions: stall_timeout_sec must exceed the poll "
          "interval");
  require(max_restarts >= 1, "SupervisorOptions: max_restarts must be >= 1");
}

StageSupervisor::StageSupervisor(SupervisorOptions options,
                                 obs::MetricsRegistry* registry,
                                 obs::FlightRecorder* flight)
    : options_(options), registry_(registry), flight_(flight) {
  options_.validate();
}

StageSupervisor::~StageSupervisor() {
  request_abort();
  join_all();
}

void StageSupervisor::set_failure_handler(
    std::function<void(const std::string&)> handler) {
  failure_handler_ = std::move(handler);
}

void StageSupervisor::spawn(const std::string& name, StageBody body) {
  auto stage = std::make_unique<Stage>();
  stage->name = name;
  stage->body = std::move(body);
  stage->last_change = std::chrono::steady_clock::now();
  if (registry_ != nullptr) {
    stage->stall_metric = &registry_->counter(
        "emap_stage_stalls_total", {{"stage", name}},
        "Stall verdicts by the stage supervisor (no heartbeat while busy)");
    stage->restart_metric = &registry_->counter(
        "emap_stage_restarts_total", {{"stage", name}},
        "Stage bodies restarted after a stall or crash");
  }
  Stage* raw = stage.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stages_.push_back(std::move(stage));
    if (!monitor_.joinable()) {
      monitor_ = std::thread([this] { monitor_loop(); });
    }
  }
  raw->thread = std::thread([this, raw] { run_stage(*raw); });
}

void StageSupervisor::run_stage(Stage& stage) {
  for (;;) {
    bool crashed = false;
    try {
      stage.body(stage.health);
    } catch (const std::exception&) {
      crashed = true;
    } catch (...) {
      crashed = true;
    }
    const bool aborted =
        stage.health.abort_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_acquire)) {
      break;  // engine shutdown, not a fault
    }
    if (crashed) {
      stage.crashes.fetch_add(1, std::memory_order_relaxed);
      crashes_.fetch_add(1, std::memory_order_relaxed);
      interventions_.fetch_add(1, std::memory_order_release);
      if (flight_ != nullptr) {
        flight_->log(obs::FlightEventType::kStageStall,
                     ("crash_" + stage.name).c_str(), -1.0, 0,
                     static_cast<double>(stage.health.cursor_.load(
                         std::memory_order_relaxed)));
      }
    } else if (!aborted) {
      break;  // clean completion: input drained, body returned
    }
    // Stalled (monitor requested abort) or crashed: restart from the last
    // heartbeat cursor, unless the budget is spent.
    if (stage.restarts.load(std::memory_order_relaxed) >=
        options_.max_restarts) {
      stage.failed.store(true, std::memory_order_release);
      failed_.store(true, std::memory_order_release);
      if (flight_ != nullptr) {
        flight_->log(obs::FlightEventType::kStageStall,
                     ("giveup_" + stage.name).c_str(), -1.0, 0,
                     static_cast<double>(
                         stage.restarts.load(std::memory_order_relaxed)));
        flight_->trigger_dump("supervisor_giveup");
      }
      if (failure_handler_) {
        failure_handler_(stage.name);
      }
      break;
    }
    stage.restarts.fetch_add(1, std::memory_order_relaxed);
    restarts_.fetch_add(1, std::memory_order_relaxed);
    interventions_.fetch_add(1, std::memory_order_release);
    if (stage.restart_metric != nullptr) {
      stage.restart_metric->increment();
    }
    stage.health.resume_cursor_.store(
        stage.health.cursor_.load(std::memory_order_relaxed),
        std::memory_order_release);
    stage.health.idle_.store(true, std::memory_order_release);
    stage.health.abort_.store(false, std::memory_order_release);
    if (flight_ != nullptr) {
      flight_->log(obs::FlightEventType::kStageStall,
                   ("restart_" + stage.name).c_str(), -1.0, 0,
                   static_cast<double>(
                       stage.health.resume_cursor_.load(
                           std::memory_order_relaxed)));
    }
  }
  stage.done.store(true, std::memory_order_release);
}

void StageSupervisor::monitor_loop() {
  const auto poll = std::chrono::duration<double>(options_.poll_interval_sec);
  const auto timeout =
      std::chrono::duration<double>(options_.stall_timeout_sec);
  while (!monitor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : stages_) {
      Stage& stage = *entry;
      if (stage.done.load(std::memory_order_acquire) ||
          stage.failed.load(std::memory_order_acquire)) {
        continue;
      }
      const std::uint64_t beats =
          stage.health.beats_.load(std::memory_order_acquire);
      if (beats != stage.seen_beats) {
        stage.seen_beats = beats;
        stage.last_change = now;
        continue;
      }
      if (stage.health.idle_.load(std::memory_order_acquire) ||
          stage.health.abort_.load(std::memory_order_acquire)) {
        stage.last_change = now;
        continue;
      }
      if (now - stage.last_change < timeout) {
        continue;
      }
      // Busy, silent past the timeout: stalled.  Abort cooperatively; the
      // wrapper restarts the body (the monitor never restarts directly, so
      // a stage wedged past every cancellation point is reported exactly
      // once and left to the failure escalation).
      stage.stalls.fetch_add(1, std::memory_order_relaxed);
      stalls_.fetch_add(1, std::memory_order_relaxed);
      interventions_.fetch_add(1, std::memory_order_release);
      if (stage.stall_metric != nullptr) {
        stage.stall_metric->increment();
      }
      if (flight_ != nullptr) {
        flight_->log(obs::FlightEventType::kStageStall,
                     ("stall_" + stage.name).c_str(), -1.0, 0,
                     static_cast<double>(beats));
        flight_->trigger_dump("supervisor_stall");
      }
      stage.health.abort_.store(true, std::memory_order_release);
      stage.last_change = now;
    }
  }
}

void StageSupervisor::request_abort() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& stage : stages_) {
    stage->health.abort_.store(true, std::memory_order_release);
  }
}

void StageSupervisor::join_all() {
  if (joined_.exchange(true)) {
    return;
  }
  // Snapshot under the lock, join outside it (the monitor also takes the
  // lock on every poll).
  std::vector<Stage*> stages;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& stage : stages_) {
      stages.push_back(stage.get());
    }
  }
  for (Stage* stage : stages) {
    if (stage->thread.joinable()) {
      stage->thread.join();
    }
  }
  monitor_stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) {
    monitor_.join();
  }
}

std::vector<StageStats> StageSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StageStats> out;
  out.reserve(stages_.size());
  for (const auto& stage : stages_) {
    StageStats s;
    s.name = stage->name;
    s.processed = stage->health.beats_.load(std::memory_order_relaxed);
    s.stalls = stage->stalls.load(std::memory_order_relaxed);
    s.crashes = stage->crashes.load(std::memory_order_relaxed);
    s.restarts = stage->restarts.load(std::memory_order_relaxed);
    s.last_cursor = stage->health.cursor_.load(std::memory_order_relaxed);
    s.failed = stage->failed.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace emap::robust
