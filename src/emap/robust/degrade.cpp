#include "emap/robust/degrade.hpp"

#include <algorithm>

#include "emap/common/error.hpp"

namespace emap::robust {

const char* degrade_state_name(DegradeState state) {
  switch (state) {
    case DegradeState::kNominal:
      return "nominal";
    case DegradeState::kDegraded:
      return "degraded";
    case DegradeState::kCritical:
      return "critical";
    case DegradeState::kRecovering:
      return "recovering";
  }
  return "?";
}

void DegradeOptions::validate() const {
  require(enter_burn_rate > 0.0,
          "DegradeOptions: enter_burn_rate must be > 0");
  require(max_shed_level >= 1 && max_shed_level <= 8,
          "DegradeOptions: max_shed_level must be in [1, 8]");
  require(escalate_after >= 1, "DegradeOptions: escalate_after must be >= 1");
  require(critical_after >= 1, "DegradeOptions: critical_after must be >= 1");
  require(critical_hold >= 1, "DegradeOptions: critical_hold must be >= 1");
  require(recover_after >= 1, "DegradeOptions: recover_after must be >= 1");
  require(step_up_after >= 1, "DegradeOptions: step_up_after must be >= 1");
  require(queue_pressure_enter > 0.0 && queue_pressure_enter <= 1.0,
          "DegradeOptions: queue_pressure_enter must be in (0, 1]");
  require(pressure_alpha > 0.0 && pressure_alpha <= 1.0,
          "DegradeOptions: pressure_alpha must be in (0, 1]");
  require(escalate_pressure > 0.0 && escalate_pressure <= 1.0,
          "DegradeOptions: escalate_pressure must be in (0, 1]");
  require(recover_pressure >= 0.0 && recover_pressure < escalate_pressure,
          "DegradeOptions: need 0 <= recover_pressure < escalate_pressure");
}

DegradationController::DegradationController(DegradeOptions options,
                                             obs::MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  options_.validate();
  if (registry_ != nullptr) {
    state_metric_ = &registry_->gauge(
        "emap_robust_state", {},
        "Degradation controller state (0=nominal 1=degraded 2=critical "
        "3=recovering)");
    level_metric_ = &registry_->gauge(
        "emap_robust_shed_level", {},
        "Current shed level (tracked cap = top_k >> level)");
    pressure_metric_ = &registry_->counter(
        "emap_robust_pressure_windows_total", {},
        "Windows classified as pressure (deadline miss or burn rate above "
        "the entry threshold)");
    state_metric_->set(0.0);
    level_metric_->set(0.0);
  }
}

void DegradationController::transition_locked(DegradeState to,
                                              std::size_t window_index,
                                              double t_sec) {
  if (to == state_) {
    return;
  }
  transitions_.push_back({window_index, t_sec, state_, to});
  ++summary_.transitions;
  if (to != DegradeState::kNominal) {
    summary_.entered_degraded = true;
  }
  state_ = to;
  bad_streak_ = 0;
  clean_streak_ = 0;
  miss_streak_ = 0;
  if (to == DegradeState::kNominal) {
    recovered_since_miss_ = true;
  }
  if (to == DegradeState::kCritical) {
    critical_left_ = options_.critical_hold;
  }
  if (state_metric_ != nullptr) {
    state_metric_->set(static_cast<double>(state_));
  }
  if (registry_ != nullptr) {
    registry_
        ->counter("emap_robust_transitions_total",
                  {{"from", degrade_state_name(transitions_.back().from)},
                   {"to", degrade_state_name(to)}},
                  "Degradation controller state transitions")
        .increment();
  }
}

void DegradationController::set_level_locked(std::size_t level) {
  shed_level_ = std::min(level, options_.max_shed_level);
  summary_.max_shed_level = std::max(summary_.max_shed_level, shed_level_);
  if (level_metric_ != nullptr) {
    level_metric_->set(static_cast<double>(shed_level_));
  }
}

void DegradationController::observe_window(const WindowSignal& signal) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case DegradeState::kNominal:
      ++summary_.windows_nominal;
      break;
    case DegradeState::kDegraded:
      ++summary_.windows_degraded;
      break;
    case DegradeState::kCritical:
      ++summary_.windows_critical;
      break;
    case DegradeState::kRecovering:
      ++summary_.windows_recovering;
      break;
  }

  if (signal.stage_stuck) {
    transition_locked(DegradeState::kCritical, signal.window_index,
                      signal.t_sec);
    set_level_locked(options_.max_shed_level);
    summary_.final_state = state_;
    return;
  }

  // CRITICAL holds for a fixed number of windows (tracking is suspended, so
  // there is no latency signal to read) and then attempts recovery at the
  // deepest shed level; the RECOVERING hysteresis guards against flapping.
  if (state_ == DegradeState::kCritical) {
    if (critical_left_ > 0) {
      --critical_left_;
    }
    if (critical_left_ == 0) {
      transition_locked(DegradeState::kRecovering, signal.window_index,
                        signal.t_sec);
    }
    summary_.final_state = state_;
    return;
  }

  if (signal.no_observation) {
    // Quality-gated window: no latency evidence either way; hold streaks.
    summary_.final_state = state_;
    return;
  }

  if (options_.adaptive) {
    // Pressure indicator: miss = 1, near miss = 0.5, clean = 0.  Unlike
    // the streak counters this survives interleaved near misses, so a
    // saturated edge that never strings `escalate_after` *consecutive*
    // misses together still sheds.
    const double indicator =
        signal.deadline_miss ? 1.0 : (signal.near_miss ? 0.5 : 0.0);
    pressure_ewma_ += options_.pressure_alpha * (indicator - pressure_ewma_);
  }

  // Entry pressure reads the rolling burn rate (a single miss keeps burn
  // elevated for the whole SLO window, which is exactly the early-warning
  // property we want at the NOMINAL->DEGRADED edge).  Once degraded, the
  // controller steers on per-window evidence only — the sticky burn rate
  // would otherwise block recovery for a full rolling window and escalate
  // on windows that are actually clean.  Burn alone also must not re-enter
  // after a completed recovery: the elevated burn is the echo of the miss
  // the controller already handled, not fresh evidence.
  if (signal.deadline_miss) {
    recovered_since_miss_ = false;
  }
  // Queue-depth pressure joins burn rate as a shed signal (streaming mode):
  // a backlog between stages means the edge is falling behind the window
  // cadence even when each individual step stays inside its budget.
  const bool queue_pressure =
      signal.queue_pressure >= options_.queue_pressure_enter;
  const bool pressure =
      signal.deadline_miss || queue_pressure ||
      (signal.burn_rate > options_.enter_burn_rate &&
       !recovered_since_miss_);
  // A pressured queue disqualifies the window from counting as clean even
  // when its own latency was fine: recovery must wait for the backlog to
  // drain, not just for one good step.
  const bool clean =
      !signal.deadline_miss && !signal.near_miss && !queue_pressure;
  if (pressure && pressure_metric_ != nullptr) {
    pressure_metric_->increment();
  }

  switch (state_) {
    case DegradeState::kNominal:
      if (pressure) {
        transition_locked(DegradeState::kDegraded, signal.window_index,
                          signal.t_sec);
        set_level_locked(1);
      }
      break;

    case DegradeState::kDegraded:
      if (signal.deadline_miss && shed_level_ >= options_.max_shed_level) {
        ++miss_streak_;
        if (miss_streak_ >= options_.critical_after) {
          transition_locked(DegradeState::kCritical, signal.window_index,
                            signal.t_sec);
          break;
        }
      } else {
        miss_streak_ = 0;
      }
      if (options_.adaptive) {
        // EWMA steering: shed while the rolling pressure sits above the
        // escalation threshold, recover once it has decayed below the
        // (lower) recovery threshold.  The gap is the hysteresis; still at
        // most one step per window.
        if (!clean && pressure_ewma_ >= options_.escalate_pressure) {
          if (shed_level_ < options_.max_shed_level) {
            set_level_locked(shed_level_ + 1);
          }
        } else if (clean && pressure_ewma_ <= options_.recover_pressure) {
          transition_locked(DegradeState::kRecovering, signal.window_index,
                            signal.t_sec);
        }
        break;
      }
      if (signal.deadline_miss) {
        clean_streak_ = 0;
        ++bad_streak_;
        if (bad_streak_ >= options_.escalate_after &&
            shed_level_ < options_.max_shed_level) {
          set_level_locked(shed_level_ + 1);
          bad_streak_ = 0;
        }
      } else if (clean) {
        bad_streak_ = 0;
        ++clean_streak_;
        if (clean_streak_ >= options_.recover_after) {
          transition_locked(DegradeState::kRecovering, signal.window_index,
                            signal.t_sec);
        }
      } else {
        // Near miss: neither pressure nor clean — hold position.
        bad_streak_ = 0;
        clean_streak_ = 0;
      }
      break;

    case DegradeState::kRecovering:
      if (signal.deadline_miss) {
        transition_locked(DegradeState::kDegraded, signal.window_index,
                          signal.t_sec);
        break;
      }
      if (options_.adaptive) {
        if (clean && pressure_ewma_ <= options_.recover_pressure) {
          if (shed_level_ > 0) {
            set_level_locked(shed_level_ - 1);
          } else {
            transition_locked(DegradeState::kNominal, signal.window_index,
                              signal.t_sec);
          }
        }
        break;
      }
      if (clean) {
        ++clean_streak_;
        if (clean_streak_ >= options_.step_up_after) {
          clean_streak_ = 0;
          if (shed_level_ > 0) {
            set_level_locked(shed_level_ - 1);
          } else {
            transition_locked(DegradeState::kNominal, signal.window_index,
                              signal.t_sec);
          }
        }
      } else {
        // Near miss while recovering: capacity is marginal, hold here.
        clean_streak_ = 0;
      }
      break;

    case DegradeState::kCritical:
      break;  // handled above
  }
  summary_.final_state = state_;
}

void DegradationController::force_critical(std::size_t window_index,
                                           double t_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  transition_locked(DegradeState::kCritical, window_index, t_sec);
  set_level_locked(options_.max_shed_level);
  summary_.final_state = state_;
}

DegradeState DegradationController::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::size_t DegradationController::shed_level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_level_;
}

std::size_t DegradationController::tracked_cap(std::size_t base_top_k) const {
  return std::max<std::size_t>(1, base_top_k >> shed_level());
}

std::size_t DegradationController::stride_multiplier() const {
  return std::size_t{1} << shed_level();
}

std::size_t DegradationController::recall_threshold(
    std::size_t base_h, std::size_t base_top_k) const {
  const std::size_t level = shed_level();
  if (level == 0 || base_top_k == 0) {
    return base_h;
  }
  const std::size_t cap = std::max<std::size_t>(1, base_top_k >> level);
  return std::max<std::size_t>(1, base_h * cap / base_top_k);
}

bool DegradationController::defer_flushes() const {
  return state() != DegradeState::kNominal;
}

const std::vector<DegradeTransition>& DegradationController::transitions()
    const {
  return transitions_;
}

DegradeSummary DegradationController::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DegradeSummary out = summary_;
  out.final_state = state_;
  return out;
}

double DegradationController::pressure_ewma() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pressure_ewma_;
}

DegradeCheckpoint DegradationController::checkpoint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DegradeCheckpoint out;
  out.state = state_;
  out.shed_level = shed_level_;
  out.bad_streak = bad_streak_;
  out.clean_streak = clean_streak_;
  out.miss_streak = miss_streak_;
  out.critical_left = critical_left_;
  out.recovered_since_miss = recovered_since_miss_;
  out.pressure_ewma = pressure_ewma_;
  out.summary = summary_;
  out.summary.final_state = state_;
  return out;
}

void DegradationController::restore(const DegradeCheckpoint& saved) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(saved.shed_level <= options_.max_shed_level,
          "DegradationController::restore: saved shed level exceeds "
          "max_shed_level");
  state_ = saved.state;
  shed_level_ = static_cast<std::size_t>(saved.shed_level);
  bad_streak_ = static_cast<std::size_t>(saved.bad_streak);
  clean_streak_ = static_cast<std::size_t>(saved.clean_streak);
  miss_streak_ = static_cast<std::size_t>(saved.miss_streak);
  critical_left_ = static_cast<std::size_t>(saved.critical_left);
  recovered_since_miss_ = saved.recovered_since_miss;
  pressure_ewma_ = saved.pressure_ewma;
  summary_ = saved.summary;
  summary_.final_state = state_;
  if (state_metric_ != nullptr) {
    state_metric_->set(static_cast<double>(state_));
  }
  if (level_metric_ != nullptr) {
    level_metric_->set(static_cast<double>(shed_level_));
  }
}

}  // namespace emap::robust
