#include "emap/robust/quality.hpp"

#include <cmath>

#include "emap/common/error.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::robust {

const char* quality_verdict_name(QualityVerdict verdict) {
  switch (verdict) {
    case QualityVerdict::kGood:
      return "good";
    case QualityVerdict::kNan:
      return "nan";
    case QualityVerdict::kFlatline:
      return "flatline";
    case QualityVerdict::kSaturated:
      return "saturated";
    case QualityVerdict::kArtifact:
      return "artifact";
  }
  return "?";
}

void QualityOptions::validate() const {
  require(flatline_stddev >= 0.0,
          "QualityOptions: flatline_stddev must be >= 0");
  require(saturation_limit > 0.0,
          "QualityOptions: saturation_limit must be > 0");
  require(saturation_fraction > 0.0 && saturation_fraction <= 1.0,
          "QualityOptions: saturation_fraction must be in (0, 1]");
  require(amplitude_limit > 0.0,
          "QualityOptions: amplitude_limit must be > 0");
}

SignalQualityGate::SignalQualityGate(QualityOptions options,
                                     obs::MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  options_.validate();
  if (registry_ != nullptr) {
    assessed_metric_ = &registry_->counter(
        "emap_robust_quality_windows_total", {},
        "Windows assessed by the signal-quality gate");
  }
}

QualityReport SignalQualityGate::assess(std::span<const double> raw_window) {
  QualityReport report;
  bool finite = true;
  std::size_t clipped = 0;
  for (const double sample : raw_window) {
    if (!std::isfinite(sample)) {
      finite = false;
      break;
    }
    if (std::abs(sample) >= options_.saturation_limit) {
      ++clipped;
    }
  }
  if (!finite) {
    report.verdict = QualityVerdict::kNan;
  } else {
    report.stddev = dsp::stddev(raw_window);
    report.peak_abs = dsp::peak_abs(raw_window);
    report.saturated_fraction =
        raw_window.empty()
            ? 0.0
            : static_cast<double>(clipped) /
                  static_cast<double>(raw_window.size());
    if (report.stddev < options_.flatline_stddev) {
      report.verdict = QualityVerdict::kFlatline;
    } else if (report.saturated_fraction > options_.saturation_fraction) {
      report.verdict = QualityVerdict::kSaturated;
    } else if (report.peak_abs > options_.amplitude_limit) {
      report.verdict = QualityVerdict::kArtifact;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++summary_.assessed;
    switch (report.verdict) {
      case QualityVerdict::kGood:
        ++summary_.good;
        break;
      case QualityVerdict::kNan:
        ++summary_.nan;
        break;
      case QualityVerdict::kFlatline:
        ++summary_.flatline;
        break;
      case QualityVerdict::kSaturated:
        ++summary_.saturated;
        break;
      case QualityVerdict::kArtifact:
        ++summary_.artifact;
        break;
    }
  }
  if (assessed_metric_ != nullptr) {
    assessed_metric_->increment();
  }
  if (registry_ != nullptr && !report.good()) {
    registry_
        ->counter("emap_robust_quality_bad_windows_total",
                  {{"reason", quality_verdict_name(report.verdict)}},
                  "Windows the quality gate excluded from P_A updates")
        .increment();
  }
  return report;
}

QualitySummary SignalQualityGate::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

}  // namespace emap::robust
