#include "emap/robust/breaker.hpp"

#include <algorithm>

#include "emap/common/error.hpp"

namespace emap::robust {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

void BreakerOptions::validate() const {
  require(window >= 1, "BreakerOptions: window must be >= 1");
  require(open_after_failures >= 1 && open_after_failures <= window,
          "BreakerOptions: need 1 <= open_after_failures <= window");
  require(cooldown_sec > 0.0, "BreakerOptions: cooldown_sec must be > 0");
  require(half_open_successes >= 1,
          "BreakerOptions: half_open_successes must be >= 1");
}

CircuitBreaker::CircuitBreaker(BreakerOptions options,
                               obs::MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  options_.validate();
  recent_failure_.assign(options_.window, false);
  if (registry_ != nullptr) {
    state_metric_ = &registry_->gauge(
        "emap_robust_breaker_state", {},
        "Cloud-link circuit breaker state (0=closed 1=open 2=half_open)");
    opens_metric_ = &registry_->counter(
        "emap_robust_breaker_opens_total", {},
        "Times the cloud-link breaker tripped open");
    rejected_metric_ = &registry_->counter(
        "emap_robust_breaker_rejected_total", {},
        "Cloud calls short-circuited while the breaker was open");
    state_metric_->set(0.0);
  }
}

std::size_t CircuitBreaker::window_failures_locked() const {
  return static_cast<std::size_t>(
      std::count(recent_failure_.begin(), recent_failure_.end(), true));
}

void CircuitBreaker::trip_locked(double now_sec) {
  state_ = BreakerState::kOpen;
  open_until_ = now_sec + options_.cooldown_sec;
  probe_successes_ = 0;
  ++summary_.opens;
  if (opens_metric_ != nullptr) {
    opens_metric_->increment();
  }
  if (state_metric_ != nullptr) {
    state_metric_->set(1.0);
  }
}

bool CircuitBreaker::allow(double now_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kOpen) {
    if (now_sec < open_until_) {
      ++summary_.rejected;
      if (rejected_metric_ != nullptr) {
        rejected_metric_->increment();
      }
      return false;
    }
    // Cooldown expired: admit a probe.  The expiry condition is >=, so a
    // recovering link is always eventually probed (the breaker cannot stay
    // OPEN forever).
    state_ = BreakerState::kHalfOpen;
    probe_successes_ = 0;
    if (state_metric_ != nullptr) {
      state_metric_->set(2.0);
    }
  }
  return true;
}

void CircuitBreaker::record_success(double now_sec) {
  (void)now_sec;
  std::lock_guard<std::mutex> lock(mutex_);
  ++summary_.successes;
  if (state_ == BreakerState::kHalfOpen) {
    ++probe_successes_;
    if (probe_successes_ >= options_.half_open_successes) {
      state_ = BreakerState::kClosed;
      open_until_ = 0.0;
      recent_failure_.assign(options_.window, false);
      recent_next_ = 0;
      recent_count_ = 0;
      if (state_metric_ != nullptr) {
        state_metric_->set(0.0);
      }
    }
    return;
  }
  if (state_ == BreakerState::kClosed) {
    recent_failure_[recent_next_] = false;
    recent_next_ = (recent_next_ + 1) % options_.window;
    recent_count_ = std::min(recent_count_ + 1, options_.window);
  }
}

void CircuitBreaker::record_failure(double now_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++summary_.failures;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the link is still bad; restart the cooldown.
    trip_locked(now_sec);
    return;
  }
  if (state_ == BreakerState::kClosed) {
    recent_failure_[recent_next_] = true;
    recent_next_ = (recent_next_ + 1) % options_.window;
    recent_count_ = std::min(recent_count_ + 1, options_.window);
    if (window_failures_locked() >= options_.open_after_failures) {
      trip_locked(now_sec);
    }
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

double CircuitBreaker::open_until_sec() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == BreakerState::kOpen ? open_until_ : 0.0;
}

double CircuitBreaker::retry_after_hint(double now_sec) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kOpen) {
    return 0.0;
  }
  return std::max(0.0, open_until_ - now_sec);
}

BreakerCheckpoint CircuitBreaker::checkpoint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BreakerCheckpoint out;
  out.state = state_;
  out.open_until_sec = open_until_;
  out.probe_successes = probe_successes_;
  out.recent_failure.reserve(recent_failure_.size());
  for (const bool failure : recent_failure_) {
    out.recent_failure.push_back(failure ? 1u : 0u);
  }
  out.recent_next = recent_next_;
  out.recent_count = recent_count_;
  out.summary = summary_;
  out.summary.final_state = state_;
  return out;
}

void CircuitBreaker::restore(const BreakerCheckpoint& saved) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(saved.recent_failure.size() == recent_failure_.size() &&
              saved.recent_next < options_.window &&
              saved.recent_count <= options_.window,
          "CircuitBreaker::restore: saved state does not match this "
          "breaker's window");
  state_ = saved.state;
  open_until_ = saved.open_until_sec;
  probe_successes_ = static_cast<std::size_t>(saved.probe_successes);
  for (std::size_t i = 0; i < recent_failure_.size(); ++i) {
    recent_failure_[i] = saved.recent_failure[i] != 0;
  }
  recent_next_ = static_cast<std::size_t>(saved.recent_next);
  recent_count_ = static_cast<std::size_t>(saved.recent_count);
  summary_ = saved.summary;
  summary_.final_state = state_;
  if (state_metric_ != nullptr) {
    state_metric_->set(state_ == BreakerState::kClosed
                           ? 0.0
                           : (state_ == BreakerState::kOpen ? 1.0 : 2.0));
  }
}

BreakerSummary CircuitBreaker::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BreakerSummary out = summary_;
  out.final_state = state_;
  return out;
}

}  // namespace emap::robust
