// Edge degradation controller: burn-rate-driven adaptive load shedding.
//
// PR 3's SLO monitors *observe* when the edge burns its 1 s iteration
// budget; this controller *acts* on that signal.  It is a small hysteretic
// state machine driven once per pipeline window by the rolling
// `emap_slo_burn_rate` plus the window's own miss/near-miss verdicts:
//
//   NOMINAL ──miss/burn──▶ DEGRADED ──sustained misses──▶ CRITICAL
//      ▲                      │  ▲                            │
//      │                      │  └────────miss────────┐       │hold
//      └──K clean, level 0── RECOVERING ◀──K clean────┘◀──────┘
//
// In DEGRADED the controller shrinks the tracked correlation set
// (top-100 → top-50 → top-25 via shed levels), widens the area-between-
// curves re-check stride, and defers non-essential telemetry flushes.  In
// CRITICAL the pipeline stops tracking entirely and serves the last-known
// P_A with an explicit flag.  RECOVERING restores capacity hysteretically:
// each step back up requires `step_up_after` consecutive clean windows, so
// a marginal edge device settles at its sustainable shed level instead of
// flapping.  Within any single window the shed level moves by at most one
// step (monotone per-window adjustment — a property test asserts this).
//
// All inputs are SimTime-derived, so every decision is deterministic and
// chaos runs replay bit-for-bit.  Thread-safe: the pipeline drives it from
// one thread, but metric scrapes and the TSan'd overload tests touch it
// concurrently.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "emap/obs/metrics.hpp"

namespace emap::robust {

/// Controller states (in escalation order).
enum class DegradeState { kNominal, kDegraded, kCritical, kRecovering };

/// Lowercase state label ("nominal", "degraded", ...).
const char* degrade_state_name(DegradeState state);

/// Tuning knobs of the degradation state machine.
struct DegradeOptions {
  /// Rolling burn rate above which a window counts as pressure even
  /// without a hard deadline miss (burn > 1 means the error budget is
  /// being consumed faster than the SLO target allows).
  double enter_burn_rate = 1.0;
  /// Shed levels available: level L caps the tracked set at
  /// top_k >> L (100 → 50 → 25 with the paper's top-100) and widens the
  /// re-check stride by 2^L.
  std::size_t max_shed_level = 2;
  /// Consecutive pressured windows before stepping one shed level deeper.
  std::size_t escalate_after = 2;
  /// Consecutive deadline misses at the deepest shed level before the
  /// controller gives up tracking and enters CRITICAL.
  std::size_t critical_after = 4;
  /// Windows spent in CRITICAL before attempting RECOVERING.
  std::size_t critical_hold = 5;
  /// Consecutive clean windows in DEGRADED before entering RECOVERING.
  std::size_t recover_after = 3;
  /// Consecutive clean windows in RECOVERING per one-step capacity
  /// restoration (the anti-flap hysteresis).
  std::size_t step_up_after = 3;

  // --- Adaptive EWMA thresholds (opt-in) ---
  //
  // The streak counters above reset on any interruption: a workload that
  // alternates miss / near-miss never accumulates `escalate_after`
  // consecutive misses and the controller sheds nothing while the edge
  // stays saturated.  Adaptive mode replaces the escalation and recovery
  // streaks with an EWMA of the per-window pressure indicator (miss = 1,
  // near miss = 0.5, clean = 0): shed one level deeper while the EWMA sits
  // at or above `escalate_pressure`, recover while it sits at or below
  // `recover_pressure`.  The gap between the two thresholds is the
  // anti-flap hysteresis; CRITICAL entry keeps the consecutive-miss rule
  // either way.  Off by default — the fixed-streak behaviour stays
  // bit-identical for existing calibrated runs.
  /// Stage-queue occupancy (max depth/capacity over the streaming graph's
  /// queues) at or above which a window counts as pressure even with clean
  /// latency — a backlog building between stages is early warning the
  /// burn rate cannot see.  The batch pipeline never reports queue
  /// pressure (WindowSignal.queue_pressure stays 0), so this knob is
  /// behaviour-preserving outside streaming mode.
  double queue_pressure_enter = 0.75;

  bool adaptive = false;
  /// EWMA smoothing factor for the pressure indicator.
  double pressure_alpha = 0.4;
  /// Escalate one shed level while the pressure EWMA is at or above this.
  double escalate_pressure = 0.5;
  /// Recover (toward NOMINAL) while the EWMA is at or below this.
  double recover_pressure = 0.15;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// What the pipeline observed over one completed window.
struct WindowSignal {
  std::size_t window_index = 0;
  double t_sec = 0.0;          ///< SimTime at window completion
  double burn_rate = 0.0;      ///< rolling emap_slo_burn_rate
  bool deadline_miss = false;  ///< this window blew its budget
  bool near_miss = false;      ///< within budget but in the warning band
  bool stage_stuck = false;    ///< watchdog verdict: force CRITICAL
  /// Stage-queue occupancy in [0, 1]: max depth/capacity over the
  /// streaming queues (0 in batch mode — no queues exist).
  double queue_pressure = 0.0;
  /// No latency observation this window (quality-gated or CRITICAL);
  /// streaks hold instead of advancing.
  bool no_observation = false;
};

/// One recorded state transition (exported as a span by the pipeline).
struct DegradeTransition {
  std::size_t window_index = 0;
  double t_sec = 0.0;
  DegradeState from = DegradeState::kNominal;
  DegradeState to = DegradeState::kNominal;
};

/// Controller-side slice of the RunResult robustness summary.
struct DegradeSummary {
  DegradeState final_state = DegradeState::kNominal;
  std::size_t transitions = 0;
  std::size_t windows_nominal = 0;
  std::size_t windows_degraded = 0;
  std::size_t windows_critical = 0;
  std::size_t windows_recovering = 0;
  std::size_t max_shed_level = 0;   ///< deepest level reached
  bool entered_degraded = false;    ///< left NOMINAL at least once
};

/// Serializable controller state (checkpoint support): everything
/// observe_window reads or writes, so a restored controller continues the
/// run bit-identically.  Options are NOT included — the resuming pipeline
/// must be configured identically, which the session checkpoint enforces
/// via its config fingerprint.
struct DegradeCheckpoint {
  DegradeState state = DegradeState::kNominal;
  std::uint64_t shed_level = 0;
  std::uint64_t bad_streak = 0;
  std::uint64_t clean_streak = 0;
  std::uint64_t miss_streak = 0;
  std::uint64_t critical_left = 0;
  bool recovered_since_miss = false;
  double pressure_ewma = 0.0;
  /// Summary counters continue across the restore (transition spans are
  /// per-process and deliberately not carried).
  DegradeSummary summary{};
};

/// The burn-rate-driven degradation state machine.
class DegradationController {
 public:
  /// `registry` is borrowed and may be null (summary-only operation).
  explicit DegradationController(DegradeOptions options = {},
                                 obs::MetricsRegistry* registry = nullptr);

  /// Feeds one completed window; at most one state/level step is taken.
  void observe_window(const WindowSignal& signal);

  /// External escalation (sim-time watchdog): forces CRITICAL now.
  void force_critical(std::size_t window_index, double t_sec);

  DegradeState state() const;
  std::size_t shed_level() const;

  /// Cap on the tracked correlation set at the current shed level:
  /// base >> level, floored at 1.
  std::size_t tracked_cap(std::size_t base_top_k) const;

  /// Area re-check stride widening factor: 2^level.
  std::size_t stride_multiplier() const;

  /// Cloud re-call threshold scaled to the current cap (base_h at level 0,
  /// proportionally smaller when shedding, floored at 1) so a shed set
  /// does not trigger a cloud-call storm.
  std::size_t recall_threshold(std::size_t base_h,
                               std::size_t base_top_k) const;

  /// True while non-essential telemetry flushes should be deferred
  /// (any state but NOMINAL).
  bool defer_flushes() const;

  /// Tracking is suspended; serve the last-known P_A.
  bool critical() const { return state() == DegradeState::kCritical; }

  const std::vector<DegradeTransition>& transitions() const;
  DegradeSummary summary() const;
  const DegradeOptions& options() const { return options_; }

  /// Rolling pressure EWMA (0 when adaptive mode is off or nothing was
  /// observed yet).
  double pressure_ewma() const;

  /// Captures the restorable state (checkpoint support).
  DegradeCheckpoint checkpoint() const;

  /// Restores a saved state; the next observe_window continues exactly
  /// where the saved controller stopped.  Throws InvalidArgument when the
  /// saved shed level exceeds this controller's max_shed_level.
  void restore(const DegradeCheckpoint& saved);

 private:
  void transition_locked(DegradeState to, std::size_t window_index,
                         double t_sec);
  void set_level_locked(std::size_t level);

  DegradeOptions options_;
  mutable std::mutex mutex_;
  DegradeState state_ = DegradeState::kNominal;
  std::size_t shed_level_ = 0;
  std::size_t bad_streak_ = 0;
  std::size_t clean_streak_ = 0;
  std::size_t miss_streak_ = 0;      ///< consecutive misses at max level
  std::size_t critical_left_ = 0;    ///< hold windows remaining
  /// The rolling burn rate stays above the entry threshold for a full SLO
  /// window after any miss — including the one the controller just handled.
  /// Once a recovery completes, burn alone must not re-enter DEGRADED until
  /// a fresh miss is observed, or the controller oscillates for the rest of
  /// the burn window.
  bool recovered_since_miss_ = false;
  /// Adaptive mode's rolling pressure indicator (stays 0 when off).
  double pressure_ewma_ = 0.0;
  std::vector<DegradeTransition> transitions_;
  DegradeSummary summary_;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::Gauge* state_metric_ = nullptr;
  obs::Gauge* level_metric_ = nullptr;
  obs::Counter* pressure_metric_ = nullptr;
};

}  // namespace emap::robust
