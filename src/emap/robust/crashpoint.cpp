#include "emap/robust/crashpoint.hpp"

#include <cstdlib>

#include "emap/obs/flight.hpp"

namespace emap::robust {

const std::vector<std::string>& crash_point_catalog() {
  static const std::vector<std::string> kCatalog = {
      "pipeline_window_start",  "pipeline_tracker_step",
      "pipeline_pre_cloud_call", "pipeline_post_cloud_call",
      "pipeline_window_end",     "checkpoint_pre_write",
      "checkpoint_pre_rename",   "checkpoint_post_write",
      // Threaded-only points, armed under a live stage graph: fired by the
      // checkpoint coordinator as it raises the quiesce gate and again once
      // the in-flight ledger has drained (or the drain timed out), just
      // before the snapshot is captured.
      "stream_quiesce",          "stream_drain",
  };
  return kCatalog;
}

void CrashPointRegistry::arm(CrashSchedule schedule, CrashAction action) {
  require(!schedule.point.empty(), "CrashPointRegistry::arm: empty point name");
  require(schedule.hit >= 1, "CrashPointRegistry::arm: hit index is 1-based");
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_ = std::move(schedule);
  random_.reset();
  action_ = action;
  armed_ = true;
}

void CrashPointRegistry::arm_random(double probability, std::uint64_t seed,
                                    CrashAction action) {
  require(probability >= 0.0 && probability <= 1.0,
          "CrashPointRegistry::arm_random: probability must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_.reset();
  random_.emplace(seed);
  random_probability_ = probability;
  action_ = action;
  armed_ = true;
}

void CrashPointRegistry::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  schedule_.reset();
  random_.reset();
}

bool CrashPointRegistry::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void CrashPointRegistry::hit(const char* point) {
  std::string fired_point;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t count = ++counts_[point];
    if (!armed_) {
      return;
    }
    if (schedule_.has_value()) {
      if (schedule_->point == point && count == schedule_->hit) {
        fired_point = point;
      }
    } else if (random_.has_value() &&
               random_->bernoulli(random_probability_)) {
      fired_point = point;
    }
  }
  if (!fired_point.empty()) {
    fire(fired_point);
  }
}

std::uint64_t CrashPointRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(point);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::string> CrashPointRegistry::seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counts_.size());
  for (const auto& [name, count] : counts_) {
    names.push_back(name);
  }
  return names;
}

void CrashPointRegistry::set_flight_recorder(obs::FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  flight_ = recorder;
}

void CrashPointRegistry::fire(const std::string& point) {
  obs::FlightRecorder* flight = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flight = flight_;
  }
  if (flight != nullptr) {
    // The crash point is the last event before the process (or stack)
    // dies; record it, then flush the whole ring while we still can.
    flight->log(obs::FlightEventType::kCrashPoint, point.c_str(),
                /*t_sec=*/-1.0);
    flight->trigger_dump("crash_point");
  }
  if (action_ == CrashAction::kExit) {
    // A real crash: no destructors, no flushing, the checkpoint on disk is
    // whatever the atomic rename last published.
    std::_Exit(kCrashExitCode);
  }
  throw InjectedCrash(point);
}

}  // namespace emap::robust
