// Aggregate options/summary of the robustness subsystem.
//
// One options struct the pipeline embeds (PipelineOptions::robust) and one
// summary struct the RunResult carries, so callers configure and read the
// whole closed loop — degradation controller, circuit breaker, watchdog,
// quality gate — in one place.  See docs/robustness.md for the control
// loop and threshold map.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

#include <vector>

#include "emap/robust/breaker.hpp"
#include "emap/robust/checkpoint.hpp"
#include "emap/robust/degrade.hpp"
#include "emap/robust/quality.hpp"
#include "emap/robust/supervisor.hpp"
#include "emap/robust/watchdog.hpp"

namespace emap::robust {

/// Pipeline-level switches for the closed loop.  Defaults keep a clean
/// run bit-identical: the controller stays NOMINAL (no shedding), the
/// breaker stays closed, the gate passes every clean window.
struct RobustOptions {
  /// Master switch: false removes every robust hook from the run.
  bool enabled = true;
  /// Signal-quality gating of raw windows (sub-switch of `enabled`).
  bool quality_gate = true;
  DegradeOptions degrade{};
  BreakerOptions breaker{};
  WatchdogOptions watchdog{};
  QualityOptions quality{};

  /// Validates every sub-options struct.
  void validate() const;
};

/// One streaming stage with its outbound queue (streaming mode only):
/// supervision counters from the StageSupervisor plus the bounded queue's
/// occupancy accounting.  Rendered as per-stage columns in the robust
/// summary JSON.
struct StageQueueSummary {
  std::string stage;
  std::uint64_t processed = 0;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  bool failed = false;
  /// Outbound queue (empty name = terminal stage, queue fields all 0).
  std::string queue;
  std::uint64_t queue_capacity = 0;
  std::uint64_t queue_max_depth = 0;
  std::uint64_t queue_pushed = 0;
  std::uint64_t queue_shed = 0;
};

/// Controller-loop outcome of one run, embedded in RunResult.
struct RobustSummary {
  bool enabled = false;
  DegradeSummary degrade{};
  BreakerSummary breaker{};
  QualitySummary quality{};
  std::size_t watchdog_trips = 0;
  /// Windows served with the last-known P_A because tracking was
  /// suspended in CRITICAL.
  std::size_t critical_windows = 0;
  /// Correlation-set loads truncated to the active shed cap.
  std::size_t shed_loads = 0;
  /// Non-essential telemetry observations buffered while degraded and
  /// flushed late (or at run end).
  std::size_t deferred_flushes = 0;
  /// Checkpoint/restore outcome (all-default when checkpointing is off).
  RecoverySummary recovery{};
  /// True when the run executed on the threaded streaming scheduler.
  bool streamed = false;
  /// Supervisor interventions over the whole stage graph (0 in batch mode).
  std::size_t supervisor_stalls = 0;
  std::size_t supervisor_restarts = 0;
  std::size_t supervisor_crashes = 0;
  /// Per-stage supervision + queue columns (empty in batch mode).
  std::vector<StageQueueSummary> stages{};
};

/// Flat JSON object of the summary (one line, no trailing newline).
std::string robust_summary_json(const RobustSummary& summary);

/// Writes robust_summary_json to `path` + newline, creating parent
/// directories; throws IoError on failure.
void write_robust_summary(const std::filesystem::path& path,
                          const RobustSummary& summary);

}  // namespace emap::robust
