// Per-window signal-quality gate.
//
// Scalp EEG at the edge is contaminated exactly where the paper says it is
// (Section III: electrode placement makes it "highly susceptible to
// noise").  The bandpass helps against line noise but an electrode pop or
// a saturated amplifier produces a window whose area-between-curves
// verdicts are garbage — tracked signals get evicted en masse and the
// resulting P_A swing masquerades as anomaly onset.  The gate classifies
// each *raw* window (before the FIR, which would smear a rail-flat or
// clipped segment into something plausible) with four cheap dsp/stats
// checks, in order:
//
//   NaN       any non-finite sample (acquisition fault)
//   flatline  stddev below a floor (detached electrode / rail)
//   saturated too many samples at or beyond the clip amplitude
//   artifact  peak amplitude beyond the physiological limit (pop, blink)
//
// Bad windows still pass through the FIR (streaming filter continuity) but
// are excluded from tracking and P_A updates, and counted per reason under
// `emap_robust_quality_*`.  Thresholds sit well above the synthesizer's
// clean amplitude scale, so a default clean run gates nothing and stays
// bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>

#include "emap/obs/metrics.hpp"

namespace emap::robust {

/// Per-window verdict, most severe first match wins.
enum class QualityVerdict : std::uint8_t {
  kGood = 0,
  kNan,
  kFlatline,
  kSaturated,
  kArtifact,
};

/// Lowercase verdict label ("good", "nan", "flatline", ...).
const char* quality_verdict_name(QualityVerdict verdict);

/// Gate thresholds.  Defaults are calibrated against the synthesizer's
/// clean recordings (peak amplitude ~10-15 units) and its artifact models
/// (electrode pop 60, blink 40): clean windows always pass.
struct QualityOptions {
  /// Windows with stddev below this are flatline.
  double flatline_stddev = 1e-3;
  /// |sample| at or beyond this counts as clipped.
  double saturation_limit = 100.0;
  /// Fraction of clipped samples above which the window is saturated.
  double saturation_fraction = 0.05;
  /// Peak |sample| beyond this is a high-amplitude artifact.
  double amplitude_limit = 50.0;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// What the gate saw in one window.
struct QualityReport {
  QualityVerdict verdict = QualityVerdict::kGood;
  double stddev = 0.0;
  double peak_abs = 0.0;
  double saturated_fraction = 0.0;

  bool good() const { return verdict == QualityVerdict::kGood; }
};

/// Per-run counters, embeddable in the RunResult robustness summary.
struct QualitySummary {
  std::size_t assessed = 0;
  std::size_t good = 0;
  std::size_t nan = 0;
  std::size_t flatline = 0;
  std::size_t saturated = 0;
  std::size_t artifact = 0;

  std::size_t bad() const { return assessed - good; }
};

/// The stateful gate (counters + cached metric handles).
class SignalQualityGate {
 public:
  /// `registry` is borrowed and may be null (summary-only operation).
  explicit SignalQualityGate(QualityOptions options = {},
                             obs::MetricsRegistry* registry = nullptr);

  /// Classifies one raw window and updates the counters.
  QualityReport assess(std::span<const double> raw_window);

  QualitySummary summary() const;
  const QualityOptions& options() const { return options_; }

 private:
  QualityOptions options_;
  mutable std::mutex mutex_;
  QualitySummary summary_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* assessed_metric_ = nullptr;
};

}  // namespace emap::robust
