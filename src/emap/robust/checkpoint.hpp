// Crash-consistent checkpoint/restore of one monitoring session.
//
// EMAP is a continuous loop: the tracked correlation set, P_A history,
// degradation/breaker state, and every RNG stream accumulate across
// one-second windows, so a process crash discards the patient's tracking
// history and forces a cold ~3 s cloud re-search.  The checkpoint
// subsystem makes the pipeline restartable: at the end of each window it
// serializes the full resumable session state (SessionState below) into a
// versioned, CRC-32-guarded binary snapshot and publishes it with an
// atomic temp-write + rename, so the file on disk is always either the
// previous complete snapshot or the new complete snapshot — never a torn
// one.  A resumed run restores every state machine and RNG stream and
// replays from the first un-checkpointed window; on a clean link its P_A
// trajectory is bit-identical to the uninterrupted run's (the recovery
// integration test crashes at every registered crash point and asserts
// exactly that).
//
// Snapshot framing (little-endian, mirrors the MDB store format):
//   file    := magic "EMCK" | u32 version | u64 payload_size | payload |
//              u32 crc32(payload)
// Loads fail closed: truncated, bit-flipped, version-skewed, or
// wrong-config snapshots throw CheckpointError (a CorruptData) and are
// never partially applied.  Versioning policy: `kCheckpointVersion` bumps
// on ANY layout change; there is no cross-version migration — an old
// snapshot is rejected and the session cold-starts (documented in
// docs/robustness.md, "Crash recovery").
//
// Layering note: this is the robust layer, below core — so the snapshot
// carries its own plain TrackedSignalState rather than core::TrackedSignal;
// the pipeline converts at the boundary.  Tracked samples are persisted in
// full: the edge's copies went through the 16-bit wire quantization, so
// they cannot be re-fetched from the MDB without changing every subsequent
// area verdict.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/net/fault.hpp"
#include "emap/obs/slo.hpp"
#include "emap/robust/breaker.hpp"
#include "emap/robust/crashpoint.hpp"
#include "emap/robust/degrade.hpp"
#include "emap/robust/quality.hpp"

namespace emap::robust {

/// A snapshot failed validation (bad magic, version skew, CRC mismatch,
/// truncation, or fingerprint mismatch).  Subclass of CorruptData so
/// generic integrity handling still applies; typed so recovery code can
/// distinguish "no snapshot" from "snapshot rejected".
class CheckpointError : public CorruptData {
 public:
  explicit CheckpointError(const std::string& what) : CorruptData(what) {}
};

/// Bump on ANY change to the SessionState layout.  No migrations: a
/// version-skewed snapshot is rejected and the session cold-starts.
/// v2: trace lineage (trace_seed, pending-call trace context) appended.
/// v3: streaming extension (stream topology fingerprint, settled-call and
///     to-replay ledgers, per-worker fault/channel cursors, injector draw
///     cursors) appended.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// One tracked signal-set as the edge holds it (robust-layer mirror of
/// core::TrackedSignal; samples included — see the layering note above).
struct TrackedSignalState {
  std::uint64_t set_id = 0;
  double omega = 0.0;
  std::uint64_t beta = 0;
  bool anomalous = false;
  std::uint8_t class_tag = 0;
  std::vector<double> samples;
};

/// Edge tracker state: the set plus the staleness counter.
struct TrackerCheckpoint {
  bool loaded = false;
  std::uint64_t steps_since_load = 0;
  std::vector<TrackedSignalState> tracked;
};

/// Anomaly predictor state: P_A history plus the latched alarm.
struct PredictorCheckpoint {
  std::vector<double> history;
  bool alarmed = false;
  double alarm_time_sec = -1.0;
  std::uint64_t consecutive = 0;
};

/// An in-flight cloud call (the pipeline computes the call synchronously
/// and holds its delivery until ready_at_sec, so the full outcome —
/// including the correlation set — is checkpointable mid-flight).
struct PendingCallCheckpoint {
  double ready_at_sec = 0.0;
  double delta_ec = 0.0;
  double delta_cs = 0.0;
  double delta_ce = 0.0;
  std::uint32_t sequence = 0;
  std::uint64_t attempts = 0;
  std::uint64_t duplicates = 0;
  bool succeeded = false;
  /// Causal chain of the originating window, so the delivery recorded by
  /// the resumed run attaches to the same trace the call was issued under.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::vector<TrackedSignalState> correlation_set;
};

/// An uplink job that was issued but had not settled (delivered and
/// applied, or completed-and-held) when the quiesce drain timed out.  The
/// streaming resume re-delivers it as a *failed* call — the same degraded-
/// window semantics as a worker dying with the job in flight — so the
/// issued/applied ledger settles without the lost result.
struct ReplayEntryCheckpoint {
  std::uint32_t sequence = 0;
  double t_issue_sec = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// One uplink worker's deterministic stream position: its forked
/// FaultInjector (with draw cursors) and its Channel RNG.  Indexed by
/// worker slot; the stream topology fingerprint guarantees the resumed run
/// spawns the same number of workers.
struct WorkerCheckpoint {
  net::FaultInjectorState injector{};
  RngState channel_rng{};
};

/// Cumulative RunResult counters and first-round-trip timings, carried so
/// a resumed run's final report equals the uninterrupted run's.
struct RunCountersCheckpoint {
  std::uint64_t cloud_calls = 0;
  std::uint64_t failed_cloud_calls = 0;
  std::uint64_t retry_attempts = 0;
  std::uint64_t duplicates_discarded = 0;
  bool degraded = false;
  bool first_round_trip_recorded = false;
  double delta_ec_sec = 0.0;
  double delta_cs_sec = 0.0;
  double delta_ce_sec = 0.0;
  double delta_initial_sec = 0.0;
  double total_track_sec = 0.0;
  std::uint64_t track_steps = 0;
  double max_track_sec = 0.0;
  // Robust-summary counters.
  std::uint64_t critical_windows = 0;
  std::uint64_t shed_loads = 0;
  std::uint64_t deferred_flushes = 0;
  std::uint64_t watchdog_trips = 0;
  QualitySummary quality{};
};

/// The full resumable state of one monitoring session at a window
/// boundary.  Everything the pipeline loop reads or mutates across
/// windows; per-process artifacts (spans, histograms, IterationRecords
/// already emitted) are deliberately excluded.
struct SessionState {
  /// EmapConfig::fingerprint() of the writing pipeline; a resume under a
  /// different configuration is rejected (the state machines are
  /// calibrated to these parameters).
  std::string config_fingerprint;
  /// CRC-32 over the input recording's samples; resuming against a
  /// different input would silently replay the wrong patient.
  std::uint32_t input_fingerprint = 0;
  /// First window index NOT yet completed (the resume point).
  std::uint64_t next_window = 0;
  double last_pa = 0.0;
  std::int64_t last_loaded_sequence = -1;
  RunCountersCheckpoint counters{};
  TrackerCheckpoint tracker{};
  PredictorCheckpoint predictor{};
  dsp::FirStreamState fir{};
  std::optional<PendingCallCheckpoint> pending;
  DegradeCheckpoint degrade{};
  BreakerCheckpoint breaker{};
  obs::SloMonitorState edge_slo{};
  obs::SloMonitorState initial_slo{};
  net::FaultInjectorState injector{};
  RngState channel_rng{};
  /// Seed the writing run minted per-window trace ids from
  /// (obs::mint_trace_id).  A resumed run re-adopts it, so windows keep
  /// the ids the original run would have given them — the trace lineage
  /// survives the crash.
  std::uint64_t trace_seed = 0;
  // ---- Streaming extension (v3).  All empty for batch/virtual-time
  // snapshots; the resume side rejects a topology mismatch explicitly. ----
  /// StreamOptions::fingerprint() of the writing scheduler — empty for the
  /// batch loop (and kVirtualTime, which IS the batch loop).  A resume
  /// under a different stream topology (mode, worker count, queue bounds,
  /// queue-full policy) is rejected, never silently re-shaped.
  std::string stream_fingerprint;
  /// Issued calls that completed before the quiesce barrier but whose
  /// virtual ready time had not arrived — the threaded analogue of the
  /// batch loop's single `pending` slot (up to one per uplink worker).
  std::vector<PendingCallCheckpoint> completed_calls;
  /// Issued calls that had NOT settled when the drain timed out; resumed
  /// as failed/degraded deliveries (see ReplayEntryCheckpoint).
  std::vector<ReplayEntryCheckpoint> replay;
  /// Per-uplink-worker fault/channel stream positions.
  std::vector<WorkerCheckpoint> workers;
};

/// Serializes one session snapshot (full file image, framing included).
std::vector<std::uint8_t> encode_session(const SessionState& state);

/// Parses and validates a snapshot image.  Throws CheckpointError on any
/// framing, version, CRC, or structural violation — never partially
/// applies and never reads past the buffer (ASan/UBSan-clean on fuzzed
/// input; the corruption fuzz test asserts this).
SessionState decode_session(const std::vector<std::uint8_t>& bytes);

/// The snapshot file inside a checkpoint directory.
std::filesystem::path checkpoint_path(const std::filesystem::path& dir);

/// Atomically publishes `state` into `dir` (created if needed): encode,
/// write to a temp file, fsync-close, rename over checkpoint_path(dir).
/// A crash anywhere before the rename leaves the previous snapshot
/// intact.  `crashpoints` (may be null) is consulted at
/// checkpoint_pre_write / checkpoint_pre_rename / checkpoint_post_write.
/// Throws IoError on filesystem failure.
void write_checkpoint(const std::filesystem::path& dir,
                      const SessionState& state,
                      CrashPointRegistry* crashpoints = nullptr);

/// Loads the snapshot from `dir`.  Returns nullopt when no snapshot file
/// exists (fresh session); throws CheckpointError when one exists but
/// fails validation; throws IoError when it cannot be read.
std::optional<SessionState> read_checkpoint(
    const std::filesystem::path& dir);

/// Pipeline-facing recovery switches (PipelineOptions::recovery).
struct RecoveryOptions {
  /// Directory for snapshots; empty disables checkpointing entirely.
  std::filesystem::path checkpoint_dir;
  /// Write a snapshot every N completed windows (>= 1).
  std::size_t interval_windows = 1;
  /// Attempt to resume from the directory's snapshot at run start.
  bool resume = false;
  /// With resume: a missing or rejected snapshot throws (CheckpointError)
  /// instead of falling back to a cold start.
  bool strict = false;

  bool enabled() const { return !checkpoint_dir.empty(); }

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// Recovery outcome of one run, embedded in the RunResult robust summary.
struct RecoverySummary {
  bool enabled = false;            ///< checkpointing was on
  bool resumed = false;            ///< state restored from a snapshot
  std::uint64_t resume_window = 0; ///< first window executed by this run
  std::uint64_t checkpoints_written = 0;
  /// Resume was requested but no usable snapshot existed; ran cold.
  bool cold_start_fallback = false;
  /// Why the snapshot was rejected (empty when none was).
  std::string reject_reason;
  // ---- Streaming (quiesce-barrier) checkpoint accounting.  All zero in
  // batch mode except last_snapshot_window, which both engines maintain. ----
  /// next_window of the most recently published snapshot.
  std::uint64_t last_snapshot_window = 0;
  /// Quiesce drains that hit the wall-clock timeout and fell back to
  /// recording unsettled in-flight windows as to-replay entries.
  std::uint64_t drain_timeouts = 0;
  /// To-replay entries written into snapshots by this run.
  std::uint64_t replay_recorded = 0;
  /// To-replay entries this run re-delivered as failed calls on resume.
  std::uint64_t replay_redelivered = 0;
  /// Cadence snapshots abandoned cleanly (stage crash/stall/restart raced
  /// the quiesce, or the coordinator itself was restarted mid-drain).
  std::uint64_t snapshot_aborts = 0;
  /// A supervisor give-up (forced CRITICAL) published a post-mortem
  /// snapshot next to the flight dump.
  bool emergency_snapshot = false;
};

}  // namespace emap::robust
